#!/usr/bin/env python3
"""psan V4 redundancy-report merging (docs/PSAN.md).

Every process running under the persistence sanitizer appends one
JSON line to $PCCHECK_PSAN_REPORT at exit:

    {"psan_redundancy": {"<label>": {"persist_ops": N,
        "redundant_persist_ops": N, "redundant_persist_lines": N,
        "fence_ops": N, "redundant_fences": N}, ...}}

Parallel ctest shards share the file (append mode), so a full-suite
run leaves one line per test process. This tool merges those lines
into a single per-label table — the checked-in redundancy baseline
bench/baselines/PSAN_redundancy.json — and can diff a fresh run
against that baseline so a NEW redundant persist/fence site fails CI
while known (documented load-bearing) ones do not.

Subcommands:

  merge REPORT.jsonl [-o OUT.json]
      Sum the per-label counters across all lines. Output is a
      stable, label-sorted JSON object of the same shape (single
      "psan_redundancy" key).

  check REPORT.jsonl BASELINE.json
      Merge REPORT.jsonl, then exit 1 if any label has
      redundant_persist_ops or redundant_fences but is absent from
      the baseline, or exceeds the baseline's redundant counts while
      the baseline recorded zero. Ratio growth of already-known
      redundancy does not fail (op counts scale with seeds/iters).
      A missing baseline file warns and passes unless
      --require-baseline is given.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict

COUNTERS = (
    "persist_ops",
    "redundant_persist_ops",
    "redundant_persist_lines",
    "fence_ops",
    "redundant_fences",
)

Table = Dict[str, Dict[str, int]]


def merge_lines(path: str) -> Table:
    """Sum per-label counters over every JSON line of @p path.

    Blank lines are skipped; a malformed line is an error (the file
    is machine-written, so damage means a harness bug).
    """
    table: Table = {}
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(
                    f"psan-report: {path}:{lineno}: bad JSON: {err}")
            for label, stats in record.get("psan_redundancy", {}).items():
                into = table.setdefault(
                    label, {key: 0 for key in COUNTERS})
                for key in COUNTERS:
                    into[key] += int(stats.get(key, 0))
    return table


def dump(table: Table) -> str:
    ordered = {label: {key: table[label][key] for key in COUNTERS}
               for label in sorted(table)}
    return json.dumps({"psan_redundancy": ordered}, indent=2) + "\n"


def cmd_merge(args: argparse.Namespace) -> int:
    table = merge_lines(args.report)
    text = dump(table)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text)
    else:
        sys.stdout.write(text)
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    current = merge_lines(args.report)
    if not os.path.exists(args.baseline):
        print(f"psan-report: baseline {args.baseline} missing",
              file=sys.stderr)
        return 1 if args.require_baseline else 0
    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f).get("psan_redundancy", {})

    failures = []
    for label in sorted(current):
        stats = current[label]
        redundant = (stats["redundant_persist_ops"],
                     stats["redundant_fences"])
        if redundant == (0, 0):
            continue
        base = baseline.get(label)
        if base is None:
            failures.append(
                f"{label}: redundant flush work "
                f"(persists={redundant[0]}, fences={redundant[1]}) at a "
                "label absent from the baseline — new V4 site")
            continue
        for key in ("redundant_persist_ops", "redundant_fences"):
            if stats[key] > 0 and int(base.get(key, 0)) == 0:
                failures.append(
                    f"{label}: {key}={stats[key]} but the baseline "
                    "records zero — new V4 site at a known label")
    for failure in failures:
        print(f"psan-report: {failure}")
    if failures:
        print(f"psan-report: {len(failures)} new redundancy site(s); "
              "remove the redundant persist/fence or re-baseline with "
              "a load-bearing justification in docs/PSAN.md",
              file=sys.stderr)
        return 1
    print("psan-report: no new redundancy sites")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="psan-report", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    merge = sub.add_parser("merge", help="merge a JSONL report file")
    merge.add_argument("report")
    merge.add_argument("-o", "--output")
    merge.set_defaults(func=cmd_merge)

    check = sub.add_parser("check",
                           help="gate a report against the baseline")
    check.add_argument("report")
    check.add_argument("baseline")
    check.add_argument("--require-baseline", action="store_true")
    check.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
