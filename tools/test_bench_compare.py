#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py (ctest: bench_compare_unit).

Covers the gate behaviours CI leans on: a missing baseline must warn
and pass (unless explicitly required), run-to-run noise inside the
tolerance must not trip the gate, and a real regression must.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_compare  # noqa: E402


def write_json(directory, name, doc):
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return path


def bench_doc(metrics, bench="fig_delta", reps=3):
    return {"bench": bench, "reps": reps, "metrics": metrics}


def run(argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = bench_compare.main(argv)
    return code, out.getvalue(), err.getvalue()


class MetricDirectionTest(unittest.TestCase):
    def test_throughput_names_improve_upward(self):
        for name in ("delta_points_per_sec_f10", "items_per_sec",
                     "delta_speedup_f10"):
            self.assertFalse(
                bench_compare.metric_improves_downward(name), name)

    def test_time_names_improve_downward(self):
        for name in ("persist/1MiB.real_time_ms", "load_seconds",
                     "recover_time", "p99_latency"):
            self.assertTrue(
                bench_compare.metric_improves_downward(name), name)


class CompareTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def test_missing_baseline_warns_and_passes(self):
        current = write_json(self.dir.name, "cur.json",
                             bench_doc({"pts_per_sec": 100.0}))
        missing = os.path.join(self.dir.name, "nope.json")
        code, out, _ = run(["compare", current, missing])
        self.assertEqual(code, 0)
        self.assertIn("missing", out)
        self.assertIn("skipping the gate", out)

    def test_missing_baseline_fails_when_required(self):
        current = write_json(self.dir.name, "cur.json",
                             bench_doc({"pts_per_sec": 100.0}))
        missing = os.path.join(self.dir.name, "nope.json")
        code, _, err = run(["compare", current, missing,
                            "--require-baseline"])
        self.assertEqual(code, 1)
        self.assertIn("missing", err)

    def test_noisy_run_inside_tolerance_passes(self):
        # 12% down on throughput, 9% up on a time metric: noisy but
        # inside the default 15% band on both axes.
        baseline = write_json(
            self.dir.name, "base.json",
            bench_doc({"pts_per_sec": 100.0, "load_time_ms": 50.0}))
        current = write_json(
            self.dir.name, "cur.json",
            bench_doc({"pts_per_sec": 88.0, "load_time_ms": 54.5}))
        code, out, _ = run(["compare", current, baseline])
        self.assertEqual(code, 0)
        self.assertIn("within 15%", out)

    def test_throughput_regression_fails(self):
        baseline = write_json(self.dir.name, "base.json",
                              bench_doc({"pts_per_sec": 100.0}))
        current = write_json(self.dir.name, "cur.json",
                             bench_doc({"pts_per_sec": 80.0}))
        code, _, err = run(["compare", current, baseline])
        self.assertEqual(code, 1)
        self.assertIn("pts_per_sec", err)
        self.assertIn("20.0% less", err)

    def test_time_regression_fails_upward_only(self):
        baseline = write_json(self.dir.name, "base.json",
                              bench_doc({"load_time_ms": 50.0}))
        slower = write_json(self.dir.name, "slow.json",
                            bench_doc({"load_time_ms": 60.0}))
        faster = write_json(self.dir.name, "fast.json",
                            bench_doc({"load_time_ms": 30.0}))
        self.assertEqual(run(["compare", slower, baseline])[0], 1)
        self.assertEqual(run(["compare", faster, baseline])[0], 0)

    def test_improvement_beyond_tolerance_passes(self):
        baseline = write_json(self.dir.name, "base.json",
                              bench_doc({"pts_per_sec": 100.0}))
        current = write_json(self.dir.name, "cur.json",
                             bench_doc({"pts_per_sec": 300.0}))
        self.assertEqual(run(["compare", current, baseline])[0], 0)

    def test_tolerance_flag_tightens_the_gate(self):
        baseline = write_json(self.dir.name, "base.json",
                              bench_doc({"pts_per_sec": 100.0}))
        current = write_json(self.dir.name, "cur.json",
                             bench_doc({"pts_per_sec": 92.0}))
        self.assertEqual(run(["compare", current, baseline])[0], 0)
        self.assertEqual(run(["compare", current, baseline,
                              "--tolerance", "0.05"])[0], 1)

    def test_unmatched_metrics_are_reported_not_fatal(self):
        baseline = write_json(
            self.dir.name, "base.json",
            bench_doc({"pts_per_sec": 100.0, "retired": 1.0}))
        current = write_json(
            self.dir.name, "cur.json",
            bench_doc({"pts_per_sec": 100.0, "fresh": 2.0}))
        code, out, _ = run(["compare", current, baseline])
        self.assertEqual(code, 0)
        self.assertIn("fresh", out)
        self.assertIn("retired", out)

    def test_no_shared_metrics_is_an_error(self):
        baseline = write_json(self.dir.name, "base.json",
                              bench_doc({"a": 1.0}))
        current = write_json(self.dir.name, "cur.json",
                             bench_doc({"b": 1.0}))
        self.assertEqual(run(["compare", current, baseline])[0], 1)

    def test_malformed_current_is_a_tool_error(self):
        baseline = write_json(self.dir.name, "base.json",
                              bench_doc({"a": 1.0}))
        broken = write_json(self.dir.name, "cur.json", {"bench": "x"})
        self.assertEqual(run(["compare", broken, baseline])[0], 2)


class ExtractTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    @staticmethod
    def gbench_row(name, real_time_ms, items=None, aggregate=None):
        row = {"name": name, "run_name": name,
               "real_time": real_time_ms, "time_unit": "ms"}
        if items is not None:
            row["items_per_second"] = items
        if aggregate is not None:
            row["name"] = f"{name}_{aggregate}"
            row["aggregate_name"] = aggregate
        return row

    def test_noisy_repetitions_collapse_to_the_median(self):
        raw = write_json(self.dir.name, "raw.json", {"benchmarks": [
            self.gbench_row("persist/1MiB", 9.0, items=90.0),
            self.gbench_row("persist/1MiB", 10.0, items=100.0),
            self.gbench_row("persist/1MiB", 14.0, items=140.0),
            # gbench's own aggregates must not be double-counted
            self.gbench_row("persist/1MiB", 11.0, aggregate="mean"),
        ]})
        out = os.path.join(self.dir.name, "BENCH_persist.json")
        code, _, _ = run(["extract", raw, "-o", out])
        self.assertEqual(code, 0)
        with open(out, encoding="utf-8") as fh:
            doc = json.load(fh)
        self.assertEqual(doc["bench"], "BENCH_persist")
        self.assertEqual(doc["reps"], 3)
        self.assertEqual(doc["metrics"]["persist/1MiB.real_time_ms"],
                         10.0)
        self.assertEqual(doc["metrics"]["persist/1MiB.items_per_sec"],
                         100.0)

    def test_time_units_normalize_to_ms(self):
        raw = write_json(self.dir.name, "raw.json", {"benchmarks": [
            {"name": "a", "real_time": 2.5e6, "time_unit": "ns"},
            {"name": "b", "real_time": 1500.0, "time_unit": "us"},
        ]})
        out = os.path.join(self.dir.name, "BENCH_units.json")
        self.assertEqual(run(["extract", raw, "-o", out])[0], 0)
        with open(out, encoding="utf-8") as fh:
            metrics = json.load(fh)["metrics"]
        self.assertAlmostEqual(metrics["a.real_time_ms"], 2.5)
        self.assertAlmostEqual(metrics["b.real_time_ms"], 1.5)

    def test_empty_input_is_an_error(self):
        raw = write_json(self.dir.name, "raw.json", {"benchmarks": []})
        out = os.path.join(self.dir.name, "BENCH_empty.json")
        self.assertEqual(run(["extract", raw, "-o", out])[0], 1)
        self.assertFalse(os.path.exists(out))

    def test_extract_round_trips_through_compare(self):
        raw = write_json(self.dir.name, "raw.json", {"benchmarks": [
            self.gbench_row("persist/1MiB", 10.0, items=100.0),
        ]})
        base = os.path.join(self.dir.name, "base.json")
        cur = os.path.join(self.dir.name, "cur.json")
        self.assertEqual(run(["extract", raw, "-o", base])[0], 0)
        self.assertEqual(run(["extract", raw, "-o", cur])[0], 0)
        self.assertEqual(run(["compare", cur, base])[0], 0)


class MedianTest(unittest.TestCase):
    def test_merges_runs_per_metric(self):
        with tempfile.TemporaryDirectory() as tmp:
            paths = [
                write_json(tmp, f"r{i}.json",
                           bench_doc({"pts_per_sec": value}))
                for i, value in enumerate([90.0, 100.0, 130.0])
            ]
            out = os.path.join(tmp, "merged.json")
            self.assertEqual(run(["median", *paths, "-o", out])[0], 0)
            with open(out, encoding="utf-8") as fh:
                doc = json.load(fh)
            self.assertEqual(doc["metrics"]["pts_per_sec"], 100.0)
            self.assertEqual(doc["reps"], 3)


if __name__ == "__main__":
    unittest.main()
