// Fixture: fallible reads used as bare statements — the buffer is
// then consumed whether or not the media produced the bytes.
// pccheck-lint: read-status
#include <cstdint>

struct StorageStatus {
    bool ok() const { return true; }
};

struct Device {
    StorageStatus read(std::uint64_t, void*, std::uint64_t);
};

struct Store {
    Device& device();
    StorageStatus read_slot(int, std::uint64_t, void*, std::uint64_t);
};

std::uint8_t
leaky_restore(Device& device, Store& store)
{
    std::uint8_t buf[64];
    device.read(0, buf, sizeof buf);        // BAD: status dropped
    store.read_slot(1, 0, buf, sizeof buf); // BAD: status dropped
    store.device().read(8, buf, 8);         // BAD: accessor hop
    return buf[0];
}
