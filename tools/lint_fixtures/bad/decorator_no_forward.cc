// Bad: a StorageDevice decorator that forwards every op to inner_
// but never forwards set_observe_hook(), so an observer installed on
// the stack silently detaches when this decorator sits above the
// leaf (storage-decorator-forwards-hooks).

#include <memory>
#include <utility>

#include "storage/device.h"

namespace pccheck {

class SwallowingStorage final : public StorageDevice {
  public:
    explicit SwallowingStorage(std::unique_ptr<StorageDevice> inner)
        : inner_(std::move(inner))
    {
    }

    Bytes size() const override { return inner_->size(); }
    StorageStatus write(Bytes offset, const void* src, Bytes len) override
    {
        return inner_->write(offset, src, len);
    }
    void read(Bytes offset, void* dst, Bytes len) const override
    {
        inner_->read(offset, dst, len);
    }
    StorageStatus persist(Bytes offset, Bytes len) override
    {
        return inner_->persist(offset, len);
    }
    StorageStatus fence() override { return inner_->fence(); }
    StorageKind kind() const override { return inner_->kind(); }
    // set_observe_hook() not overridden: the base-class no-op eats
    // the hook and the leaf never sees it.

  private:
    std::unique_ptr<StorageDevice> inner_;
};

}  // namespace pccheck
