// Fixture: status-returning storage calls used as bare statements.
// pccheck-lint: storage-status
#include <cstdint>

struct StorageStatus {
    bool ok() const { return true; }
};

struct Device {
    StorageStatus write(std::uint64_t, const void*, std::uint64_t);
    StorageStatus persist(std::uint64_t, std::uint64_t);
    StorageStatus fence();
};

struct Store {
    Device& device();
    StorageStatus write_slot(int, std::uint64_t, const void*,
                             std::uint64_t);
    StorageStatus persist_slot_range(int, std::uint64_t, std::uint64_t);
};

void
leaky_publish(Device& device, Store& store, const void* data,
              std::uint64_t len)
{
    device.write(0, data, len);                 // BAD: status dropped
    store.write_slot(1, 0, data, len);          // BAD: status dropped
    store.persist_slot_range(1, 0, len);        // BAD: status dropped
    store.device().fence();                     // BAD: accessor hop
}
