// BAD: publishes the pointer record with no fence() after the data
// persist — a reordered device flush can make the record durable
// before the slot bytes it points at.

#include <cstdint>

namespace pccheck_lint_fixture {

struct Store {
    void persist_slot_range(std::uint32_t slot, std::uint64_t off,
                            std::uint64_t len);
    void fence();
    void publish_pointer(std::uint64_t counter);
};

void
commit_without_fence(Store& store, std::uint64_t counter,
                     std::uint64_t len)
{
    store.persist_slot_range(0, 0, len);
    store.publish_pointer(counter);  // missing store.fence()
}

}  // namespace pccheck_lint_fixture
