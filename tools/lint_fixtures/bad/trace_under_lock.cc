// pccheck-lint: hot-path
// BAD: opens a trace span while holding the commit-path lock, adding
// span bookkeeping to the serialized critical section.

#include <cstdint>

#include "util/annotations.h"

namespace pccheck_lint_fixture {

class HotPath {
  public:
    void
    commit(std::uint64_t counter)
    {
        MutexLock lock(mu_);
        PCCHECK_TRACE_SPAN("commit.locked", "counter", counter);
        ++commits_;
    }

  private:
    pccheck::Mutex mu_;
    std::uint64_t commits_ PCCHECK_GUARDED_BY(mu_) = 0;
};

}  // namespace pccheck_lint_fixture
