// BAD: seals the delta frame header with no fence() ordering the
// payload bytes first — a crash after the seal lands but before the
// payload does surfaces a replay-reachable frame with torn chunks.

#include <cstdint>

namespace pccheck_lint_fixture {

struct Device {
    void write(std::uint64_t off, const void* src, std::uint64_t len);
    void persist(std::uint64_t off, std::uint64_t len);
    void fence();
};

class DeltaAppender {
public:
    int seal_frame(std::uint64_t off, const void* header,
                   std::uint64_t len);

    int
    append_unordered(std::uint64_t frame_off, const void* payload,
                     std::uint64_t payload_len, const void* header)
    {
        device_->write(frame_off + 64, payload, payload_len);
        device_->persist(frame_off + 64, payload_len);
        return seal_frame(frame_off, header, 64);
    }

private:
    Device* device_ = nullptr;
};

}  // namespace pccheck_lint_fixture
