// BAD: raw std::atomic in seam-covered code bypasses the PCCHECK_MC
// instrumented shim — the model checker never sees these operations.
// pccheck-lint: atomic-seam

#include <atomic>
#include <cstdint>

namespace pccheck_lint_fixture {

class EscapedCounter {
  public:
    void
    bump()
    {
        // relaxed: fixture; the rule under test is raw-atomic-in-core.
        value_.fetch_add(1, std::memory_order_relaxed);
        flag_.test_and_set();
    }

  private:
    std::atomic<std::uint64_t> value_{0};
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

}  // namespace pccheck_lint_fixture
