// BAD: raw std locking primitives outside util/annotations.h are
// invisible to Clang thread-safety analysis.

#include <mutex>

namespace pccheck_lint_fixture {

class NakedCounter {
  public:
    void
    add()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++value_;
    }

  private:
    std::mutex mu_;
    std::uint64_t value_ = 0;
};

}  // namespace pccheck_lint_fixture
