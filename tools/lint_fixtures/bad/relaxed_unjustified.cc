// BAD: memory_order_relaxed with no "relaxed:" justification comment
// nearby — the reviewer cannot tell a benign statistic from a racy
// publication.

#include <atomic>
#include <cstdint>

namespace pccheck_lint_fixture {

std::atomic<std::uint64_t> g_counter{0};

std::uint64_t
bump()
{
    return g_counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace pccheck_lint_fixture
