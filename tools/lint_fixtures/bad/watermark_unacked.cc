// Lint fixture: broken replica-publish ordering. The commit CAS runs
// before the quorum gate and the watermark advances with no recorded
// ack — recovery could trust a counter no surviving replica holds.
// Not compiled; lint input only.

void
commit_then_hope(Engine& engine, Commit& protocol, const Handle& handle)
{
    const CommitResult result =
        protocol.commit(ticket, len, iteration, crc);
    engine.advance_watermark(handle);
    (void)engine.await_quorum(handle);
}
