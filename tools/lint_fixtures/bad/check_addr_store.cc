// BAD: plain store to CHECK_ADDR on a running system — the commit
// protocol only ever advances it with compare_exchange, otherwise a
// concurrent winner can be silently overwritten.

#include <atomic>
#include <cstdint>

namespace pccheck_lint_fixture {

class Committer {
  public:
    void
    force_pointer(std::uint64_t value)
    {
        check_addr_.store(value, std::memory_order_release);
    }

  private:
    std::atomic<std::uint64_t> check_addr_{0};
};

}  // namespace pccheck_lint_fixture
