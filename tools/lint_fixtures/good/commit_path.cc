// pccheck-lint: hot-path
// Exemplar of a clean commit path: persist, fence, then publish; the
// lifecycle span is opened before the lock; relaxed uses justified;
// CHECK_ADDR advanced only by CAS (plus an annotated init store).

#include <atomic>
#include <cstdint>

#include "util/annotations.h"

namespace pccheck_lint_fixture {

struct Store {
    void persist_slot_range(std::uint32_t slot, std::uint64_t off,
                            std::uint64_t len);
    void fence();
    void publish_pointer(std::uint64_t counter);
};

class Committer {
  public:
    explicit Committer(std::uint64_t recovered)
    {
        // pre-concurrency: constructor; no other thread can observe
        // CHECK_ADDR yet, so a plain store is safe here.
        check_addr_.store(recovered, std::memory_order_release);
    }

    void
    commit(Store& store, std::uint64_t counter, std::uint64_t len)
    {
        PCCHECK_TRACE_SPAN("commit", "counter", counter);
        store.persist_slot_range(0, 0, len);
        store.fence();
        std::uint64_t expected =
            // relaxed: hint only; the CAS below carries the ordering.
            check_addr_.load(std::memory_order_relaxed);
        while (!check_addr_.compare_exchange_strong(
            expected, counter, std::memory_order_acq_rel)) {
            if (expected >= counter) {
                return;
            }
        }
        store.publish_pointer(counter);
        MutexLock lock(mu_);
        ++commits_;
    }

  private:
    std::atomic<std::uint64_t> check_addr_{0};
    pccheck::Mutex mu_;
    std::uint64_t commits_ PCCHECK_GUARDED_BY(mu_) = 0;
};

}  // namespace pccheck_lint_fixture
