// Lint fixture: correct replica-publish ordering. The commit CAS sits
// behind await_quorum(), the watermark advances only after the quorum
// gate passed, and the peer-side strand site carries the delegated-
// ordering justification marker. Not compiled; lint input only.

void
replicate_and_commit(Engine& engine, Commit& protocol,
                     const Handle& handle)
{
    const bool quorum_ok = engine.await_quorum(handle);
    const CommitResult result =
        protocol.commit(ticket, len, iteration, crc);
    if (quorum_ok && result.won && result.published) {
        engine.advance_watermark(handle);
    }
}

void
peer_strand_task(Store& store, const Handle& handle)
{
    // quorum-acked: the owner only reports counters whose quorum ack
    // was recorded before the durable publish reached this strand.
    store.advance_watermark(handle.counter());
}
