// Fixture: every fallible read either aborts via PCCHECK_MUST or
// feeds a branch that classifies the source unreadable.
// pccheck-lint: read-status
#include <cstdint>

#define PCCHECK_MUST(expr)                                            \
    do {                                                              \
        if (!(expr).ok()) {                                           \
            __builtin_trap();                                         \
        }                                                             \
    } while (0)

struct StorageStatus {
    bool ok() const { return true; }
};

struct Device {
    StorageStatus read(std::uint64_t, void*, std::uint64_t);
};

struct Store {
    Device& device();
    StorageStatus read_slot(int, std::uint64_t, void*, std::uint64_t);
};

bool
careful_restore(Device& device, Store& store)
{
    std::uint8_t buf[64];
    PCCHECK_MUST(device.read(0, buf, sizeof buf));
    if (!store.read_slot(1, 0, buf, sizeof buf).ok()) {
        return false;  // candidate is unreadable; fall back
    }
    // A wrapped call may continue onto the next line without being a
    // bare statement:
    const StorageStatus tail =
        store.device().read(8, buf, 8);
    return tail.ok();
}
