// Exemplar of a clean delta seal: the payload persist is ordered
// ahead of the header seal by an explicit fence(), or the ordering is
// delegated to the caller and justified with a "payload-durable:"
// comment (both idioms shown).

#include <cstdint>

namespace pccheck_lint_fixture {

struct Device {
    void write(std::uint64_t off, const void* src, std::uint64_t len);
    void persist(std::uint64_t off, std::uint64_t len);
    void fence();
};

class DeltaAppender {
public:
    int seal_frame(std::uint64_t off, const void* header,
                   std::uint64_t len);

    int
    append(std::uint64_t frame_off, const void* payload,
           std::uint64_t payload_len, const void* header)
    {
        device_->write(frame_off + 64, payload, payload_len);
        device_->persist(frame_off + 64, payload_len);
        device_->fence();
        return seal_frame(frame_off, header, 64);
    }

    int
    reseal(std::uint64_t frame_off, const void* header)
    {
        // payload-durable: the bytes were sealed once already; only
        // the header is rewritten here.
        return seal_frame(frame_off, header, 64);
    }

private:
    Device* device_ = nullptr;
};

}  // namespace pccheck_lint_fixture
