// GOOD: seam-covered code routes its atomics through Atomic<T>
// (util/sync.h), which resolves to std::atomic in production and to
// the instrumented mc::Atomic under PCCHECK_MC.
// pccheck-lint: atomic-seam

#include <cstdint>

#include "util/sync.h"

namespace pccheck_lint_fixture {

class SeamCounter {
  public:
    void
    bump()
    {
        // relaxed: monitoring counter, no ordering required.
        value_.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    pccheck::Atomic<std::uint64_t> value_{0};
};

}  // namespace pccheck_lint_fixture
