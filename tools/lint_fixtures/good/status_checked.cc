// Fixture: every status-returning storage call is consumed.
// pccheck-lint: storage-status
#include <cstdint>

#define PCCHECK_MUST(expr)                                            \
    do {                                                              \
        if (!(expr).ok()) {                                           \
            __builtin_trap();                                         \
        }                                                             \
    } while (0)

struct StorageStatus {
    bool ok() const { return true; }
};

struct Device {
    StorageStatus write(std::uint64_t, const void*, std::uint64_t);
    StorageStatus persist(std::uint64_t, std::uint64_t);
    StorageStatus fence();
};

struct Store {
    Device& device();
    StorageStatus write_slot(int, std::uint64_t, const void*,
                             std::uint64_t);
    StorageStatus persist_slot_range(int, std::uint64_t, std::uint64_t);
};

StorageStatus
careful_publish(Device& device, Store& store, const void* data,
                std::uint64_t len)
{
    PCCHECK_MUST(device.write(0, data, len));
    PCCHECK_MUST(store.write_slot(1, 0, data, len));
    const StorageStatus persisted =
        store.persist_slot_range(1, 0, len);
    if (!persisted.ok()) {
        return persisted;
    }
    // A wrapped call may continue onto the next line without being a
    // bare statement:
    const StorageStatus fenced =
        store.device().fence();
    return fenced;
}
