// Good: a StorageDevice decorator that forwards the observation hook
// to its wrapped device, so the installed observer always lands on
// the leaf regardless of stacking order; and a leaf device with no
// inner_, which is exempt from the rule.

#include <functional>
#include <memory>
#include <utility>

#include "storage/device.h"

namespace pccheck {

class LoggingStorage final : public StorageDevice {
  public:
    explicit LoggingStorage(std::unique_ptr<StorageDevice> inner)
        : inner_(std::move(inner))
    {
    }

    Bytes size() const override { return inner_->size(); }
    StorageStatus write(Bytes offset, const void* src, Bytes len) override
    {
        return inner_->write(offset, src, len);
    }
    void read(Bytes offset, void* dst, Bytes len) const override
    {
        inner_->read(offset, dst, len);
    }
    StorageStatus persist(Bytes offset, Bytes len) override
    {
        return inner_->persist(offset, len);
    }
    StorageStatus fence() override { return inner_->fence(); }
    StorageKind kind() const override { return inner_->kind(); }
    void set_observe_hook(
        std::function<void(const StorageOp&)> hook) override
    {
        inner_->set_observe_hook(std::move(hook));
    }

  private:
    std::unique_ptr<StorageDevice> inner_;
};

class NullStorage final : public StorageDevice {
  public:
    Bytes size() const override { return 0; }
    StorageStatus write(Bytes, const void*, Bytes) override
    {
        return StorageStatus::success();
    }
    void read(Bytes, void*, Bytes) const override {}
    StorageStatus persist(Bytes, Bytes) override
    {
        return StorageStatus::success();
    }
    StorageStatus fence() override { return StorageStatus::success(); }
    StorageKind kind() const override { return StorageKind::kDram; }
};

}  // namespace pccheck
