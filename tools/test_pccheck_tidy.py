#!/usr/bin/env python3
"""Tests for tools/pccheck_tidy.

Two layers, mirroring the tool's own split:

  * Pure-Python tests over the statement-tree IR — path enumeration
    with StorageStatus feasibility, the four check scans, call-summary
    fixpoint, suppression parsing, reporters, CLI helpers. These always
    run; no libclang required.
  * Fixture tests that parse the .cc files under pccheck_tidy/fixtures/
    with libclang against the real src/ headers and assert every
    ``// expect: [check]`` marker fires (bad/) or that the file is
    clean (good/). Skipped with a message when libclang is missing.

Run directly (python3 tools/test_pccheck_tidy.py) or via ctest
(pccheck_tidy_unit).
"""

import glob
import json
import os
import re
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)
sys.path.insert(0, TOOLS_DIR)

from pccheck_tidy.checks import (  # noqa: E402
    BLOCKING_UNDER_LOCK, HOT_PATH_ALLOC, PERSISTENCE_ORDERING,
    STATUS_DISCARDED, Finding, Summary, analyze, check_function,
    compute_summaries, enumerate_paths)
from pccheck_tidy.cli import (  # noqa: E402
    DEFAULT_EXCLUDES, apply_suppressions, clang_args_from_entry, in_scope)
from pccheck_tidy.ir import (  # noqa: E402
    Branch, Function, Loop, Op, OpKind, Seq, count_paths, flatten_ops)
from pccheck_tidy.report import from_json, human_lines, to_json  # noqa: E402
from pccheck_tidy.suppress import (  # noqa: E402
    BAD_SUPPRESSION, filter_findings, parse_suppressions)

FIXTURE_DIR = os.path.join(TOOLS_DIR, "pccheck_tidy", "fixtures")
EXPECT_RE = re.compile(r"//\s*expect:\s*\[([a-z-]+)\]")


def make_func(body, name="f", hot=False, requires=(),
              returns_status=False):
    return Function(name=name, file="test.cc", line=1, body=Seq(body),
                    hot_path=hot, requires=tuple(requires),
                    returns_status=returns_status)


def run_checks(func, summaries=None, checks=None):
    summaries = summaries if summaries is not None else {}
    if checks is None:
        return check_function(func, summaries)
    return check_function(func, summaries, checks)


def checks_of(findings):
    return sorted({f.check for f in findings})


# ---------------------------------------------------------------------------
# Path enumeration


class PathEnumerationTest(unittest.TestCase):
    def test_straight_line_single_path(self):
        func = make_func([Op(OpKind.WRITE, 1), Op(OpKind.FENCE, 2)])
        paths = enumerate_paths(func)
        self.assertEqual(len(paths), 1)
        self.assertEqual([op.kind for op in paths[0]],
                         [OpKind.WRITE, OpKind.FENCE])

    def test_branch_doubles_paths(self):
        func = make_func([
            Branch(then_branch=Seq([Op(OpKind.WRITE, 2)]),
                   else_branch=Seq([Op(OpKind.FENCE, 3)])),
        ])
        self.assertEqual(len(enumerate_paths(func)), 2)

    def test_return_terminates_path(self):
        func = make_func([
            Branch(then_branch=Seq([Op(OpKind.RETURN, 2)]), line=1),
            Op(OpKind.PUBLISH, 4),
        ])
        paths = enumerate_paths(func)
        kinds = sorted(tuple(op.kind for op in p) for p in paths)
        # The taken-branch path stops at RETURN; only the fallthrough
        # path reaches the publish.
        self.assertIn((OpKind.RETURN,), kinds)
        self.assertIn((OpKind.PUBLISH,), kinds)

    def test_status_feasibility_prunes_contradiction(self):
        # if (s.ok()) { } ... if (!s.ok()) { return } publish
        # With no redefinition between the two tests, a path through
        # the first then-arm cannot also take the second then-arm.
        func = make_func([
            Op(OpKind.STATUS_DEF, 1, name="s"),
            Branch(then_branch=Seq([]), cond_status="s",
                   cond_true_ok=True, line=2),
            Branch(then_branch=Seq([Op(OpKind.RETURN, 3)]),
                   cond_status="s", cond_true_ok=False, line=3),
            Op(OpKind.PUBLISH, 4),
        ])
        paths = enumerate_paths(func)
        for ops in paths:
            kinds = [op.kind for op in ops]
            if OpKind.RETURN in kinds:
                self.assertNotIn(OpKind.PUBLISH, kinds)

    def test_status_redefinition_resets_knowledge(self):
        # s tested ok, then reassigned: the second test must fork.
        func = make_func([
            Op(OpKind.STATUS_DEF, 1, name="s"),
            Branch(then_branch=Seq([Op(OpKind.STATUS_DEF, 2, name="s")]),
                   cond_status="s", cond_true_ok=True, line=2),
            Branch(then_branch=Seq([Op(OpKind.RETURN, 3)]),
                   cond_status="s", cond_true_ok=False, line=3),
            Op(OpKind.PUBLISH, 4),
        ])
        kinds = sorted(tuple(op.kind for op in p)
                       for p in enumerate_paths(func))
        # Path: s ok -> redefined -> not ok -> return (feasible only
        # because the redefinition reset the env).
        self.assertIn((OpKind.STATUS_DEF, OpKind.STATUS_DEF,
                       OpKind.RETURN), kinds)

    def test_loop_unrolls_zero_one_two(self):
        func = make_func([Loop(Seq([Op(OpKind.WRITE, 2)]))])
        lengths = sorted(len(p) for p in enumerate_paths(func))
        self.assertEqual(lengths, [0, 1, 2])

    def test_path_explosion_returns_none(self):
        body = [Branch(then_branch=Seq([Op(OpKind.WRITE, i)]),
                       else_branch=Seq([Op(OpKind.FENCE, i)]))
                for i in range(14)]  # 2^14 paths > PATH_CAP
        self.assertIsNone(enumerate_paths(make_func(body)))

    def test_count_paths_matches(self):
        node = Seq([Branch(then_branch=Seq([Op(OpKind.WRITE, 1)]),
                           else_branch=Seq([Op(OpKind.FENCE, 2)])),
                    Loop(Seq([Op(OpKind.PERSIST, 3)]))])
        self.assertEqual(count_paths(node), 2 * 3)


# ---------------------------------------------------------------------------
# persistence-ordering


class OrderingTest(unittest.TestCase):
    def test_publish_after_write_no_fence_flags(self):
        func = make_func([Op(OpKind.WRITE, 1), Op(OpKind.PUBLISH, 2)])
        findings = run_checks(func)
        self.assertEqual(checks_of(findings), [PERSISTENCE_ORDERING])
        self.assertEqual(findings[0].line, 2)

    def test_publish_after_persist_no_fence_flags(self):
        func = make_func([Op(OpKind.PERSIST, 1), Op(OpKind.PUBLISH, 2)])
        self.assertEqual(checks_of(run_checks(func)),
                         [PERSISTENCE_ORDERING])

    def test_fence_dominates_publish_clean(self):
        func = make_func([Op(OpKind.WRITE, 1), Op(OpKind.PERSIST, 2),
                          Op(OpKind.FENCE, 3), Op(OpKind.PUBLISH, 4)])
        self.assertEqual(run_checks(func), [])

    def test_unfenced_path_through_branch_flags(self):
        # fence only on the then-arm; the else path publishes dirty.
        func = make_func([
            Op(OpKind.WRITE, 1),
            Branch(then_branch=Seq([Op(OpKind.FENCE, 2)]),
                   else_branch=Seq([])),
            Op(OpKind.PUBLISH, 4),
        ])
        self.assertEqual(checks_of(run_checks(func)),
                         [PERSISTENCE_ORDERING])

    def test_status_ladder_clean(self):
        # The real tree's idiom: publish only reachable with s known ok,
        # and the only ok path passed through fence().
        func = make_func([
            Op(OpKind.WRITE, 1),
            Op(OpKind.STATUS_DEF, 1, name="s"),
            Branch(then_branch=Seq([Op(OpKind.FENCE, 2),
                                    Op(OpKind.STATUS_DEF, 2, name="s")]),
                   cond_status="s", cond_true_ok=True, line=2),
            Branch(then_branch=Seq([Op(OpKind.RETURN, 3)]),
                   cond_status="s", cond_true_ok=False, line=3),
            Op(OpKind.PUBLISH, 4),
        ])
        findings = [f for f in run_checks(func)
                    if f.check == PERSISTENCE_ORDERING]
        # One infeasible-looking path remains: s ok -> fence -> s
        # redefined -> s ok again -> publish. That path is fenced...
        # and the s-not-ok path returned. So: clean.
        self.assertEqual(findings, [])

    def test_callee_fence_summary_clears_dirty(self):
        func = make_func([Op(OpKind.WRITE, 1),
                          Op(OpKind.CALL, 2, name="repair_slot"),
                          Op(OpKind.PUBLISH, 3)])
        summaries = {"repair_slot": Summary(writes_dirty=True,
                                            fences_clean=True)}
        self.assertEqual(run_checks(func, summaries), [])

    def test_callee_write_summary_dirties(self):
        func = make_func([Op(OpKind.CALL, 1, name="raw_append"),
                          Op(OpKind.PUBLISH, 2)])
        summaries = {"raw_append": Summary(writes_dirty=True)}
        self.assertEqual(checks_of(run_checks(func, summaries)),
                         [PERSISTENCE_ORDERING])

    def test_unknown_callee_ignored(self):
        func = make_func([Op(OpKind.CALL, 1, name="mystery"),
                          Op(OpKind.PUBLISH, 2)])
        self.assertEqual(run_checks(func, {}), [])


# ---------------------------------------------------------------------------
# blocking-under-lock


class BlockingTest(unittest.TestCase):
    def test_fence_under_lock_flags(self):
        func = make_func([Op(OpKind.ACQUIRE, 1, name="mu_"),
                          Op(OpKind.FENCE, 2),
                          Op(OpKind.RELEASE, 3, name="mu_")])
        findings = run_checks(func, checks=[BLOCKING_UNDER_LOCK])
        self.assertEqual(checks_of(findings), [BLOCKING_UNDER_LOCK])
        self.assertEqual(findings[0].line, 2)

    def test_io_after_release_clean(self):
        func = make_func([Op(OpKind.ACQUIRE, 1, name="mu_"),
                          Op(OpKind.RELEASE, 2, name="mu_"),
                          Op(OpKind.PERSIST, 3), Op(OpKind.FENCE, 4)])
        self.assertEqual(run_checks(func, checks=[BLOCKING_UNDER_LOCK]),
                         [])

    def test_sleep_under_lock_flags(self):
        func = make_func([Op(OpKind.ACQUIRE, 1, name="mu_"),
                          Op(OpKind.BLOCK, 2, detail="sleep_for()")])
        self.assertEqual(
            checks_of(run_checks(func, checks=[BLOCKING_UNDER_LOCK])),
            [BLOCKING_UNDER_LOCK])

    def test_cv_wait_own_mutex_clean(self):
        func = make_func([Op(OpKind.ACQUIRE, 1, name="mu_"),
                          Op(OpKind.CV_WAIT, 2, released="mu_")])
        self.assertEqual(run_checks(func, checks=[BLOCKING_UNDER_LOCK]),
                         [])

    def test_cv_wait_with_second_lock_flags(self):
        func = make_func([Op(OpKind.ACQUIRE, 1, name="registry_mu_"),
                          Op(OpKind.ACQUIRE, 2, name="mu_"),
                          Op(OpKind.CV_WAIT, 3, released="mu_")])
        findings = run_checks(func, checks=[BLOCKING_UNDER_LOCK])
        self.assertEqual(len(findings), 1)
        self.assertIn("registry_mu_", findings[0].message)

    def test_requires_seeds_held_locks(self):
        func = make_func([Op(OpKind.FENCE, 2)], requires=("mu_",))
        self.assertEqual(
            checks_of(run_checks(func, checks=[BLOCKING_UNDER_LOCK])),
            [BLOCKING_UNDER_LOCK])

    def test_metric_under_lock_flags_with_hoist_hint(self):
        func = make_func([Op(OpKind.ACQUIRE, 1, name="mu_"),
                          Op(OpKind.METRIC, 2,
                             detail="MetricsRegistry::counter() lookup")])
        findings = run_checks(func, checks=[BLOCKING_UNDER_LOCK])
        self.assertEqual(len(findings), 1)
        self.assertIn("hoist", findings[0].message)

    def test_metric_outside_lock_clean(self):
        func = make_func([Op(OpKind.METRIC, 1)])
        self.assertEqual(run_checks(func, checks=[BLOCKING_UNDER_LOCK]),
                         [])

    def test_transitive_may_block_flags_call_site(self):
        blocker = make_func([Op(OpKind.BLOCK, 1)], name="backoff")
        caller = make_func([Op(OpKind.ACQUIRE, 1, name="mu_"),
                            Op(OpKind.CALL, 2, name="backoff")],
                           name="drain")
        summaries = compute_summaries([blocker, caller])
        findings = run_checks(caller, summaries,
                              checks=[BLOCKING_UNDER_LOCK])
        self.assertEqual(len(findings), 1)
        self.assertIn("backoff", findings[0].message)


# ---------------------------------------------------------------------------
# call summaries


class SummaryTest(unittest.TestCase):
    def test_direct_effects(self):
        func = make_func([Op(OpKind.WRITE, 1), Op(OpKind.FENCE, 2)],
                         name="w", returns_status=True)
        s = compute_summaries([func])["w"]
        self.assertTrue(s.writes_dirty)
        self.assertTrue(s.fences_clean)
        self.assertTrue(s.may_block)  # fence is a device round trip
        self.assertTrue(s.returns_status)

    def test_may_block_two_level_fixpoint(self):
        c = make_func([Op(OpKind.BLOCK, 1)], name="c")
        b = make_func([Op(OpKind.CALL, 1, name="c")], name="b")
        a = make_func([Op(OpKind.CALL, 1, name="b")], name="a")
        summaries = compute_summaries([a, b, c])
        self.assertTrue(summaries["a"].may_block)

    def test_metric_does_not_propagate_block(self):
        m = make_func([Op(OpKind.METRIC, 1)], name="m")
        a = make_func([Op(OpKind.CALL, 1, name="m")], name="a")
        summaries = compute_summaries([a, m])
        self.assertFalse(summaries["a"].may_block)
        self.assertFalse(summaries["m"].may_block)

    def test_publish_does_not_dirty(self):
        func = make_func([Op(OpKind.PUBLISH, 1)], name="p")
        self.assertFalse(compute_summaries([func])["p"].writes_dirty)


# ---------------------------------------------------------------------------
# hot-path-alloc


class HotPathTest(unittest.TestCase):
    def test_alloc_in_hot_function_flags(self):
        func = make_func([Op(OpKind.ALLOC, 3, detail="new-expression")],
                         hot=True)
        findings = run_checks(func, checks=[HOT_PATH_ALLOC])
        self.assertEqual(checks_of(findings), [HOT_PATH_ALLOC])
        self.assertEqual(findings[0].line, 3)

    def test_alloc_in_cold_function_clean(self):
        func = make_func([Op(OpKind.ALLOC, 3)], hot=False)
        self.assertEqual(run_checks(func, checks=[HOT_PATH_ALLOC]), [])

    def test_alloc_inside_branch_and_loop_flags(self):
        func = make_func(
            [Loop(Seq([Branch(then_branch=Seq([Op(OpKind.ALLOC, 5)]))]))],
            hot=True)
        self.assertEqual(len(run_checks(func, checks=[HOT_PATH_ALLOC])), 1)


# ---------------------------------------------------------------------------
# status-discarded


class StatusTest(unittest.TestCase):
    def test_dead_reassign_flags_first_def(self):
        func = make_func([Op(OpKind.STATUS_DEF, 1, name="s"),
                          Op(OpKind.STATUS_DEF, 2, name="s"),
                          Op(OpKind.STATUS_USE, 3, name="s")])
        findings = run_checks(func, checks=[STATUS_DISCARDED])
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].line, 1)

    def test_def_never_used_flags(self):
        func = make_func([Op(OpKind.STATUS_DEF, 1, name="s")])
        self.assertEqual(
            checks_of(run_checks(func, checks=[STATUS_DISCARDED])),
            [STATUS_DISCARDED])

    def test_bare_drop_flags(self):
        func = make_func([Op(OpKind.STATUS_DROP, 2,
                             detail="write_slot()")])
        findings = run_checks(func, checks=[STATUS_DISCARDED])
        self.assertEqual(len(findings), 1)
        self.assertIn("bare statement", findings[0].message)

    def test_branch_condition_counts_as_use(self):
        func = make_func([
            Op(OpKind.STATUS_DEF, 1, name="s"),
            Branch(then_branch=Seq([Op(OpKind.RETURN, 2, name="s")]),
                   cond_status="s", cond_true_ok=False, line=2),
        ])
        self.assertEqual(run_checks(func, checks=[STATUS_DISCARDED]), [])

    def test_exclusive_arm_defs_not_paired(self):
        # if (flag) s = a(); else s = b();  — not a dead store.
        func = make_func([
            Branch(then_branch=Seq([Op(OpKind.STATUS_DEF, 2, name="s")]),
                   else_branch=Seq([Op(OpKind.STATUS_DEF, 3, name="s")]),
                   line=1),
            Op(OpKind.STATUS_USE, 4, name="s"),
        ])
        self.assertEqual(run_checks(func, checks=[STATUS_DISCARDED]), [])

    def test_reassign_within_one_arm_still_flags(self):
        func = make_func([
            Branch(then_branch=Seq([
                Op(OpKind.STATUS_DEF, 2, name="s"),
                Op(OpKind.STATUS_DEF, 3, name="s"),
            ])),
            Op(OpKind.STATUS_USE, 4, name="s"),
        ])
        findings = run_checks(func, checks=[STATUS_DISCARDED])
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].line, 2)

    def test_return_of_var_counts_as_use(self):
        func = make_func([Op(OpKind.STATUS_DEF, 1, name="s"),
                          Op(OpKind.RETURN, 2, name="s")])
        self.assertEqual(run_checks(func, checks=[STATUS_DISCARDED]), [])


# ---------------------------------------------------------------------------
# suppressions


class SuppressionTest(unittest.TestCase):
    def test_standalone_applies_to_next_code_line(self):
        lines = ["// pccheck-tidy: disable=hot-path-alloc -- warmup",
                 "std::vector<int> v(n);"]
        supp = parse_suppressions(lines, tool="pccheck-tidy")
        self.assertTrue(supp.is_suppressed(2, "hot-path-alloc"))
        self.assertFalse(supp.is_suppressed(1, "hot-path-alloc"))
        self.assertEqual(supp.malformed, [])

    def test_chains_through_comment_lines(self):
        lines = ["// pccheck-tidy: disable=status-discarded -- probe",
                 "// more prose about why",
                 "do_thing();"]
        supp = parse_suppressions(lines, tool="pccheck-tidy")
        self.assertTrue(supp.is_suppressed(3, "status-discarded"))

    def test_blank_line_breaks_chain(self):
        lines = ["// pccheck-tidy: disable=status-discarded -- probe",
                 "",
                 "do_thing();"]
        supp = parse_suppressions(lines, tool="pccheck-tidy")
        self.assertFalse(supp.is_suppressed(3, "status-discarded"))

    def test_trailing_applies_to_own_line(self):
        lines = ["x(); // pccheck-tidy: disable=blocking-under-lock"
                 " -- modeled occupancy"]
        supp = parse_suppressions(lines, tool="pccheck-tidy")
        self.assertTrue(supp.is_suppressed(1, "blocking-under-lock"))

    def test_multi_check_list(self):
        lines = ["// pccheck-tidy: disable=hot-path-alloc,"
                 "blocking-under-lock -- both justified",
                 "x();"]
        supp = parse_suppressions(lines, tool="pccheck-tidy")
        self.assertTrue(supp.is_suppressed(2, "hot-path-alloc"))
        self.assertTrue(supp.is_suppressed(2, "blocking-under-lock"))

    def test_missing_justification_is_malformed_and_inert(self):
        lines = ["// pccheck-tidy: disable=hot-path-alloc", "x();"]
        supp = parse_suppressions(lines, tool="pccheck-tidy")
        self.assertFalse(supp.is_suppressed(2, "hot-path-alloc"))
        self.assertEqual(len(supp.malformed), 1)
        self.assertIn("justification", supp.malformed[0].message)

    def test_other_tool_directive_ignored(self):
        lines = ["// pccheck-lint: disable=trace-span-under-lock -- x",
                 "x();"]
        supp = parse_suppressions(lines, tool="pccheck-tidy")
        self.assertFalse(supp.is_suppressed(2, "trace-span-under-lock"))
        self.assertEqual(supp.malformed, [])

    def test_filter_findings_splits(self):
        findings = [Finding("a.cc", 2, "hot-path-alloc", "m"),
                    Finding("a.cc", 3, "hot-path-alloc", "m")]
        supp = parse_suppressions(
            ["x();", "y(); // pccheck-tidy: disable=hot-path-alloc -- ok",
             "z();"], tool="pccheck-tidy")
        kept, dropped = filter_findings(
            findings, supp, line_of=lambda f: f.line,
            check_of=lambda f: f.check)
        self.assertEqual([f.line for f in kept], [3])
        self.assertEqual([f.line for f in dropped], [2])

    def test_malformed_reported_even_in_finding_free_file(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "clean.cc")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write("// pccheck-tidy: disable=hot-path-alloc\n"
                         "int x;\n")
            kept, suppressed = apply_suppressions([], tmp, scanned=[path])
        self.assertEqual(suppressed, 0)
        self.assertEqual(len(kept), 1)
        self.assertEqual(kept[0].check, BAD_SUPPRESSION)


# ---------------------------------------------------------------------------
# reporters


class ReportTest(unittest.TestCase):
    def test_human_format_matches_lint(self):
        f = Finding("src/a.cc", 7, "persistence-ordering", "boom")
        self.assertEqual(human_lines([f]),
                         ["src/a.cc:7: [persistence-ordering] boom"])

    def test_json_round_trip(self):
        findings = [Finding("src/a.cc", 7, "persistence-ordering",
                            "boom", function="f"),
                    Finding("src/b.cc", 9, "hot-path-alloc", "alloc")]
        text = to_json(findings, suppressed=2, files_scanned=3,
                       checks=["persistence-ordering", "hot-path-alloc"])
        payload = json.loads(text)
        self.assertEqual(payload["schema_version"], 1)
        self.assertEqual(payload["tool"], "pccheck-tidy")
        self.assertEqual(payload["files_scanned"], 3)
        self.assertEqual(payload["suppressed"], 2)
        self.assertEqual(from_json(text), findings)

    def test_skipped_reason_recorded(self):
        payload = json.loads(to_json([], skipped_reason="libclang "
                                                        "unavailable"))
        self.assertEqual(payload["skipped_reason"], "libclang unavailable")
        self.assertEqual(payload["findings"], [])


# ---------------------------------------------------------------------------
# CLI helpers


class CliHelperTest(unittest.TestCase):
    def test_clang_args_from_entry_strips_compile_only_flags(self):
        entry = {"directory": "/repo/build",
                 "command": "g++ -Isrc -std=c++20 -MD -MF obj/a.d "
                            "-o obj/a.o -c ../src/a.cc",
                 "file": "../src/a.cc"}
        args = clang_args_from_entry(entry)
        self.assertIn("-Isrc", args)
        self.assertIn("-std=c++20", args)
        self.assertIn("-working-directory=/repo/build", args)
        for banned in ("-c", "-o", "obj/a.o", "-MD", "-MF", "obj/a.d",
                       "../src/a.cc", "g++"):
            self.assertNotIn(banned, args)

    def test_clang_args_from_arguments_list(self):
        entry = {"directory": "/b",
                 "arguments": ["clang++", "-std=c++20", "-c", "x.cc",
                               "-o", "x.o"],
                 "file": "x.cc"}
        args = clang_args_from_entry(entry)
        self.assertEqual(args, ["-std=c++20", "-working-directory=/b"])

    def test_in_scope_excludes_src_mc(self):
        src = os.path.join(REPO_ROOT, "src")
        self.assertTrue(in_scope(os.path.join(src, "core", "x.cc"),
                                 [src], DEFAULT_EXCLUDES))
        self.assertFalse(in_scope(os.path.join(src, "mc", "shim.cc"),
                                  [src], DEFAULT_EXCLUDES))
        self.assertFalse(in_scope("/elsewhere/x.cc", [src],
                                  DEFAULT_EXCLUDES))


# ---------------------------------------------------------------------------
# libclang fixture tests


def _load_cindex_quiet():
    import io
    from contextlib import redirect_stderr
    from pccheck_tidy.frontend import load_cindex
    with redirect_stderr(io.StringIO()):
        return load_cindex()


CINDEX = _load_cindex_quiet()


@unittest.skipIf(CINDEX is None,
                 "libclang unavailable (install python3-clang + libclang)")
class FixtureTest(unittest.TestCase):
    """Parse each fixture against the real src/ headers and assert the
    ``// expect: [check]`` markers (bad/) or cleanliness (good/)."""

    maxDiff = None

    @classmethod
    def _analyze(cls, path):
        from pccheck_tidy.frontend import (_FileCache,
                                           lower_translation_unit,
                                           parse_source)
        args = ["-std=c++20", "-x", "c++",
                "-I" + os.path.join(REPO_ROOT, "src")]
        tu, errors = parse_source(CINDEX, path, args)
        if errors:
            raise AssertionError(
                f"{path} does not compile against src/ headers:\n" +
                "\n".join(errors))
        funcs = lower_translation_unit(
            CINDEX, tu, src_root=os.path.dirname(path),
            files=_FileCache(), seen=set())
        findings = analyze(funcs)
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        supp = parse_suppressions(lines, tool="pccheck-tidy")
        kept, _ = filter_findings(findings, supp,
                                  line_of=lambda f: f.line,
                                  check_of=lambda f: f.check)
        for bad in supp.malformed:
            kept.append(Finding(file=path, line=bad.line,
                                check=BAD_SUPPRESSION,
                                message=bad.message))
        return kept

    @staticmethod
    def _expected_checks(path):
        with open(path, encoding="utf-8") as fh:
            return set(EXPECT_RE.findall(fh.read()))

    def test_bad_fixtures_flag_expected_checks(self):
        pattern = os.path.join(FIXTURE_DIR, "bad", "*.cc")
        paths = sorted(glob.glob(pattern))
        self.assertGreaterEqual(len(paths), 9)
        for path in paths:
            with self.subTest(fixture=os.path.basename(path)):
                expected = self._expected_checks(path)
                self.assertTrue(expected,
                                f"{path} has no // expect: markers")
                found = {f.check for f in self._analyze(path)}
                missing = expected - found
                self.assertFalse(
                    missing,
                    f"{path}: expected {sorted(missing)} not reported "
                    f"(got {sorted(found)})")

    def test_good_fixtures_are_clean(self):
        pattern = os.path.join(FIXTURE_DIR, "good", "*.cc")
        paths = sorted(glob.glob(pattern))
        self.assertGreaterEqual(len(paths), 6)
        for path in paths:
            with self.subTest(fixture=os.path.basename(path)):
                findings = self._analyze(path)
                self.assertEqual(
                    findings, [],
                    f"{path} should be clean, got:\n" +
                    "\n".join(human_lines(findings)))


if __name__ == "__main__":
    unittest.main(verbosity=2)
