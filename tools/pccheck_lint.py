#!/usr/bin/env python3
"""pccheck-lint: persistence-ordering and concurrency-hygiene checks.

Fast, dependency-free (regex-based, no compiler needed) linter for the
invariants the PCcheck commit protocol relies on but no compiler
enforces:

  persist-fence-publish    A pointer-record publish must be ordered
                           after the slot data is durable: the nearest
                           preceding persist_slot_range()/msync() in
                           the same function must be separated from
                           publish_pointer() by a fence() call.
  naked-mutex              std::mutex / std::lock_guard / friends are
                           banned outside util/annotations.h and the
                           model-checker runtime; use the capability-
                           annotated Mutex/MutexLock/CondVar wrappers
                           so Clang thread-safety analysis sees every
                           locking site.
  raw-atomic-in-core       std::atomic is banned in src/core/ and in
                           files carrying the "pccheck-lint:
                           atomic-seam" marker; use Atomic<T> from
                           util/sync.h so the PCCHECK_MC build can
                           swap in the model checker's instrumented
                           shim.
  relaxed-justification    Every std::memory_order_relaxed use needs a
                           "relaxed:" justification comment on the same
                           line or within the 3 preceding lines.
  trace-span-under-lock    In commit-hot files, PCCHECK_TRACE_SPAN must
                           not be opened while a MutexLock is held
                           (span bookkeeping inside the critical
                           section lengthens the serialized region).
  check-addr-cas-only      CHECK_ADDR is only ever advanced by the
                           Listing-1 CAS; a plain .store() needs a
                           "pre-concurrency:" comment within the 5
                           preceding lines (constructor recovery path).
  replica-publish-ordering In files that drive the peer-replication
                           tier (they call await_quorum() or
                           advance_watermark()), the durable-publish
                           watermark may only advance after the quorum
                           ack was recorded: an advance_watermark()
                           call needs a preceding await_quorum() or
                           record_ack() in the same function, or a
                           "quorum-acked:" justification comment within
                           the 5 preceding lines. Symmetrically, the
                           commit CAS (a .commit() call) must sit
                           behind await_quorum() so no CHECK_ADDR
                           publish ever depends on an un-acked replica.
  delta-seal-before-manifest
                           Sealing a delta frame header is what makes
                           the frame reachable by replay — the chain's
                           manifest step. A seal_frame() call site must
                           therefore be ordered behind the fence() that
                           made the frame payload durable: the nearest
                           preceding fence() in the same function, or a
                           "payload-durable:" justification comment
                           within the 5 preceding lines when the
                           ordering is delegated to the caller.
  storage-decorator-forwards-hooks
                           A StorageDevice decorator (a subclass
                           forwarding its ops to a wrapped inner_
                           device) must forward set_observe_hook() to
                           the leaf: a decorator that swallows the
                           hook silently detaches the installed
                           observer (crash-op indexing, psan
                           plumbing) depending on stacking order.
                           Leaf devices are exempt; genuine
                           exceptions carry a "pccheck-lint:
                           observe-hook" marker in the class body.
  storage-status-checked   In src/core/, a call to a status-returning
                           storage op (write/persist/fence/write_slot/
                           persist_slot_range/publish_pointer/...) must
                           not discard its StorageStatus: wrap it in
                           PCCHECK_MUST(...), branch on it, or hand it
                           to the retry helper. A silently dropped
                           transient error defeats graceful
                           degradation.
  read-status-checked      Reads are fallible too (docs/RECOVERY.md):
                           in the recovery-critical trees (src/core/,
                           src/scrub/, src/remote/) a bare-statement
                           call to read()/read_slot() that discards
                           its StorageStatus silently treats whatever
                           landed in the buffer as the stored bytes —
                           latent corruption or a dead device becomes
                           garbage state instead of an unreadable
                           verdict. Other files opt in with a
                           "pccheck-lint: read-status" marker.

Suppressions share one syntax with pccheck-tidy (parsed by
tools/pccheck_tidy/suppress.py):

  // pccheck-lint: disable=<rule>[,<rule>] -- <justification>

placed on the offending line or the comment line(s) directly above
it. The justification after ``--`` is mandatory: a suppression
without one suppresses nothing and is itself reported as a
``bad-suppression`` finding.

Usage:
  tools/pccheck_lint.py [--rule RULE] [paths...]

Paths default to src/. Directories are walked for *.h/*.cc files.
Exit status is 0 when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Callable, List, NamedTuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from pccheck_tidy.suppress import (  # noqa: E402
    BAD_SUPPRESSION, filter_findings, parse_suppressions)

# Files where the commit fast path lives; the trace-span rule applies
# only here. Fixture/test files opt in with a "pccheck-lint: hot-path"
# marker comment anywhere in the file.
HOT_PATH_BASENAMES = {
    "concurrent_commit.cc",
    "slot_store.cc",
    "persist_engine.cc",
}
HOT_PATH_MARKER = "pccheck-lint: hot-path"

# Raw std primitives are allowed in the annotation shims and in the
# model-checker runtime (src/mc/scheduler.* IS the substrate that the
# mc::Mutex shim serializes onto, so it cannot use the shim itself).
NAKED_MUTEX_ALLOWLIST_SUFFIXES = (
    os.path.join("util", "annotations.h"),
    os.path.join("mc", "scheduler.h"),
    os.path.join("mc", "scheduler.cc"),
)

SOURCE_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")


class Finding(NamedTuple):
    path: str
    line: int  # 1-based
    rule: str
    message: str


def is_comment_line(line: str) -> bool:
    stripped = line.lstrip()
    return stripped.startswith("//") or stripped.startswith("*") or \
        stripped.startswith("/*")


def code_of(line: str) -> str:
    """Strip a trailing // comment (best-effort; ignores strings)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


# --------------------------------------------------------------------------
# persist-fence-publish


PUBLISH_CALL_RE = re.compile(r"[.>]\s*publish_pointer\s*\(")
PERSIST_RE = re.compile(r"\b(persist_slot_range|msync)\s*\(")
FENCE_RE = re.compile(r"\bfence\s*\(\s*\)")
FUNCTION_TOP_RE = re.compile(r"^[{}]\s*$|^\S.*[{;]\s*$")


def rule_persist_fence_publish(path: str, lines: List[str]) -> List[Finding]:
    findings = []
    for i, line in enumerate(lines):
        if is_comment_line(line) or not PUBLISH_CALL_RE.search(code_of(line)):
            continue
        # Walk back to the start of the enclosing function (first line
        # at column 0 that opens a block), looking for the nearest
        # persist and whether a fence separates it from the publish.
        fence_seen = False
        for j in range(i - 1, -1, -1):
            prev = lines[j]
            if is_comment_line(prev):
                continue
            prev_code = code_of(prev)
            if FENCE_RE.search(prev_code):
                fence_seen = True
            if PERSIST_RE.search(prev_code):
                if not fence_seen:
                    findings.append(Finding(
                        path, i + 1, "persist-fence-publish",
                        "publish_pointer() reachable from "
                        f"{PERSIST_RE.search(prev_code).group(1)}() at line "
                        f"{j + 1} with no fence() in between: the pointer "
                        "record could become durable before the slot data"))
                break
            # Function boundary: a line starting at column 0 that opens
            # a new definition ends the backward scan.
            if prev_code and not prev_code[0].isspace() and \
                    prev_code.rstrip().endswith("{"):
                break
    return findings


# --------------------------------------------------------------------------
# naked-mutex


NAKED_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock"
    r"|condition_variable(?:_any)?)\b")


def rule_naked_mutex(path: str, lines: List[str]) -> List[Finding]:
    norm = path.replace(os.sep, "/")
    if any(norm.endswith(sfx.replace(os.sep, "/"))
           for sfx in NAKED_MUTEX_ALLOWLIST_SUFFIXES):
        return []
    findings = []
    for i, line in enumerate(lines):
        if is_comment_line(line):
            continue
        match = NAKED_RE.search(code_of(line))
        if match:
            findings.append(Finding(
                path, i + 1, "naked-mutex",
                f"raw std::{match.group(1)} outside util/annotations.h; "
                "use the annotated Mutex/MutexLock/CondVar so thread-"
                "safety analysis covers this site"))
    return findings


# --------------------------------------------------------------------------
# raw-atomic-in-core


# The commit algorithm's atomics must go through pccheck::Atomic
# (util/sync.h) so the PCCHECK_MC build can swap in the instrumented
# mc::Atomic shim; a raw std::atomic member silently escapes the model
# checker. Applies to src/core/ plus any file carrying the seam
# marker (the lock-free queue headers in src/concurrent/ opt in).
RAW_ATOMIC_RE = re.compile(r"std::(atomic\s*<|atomic_flag\b)")
ATOMIC_SEAM_MARKER = "pccheck-lint: atomic-seam"
# util/sync.h is the seam itself: it defines Atomic<T> AS std::atomic.
RAW_ATOMIC_ALLOWLIST_SUFFIXES = (os.path.join("util", "sync.h"),)


def rule_raw_atomic_in_core(path: str, lines: List[str]) -> List[Finding]:
    norm = path.replace(os.sep, "/")
    text = "\n".join(lines)
    if "src/core/" not in norm and ATOMIC_SEAM_MARKER not in text:
        return []
    if any(norm.endswith(sfx.replace(os.sep, "/"))
           for sfx in RAW_ATOMIC_ALLOWLIST_SUFFIXES):
        return []
    findings = []
    for i, line in enumerate(lines):
        if is_comment_line(line):
            continue
        if RAW_ATOMIC_RE.search(code_of(line)):
            findings.append(Finding(
                path, i + 1, "raw-atomic-in-core",
                "raw std::atomic in commit-algorithm code; use "
                "Atomic<T> from util/sync.h so the PCCHECK_MC build "
                "can route this operation through the model checker's "
                "instrumented shim"))
    return findings


# --------------------------------------------------------------------------
# relaxed-justification


RELAXED_RE = re.compile(r"\bstd::memory_order_relaxed\b")
RELAXED_WINDOW = 3  # lines above that may carry the justification


def rule_relaxed_justification(path: str, lines: List[str]) -> List[Finding]:
    findings = []
    for i, line in enumerate(lines):
        if is_comment_line(line) or not RELAXED_RE.search(code_of(line)):
            continue  # no use, or only mentioned in a comment
        window = lines[max(0, i - RELAXED_WINDOW):i + 1]
        if not any("relaxed:" in w for w in window):
            findings.append(Finding(
                path, i + 1, "relaxed-justification",
                "std::memory_order_relaxed without a nearby "
                "\"relaxed:\" justification comment (same line or "
                f"≤{RELAXED_WINDOW} lines above)"))
    return findings


# --------------------------------------------------------------------------
# trace-span-under-lock


LOCK_ACQ_RE = re.compile(r"\bMutexLock\s+\w+\s*[({]")
TRACE_SPAN_RE = re.compile(r"\bPCCHECK_TRACE_SPAN\s*\(")


def rule_trace_span_under_lock(path: str, lines: List[str]) -> List[Finding]:
    basename = os.path.basename(path)
    text = "\n".join(lines)
    if basename not in HOT_PATH_BASENAMES and HOT_PATH_MARKER not in text:
        return []
    findings = []
    depth = 0
    lock_depths: List[int] = []  # brace depth at which each lock lives
    for i, line in enumerate(lines):
        if is_comment_line(line):
            continue
        code = code_of(line)
        # Scope exits first: a closing brace pops locks opened at the
        # now-dead depth.
        for ch in code:
            if ch == "}":
                depth -= 1
                while lock_depths and lock_depths[-1] > depth:
                    lock_depths.pop()
            elif ch == "{":
                depth += 1
        if LOCK_ACQ_RE.search(code):
            lock_depths.append(depth)
        if TRACE_SPAN_RE.search(code) and lock_depths:
            findings.append(Finding(
                path, i + 1, "trace-span-under-lock",
                "PCCHECK_TRACE_SPAN opened while a MutexLock is held "
                f"(acquired at brace depth {lock_depths[-1]}); move the "
                "span outside the critical section on the commit path"))
    return findings


# --------------------------------------------------------------------------
# check-addr-cas-only


CHECK_ADDR_STORE_RE = re.compile(r"\bcheck_addr_\s*(?:\.\s*store\s*\(|=[^=])")
CHECK_ADDR_WINDOW = 5
CHECK_ADDR_MARKER = "pre-concurrency:"


def rule_check_addr_cas_only(path: str, lines: List[str]) -> List[Finding]:
    findings = []
    for i, line in enumerate(lines):
        if is_comment_line(line):
            continue
        if not CHECK_ADDR_STORE_RE.search(code_of(line)):
            continue
        window = lines[max(0, i - CHECK_ADDR_WINDOW):i + 1]
        if not any(CHECK_ADDR_MARKER in w for w in window):
            findings.append(Finding(
                path, i + 1, "check-addr-cas-only",
                "plain store/assignment to check_addr_: the commit "
                "protocol only advances CHECK_ADDR via "
                "compare_exchange; annotate genuinely single-threaded "
                f"init paths with a \"{CHECK_ADDR_MARKER}\" comment "
                f"within {CHECK_ADDR_WINDOW} lines"))
    return findings


# --------------------------------------------------------------------------
# storage-status-checked


# Methods on StorageDevice / SlotStore / SimGpu that return a
# [[nodiscard]] StorageStatus (or a PersistResult carrying one).
STATUS_METHODS = (
    "write", "persist", "fence", "write_slot", "persist_slot_range",
    "publish_pointer", "kernel_copy_to_storage",
    "direct_copy_to_storage",
)
STORAGE_STATUS_MARKER = "pccheck-lint: storage-status"

# A bare statement whose first token chain is `recv.method(` or
# `recv->method(`, optionally through one accessor hop such as
# `store.device().fence(`. Anything prefixed (PCCHECK_MUST, `=`,
# `return`, `if (`, a declaration, ...) will not match the anchor.
BARE_STATUS_CALL_RE = re.compile(
    r"^\s*\w+(?:\.|->)(?:\w+\(\)(?:\.|->))?("
    + "|".join(STATUS_METHODS) + r")\s*\(")


def starts_statement(lines: List[str], i: int) -> bool:
    """True when line i begins a statement (it is not a continuation
    of a wrapped call or assignment from the preceding line)."""
    for j in range(i - 1, -1, -1):
        prev = code_of(lines[j]).rstrip()
        if not prev or is_comment_line(lines[j]):
            continue
        return prev.endswith((";", "{", "}", ":"))
    return True


def rule_storage_status_checked(path: str,
                                lines: List[str]) -> List[Finding]:
    norm = path.replace(os.sep, "/")
    text = "\n".join(lines)
    if "src/core/" not in norm and STORAGE_STATUS_MARKER not in text:
        return []
    findings = []
    for i, line in enumerate(lines):
        if is_comment_line(line):
            continue
        match = BARE_STATUS_CALL_RE.match(code_of(line))
        if match and starts_statement(lines, i):
            findings.append(Finding(
                path, i + 1, "storage-status-checked",
                f"{match.group(1)}() returns a StorageStatus that this "
                "bare statement discards; wrap it in PCCHECK_MUST(...), "
                "branch on the status, or route it through "
                "retry_storage_op() so transient media errors degrade "
                "gracefully instead of vanishing"))
    return findings


# --------------------------------------------------------------------------
# read-status-checked


# Fallible-read methods returning a [[nodiscard]] StorageStatus.
# Longest-first so the alternation cannot stop at the `read` prefix.
READ_STATUS_METHODS = ("read_slot", "read")
READ_STATUS_MARKER = "pccheck-lint: read-status"
# Recovery-critical trees where a dropped read status turns latent
# corruption into silent use of garbage bytes.
READ_STATUS_DIRS = ("src/core/", "src/scrub/", "src/remote/")

BARE_READ_CALL_RE = re.compile(
    r"^\s*\w+(?:\.|->)(?:\w+\(\)(?:\.|->))?("
    + "|".join(READ_STATUS_METHODS) + r")\s*\(")


def rule_read_status_checked(path: str, lines: List[str]) -> List[Finding]:
    norm = path.replace(os.sep, "/")
    text = "\n".join(lines)
    if not any(d in norm for d in READ_STATUS_DIRS) and \
            READ_STATUS_MARKER not in text:
        return []
    findings = []
    for i, line in enumerate(lines):
        if is_comment_line(line):
            continue
        match = BARE_READ_CALL_RE.match(code_of(line))
        if match and starts_statement(lines, i):
            findings.append(Finding(
                path, i + 1, "read-status-checked",
                f"{match.group(1)}() returns a StorageStatus that this "
                "bare statement discards; a read can fail (bit rot, "
                "truncated image, dead device) and the buffer then "
                "holds garbage — wrap it in PCCHECK_MUST(...) or "
                "branch on the status so the caller can classify the "
                "source unreadable and fall back"))
    return findings


# --------------------------------------------------------------------------
# replica-publish-ordering


# Call sites only: [.>] anchors a method call, so declarations and
# definitions (ReplicationEngine::advance_watermark) never match.
AWAIT_QUORUM_CALL_RE = re.compile(r"[.>]\s*await_quorum\s*\(")
ADVANCE_WATERMARK_CALL_RE = re.compile(r"[.>]\s*advance_watermark\s*\(")
COMMIT_CALL_RE = re.compile(r"[.>]\s*commit\s*\(")
RECORD_ACK_RE = re.compile(r"\brecord_ack\s*\(")
QUORUM_MARKER = "quorum-acked:"
QUORUM_WINDOW = 5


def replica_scan_satisfies(lines: List[str], i: int,
                           patterns: List[re.Pattern]) -> bool:
    """Walk back from line i to the enclosing function boundary looking
    for any of @p patterns on a code line."""
    for j in range(i - 1, -1, -1):
        prev = lines[j]
        if is_comment_line(prev):
            continue
        prev_code = code_of(prev)
        if any(p.search(prev_code) for p in patterns):
            return True
        # Function boundary: a line starting at column 0 that opens a
        # new definition ends the backward scan.
        if prev_code and not prev_code[0].isspace() and \
                prev_code.rstrip().endswith("{"):
            return False
    return False


def rule_replica_publish_ordering(path: str,
                                  lines: List[str]) -> List[Finding]:
    # The rule applies only to files that drive the replication tier:
    # they contain an await_quorum() or advance_watermark() call site
    # on a code line (comments and declarations do not gate).
    gated = any(
        not is_comment_line(line) and
        (AWAIT_QUORUM_CALL_RE.search(code_of(line)) or
         ADVANCE_WATERMARK_CALL_RE.search(code_of(line)))
        for line in lines)
    if not gated:
        return []
    findings = []
    for i, line in enumerate(lines):
        if is_comment_line(line):
            continue
        code = code_of(line)
        if ADVANCE_WATERMARK_CALL_RE.search(code):
            window = lines[max(0, i - QUORUM_WINDOW):i + 1]
            if any(QUORUM_MARKER in w for w in window):
                continue
            if not replica_scan_satisfies(
                    lines, i, [AWAIT_QUORUM_CALL_RE, RECORD_ACK_RE]):
                findings.append(Finding(
                    path, i + 1, "replica-publish-ordering",
                    "advance_watermark() with no preceding "
                    "await_quorum()/record_ack() in this function: the "
                    "durable-publish watermark must never name a "
                    "counter whose replica ack was not recorded; "
                    f"justify delegated ordering with a "
                    f"\"{QUORUM_MARKER}\" comment within "
                    f"{QUORUM_WINDOW} lines"))
        elif COMMIT_CALL_RE.search(code):
            window = lines[max(0, i - QUORUM_WINDOW):i + 1]
            if any(QUORUM_MARKER in w for w in window):
                continue
            if not replica_scan_satisfies(lines, i,
                                          [AWAIT_QUORUM_CALL_RE]):
                findings.append(Finding(
                    path, i + 1, "replica-publish-ordering",
                    "commit() in a replication-driving function with "
                    "no preceding await_quorum(): the CHECK_ADDR CAS "
                    "must not depend on an un-acked replica — gate the "
                    "commit on the quorum (a miss still commits, "
                    "degraded)"))
    return findings


# --------------------------------------------------------------------------
# delta-seal-before-manifest


# Call sites only: `= seal_frame(`, `.seal_frame(`, `->seal_frame(`,
# `return seal_frame(`. Declarations (`StorageStatus seal_frame(...)`)
# and the definition (`DeltaLog::seal_frame(`) never match.
SEAL_CALL_RE = re.compile(r"(?:[.>=(]|\breturn\b)\s*seal_frame\s*\(")
PAYLOAD_DURABLE_MARKER = "payload-durable:"
SEAL_WINDOW = 5


def rule_delta_seal_before_manifest(path: str,
                                    lines: List[str]) -> List[Finding]:
    findings = []
    for i, line in enumerate(lines):
        if is_comment_line(line) or not SEAL_CALL_RE.search(code_of(line)):
            continue
        window = lines[max(0, i - SEAL_WINDOW):i + 1]
        if any(PAYLOAD_DURABLE_MARKER in w for w in window):
            continue
        # Walk back to the enclosing function boundary looking for the
        # fence that ordered the payload ahead of this seal.
        fence_seen = False
        for j in range(i - 1, -1, -1):
            prev = lines[j]
            if is_comment_line(prev):
                continue
            prev_code = code_of(prev)
            if FENCE_RE.search(prev_code):
                fence_seen = True
                break
            if prev_code and not prev_code[0].isspace() and \
                    prev_code.rstrip().endswith("{"):
                break
        if not fence_seen:
            findings.append(Finding(
                path, i + 1, "delta-seal-before-manifest",
                "seal_frame() with no preceding fence() in this "
                "function: the seal makes the frame reachable by "
                "replay, so the payload must be durable first — fence "
                "before sealing, or justify delegated ordering with a "
                f"\"{PAYLOAD_DURABLE_MARKER}\" comment within "
                f"{SEAL_WINDOW} lines"))
    return findings


# --------------------------------------------------------------------------
# storage-decorator-forwards-hooks


# A StorageDevice decorator (a subclass that forwards its ops to a
# wrapped `inner_` device) must forward set_observe_hook() to the leaf:
# a decorator that swallows the hook silently detaches whatever
# observer the harness installed (crash-op indexing, psan plumbing)
# depending on stacking order. Leaf devices (no inner_) are exempt —
# the base-class default applies. Suppress with a
# "pccheck-lint: observe-hook" marker inside the class body.
STORAGE_SUBCLASS_RE = re.compile(
    r"\bclass\s+(\w+)[^;{]*:\s*(?:public\s+)?StorageDevice\b")
INNER_MEMBER_RE = re.compile(r"\binner_\s*(?:->|;|\()")
HOOK_FORWARD_RE = re.compile(r"\binner_\s*->\s*set_observe_hook\s*\(")
OBSERVE_HOOK_MARKER = "pccheck-lint: observe-hook"


def class_body_end(lines: List[str], start: int) -> int:
    """Index one past the line closing the class opened at @p start
    (brace matching; best-effort on unbalanced input)."""
    depth = 0
    opened = False
    for i in range(start, len(lines)):
        for ch in code_of(lines[i]):
            if ch == "{":
                depth += 1
                opened = True
            elif ch == "}":
                depth -= 1
                if opened and depth == 0:
                    return i + 1
    return len(lines)


def rule_storage_decorator_forwards_hooks(path: str,
                                          lines: List[str]) -> List[Finding]:
    findings = []
    for i, line in enumerate(lines):
        if is_comment_line(line):
            continue
        match = STORAGE_SUBCLASS_RE.search(code_of(line))
        if not match:
            continue
        end = class_body_end(lines, i)
        body = lines[i:end]
        if any(OBSERVE_HOOK_MARKER in b for b in body):
            continue
        # Decorator detection: the class owns/forwards to an inner_
        # device. Leaf devices have no inner_ and are exempt.
        code_body = [code_of(b) for b in body if not is_comment_line(b)]
        if not any(INNER_MEMBER_RE.search(b) for b in code_body):
            continue
        if not any(HOOK_FORWARD_RE.search(b) for b in code_body):
            findings.append(Finding(
                path, i + 1, "storage-decorator-forwards-hooks",
                f"StorageDevice decorator {match.group(1)} does not "
                "forward set_observe_hook() to its wrapped device: an "
                "observer installed on the stack would silently detach "
                "depending on decorator order — add an override that "
                "calls inner_->set_observe_hook(std::move(hook)), or "
                f"mark a genuine exception with \"{OBSERVE_HOOK_MARKER}\""))
    return findings


# --------------------------------------------------------------------------


RULES: dict[str, Callable[[str, List[str]], List[Finding]]] = {
    "delta-seal-before-manifest": rule_delta_seal_before_manifest,
    "persist-fence-publish": rule_persist_fence_publish,
    "naked-mutex": rule_naked_mutex,
    "raw-atomic-in-core": rule_raw_atomic_in_core,
    "relaxed-justification": rule_relaxed_justification,
    "replica-publish-ordering": rule_replica_publish_ordering,
    "trace-span-under-lock": rule_trace_span_under_lock,
    "check-addr-cas-only": rule_check_addr_cas_only,
    "storage-status-checked": rule_storage_status_checked,
    "read-status-checked": rule_read_status_checked,
    "storage-decorator-forwards-hooks":
        rule_storage_decorator_forwards_hooks,
}


def collect_files(paths: List[str]) -> List[str]:
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(root, name))
        elif os.path.isfile(path):
            files.append(path)
        else:
            print(f"pccheck-lint: no such path: {path}", file=sys.stderr)
            sys.exit(2)
    return files


def lint_file(path: str, rules: List[str]) -> List[Finding]:
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    findings = []
    for rule in rules:
        findings.extend(RULES[rule](path, lines))
    # Unified suppression syntax, shared with pccheck-tidy: a matching
    # "// pccheck-lint: disable=<rule> -- why" silences the finding; a
    # directive without a justification is itself a finding.
    supp = parse_suppressions(lines, tool="pccheck-lint")
    findings, _dropped = filter_findings(
        findings, supp, line_of=lambda f: f.line,
        check_of=lambda f: f.rule)
    for bad in supp.malformed:
        findings.append(Finding(path, bad.line, BAD_SUPPRESSION,
                                bad.message))
    return findings


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pccheck-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--rule", action="append", choices=sorted(RULES),
                        help="run only this rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print("\n".join(sorted(RULES)))
        return 0

    rules = args.rule if args.rule else sorted(RULES)
    findings: List[Finding] = []
    for path in collect_files(args.paths or ["src"]):
        findings.extend(lint_file(path, rules))

    for f in sorted(findings):
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        print(f"pccheck-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
