#!/usr/bin/env python3
"""Bench result extraction and regression gating (docs/USAGE.md).

The repo's perf-gate convention is a normalized BENCH_<name>.json:

    {"bench": "fig_delta", "reps": 3, "metrics": {"<metric>": <number>}}

Metric direction is inferred from the name: names ending in ``_ms``,
``_seconds``, ``_time`` or ``latency`` are lower-is-better; everything
else (throughputs, points/sec, speedups) is higher-is-better.

Subcommands:

  extract RAW.json -o BENCH_x.json
      Normalize a Google Benchmark ``--benchmark_format=json`` file.
      Per benchmark name, the median across repetitions of real_time
      (as ``<name>.real_time_ms``) and, when reported, items_per_second
      (as ``<name>.items_per_sec``) are emitted. Aggregate rows
      (mean/median/stddev) in the input are ignored — the median is
      computed here so unrepeated runs normalize identically.

  compare CURRENT.json BASELINE.json [--tolerance 0.15]
      Exit 1 if any shared metric regressed beyond the tolerance
      (direction-aware). Metrics present on only one side are listed
      but do not fail the gate (benches grow new configurations). A
      missing baseline FILE warns and passes unless --require-baseline
      is given — a new bench must not turn CI red before its first
      baseline is checked in.

  median A.json B.json ... -o OUT.json
      Merge runs of the same bench: per metric, the median across
      input files (bench trending; reduces noise between gates).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import statistics
import sys

LOWER_IS_BETTER = re.compile(
    r"(_ms|_seconds|_time|latency)$"
)


def metric_improves_downward(name: str) -> bool:
    """True when smaller values of *name* are better."""
    return LOWER_IS_BETTER.search(name) is not None


def load_metrics(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError(f"{path}: no 'metrics' object")
    bad = [k for k, v in metrics.items()
           if not isinstance(v, (int, float))]
    if bad:
        raise ValueError(f"{path}: non-numeric metrics: {bad}")
    return doc


def write_bench_json(path: str, bench: str, metrics: dict,
                     reps: int | None = None) -> None:
    doc = {"bench": bench}
    if reps is not None:
        doc["reps"] = reps
    doc["metrics"] = dict(sorted(metrics.items()))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


# ------------------------------------------------------------------ extract


def cmd_extract(args: argparse.Namespace) -> int:
    with open(args.raw, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    rows = raw.get("benchmarks", [])
    by_name: dict[str, dict[str, list[float]]] = {}
    for row in rows:
        if row.get("aggregate_name"):
            continue  # medians are recomputed below
        name = row.get("run_name") or row.get("name")
        if not name:
            continue
        entry = by_name.setdefault(name, {})
        if "real_time" in row:
            # Google Benchmark reports in the unit the bench chose.
            unit = row.get("time_unit", "ns")
            scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
            entry.setdefault("real_time_ms", []).append(
                float(row["real_time"]) * scale.get(unit, 1e-6))
        if "items_per_second" in row:
            entry.setdefault("items_per_sec", []).append(
                float(row["items_per_second"]))
    if not by_name:
        print(f"bench_compare: {args.raw}: no benchmark rows",
              file=sys.stderr)
        return 1
    metrics = {}
    reps = 0
    for name, series in sorted(by_name.items()):
        for kind, values in series.items():
            metrics[f"{name}.{kind}"] = statistics.median(values)
            reps = max(reps, len(values))
    bench = os.path.splitext(os.path.basename(args.output))[0]
    write_bench_json(args.output, bench, metrics, reps=reps)
    print(f"bench_compare: wrote {args.output} "
          f"({len(metrics)} metrics, median of {reps})")
    return 0


# ------------------------------------------------------------------ compare


def cmd_compare(args: argparse.Namespace) -> int:
    if not os.path.exists(args.baseline):
        msg = (f"bench_compare: baseline {args.baseline} missing — "
               "skipping the gate (check one in to arm it)")
        if args.require_baseline:
            print(msg.replace("skipping the gate "
                              "(check one in to arm it)",
                              "FAILING (--require-baseline)"),
                  file=sys.stderr)
            return 1
        print(msg)
        return 0
    current = load_metrics(args.current)["metrics"]
    baseline = load_metrics(args.baseline)["metrics"]

    shared = sorted(set(current) & set(baseline))
    only_current = sorted(set(current) - set(baseline))
    only_baseline = sorted(set(baseline) - set(current))
    if not shared:
        print("bench_compare: no shared metrics between "
              f"{args.current} and {args.baseline}", file=sys.stderr)
        return 1

    regressions = []
    for name in shared:
        cur, base = current[name], baseline[name]
        if base == 0:
            continue
        if metric_improves_downward(name):
            ratio = cur / base          # >1 = slower
            bad = ratio > 1 + args.tolerance
            direction = "slower"
        else:
            ratio = cur / base          # <1 = less throughput
            bad = ratio < 1 - args.tolerance
            direction = "less"
        delta_pct = (ratio - 1) * 100
        flag = "REGRESSION" if bad else "ok"
        print(f"  {flag:>10}  {name}: {cur:.4g} vs {base:.4g} "
              f"({delta_pct:+.1f}%)")
        if bad:
            regressions.append((name, delta_pct, direction))

    for name in only_current:
        print(f"  {'new':>10}  {name}: {current[name]:.4g} "
              "(no baseline yet)")
    for name in only_baseline:
        print(f"  {'gone':>10}  {name}: baseline only")

    if regressions:
        print(f"bench_compare: {len(regressions)} metric(s) regressed "
              f"beyond {args.tolerance:.0%}:", file=sys.stderr)
        for name, delta_pct, direction in regressions:
            print(f"  {name}: {abs(delta_pct):.1f}% {direction}",
                  file=sys.stderr)
        return 1
    print(f"bench_compare: {len(shared)} metric(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


# ------------------------------------------------------------------- median


def cmd_median(args: argparse.Namespace) -> int:
    docs = [load_metrics(path) for path in args.inputs]
    names = sorted({n for doc in docs for n in doc["metrics"]})
    metrics = {}
    for name in names:
        values = [doc["metrics"][name] for doc in docs
                  if name in doc["metrics"]]
        metrics[name] = statistics.median(values)
    bench = docs[0].get("bench", "merged")
    write_bench_json(args.output, bench, metrics, reps=len(docs))
    print(f"bench_compare: wrote {args.output} "
          f"({len(metrics)} metrics, median of {len(docs)} runs)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_compare.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("extract", help="normalize gbench JSON")
    p.add_argument("raw")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=cmd_extract)

    p = sub.add_parser("compare", help="gate against a baseline")
    p.add_argument("current")
    p.add_argument("baseline")
    p.add_argument("--tolerance", type=float, default=0.15,
                   help="allowed fractional regression (default 0.15)")
    p.add_argument("--require-baseline", action="store_true",
                   help="fail (instead of warn) on a missing baseline")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("median", help="merge runs (median per metric)")
    p.add_argument("inputs", nargs="+")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=cmd_median)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"bench_compare: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
