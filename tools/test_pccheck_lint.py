#!/usr/bin/env python3
"""Unit tests for pccheck_lint: each bad fixture trips exactly its
rule, the good fixtures are clean, and the real src/ tree is clean."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import pccheck_lint  # noqa: E402

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tools", "lint_fixtures")

ALL_RULES = sorted(pccheck_lint.RULES)

# fixture basename -> rule it must trip
BAD_EXPECTATIONS = {
    "delta_unsealed.cc": "delta-seal-before-manifest",
    "fence_missing.cc": "persist-fence-publish",
    "naked_mutex.cc": "naked-mutex",
    "raw_atomic.cc": "raw-atomic-in-core",
    "relaxed_unjustified.cc": "relaxed-justification",
    "trace_under_lock.cc": "trace-span-under-lock",
    "check_addr_store.cc": "check-addr-cas-only",
    "status_discarded.cc": "storage-status-checked",
    "read_discarded.cc": "read-status-checked",
    "watermark_unacked.cc": "replica-publish-ordering",
    "decorator_no_forward.cc": "storage-decorator-forwards-hooks",
}


def lint(path, rules=None):
    return pccheck_lint.lint_file(path, rules or ALL_RULES)


class BadFixtureTests(unittest.TestCase):
    def test_every_bad_fixture_trips_its_rule(self):
        for name, rule in BAD_EXPECTATIONS.items():
            path = os.path.join(FIXTURES, "bad", name)
            with self.subTest(fixture=name):
                findings = lint(path)
                self.assertTrue(findings,
                                f"{name}: expected findings, got none")
                self.assertIn(rule, {f.rule for f in findings},
                              f"{name}: expected rule {rule}, got "
                              f"{sorted({f.rule for f in findings})}")

    def test_every_rule_is_covered_by_a_fixture(self):
        self.assertEqual(sorted(set(BAD_EXPECTATIONS.values())), ALL_RULES)

    def test_bad_fixtures_exit_nonzero_via_main(self):
        for name in BAD_EXPECTATIONS:
            path = os.path.join(FIXTURES, "bad", name)
            with self.subTest(fixture=name):
                self.assertEqual(pccheck_lint.main([path]), 1)


class GoodFixtureTests(unittest.TestCase):
    def test_good_fixtures_are_clean(self):
        good = os.path.join(FIXTURES, "good")
        for name in sorted(os.listdir(good)):
            with self.subTest(fixture=name):
                self.assertEqual(lint(os.path.join(good, name)), [])


class SourceTreeTests(unittest.TestCase):
    def test_src_tree_is_clean(self):
        self.assertEqual(
            pccheck_lint.main([os.path.join(REPO_ROOT, "src")]), 0)


class RuleDetailTests(unittest.TestCase):
    """Inline-snippet behaviors not worth a fixture file each."""

    def _lint_lines(self, rule, lines, path="snippet.cc"):
        return pccheck_lint.RULES[rule](path, lines)

    def test_fence_rule_ignores_publish_without_prior_persist(self):
        lines = [
            "void f(Store& s) {",
            "    s.publish_pointer(1);",
            "}",
        ]
        self.assertEqual(
            self._lint_lines("persist-fence-publish", lines), [])

    def test_fence_rule_scan_stops_at_function_boundary(self):
        lines = [
            "void other(Store& s) {",
            "    s.persist_slot_range(0, 0, 8);",
            "}",
            "void f(Store& s) {",
            "    s.publish_pointer(1);",
            "}",
        ]
        self.assertEqual(
            self._lint_lines("persist-fence-publish", lines), [])

    def test_fence_rule_skips_declaration(self):
        lines = ["    void publish_pointer(const CheckpointPointer&);"]
        self.assertEqual(
            self._lint_lines("persist-fence-publish", lines), [])

    def test_relaxed_comment_on_same_line_counts(self):
        lines = ["x.load(std::memory_order_relaxed);  // relaxed: stat."]
        self.assertEqual(
            self._lint_lines("relaxed-justification", lines), [])

    def test_relaxed_comment_four_lines_up_is_too_far(self):
        lines = [
            "// relaxed: too far away.",
            "",
            "",
            "",
            "x.load(std::memory_order_relaxed);",
        ]
        self.assertEqual(
            len(self._lint_lines("relaxed-justification", lines)), 1)

    def test_trace_rule_skips_cold_files(self):
        lines = [
            "void f() {",
            "    MutexLock lock(mu_);",
            "    PCCHECK_TRACE_SPAN(\"x\");",
            "}",
        ]
        self.assertEqual(
            self._lint_lines("trace-span-under-lock", lines,
                             path="cold_file.cc"), [])

    def test_trace_rule_lock_released_by_scope_exit(self):
        lines = [
            "// pccheck-lint: hot-path",
            "void f() {",
            "    {",
            "        MutexLock lock(mu_);",
            "    }",
            "    PCCHECK_TRACE_SPAN(\"x\");",
            "}",
        ]
        self.assertEqual(
            self._lint_lines("trace-span-under-lock", lines), [])

    def test_check_addr_cas_is_allowed(self):
        lines = ["check_addr_.compare_exchange_strong(e, v);"]
        self.assertEqual(
            self._lint_lines("check-addr-cas-only", lines), [])

    def test_check_addr_load_is_allowed(self):
        lines = ["auto v = check_addr_.load(std::memory_order_acquire);"]
        self.assertEqual(
            self._lint_lines("check-addr-cas-only", lines), [])

    def test_naked_mutex_allowlisted_in_annotations_header(self):
        lines = ["    std::mutex mu_;"]
        self.assertEqual(
            self._lint_lines("naked-mutex", lines,
                             path="src/util/annotations.h"), [])

    def test_naked_mutex_allowlisted_in_mc_scheduler(self):
        lines = ["    std::mutex mu;", "    std::condition_variable cv;"]
        self.assertEqual(
            self._lint_lines("naked-mutex", lines,
                             path="src/mc/scheduler.cc"), [])

    def test_raw_atomic_skips_files_outside_core_without_marker(self):
        lines = ["    std::atomic<int> x{0};"]
        self.assertEqual(
            self._lint_lines("raw-atomic-in-core", lines,
                             path="src/obs/trace.h"), [])

    def test_raw_atomic_flagged_in_core(self):
        lines = ["    std::atomic<std::uint64_t> counter_{0};"]
        self.assertEqual(
            len(self._lint_lines("raw-atomic-in-core", lines,
                                 path="src/core/concurrent_commit.h")), 1)

    def test_raw_atomic_marker_opts_a_file_in(self):
        lines = [
            "// pccheck-lint: atomic-seam",
            "    std::atomic<int> x{0};",
        ]
        self.assertEqual(
            len(self._lint_lines("raw-atomic-in-core", lines,
                                 path="src/concurrent/some_queue.h")), 1)

    def test_raw_atomic_seam_alias_is_clean(self):
        lines = [
            "// pccheck-lint: atomic-seam",
            "    Atomic<std::uint64_t> counter_{0};",
        ]
        self.assertEqual(
            self._lint_lines("raw-atomic-in-core", lines,
                             path="src/core/concurrent_commit.h"), [])

    def test_raw_atomic_allowlists_the_seam_header(self):
        lines = [
            "// pccheck-lint: atomic-seam",
            "template <typename T> using Atomic = std::atomic<T>;",
        ]
        self.assertEqual(
            self._lint_lines("raw-atomic-in-core", lines,
                             path="src/util/sync.h"), [])

    def test_storage_status_rule_skips_files_outside_core(self):
        lines = ["    device.fence();"]
        self.assertEqual(
            self._lint_lines("storage-status-checked", lines,
                             path="src/storage/mem_storage.cc"), [])

    def test_storage_status_bare_call_in_core_flagged(self):
        lines = ["    device.fence();"]
        self.assertEqual(
            len(self._lint_lines("storage-status-checked", lines,
                                 path="src/core/orchestrator.cc")), 1)

    def test_storage_status_wrapped_call_is_clean(self):
        lines = ["    PCCHECK_MUST(device.fence());"]
        self.assertEqual(
            self._lint_lines("storage-status-checked", lines,
                             path="src/core/orchestrator.cc"), [])

    def test_read_status_rule_skips_files_outside_recovery_trees(self):
        lines = ["    device.read(0, buf, 64);"]
        self.assertEqual(
            self._lint_lines("read-status-checked", lines,
                             path="src/storage/mem_storage.cc"), [])

    def test_read_status_bare_read_in_core_flagged(self):
        lines = ["    store.read_slot(1, 0, buf, 64);"]
        self.assertEqual(
            len(self._lint_lines("read-status-checked", lines,
                                 path="src/core/recovery_planner.cc")), 1)

    def test_read_status_bare_read_in_scrub_flagged(self):
        lines = ["    device->read(off, buf, 64);"]
        self.assertEqual(
            len(self._lint_lines("read-status-checked", lines,
                                 path="src/scrub/scrubber.cc")), 1)

    def test_read_status_marker_opts_a_file_in(self):
        lines = [
            "// pccheck-lint: read-status",
            "    device.read(0, buf, 64);",
        ]
        self.assertEqual(
            len(self._lint_lines("read-status-checked", lines,
                                 path="src/trainsim/loader.cc")), 1)

    def test_read_status_checked_uses_are_clean(self):
        lines = [
            "    PCCHECK_MUST(device.read(0, buf, 64));",
            "    if (!store.read_slot(1, 0, buf, 64).ok()) {",
            "        return false;",
            "    }",
            "    return store.read_slot(2, 0, buf, 64).ok();",
        ]
        self.assertEqual(
            self._lint_lines("read-status-checked", lines,
                             path="src/core/recovery_planner.cc"), [])

    def test_read_status_readback_does_not_match_read_prefix(self):
        # `readback(...)` and `reader.ready(...)` are not fallible
        # read calls; the method-name alternation must not prefix-match.
        lines = [
            "    image.readback(0, buf, 64);",
            "    reader.ready(now);",
        ]
        self.assertEqual(
            self._lint_lines("read-status-checked", lines,
                             path="src/core/recovery_planner.cc"), [])

    def test_replica_rule_skips_files_without_replication_calls(self):
        lines = [
            "void f(Commit& protocol) {",
            "    protocol.commit(ticket, len, iteration, crc);",
            "}",
        ]
        self.assertEqual(
            self._lint_lines("replica-publish-ordering", lines), [])

    def test_replica_advance_after_await_is_clean(self):
        lines = [
            "void f(Engine& e, const Handle& h) {",
            "    if (e.await_quorum(h)) {",
            "        e.advance_watermark(h);",
            "    }",
            "}",
        ]
        self.assertEqual(
            self._lint_lines("replica-publish-ordering", lines), [])

    def test_replica_advance_after_record_ack_is_clean(self):
        lines = [
            "void f(Store& s, const Handle& h) {",
            "    record_ack(h, 0, s.seal(h.counter(), crc));",
            "    s.advance_watermark(h.counter());",
            "}",
        ]
        self.assertEqual(
            self._lint_lines("replica-publish-ordering", lines), [])

    def test_replica_marker_comment_justifies_delegated_ordering(self):
        lines = [
            "void f(Engine& e, Store& s, const Handle& h) {",
            "    (void)e.await_quorum(h);",
            "}",
            "void g(Store& s, const Handle& h) {",
            "    // quorum-acked: owner gated before reporting.",
            "    s.advance_watermark(h.counter());",
            "}",
        ]
        self.assertEqual(
            self._lint_lines("replica-publish-ordering", lines), [])

    def test_replica_scan_stops_at_function_boundary(self):
        lines = [
            "void f(Engine& e, const Handle& h) {",
            "    (void)e.await_quorum(h);",
            "}",
            "void g(Engine& e, const Handle& h) {",
            "    e.advance_watermark(h);",
            "}",
        ]
        self.assertEqual(
            len(self._lint_lines("replica-publish-ordering", lines)), 1)

    def test_replica_commit_before_await_is_flagged(self):
        lines = [
            "void f(Engine& e, Commit& p, const Handle& h) {",
            "    p.commit(ticket, len, iteration, crc);",
            "    (void)e.await_quorum(h);",
            "}",
        ]
        findings = self._lint_lines("replica-publish-ordering", lines)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].line, 2)

    def test_replica_declaration_does_not_gate_or_match(self):
        lines = [
            "class ReplicationEngine {",
            "    bool await_quorum(const Handle& handle);",
            "    void advance_watermark(const Handle& handle);",
            "};",
        ]
        self.assertEqual(
            self._lint_lines("replica-publish-ordering", lines), [])

    def test_delta_seal_declaration_and_definition_do_not_match(self):
        lines = [
            "    StorageStatus seal_frame(Bytes off, const void* h,",
            "                             Bytes len);",
            "StorageStatus",
            "DeltaLog::seal_frame(Bytes off, const void* h, Bytes len)",
            "{",
            "}",
        ]
        self.assertEqual(
            self._lint_lines("delta-seal-before-manifest", lines), [])

    def test_delta_seal_after_fence_is_clean(self):
        lines = [
            "int f(Device& d) {",
            "    d.persist(64, 128);",
            "    d.fence();",
            "    return seal_frame(0, hdr, 64);",
            "}",
        ]
        self.assertEqual(
            self._lint_lines("delta-seal-before-manifest", lines), [])

    def test_delta_seal_marker_justifies_delegated_ordering(self):
        lines = [
            "int f(Device& d) {",
            "    // payload-durable: caller fenced before calling.",
            "    return seal_frame(0, hdr, 64);",
            "}",
        ]
        self.assertEqual(
            self._lint_lines("delta-seal-before-manifest", lines), [])

    def test_delta_seal_scan_stops_at_function_boundary(self):
        lines = [
            "int f(Device& d) {",
            "    d.fence();",
            "}",
            "int g(Device& d) {",
            "    return seal_frame(0, hdr, 64);",
            "}",
        ]
        findings = self._lint_lines("delta-seal-before-manifest", lines)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].line, 5)

    def test_decorator_rule_exempts_leaf_devices(self):
        lines = [
            "class Leaf final : public StorageDevice {",
            "  public:",
            "    StorageStatus fence() override { return ok(); }",
            "};",
        ]
        self.assertEqual(
            self._lint_lines("storage-decorator-forwards-hooks", lines),
            [])

    def test_decorator_rule_flags_swallowed_hook(self):
        lines = [
            "class Wrap final : public StorageDevice {",
            "    StorageStatus fence() override {",
            "        return inner_->fence();",
            "    }",
            "    std::unique_ptr<StorageDevice> inner_;",
            "};",
        ]
        findings = self._lint_lines(
            "storage-decorator-forwards-hooks", lines)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].line, 1)

    def test_decorator_rule_forwarding_is_clean(self):
        lines = [
            "class Wrap final : public StorageDevice {",
            "    void set_observe_hook(Hook hook) override {",
            "        inner_->set_observe_hook(std::move(hook));",
            "    }",
            "    std::unique_ptr<StorageDevice> inner_;",
            "};",
        ]
        self.assertEqual(
            self._lint_lines("storage-decorator-forwards-hooks", lines),
            [])

    def test_decorator_rule_marker_suppresses(self):
        lines = [
            "class Wrap final : public StorageDevice {",
            "    // pccheck-lint: observe-hook — terminal decorator,",
            "    // nothing downstream can observe.",
            "    std::unique_ptr<StorageDevice> inner_;",
            "};",
        ]
        self.assertEqual(
            self._lint_lines("storage-decorator-forwards-hooks", lines),
            [])

    def test_decorator_rule_ignores_non_storage_classes(self):
        lines = [
            "class Other {",
            "    std::unique_ptr<StorageDevice> inner_;",
            "};",
        ]
        self.assertEqual(
            self._lint_lines("storage-decorator-forwards-hooks", lines),
            [])

    def test_decorator_rule_second_class_in_file_is_scanned(self):
        lines = [
            "class Good final : public StorageDevice {",
            "    void set_observe_hook(Hook h) override {",
            "        inner_->set_observe_hook(std::move(h));",
            "    }",
            "    std::unique_ptr<StorageDevice> inner_;",
            "};",
            "class Bad final : public StorageDevice {",
            "    StorageStatus fence() override { return inner_->fence(); }",
            "    std::unique_ptr<StorageDevice> inner_;",
            "};",
        ]
        findings = self._lint_lines(
            "storage-decorator-forwards-hooks", lines)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].line, 7)

    def test_storage_status_continuation_line_is_clean(self):
        lines = [
            "    const StorageStatus s =",
            "        store.persist_slot_range(0, 0, len);",
        ]
        self.assertEqual(
            self._lint_lines("storage-status-checked", lines,
                             path="src/core/persist_engine.cc"), [])


if __name__ == "__main__":
    unittest.main()
