"""pccheck-tidy: AST-grounded persistence & hot-path analysis.

A libclang-driven static analyzer for the PCcheck tree. Unlike
tools/pccheck_lint.py (regex heuristics, zero dependencies),
pccheck-tidy parses every translation unit named in
compile_commands.json with clang.cindex, lowers function bodies to a
small statement-tree IR (ir.py), and runs path-sensitive checks
(checks.py) over that IR:

  persistence-ordering   every publish_pointer()/seal_frame()/
                         advance_watermark()/invalidate_record() call
                         must be dominated by a fence() on every
                         intra-procedural path since the last
                         write/persist; cross-function via call
                         summaries.
  blocking-under-lock    no persist/fence/msync, SimNetwork transfer
                         or recv, sleep_for, thread join, or CondVar
                         wait while a capability-annotated Mutex is
                         held (metrics/trace work under a lock is a
                         softer subcategory of the same check).
  hot-path-alloc         functions annotated PCCHECK_HOT_PATH
                         (util/tsa.h) must not allocate: no new /
                         make_unique / make_shared, no growable-
                         container construction or mutation, no throw.
  status-discarded       a StorageStatus produced by a storage op must
                         be branched on, returned, or forwarded — not
                         assigned and forgotten, and not dropped as a
                         bare statement.

The analysis core (ir.py, checks.py, suppress.py, report.py) is pure
Python and fully unit-testable without libclang; only frontend.py
imports clang.cindex, lazily. When libclang is unavailable the CLI
exits with status 3 ("skipped") so local ctest runs degrade cleanly;
CI installs libclang and gates the tree at zero findings.

Suppression syntax (shared with pccheck-lint via suppress.py):

  // pccheck-tidy: disable=<check>[,<check>] -- <justification>

The justification after ``--`` is mandatory; a suppression without one
is itself reported as a bad-suppression finding.
"""

__version__ = "1.0"

CHECK_NAMES = (
    "persistence-ordering",
    "blocking-under-lock",
    "hot-path-alloc",
    "status-discarded",
)

# Exit codes for the CLI (cli.py) and CI wiring.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_SKIPPED = 3  # libclang unavailable: analysis did not run
