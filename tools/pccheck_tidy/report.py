"""Finding reporters: human-readable lines and machine JSON.

The human format mirrors pccheck-lint ("path:line: [check] message")
so editors and CI log scrapers treat both tools the same. The JSON
format is stable — CI uploads it as an artifact and downstream
tooling (dashboards, diff-against-baseline) parses it — so every
field below is part of the tool's contract.
"""

from __future__ import annotations

import json
import sys
from typing import Iterable, List

from .checks import Finding

JSON_SCHEMA_VERSION = 1


def human_lines(findings: Iterable[Finding]) -> List[str]:
    return [f"{f.file}:{f.line}: [{f.check}] {f.message}"
            for f in findings]


def print_human(findings: List[Finding], *, suppressed: int = 0,
                files_scanned: int = 0, stream=None) -> None:
    stream = stream or sys.stdout
    for line in human_lines(findings):
        print(line, file=stream)
    summary = (f"pccheck-tidy: {len(findings)} finding(s) across "
               f"{files_scanned} file(s)")
    if suppressed:
        summary += f", {suppressed} suppressed"
    print(summary, file=sys.stderr)


def to_json(findings: List[Finding], *, suppressed: int = 0,
            files_scanned: int = 0, checks: Iterable[str] = (),
            skipped_reason: str = "") -> str:
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "pccheck-tidy",
        "checks": sorted(checks),
        "files_scanned": files_scanned,
        "suppressed": suppressed,
        "skipped_reason": skipped_reason,
        "findings": [
            {
                "file": f.file,
                "line": f.line,
                "check": f.check,
                "message": f.message,
                "function": f.function,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def from_json(text: str) -> List[Finding]:
    """Inverse of to_json for tests and baseline diffing."""
    payload = json.loads(text)
    return [Finding(file=f["file"], line=f["line"], check=f["check"],
                    message=f["message"], function=f.get("function", ""))
            for f in payload["findings"]]
