"""Directory-execution entry point: ``python3 tools/pccheck_tidy``.

Bootstraps sys.path so the package imports resolve whether the tool
is invoked as ``python3 tools/pccheck_tidy``, ``python3 -m
pccheck_tidy`` (from tools/), or via an absolute path from CI.
"""

import os
import sys

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from pccheck_tidy.cli import main
else:
    from .cli import main

if __name__ == "__main__":
    sys.exit(main())
