"""pccheck-tidy command-line driver.

Usage:
  python3 tools/pccheck_tidy [paths...] [options] [-- <compile args>]

Modes:
  Tree mode (default): loads compile_commands.json (auto-discovered at
  build/compile_commands.json or via --compile-commands), parses every
  listed TU whose source lives under the given paths (default: src/,
  always excluding src/mc/ — the cooperative model-checker scheduler
  deliberately blocks under its locks), lowers all function
  definitions, and runs the four checks globally so call summaries
  cross TU boundaries.

  Fixture mode: when every positional path is a single .cc/.h file
  that is NOT in the compile database, each is parsed standalone with
  the default flags (-std=c++20 -I src) plus anything after ``--``.
  This is how the test fixtures run.

Exit codes:
  0  clean          1  findings          2  usage/setup error
  3  skipped (libclang unavailable — analysis did not run)
"""

from __future__ import annotations

import argparse
import json
import os
import shlex
import sys
from typing import Dict, List, Optional, Sequence, Set, Tuple

from . import (CHECK_NAMES, EXIT_CLEAN, EXIT_FINDINGS, EXIT_SKIPPED,
               EXIT_USAGE)
from .checks import ALL_CHECKS, Finding, analyze
from .report import print_human, to_json
from .suppress import BAD_SUPPRESSION, filter_findings, parse_suppressions

DEFAULT_EXCLUDES = (os.path.join("src", "mc") + os.sep,)
DEFAULT_FIXTURE_ARGS = ("-std=c++20", "-x", "c++", "-Isrc")


def find_compile_commands(explicit: Optional[str],
                          root: str) -> Optional[str]:
    if explicit:
        return explicit if os.path.isfile(explicit) else None
    for cand in ("build/compile_commands.json", "compile_commands.json"):
        path = os.path.join(root, cand)
        if os.path.isfile(path):
            return path
    return None


def clang_args_from_entry(entry: Dict) -> List[str]:
    """Compiler argv -> libclang parse args (drop -c/-o/source/argv0)."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry.get("command", ""))
    source = entry.get("file", "")
    args: List[str] = []
    skip_next = False
    for i, arg in enumerate(argv):
        if i == 0:
            continue  # the compiler binary
        if skip_next:
            skip_next = False
            continue
        if arg in ("-c",):
            continue
        if arg in ("-o", "-MF", "-MT", "-MQ"):
            skip_next = True
            continue
        if arg in ("-MD", "-MMD"):
            continue
        if arg == source or os.path.basename(arg) == \
                os.path.basename(source) and arg.endswith(
                    (".cc", ".cpp", ".c")):
            continue
        args.append(arg)
    directory = entry.get("directory")
    if directory:
        args.append(f"-working-directory={directory}")
    return args


def in_scope(path: str, roots: Sequence[str],
             excludes: Sequence[str]) -> bool:
    rpath = os.path.realpath(path)
    norm = rpath.replace(os.sep, "/")
    for exc in excludes:
        if ("/" + exc.replace(os.sep, "/")).rstrip("/") + "/" in \
                norm + "/":
            return False
    for root in roots:
        rroot = os.path.realpath(root)
        if rpath == rroot or rpath.startswith(rroot + os.sep):
            return True
    return False


def apply_suppressions(findings: List[Finding], repo_root: str,
                       scanned: Sequence[str] = ()
                       ) -> Tuple[List[Finding], int]:
    """Filter per-file suppressions; malformed ones become findings.

    Every file in @p scanned is parsed for directives even when it has
    no findings — a malformed suppression in an otherwise-clean file
    must still be reported.
    """
    by_file: Dict[str, List[Finding]] = {}
    for f in findings:
        by_file.setdefault(f.file, []).append(f)
    for path in scanned:
        by_file.setdefault(path, [])
    kept: List[Finding] = []
    suppressed = 0
    for path, file_findings in by_file.items():
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                lines = fh.read().splitlines()
        except OSError:
            kept.extend(file_findings)
            continue
        supp = parse_suppressions(lines, tool="pccheck-tidy")
        keep, dropped = filter_findings(
            file_findings, supp,
            line_of=lambda f: f.line, check_of=lambda f: f.check)
        kept.extend(keep)
        suppressed += len(dropped)
        for bad in supp.malformed:
            kept.append(Finding(
                file=path, line=bad.line, check=BAD_SUPPRESSION,
                message=bad.message))
    return kept, suppressed


def relativize(findings: List[Finding], root: str) -> List[Finding]:
    out = []
    rroot = os.path.realpath(root)
    for f in findings:
        path = os.path.realpath(f.file)
        if path.startswith(rroot + os.sep):
            path = os.path.relpath(path, rroot)
        out.append(Finding(file=path, line=f.line, check=f.check,
                           message=f.message, function=f.function))
    return out


def main(argv: Optional[List[str]] = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    extra_args: List[str] = []
    if "--" in raw:
        split = raw.index("--")
        raw, extra_args = raw[:split], raw[split + 1:]

    parser = argparse.ArgumentParser(
        prog="pccheck-tidy", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to analyze "
                             "(default: src, excluding src/mc)")
    parser.add_argument("--check", action="append",
                        choices=sorted(CHECK_NAMES),
                        help="run only this check (repeatable)")
    parser.add_argument("--compile-commands", default=None,
                        help="path to compile_commands.json")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write findings as JSON ('-' = stdout)")
    parser.add_argument("--list-checks", action="store_true",
                        help="print check names and exit")
    parser.add_argument("--include-mc", action="store_true",
                        help="do not exclude src/mc/ (the cooperative "
                             "scheduler blocks under locks by design)")
    args = parser.parse_args(raw)

    if args.list_checks:
        print("\n".join(sorted(CHECK_NAMES)))
        return EXIT_CLEAN

    from .frontend import (load_cindex, lower_translation_unit,
                           parse_source, _FileCache)
    cindex = load_cindex()
    if cindex is None:
        print("pccheck-tidy: SKIPPED (libclang unavailable); install "
              "python3-clang + libclang to run the analysis",
              file=sys.stderr)
        if args.json:
            payload = to_json([], suppressed=0, files_scanned=0,
                              checks=args.check or ALL_CHECKS,
                              skipped_reason="libclang unavailable")
            _write_json(args.json, payload)
        return EXIT_SKIPPED

    root = os.path.realpath(args.root)
    roots = args.paths or [os.path.join(root, "src")]
    excludes = () if args.include_mc else DEFAULT_EXCLUDES
    checks = args.check or list(ALL_CHECKS)

    # Partition positional paths: compile-DB-covered sources vs
    # standalone fixture files.
    db_path = find_compile_commands(args.compile_commands, root)
    db_entries: List[Dict] = []
    if db_path:
        try:
            with open(db_path, encoding="utf-8") as fh:
                db_entries = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"pccheck-tidy: cannot read {db_path}: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE

    db_files = {os.path.realpath(os.path.join(e.get("directory", root),
                                              e.get("file", "")))
                for e in db_entries}

    standalone = [p for p in (args.paths or [])
                  if os.path.isfile(p) and
                  os.path.realpath(p) not in db_files]
    tree_mode = not standalone or any(os.path.isdir(p)
                                      for p in (args.paths or []))

    if tree_mode and not db_entries and not standalone:
        print("pccheck-tidy: no compile_commands.json found — "
              "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "
              "(or pass --compile-commands)", file=sys.stderr)
        return EXIT_USAGE

    files = _FileCache()
    seen: Set[Tuple[str, int, str]] = set()
    functions = []
    scanned: Set[str] = set()
    parse_errors = 0

    if tree_mode:
        for entry in db_entries:
            src = os.path.realpath(os.path.join(
                entry.get("directory", root), entry.get("file", "")))
            if not in_scope(src, roots, excludes):
                continue
            tu_args = clang_args_from_entry(entry) + extra_args
            try:
                tu, errors = parse_source(cindex, src, tu_args)
            except Exception as exc:  # noqa: BLE001
                print(f"pccheck-tidy: parse failed for {src}: {exc}",
                      file=sys.stderr)
                parse_errors += 1
                continue
            for err in errors:
                print(f"pccheck-tidy: {err}", file=sys.stderr)
            scanned.add(src)
            functions.extend(lower_translation_unit(
                cindex, tu, src_root=os.path.join(root, "src"),
                files=files, seen=seen))

    for src in standalone:
        tu_args = list(DEFAULT_FIXTURE_ARGS) + extra_args
        try:
            tu, errors = parse_source(cindex, src, tu_args)
        except Exception as exc:  # noqa: BLE001
            print(f"pccheck-tidy: parse failed for {src}: {exc}",
                  file=sys.stderr)
            parse_errors += 1
            continue
        for err in errors:
            print(f"pccheck-tidy: {err}", file=sys.stderr)
        scanned.add(os.path.realpath(src))
        functions.extend(lower_translation_unit(
            cindex, tu, src_root=os.path.dirname(os.path.realpath(src)),
            files=files, seen=seen))

    all_findings = analyze(functions, checks)
    # Findings are only reported for files actually in scope: headers
    # pulled in from outside the requested roots feed summaries but do
    # not gate.
    scoped = [f for f in all_findings
              if os.path.realpath(f.file) in scanned or
              in_scope(f.file, roots, excludes)]
    scoped, suppressed = apply_suppressions(scoped, root,
                                            scanned=sorted(scanned))
    scoped = relativize(sorted(scoped, key=Finding.sort_key), root)

    if args.json:
        payload = to_json(scoped, suppressed=suppressed,
                          files_scanned=len(scanned), checks=checks)
        _write_json(args.json, payload)
    if args.json != "-":
        print_human(scoped, suppressed=suppressed,
                    files_scanned=len(scanned))

    if parse_errors:
        return EXIT_USAGE
    return EXIT_FINDINGS if scoped else EXIT_CLEAN


def _write_json(dest: str, payload: str) -> None:
    if dest == "-":
        sys.stdout.write(payload)
    else:
        with open(dest, "w", encoding="utf-8") as fh:
            fh.write(payload)


if __name__ == "__main__":
    sys.exit(main())
