"""The four pccheck-tidy checks, run over the statement-tree IR.

All analyses here are pure Python over ir.Function values — no
libclang. Two of the checks (persistence-ordering and
blocking-under-lock) are *path-sensitive*: the walker enumerates
acyclic paths through the statement tree, tracking the value of every
StorageStatus variable as {ok, not-ok, unknown} and pruning paths
whose branch constraints contradict what is already known. That is
what lets the real tree's status ladders —

    StorageStatus s = write(...);
    if (s.ok()) { s = persist(...); }
    if (s.ok()) { s = device.fence(); }
    if (!s.ok()) { return s; }
    seal_frame(...);            // only reachable with s ok ⇒ fenced

— analyze clean without special-casing, while still catching a
publish that is genuinely reachable with un-fenced bytes.

Loops unroll 0/1/2 iterations. Path enumeration is capped (PATH_CAP);
a function that exceeds the cap falls back to a merged linear
analysis that is pessimistic about branches but never silently
skipped.

Cross-function effects come from call summaries computed to a
fixpoint: may_block propagates transitively over the hard-blocking op
set, while a callee that fences on its success path *clears* the
caller's dirty state at the call site (optimistic-success semantics —
justified because the status-discarded check forces every caller to
branch on the callee's StorageStatus before relying on it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .ir import Branch, Function, Loop, Node, Op, OpKind, Seq, flatten_ops

PATH_CAP = 4096
LOOP_UNROLLS = (0, 1, 2)

PERSISTENCE_ORDERING = "persistence-ordering"
BLOCKING_UNDER_LOCK = "blocking-under-lock"
HOT_PATH_ALLOC = "hot-path-alloc"
STATUS_DISCARDED = "status-discarded"

ALL_CHECKS = (
    PERSISTENCE_ORDERING,
    BLOCKING_UNDER_LOCK,
    HOT_PATH_ALLOC,
    STATUS_DISCARDED,
)


@dataclass(frozen=True)
class Finding:
    file: str
    line: int
    check: str
    message: str
    function: str = ""

    def sort_key(self):
        return (self.file, self.line, self.check, self.message)


@dataclass
class Summary:
    """Cross-function effect summary used at call sites."""

    writes_dirty: bool = False   # leaves unfenced bytes behind
    fences_clean: bool = False   # fences on its success path
    may_block: bool = False      # hard-blocks (directly or transitively)
    returns_status: bool = False


class _PathExplosion(Exception):
    pass


class _Budget:
    def __init__(self, cap: int) -> None:
        self.left = cap

    def spend(self, n: int = 1) -> None:
        self.left -= n
        if self.left < 0:
            raise _PathExplosion()


# --------------------------------------------------------------------------
# Path enumeration with StorageStatus feasibility


def _paths(node: Node, env: Dict[str, Optional[bool]],
           budget: _Budget) -> List[Tuple[List[Op], Dict, bool]]:
    """All (ops, env, terminated) continuations through @p node.

    env maps status-variable name -> True (known ok) / False (known
    not-ok) / None (unknown). terminated marks paths that hit a RETURN
    and must not be extended by later siblings.
    """
    if isinstance(node, Op):
        budget.spend()
        new_env = env
        if node.kind == OpKind.STATUS_DEF and node.name:
            new_env = dict(env)
            new_env[node.name] = None  # fresh value: unknown again
        return [([node], new_env, node.kind == OpKind.RETURN)]

    if isinstance(node, Seq):
        results: List[Tuple[List[Op], Dict, bool]] = [([], env, False)]
        for child in node.children:
            nxt: List[Tuple[List[Op], Dict, bool]] = []
            for ops, e, done in results:
                if done:
                    nxt.append((ops, e, True))
                    continue
                for cops, ce, cdone in _paths(child, e, budget):
                    budget.spend()
                    nxt.append((ops + cops, ce, cdone))
            results = nxt
        return results

    if isinstance(node, Branch):
        var = node.cond_status
        known = env.get(var) if var is not None else None
        out: List[Tuple[List[Op], Dict, bool]] = []
        if var is not None and known is not None:
            # Feasibility pruning: only the branch consistent with the
            # known value exists.
            if known == node.cond_true_ok:
                out.extend(_paths(node.then_branch, env, budget))
            elif node.else_branch is not None:
                out.extend(_paths(node.else_branch, env, budget))
            else:
                out.append(([], env, False))
            return out
        if var is not None:
            then_env = dict(env)
            then_env[var] = node.cond_true_ok
            else_env = dict(env)
            else_env[var] = not node.cond_true_ok
        else:
            then_env, else_env = env, env
        out.extend(_paths(node.then_branch, then_env, budget))
        if node.else_branch is not None:
            out.extend(_paths(node.else_branch, else_env, budget))
        else:
            out.append(([], else_env, False))
        return out

    if isinstance(node, Loop):
        out: List[Tuple[List[Op], Dict, bool]] = []
        once = _paths(node.body, env, budget)
        for n in LOOP_UNROLLS:
            if n == 0:
                out.append(([], env, False))
            elif n == 1:
                out.extend(once)
            else:
                for ops1, e1, done1 in once:
                    if done1:
                        continue  # already covered by the 1-unroll
                    for ops2, e2, done2 in _paths(node.body, e1, budget):
                        budget.spend()
                        out.append((ops1 + ops2, e2, done2))
        return out

    raise TypeError(f"not an IR node: {node!r}")


def enumerate_paths(func: Function,
                    cap: int = PATH_CAP) -> Optional[List[List[Op]]]:
    """Feasible op paths through @p func, or None when over the cap."""
    try:
        budget = _Budget(cap * 8)  # op-level budget, generous per path
        raw = _paths(func.body, {}, budget)
        if len(raw) > cap:
            return None
        return [ops for ops, _env, _done in raw]
    except _PathExplosion:
        return None


# --------------------------------------------------------------------------
# persistence-ordering


def _ordering_scan(ops: Iterable[Op], func: Function,
                   summaries: Dict[str, Summary]) -> List[Finding]:
    findings: List[Finding] = []
    dirty = False
    dirty_line = 0
    dirty_what = ""
    for op in ops:
        if op.kind in (OpKind.WRITE, OpKind.PERSIST):
            dirty = True
            dirty_line = op.line
            dirty_what = op.detail or op.kind
        elif op.kind == OpKind.FENCE:
            dirty = False
        elif op.kind == OpKind.CALL and op.name:
            s = summaries.get(op.name)
            if s is not None:
                if s.fences_clean:
                    # Optimistic success-path semantics: the callee
                    # fences before returning ok, and status-discarded
                    # forces the caller to branch on that status.
                    dirty = False
                elif s.writes_dirty:
                    dirty = True
                    dirty_line = op.line
                    dirty_what = f"call to {op.name}"
        elif op.kind == OpKind.PUBLISH:
            if dirty:
                findings.append(Finding(
                    func.file, op.line, PERSISTENCE_ORDERING,
                    f"{op.detail or 'publish'} is reachable with "
                    f"un-fenced bytes: {dirty_what} at line {dirty_line} "
                    "has no dominating fence() on this path — the "
                    "pointer record could become durable before the "
                    "data it names", func.name))
    return findings


# --------------------------------------------------------------------------
# blocking-under-lock


_HARD_BLOCK_KINDS = (OpKind.BLOCK, OpKind.PERSIST, OpKind.FENCE)


def _blocking_scan(ops: Iterable[Op], func: Function,
                   summaries: Dict[str, Summary]) -> List[Finding]:
    findings: List[Finding] = []
    held: Dict[str, int] = {lock: func.line for lock in func.requires}

    def holders(exclude: Optional[str] = None) -> str:
        names = [f"{name} (held since line {line})"
                 for name, line in held.items() if name != exclude]
        return ", ".join(names)

    for op in ops:
        if op.kind == OpKind.ACQUIRE and op.name:
            held[op.name] = op.line
        elif op.kind == OpKind.RELEASE and op.name:
            held.pop(op.name, None)
        elif op.kind == OpKind.CV_WAIT:
            # wait(mu) releases mu for the duration — only *other*
            # locks still held make the wait a blocking-under-lock.
            others = holders(exclude=op.released)
            if others:
                findings.append(Finding(
                    func.file, op.line, BLOCKING_UNDER_LOCK,
                    f"condition-variable wait while holding {others}: "
                    "the wait only releases its own mutex, so every "
                    "other holder is stalled for the full wait",
                    func.name))
        elif op.kind in _HARD_BLOCK_KINDS:
            if held:
                findings.append(Finding(
                    func.file, op.line, BLOCKING_UNDER_LOCK,
                    f"{op.detail or op.kind} while holding {holders()}: "
                    "device/network/sleep latency lands inside the "
                    "critical section and serializes every waiter",
                    func.name))
        elif op.kind == OpKind.METRIC:
            if held:
                findings.append(Finding(
                    func.file, op.line, BLOCKING_UNDER_LOCK,
                    f"metrics/trace work ({op.detail or 'op'}) while "
                    f"holding {holders()}: registry lookups and span "
                    "bookkeeping take the metrics mutex and lengthen "
                    "the critical section — hoist to a static handle "
                    "or move outside the lock", func.name))
        elif op.kind == OpKind.CALL and op.name and held:
            s = summaries.get(op.name)
            if s is not None and s.may_block:
                findings.append(Finding(
                    func.file, op.line, BLOCKING_UNDER_LOCK,
                    f"call to {op.name} (which may block) while "
                    f"holding {holders()}", func.name))
    return findings


# --------------------------------------------------------------------------
# hot-path-alloc (flat: allocation anywhere in an annotated function)


def _hot_path_scan(func: Function) -> List[Finding]:
    if not func.hot_path:
        return []
    findings = []
    for op in flatten_ops(func.body):
        if op.kind == OpKind.ALLOC:
            findings.append(Finding(
                func.file, op.line, HOT_PATH_ALLOC,
                f"{op.detail or 'allocation'} in PCCHECK_HOT_PATH "
                f"function {func.name}: hot paths must not take the "
                "allocator lock, grow containers, or throw — "
                "preallocate, reuse a scratch member, or justify with "
                "a suppression", func.name))
    return findings


# --------------------------------------------------------------------------
# status-discarded (flat: defs must be followed by a use)


def _status_scan(func: Function) -> List[Finding]:
    findings: List[Finding] = []
    # Events in *tree order* (source order): a branch condition like
    # ``if (s.ok())`` is a use of s even when the frontend only
    # recorded it as the Branch's cond_status.
    events: Dict[str, List[Tuple[str, Op]]] = {}

    def record(var: str, kind: str, op: Op) -> None:
        events.setdefault(var, []).append((kind, op))

    def walk(node: Node) -> Set[str]:
        """Record events; returns vars defined anywhere in @p node."""
        defined: Set[str] = set()
        if isinstance(node, Op):
            if node.kind == OpKind.STATUS_DROP:
                findings.append(Finding(
                    func.file, node.line, STATUS_DISCARDED,
                    f"StorageStatus from {node.detail or 'storage op'} "
                    "discarded as a bare statement: a transient error "
                    "vanishes instead of degrading gracefully — branch "
                    "on it, return it, or wrap it in PCCHECK_MUST",
                    func.name))
            elif node.kind == OpKind.STATUS_DEF and node.name:
                record(node.name, "def", node)
                defined.add(node.name)
            elif node.kind in (OpKind.STATUS_USE, OpKind.RETURN) and \
                    node.name:
                record(node.name, "use", node)
        elif isinstance(node, Seq):
            for child in node.children:
                defined |= walk(child)
        elif isinstance(node, Branch):
            if node.cond_status:
                record(node.cond_status, "use",
                       Op(OpKind.STATUS_USE, node.line,
                          name=node.cond_status))
            then_defined = walk(node.then_branch)
            defined |= then_defined
            if node.else_branch is not None:
                # The two arms are exclusive: a def in the then-arm is
                # not "overwritten" by a def in the else-arm. Barrier
                # the then-arm's defs before walking the else-arm so
                # the linear scan cannot pair them — erring toward a
                # missed finding, never a false one.
                for var in then_defined:
                    record(var, "barrier", Op(OpKind.STATUS_USE,
                                              node.line, name=var))
                else_defined = walk(node.else_branch)
                for var in else_defined:
                    record(var, "barrier", Op(OpKind.STATUS_USE,
                                              node.line, name=var))
                defined |= else_defined
        elif isinstance(node, Loop):
            defined |= walk(node.body)
        return defined

    walk(func.body)
    for var, evs in events.items():
        pending: Optional[Op] = None
        for kind, op in evs:
            if kind == "def":
                if pending is not None:
                    findings.append(_unused_def(func, var, pending))
                pending = op
            else:
                pending = None
        if pending is not None:
            findings.append(_unused_def(func, var, pending))
    return findings


def _unused_def(func: Function, var: str, op: Op) -> Finding:
    return Finding(
        func.file, op.line, STATUS_DISCARDED,
        f"StorageStatus '{var}' assigned here"
        f"{f' from {op.detail}' if op.detail else ''} but never "
        "branched on, returned, or forwarded afterwards: the error is "
        "computed and then ignored", func.name)


# --------------------------------------------------------------------------
# Call summaries (fixpoint)


def compute_summaries(functions: List[Function]) -> Dict[str, Summary]:
    summaries: Dict[str, Summary] = {}
    calls: Dict[str, Set[str]] = {}
    for func in functions:
        ops = flatten_ops(func.body)
        s = Summary(returns_status=func.returns_status)
        callees: Set[str] = set()
        for op in ops:
            if op.kind in (OpKind.WRITE, OpKind.PERSIST):
                s.writes_dirty = True
            if op.kind == OpKind.FENCE:
                s.fences_clean = True
            if op.kind in (OpKind.BLOCK, OpKind.CV_WAIT, OpKind.PERSIST,
                           OpKind.FENCE):
                s.may_block = True
            if op.kind == OpKind.CALL and op.name:
                callees.add(op.name)
        summaries[func.name] = s
        calls[func.name] = callees

    # Fixpoint: may_block propagates over the call graph (hard-
    # blocking only — metrics findings never propagate: a callee that
    # merely touches the registry is not "blocking" at its call site).
    changed = True
    while changed:
        changed = False
        for name, callees in calls.items():
            s = summaries[name]
            if s.may_block:
                continue
            if any(summaries.get(c, Summary()).may_block for c in callees):
                s.may_block = True
                changed = True
    return summaries


# --------------------------------------------------------------------------
# Driver


def check_function(func: Function, summaries: Dict[str, Summary],
                   checks: Iterable[str] = ALL_CHECKS) -> List[Finding]:
    selected = set(checks)
    findings: List[Finding] = []

    if PERSISTENCE_ORDERING in selected or BLOCKING_UNDER_LOCK in selected:
        paths = enumerate_paths(func)
        scans = [flatten_ops(func.body)] if paths is None else paths
        seen: Set[Tuple] = set()
        for ops in scans:
            path_findings: List[Finding] = []
            if PERSISTENCE_ORDERING in selected:
                path_findings += _ordering_scan(ops, func, summaries)
            if BLOCKING_UNDER_LOCK in selected:
                path_findings += _blocking_scan(ops, func, summaries)
            for f in path_findings:
                key = (f.line, f.check, f.message)
                if key not in seen:
                    seen.add(key)
                    findings.append(f)

    if HOT_PATH_ALLOC in selected:
        findings += _hot_path_scan(func)
    if STATUS_DISCARDED in selected:
        findings += _status_scan(func)
    return findings


def analyze(functions: List[Function],
            checks: Iterable[str] = ALL_CHECKS) -> List[Finding]:
    """Run @p checks over every function; returns sorted findings."""
    summaries = compute_summaries(functions)
    findings: List[Finding] = []
    for func in functions:
        findings.extend(check_function(func, summaries, checks))
    return sorted(findings, key=Finding.sort_key)
