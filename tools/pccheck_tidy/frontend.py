"""clang.cindex frontend: lowers C++ function bodies to the IR.

This is the only module that touches libclang, and it loads it
lazily: ``load_cindex()`` returns None when the bindings or the
shared library are missing, and callers degrade (ctest skips, the CLI
exits with EXIT_SKIPPED). Everything downstream of the lowering —
path walking, checks, suppressions, reporting — is pure Python.

Lowering philosophy: *conservative classification, optimistic
defaults*. An AST construct only becomes an IR op when it matches a
known PCcheck primitive by name AND its trigger token actually
appears in the use-site source line (the line-text guard). The guard
is what keeps macro expansions honest: ``PCCHECK_CHECK(...)`` expands
to an ostringstream and ``LOG_INFO(...)`` to string appends, but the
use-site line contains neither ``new`` nor a container token, so
neither is misattributed to the caller. Anything unrecognized lowers
to nothing (or a bare CALL edge), which errs toward missing an exotic
finding rather than flooding CI with false positives.

Deliberate modeling decisions, shared with checks.py:

 - Lambda bodies become *separate* pseudo-functions (they run later,
   under whatever locks exist at invocation, not at capture). The
   single exception is a lambda passed to retry_storage_op(), which
   invokes it synchronously — that body is inlined into the host so
   the host's summary sees its write/persist/fence sequence.
 - Static-local initializers are skipped entirely: the
   ``static Counter& c = MetricsRegistry::global().counter(...)``
   hoist idiom runs once, so its registry lookup is not a per-call
   metrics op.
 - Calls into the psan observer subsystem produce no CALL edge: psan
   verifies the durability contract, it does not participate in it,
   so its journal writes must not dirty the caller's fence state.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .ir import Branch, Function, Loop, Node, Op, OpKind, Seq

# ---------------------------------------------------------------------------
# Classification tables

PUBLISH_NAMES = {
    "publish_pointer": "publish_pointer()",
    "seal_frame": "seal_frame()",
    "advance_watermark": "advance_watermark()",
    "invalidate_record": "invalidate_record()",
}
PERSIST_NAMES = {"persist_slot_range", "persist", "msync"}
FENCE_NAMES = {"fence"}
# Primitive mutations of persistent bytes. Higher-level writers
# (repair_slot, write_quarantine_bits, ...) are NOT listed: they are
# analyzed functions whose summaries carry their own fence behaviour.
WRITE_NAMES = {"write", "write_slot"}
# Hard-blocking leaf calls. Everything else blocking is reached
# transitively through call summaries.
BLOCK_NAMES = {"sleep_for", "transfer", "transfer_for", "recv", "join"}
CV_WAIT_NAMES = {"wait", "wait_for"}
ALLOC_CALL_NAMES = {"make_unique", "make_shared"}
CONTAINER_MUTATORS = {
    "push_back", "emplace_back", "emplace", "emplace_front", "push_front",
    "resize", "reserve", "insert", "append", "assign",
}
METRIC_LOOKUP_NAMES = {"counter", "gauge", "histogram"}
METRIC_RECORD_NAMES = {"observe"}
CONTAINER_TYPE_RE = re.compile(
    r"\bstd::(vector|deque|map|unordered_map|unordered_set|set|string)\b")
STATUS_TYPE = "StorageStatus"
# Synchronous invokers: a lambda argument runs inline, in the caller.
INLINE_INVOKERS = {"retry_storage_op"}
# Observer subsystems excluded from call-summary effects.
EFFECT_EXCLUDED_COMPONENTS = {"psan"}


def load_cindex():
    """Import clang.cindex and verify libclang actually loads.

    @return the cindex module, or None with a reason printed to
            stderr when unavailable.
    """
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        print("pccheck-tidy: python clang bindings not importable "
              "(pip/apt package python3-clang)", file=sys.stderr)
        return None
    try:
        cindex.Index.create()
    except Exception as exc:  # noqa: BLE001 - cindex raises LibclangError
        # Try a couple of well-known library names before giving up.
        for name in ("libclang.so", "libclang-18.so", "libclang-17.so",
                     "libclang-16.so", "libclang-15.so", "libclang-14.so"):
            try:
                cindex.Config.set_library_file(name)
                cindex.Index.create()
                return cindex
            except Exception:  # noqa: BLE001
                cindex.Config.loaded = False
                continue
        print(f"pccheck-tidy: libclang unavailable: {exc}",
              file=sys.stderr)
        return None
    return cindex


class _FileCache:
    def __init__(self) -> None:
        self._lines: Dict[str, List[str]] = {}

    def line(self, path: str, lineno: int) -> str:
        if path not in self._lines:
            try:
                with open(path, encoding="utf-8",
                          errors="replace") as f:
                    self._lines[path] = f.read().splitlines()
            except OSError:
                self._lines[path] = []
        lines = self._lines[path]
        return lines[lineno - 1] if 0 < lineno <= len(lines) else ""

    def lines(self, path: str) -> List[str]:
        self.line(path, 1)
        return self._lines.get(path, [])


def _tokens_text(cursor) -> str:
    try:
        return "".join(t.spelling for t in cursor.get_tokens())
    except Exception:  # noqa: BLE001 - token fetch can fail on odd extents
        return ""


def qualified_name(cursor) -> str:
    parts: List[str] = []
    c = cursor
    while c is not None and c.kind is not None:
        kind_name = c.kind.name if hasattr(c.kind, "name") else ""
        if kind_name == "TRANSLATION_UNIT":
            break
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def _is_effect_excluded(name: str) -> bool:
    return any(part in EFFECT_EXCLUDED_COMPONENTS
               for part in name.split("::"))


class Lowerer:
    """Lowers one function definition (and its lambdas) to IR."""

    def __init__(self, cindex, files: _FileCache) -> None:
        self.ci = cindex
        self.files = files
        self.K = cindex.CursorKind

    # -- public ------------------------------------------------------------

    def lower_function(self, cursor, hot_override: Optional[bool] = None,
                       name_override: Optional[str] = None
                       ) -> List[Function]:
        """@return the Function for @p cursor plus one per lambda."""
        body = None
        for child in cursor.get_children():
            if child.kind == self.K.COMPOUND_STMT:
                body = child
        loc = cursor.location
        fname = name_override or qualified_name(cursor) or cursor.spelling
        func = Function(
            name=fname,
            file=loc.file.name if loc.file else "<unknown>",
            line=loc.line,
            hot_path=(hot_override if hot_override is not None
                      else self._is_hot(cursor)),
            requires=self._requires(cursor),
            returns_status=STATUS_TYPE in
            (cursor.result_type.spelling or ""),
        )
        self._status_vars: Set[str] = set()
        for child in cursor.get_children():
            if child.kind == self.K.PARM_DECL and \
                    STATUS_TYPE in (child.type.spelling or ""):
                self._status_vars.add(child.spelling)
        self._lambdas: List[Tuple[object, str]] = []
        if body is not None:
            func.body = Seq(self._lower_compound(body))
        out = [func]
        # Lambdas become separate pseudo-functions; they inherit the
        # host's hot-path bit (a hot loop's lambda is the hot loop).
        for lam, lam_name in self._lambdas:
            sub = Lowerer(self.ci, self.files)
            out.extend(sub.lower_function(
                lam, hot_override=func.hot_path, name_override=lam_name))
        return out

    # -- declaration-level scans -------------------------------------------

    def _decl_cursors(self, cursor):
        yield cursor
        try:
            canonical = cursor.canonical
            if canonical is not None and canonical != cursor:
                yield canonical
        except Exception:  # noqa: BLE001
            pass

    def _pre_body_tokens(self, cursor) -> List[str]:
        toks: List[str] = []
        try:
            for tok in cursor.get_tokens():
                if tok.spelling == "{":
                    break
                toks.append(tok.spelling)
        except Exception:  # noqa: BLE001
            pass
        return toks

    def _is_hot(self, cursor) -> bool:
        for c in self._decl_cursors(cursor):
            for child in c.get_children():
                kind_name = child.kind.name if hasattr(child.kind, "name") \
                    else ""
                if kind_name == "ANNOTATE_ATTR" and \
                        child.spelling == "pccheck::hot_path":
                    return True
            if "PCCHECK_HOT_PATH" in self._pre_body_tokens(c):
                return True
        return False

    def _requires(self, cursor) -> Tuple[str, ...]:
        locks: List[str] = []
        for c in self._decl_cursors(cursor):
            toks = self._pre_body_tokens(c)
            for i, tok in enumerate(toks):
                if tok != "PCCHECK_REQUIRES":
                    continue
                depth = 0
                inner: List[str] = []
                for t in toks[i + 1:]:
                    if t == "(":
                        depth += 1
                        if depth == 1:
                            continue
                    elif t == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    if depth >= 1:
                        inner.append(t)
                joined = "".join(inner)
                for lock in joined.split(","):
                    if lock and lock not in locks:
                        locks.append(lock)
        return tuple(locks)

    # -- statement lowering ------------------------------------------------

    def _lower_compound(self, cursor) -> List[Node]:
        nodes: List[Node] = []
        scope_locks: List[Tuple[str, int]] = []
        for child in cursor.get_children():
            lock = self._mutex_lock_decl(child)
            if lock is not None:
                name, line = lock
                nodes.append(Op(OpKind.ACQUIRE, line,
                               detail="MutexLock", name=name))
                scope_locks.append((name, line))
                continue
            nodes.extend(self._lower_stmt(child))
        end_line = cursor.extent.end.line
        for name, _line in reversed(scope_locks):
            nodes.append(Op(OpKind.RELEASE, end_line,
                           detail="scope end", name=name))
        return nodes

    def _mutex_lock_decl(self, cursor) -> Optional[Tuple[str, int]]:
        """DECL_STMT declaring a MutexLock -> (lock expr, line)."""
        if cursor.kind != self.K.DECL_STMT:
            return None
        for child in cursor.get_children():
            if child.kind == self.K.VAR_DECL and \
                    "MutexLock" in (child.type.spelling or ""):
                arg = ""
                text = _tokens_text(child)
                m = re.search(r"[({](.*)[)}]", text)
                if m:
                    arg = m.group(1)
                return (arg or child.spelling, child.location.line)
        return None

    def _lower_stmt(self, cursor) -> List[Node]:
        K = self.K
        kind = cursor.kind
        if kind == K.COMPOUND_STMT:
            return [Seq(self._lower_compound(cursor))]
        if kind == K.IF_STMT:
            return self._lower_if(cursor)
        if kind in (K.WHILE_STMT, K.FOR_STMT, K.DO_STMT,
                    K.CXX_FOR_RANGE_STMT):
            children = list(cursor.get_children())
            if not children:
                return []
            body = children[-1]
            pre: List[Node] = []
            for header in children[:-1]:
                pre.extend(self._lower_stmt(header))
            loop_body = Seq(self._lower_stmt(body))
            return pre + [Loop(loop_body, line=cursor.location.line)]
        if kind == K.RETURN_STMT:
            nodes: List[Node] = []
            ret_name = None
            for child in cursor.get_children():
                nodes.extend(self._lower_expr(child))
                if child.kind == K.DECL_REF_EXPR and \
                        child.spelling in self._status_vars:
                    ret_name = child.spelling
                elif child.kind == K.UNEXPOSED_EXPR:
                    grand = list(child.get_children())
                    if len(grand) == 1 and \
                            grand[0].kind == K.DECL_REF_EXPR and \
                            grand[0].spelling in self._status_vars:
                        ret_name = grand[0].spelling
            nodes.append(Op(OpKind.RETURN, cursor.location.line,
                           name=ret_name))
            return nodes
        if kind == K.DECL_STMT:
            nodes = []
            for child in cursor.get_children():
                if child.kind == K.VAR_DECL:
                    nodes.extend(self._lower_var_decl(child))
                else:
                    nodes.extend(self._lower_stmt(child))
            return nodes
        if kind in (K.SWITCH_STMT, K.CXX_TRY_STMT, K.CXX_CATCH_STMT,
                    K.CASE_STMT, K.DEFAULT_STMT, K.LABEL_STMT):
            nodes = []
            for child in cursor.get_children():
                nodes.extend(self._lower_stmt(child))
            return nodes
        if kind in (K.BREAK_STMT, K.CONTINUE_STMT, K.NULL_STMT):
            return []
        # Expression statement (or anything else): lower as expression,
        # with bare-statement StorageStatus drop detection.
        nodes = self._lower_expr(cursor)
        if self._is_bare_status_call(cursor):
            nodes.append(Op(
                OpKind.STATUS_DROP, cursor.location.line,
                detail=f"{cursor.spelling or 'call'}()"))
        return nodes

    def _is_bare_status_call(self, cursor) -> bool:
        if cursor.kind != self.K.CALL_EXPR:
            return False
        if cursor.spelling == "operator=":
            return False
        return STATUS_TYPE in (cursor.type.spelling or "")

    def _lower_if(self, cursor) -> List[Node]:
        children = list(cursor.get_children())
        if not children:
            return []
        cond = children[0]
        then_c = children[1] if len(children) > 1 else None
        else_c = children[2] if len(children) > 2 else None
        nodes = self._lower_expr(cond)
        var, true_ok = self._status_condition(cond)
        then_node = Seq(self._lower_stmt(then_c)) if then_c is not None \
            else Seq([])
        else_node = Seq(self._lower_stmt(else_c)) if else_c is not None \
            else None
        nodes.append(Branch(then_branch=then_node, else_branch=else_node,
                            cond_status=var, cond_true_ok=true_ok,
                            line=cursor.location.line))
        return nodes

    def _status_condition(self, cond) -> Tuple[Optional[str], bool]:
        """Match conditions of the exact shape s.ok() / !s.ok()."""
        text = _tokens_text(cond)
        while text.startswith("(") and text.endswith(")"):
            text = text[1:-1]
        negated = False
        if text.startswith("!"):
            negated = True
            text = text[1:]
        m = re.fullmatch(r"(\w+)\.ok\(\)", text)
        if m and m.group(1) in self._status_vars:
            return m.group(1), not negated
        return None, True

    # -- declarations ------------------------------------------------------

    def _lower_var_decl(self, cursor) -> List[Node]:
        K = self.K
        type_spelling = cursor.type.spelling or ""
        line = cursor.location.line
        file = cursor.location.file.name if cursor.location.file else ""
        line_text = self.files.line(file, line)
        is_static = False
        try:
            is_static = cursor.storage_class == \
                self.ci.StorageClass.STATIC
        except Exception:  # noqa: BLE001
            pass
        if is_static:
            # The static-local hoist idiom: the initializer runs once
            # under the C++ static-init guard, so its registry lookup
            # or allocation is not a per-call op.
            return []

        nodes: List[Node] = []
        init_children = list(cursor.get_children())
        for child in init_children:
            if child.kind not in (K.TYPE_REF, K.NAMESPACE_REF,
                                  K.TEMPLATE_REF):
                nodes.extend(self._lower_expr(child))

        if STATUS_TYPE in type_spelling:
            self._status_vars.add(cursor.spelling)
            # An initializer-less declaration (``StorageStatus s;`` —
            # default success, assigned in both arms of a later if)
            # computes nothing, so losing it is not a discarded error.
            has_init = any(c.kind not in (K.TYPE_REF, K.NAMESPACE_REF,
                                          K.TEMPLATE_REF)
                           for c in init_children)
            if has_init:
                nodes.append(Op(OpKind.STATUS_DEF, line,
                               detail=self._init_callee(init_children),
                               name=cursor.spelling))
            return nodes
        if "StageSpan" in type_spelling and "StageSpan" in line_text:
            nodes.append(Op(OpKind.METRIC, line,
                           detail="StageSpan construction"))
            return nodes
        if CONTAINER_TYPE_RE.search(type_spelling) and \
                "&" not in type_spelling and \
                cursor.spelling and cursor.spelling in line_text and \
                any(c.kind not in (K.TYPE_REF, K.NAMESPACE_REF,
                                   K.TEMPLATE_REF)
                    for c in init_children):
            nodes.append(Op(
                OpKind.ALLOC, line,
                detail=f"container construction "
                       f"({type_spelling.split('<')[0].strip()})"))
        return nodes

    def _init_callee(self, children) -> str:
        K = self.K
        stack = list(children)
        while stack:
            c = stack.pop(0)
            if c.kind == K.CALL_EXPR and c.spelling and \
                    c.spelling != "operator=":
                return f"{c.spelling}()"
            stack.extend(list(c.get_children()))
        return ""

    # -- expressions -------------------------------------------------------

    def _lower_expr(self, cursor) -> List[Node]:
        K = self.K
        kind = cursor.kind
        line = cursor.location.line
        file = cursor.location.file.name if cursor.location.file else ""
        line_text = self.files.line(file, line)

        if kind == K.LAMBDA_EXPR:
            lam_name = f"<lambda@{file.split(os.sep)[-1]}:{line}>"
            self._lambdas.append((cursor, lam_name))
            return []

        if kind == K.CXX_NEW_EXPR:
            nodes = []
            for child in cursor.get_children():
                nodes.extend(self._lower_expr(child))
            if "new" in line_text:
                nodes.append(Op(OpKind.ALLOC, line,
                               detail="new-expression"))
            return nodes

        if kind == K.CXX_THROW_EXPR:
            nodes = []
            for child in cursor.get_children():
                nodes.extend(self._lower_expr(child))
            if "throw" in line_text:
                nodes.append(Op(OpKind.ALLOC, line,
                               detail="throw (unwinding + exception "
                                      "object)"))
            return nodes

        if kind == K.DECL_REF_EXPR:
            if cursor.spelling in self._status_vars:
                return [Op(OpKind.STATUS_USE, line,
                           name=cursor.spelling)]
            return []

        if kind == K.VAR_DECL:
            return self._lower_var_decl(cursor)

        if kind == K.CALL_EXPR:
            return self._lower_call(cursor, line, line_text)

        # Token-level assignment detection for `s = expr` on tracked
        # status variables (covers BINARY_OPERATOR representations).
        if kind == K.BINARY_OPERATOR:
            assign = self._try_status_assign(cursor)
            if assign is not None:
                return assign

        nodes: List[Node] = []
        for child in cursor.get_children():
            nodes.extend(self._lower_expr(child))
        return nodes

    def _try_status_assign(self, cursor) -> Optional[List[Node]]:
        toks = []
        try:
            for i, tok in enumerate(cursor.get_tokens()):
                toks.append(tok.spelling)
                if i >= 2:
                    break
        except Exception:  # noqa: BLE001
            return None
        if len(toks) >= 2 and toks[0] in self._status_vars and \
                toks[1] == "=":
            nodes: List[Node] = []
            children = list(cursor.get_children())
            skipped_lhs = False
            for child in children:
                if not skipped_lhs and \
                        child.kind == self.K.DECL_REF_EXPR and \
                        child.spelling == toks[0]:
                    skipped_lhs = True
                    continue
                nodes.extend(self._lower_expr(child))
            nodes.append(Op(OpKind.STATUS_DEF, cursor.location.line,
                           detail=self._init_callee(children),
                           name=toks[0]))
            return nodes
        return None

    def _first_arg_text(self, cursor) -> str:
        try:
            args = list(cursor.get_arguments())
        except Exception:  # noqa: BLE001
            args = []
        if args:
            return _tokens_text(args[0])
        return ""

    def _lower_call(self, cursor, line: int, line_text: str) -> List[Node]:
        K = self.K
        name = cursor.spelling or ""

        # `s = ...` over a class type shows up as operator= CALL_EXPR.
        if name == "operator=":
            assign = self._try_status_assign(cursor)
            if assign is not None:
                return assign
            nodes = []
            for child in cursor.get_children():
                nodes.extend(self._lower_expr(child))
            return nodes

        # Synchronous invokers run their lambda argument inline.
        if name in INLINE_INVOKERS:
            nodes: List[Node] = []
            for child in cursor.get_children():
                if child.kind == K.LAMBDA_EXPR:
                    for grand in child.get_children():
                        if grand.kind == K.COMPOUND_STMT:
                            nodes.append(Seq(self._lower_compound(grand)))
                elif child.kind == K.UNEXPOSED_EXPR:
                    lams = [g for g in child.get_children()
                            if g.kind == K.LAMBDA_EXPR]
                    if lams:
                        for lam in lams:
                            for grand in lam.get_children():
                                if grand.kind == K.COMPOUND_STMT:
                                    nodes.append(
                                        Seq(self._lower_compound(grand)))
                    else:
                        nodes.extend(self._lower_expr(child))
                else:
                    nodes.extend(self._lower_expr(child))
            return nodes

        # Arguments first (including the implicit object argument):
        # their ops happen before the call.
        nodes = []
        for child in cursor.get_children():
            nodes.extend(self._lower_expr(child))

        if name in PUBLISH_NAMES:
            nodes.append(Op(OpKind.PUBLISH, line,
                           detail=PUBLISH_NAMES[name]))
        elif name in FENCE_NAMES:
            nodes.append(Op(OpKind.FENCE, line, detail="fence()"))
        elif name in PERSIST_NAMES:
            nodes.append(Op(OpKind.PERSIST, line, detail=f"{name}()"))
        elif name in WRITE_NAMES and (
                name != "write" or
                "Device" in self._member_base_type(cursor) or
                "Storage" in self._member_base_type(cursor)):
            nodes.append(Op(OpKind.WRITE, line, detail=f"{name}()"))
        elif name in BLOCK_NAMES and name in line_text:
            nodes.append(Op(OpKind.BLOCK, line, detail=f"{name}()"))
        elif name in CV_WAIT_NAMES and name in line_text:
            released = self._first_arg_text(cursor)
            nodes.append(Op(OpKind.CV_WAIT, line,
                           detail=f"{name}()", released=released or None))
        elif name in ALLOC_CALL_NAMES and name in line_text:
            nodes.append(Op(OpKind.ALLOC, line, detail=f"{name}()"))
        elif name in CONTAINER_MUTATORS and name in line_text and \
                self._object_is_container(cursor):
            nodes.append(Op(OpKind.ALLOC, line,
                           detail=f"container growth ({name})"))
        elif name in METRIC_LOOKUP_NAMES and f"{name}(" in line_text and \
                self._object_is_registry(cursor):
            nodes.append(Op(OpKind.METRIC, line,
                           detail=f"MetricsRegistry::{name}() lookup"))
        elif name in METRIC_RECORD_NAMES and f"{name}(" in line_text and \
                self._object_is_histogram(cursor):
            nodes.append(Op(OpKind.METRIC, line,
                           detail="LatencyHistogram::observe()"))
        else:
            callee = cursor.referenced
            if callee is not None:
                qname = qualified_name(callee)
                if qname and not _is_effect_excluded(qname):
                    nodes.append(Op(OpKind.CALL, line, name=qname))
        return nodes

    def _object_type(self, cursor) -> str:
        children = list(cursor.get_children())
        if not children:
            return ""
        base = children[0]
        while base.kind == self.K.MEMBER_REF_EXPR:
            inner = list(base.get_children())
            if not inner:
                break
            return base.type.spelling or ""
        return base.type.spelling or ""

    def _member_base_type(self, cursor) -> str:
        """Type of the object a member call is invoked on."""
        children = list(cursor.get_children())
        if not children:
            return ""
        member = children[0]
        if member.kind == self.K.MEMBER_REF_EXPR:
            inner = list(member.get_children())
            if inner:
                return inner[0].type.spelling or ""
        return member.type.spelling or ""

    def _object_is_container(self, cursor) -> bool:
        return bool(CONTAINER_TYPE_RE.search(
            self._member_base_type(cursor)))

    def _object_is_registry(self, cursor) -> bool:
        return "MetricsRegistry" in self._member_base_type(cursor)

    def _object_is_histogram(self, cursor) -> bool:
        return "LatencyHistogram" in self._member_base_type(cursor)


# ---------------------------------------------------------------------------
# Translation-unit driver


FUNCTION_KIND_NAMES = {
    "FUNCTION_DECL", "CXX_METHOD", "CONSTRUCTOR", "DESTRUCTOR",
    "FUNCTION_TEMPLATE", "CONVERSION_FUNCTION",
}
CONTAINER_KIND_NAMES = {
    "NAMESPACE", "CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE",
    "CLASS_TEMPLATE_PARTIAL_SPECIALIZATION", "UNEXPOSED_DECL",
    "LINKAGE_SPEC",
}


def lower_translation_unit(cindex, tu, src_root: str,
                           files: Optional[_FileCache] = None,
                           seen: Optional[Set[Tuple[str, int, str]]] = None
                           ) -> List[Function]:
    """All Functions defined under @p src_root in @p tu.

    @param seen cross-TU dedup set of (file, line, name) — header-
                defined functions appear in many TUs but are lowered
                once.
    """
    files = files or _FileCache()
    seen = seen if seen is not None else set()
    src_root = os.path.realpath(src_root)
    out: List[Function] = []

    def visit(cursor) -> None:
        kind_name = cursor.kind.name if hasattr(cursor.kind, "name") else ""
        if kind_name in CONTAINER_KIND_NAMES or \
                kind_name == "TRANSLATION_UNIT":
            for child in cursor.get_children():
                visit(child)
            return
        if kind_name not in FUNCTION_KIND_NAMES:
            return
        if not cursor.is_definition():
            return
        loc = cursor.location
        if loc.file is None:
            return
        path = os.path.realpath(loc.file.name)
        if not path.startswith(src_root + os.sep):
            return
        key = (path, loc.line, cursor.spelling)
        if key in seen:
            return
        seen.add(key)
        try:
            out.extend(Lowerer(cindex, files).lower_function(cursor))
        except Exception as exc:  # noqa: BLE001 - keep the sweep alive
            print(f"pccheck-tidy: warning: failed to lower "
                  f"{path}:{loc.line} {cursor.spelling}: {exc}",
                  file=sys.stderr)

    visit(tu.cursor)
    return out


def parse_source(cindex, path: str, args: Sequence[str]):
    """Parse one TU; returns (tu, [diagnostic strings])."""
    index = cindex.Index.create()
    tu = index.parse(path, args=list(args))
    errors = [str(d) for d in tu.diagnostics
              if d.severity >= cindex.Diagnostic.Error]
    return tu, errors
