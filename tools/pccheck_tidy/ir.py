"""Statement-tree IR for pccheck-tidy.

The frontend (frontend.py) lowers each function body from the clang
AST into this IR; the checks (checks.py) only ever see the IR, which
keeps every analysis unit-testable without libclang.

The IR is deliberately small. A function body is a tree of:

  Seq(children)       straight-line sequence
  Branch(...)         two-way branch; when the condition is a test of
                      a tracked StorageStatus variable (``s.ok()`` or
                      ``!s.ok()``) the branch records which variable
                      and polarity so the path walker can prune
                      infeasible paths
  Loop(body)          any loop; the walker unrolls 0/1/2 iterations
  Op(...)             leaf operation

Ops carry a *kind* (OpKind), the 1-based source line, a short human
detail string, and kind-specific payload fields:

  name       status variable (STATUS_DEF/STATUS_USE), lock expression
             (ACQUIRE/RELEASE/CV_WAIT), or callee name (CALL)
  released   CV_WAIT only: the lock expression the wait releases
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


class OpKind:
    """Leaf-operation kinds. Plain strings so IR dumps read well."""

    WRITE = "write"            # mutates persistent bytes (write/write_slot)
    PERSIST = "persist"        # persist_slot_range / persist / msync
    FENCE = "fence"            # fence()
    PUBLISH = "publish"        # publish_pointer/seal_frame/
    #                            advance_watermark/invalidate_record
    ALLOC = "alloc"            # heap alloc / container growth / throw
    BLOCK = "block"            # hard-blocking call (sleep, transfer, join)
    METRIC = "metric"          # metrics/trace op (StageSpan, observe,
    #                            registry lookup)
    ACQUIRE = "acquire"        # MutexLock ctor / mu.lock()
    RELEASE = "release"        # MutexLock scope end / mu.unlock()
    CV_WAIT = "cv_wait"        # cv.wait(mu): blocks, releases `released`
    STATUS_DEF = "status_def"  # StorageStatus var assigned
    STATUS_USE = "status_use"  # status var branched on / forwarded
    STATUS_DROP = "status_drop"  # status-returning call as bare statement
    CALL = "call"              # call into another analyzed function
    RETURN = "return"          # return statement (name = returned var)


ALL_OP_KINDS = frozenset(
    v for k, v in vars(OpKind).items() if not k.startswith("_"))


@dataclass
class Op:
    kind: str
    line: int
    detail: str = ""
    name: Optional[str] = None
    released: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ALL_OP_KINDS:
            raise ValueError(f"unknown OpKind: {self.kind!r}")


@dataclass
class Seq:
    children: List["Node"] = field(default_factory=list)


@dataclass
class Branch:
    """Two-way branch.

    cond_status: name of the StorageStatus variable tested, when the
        condition is (a negation of) ``var.ok()``; None otherwise.
    cond_true_ok: with cond_status set, the value ``var.ok()`` must
        have for the *then* branch to run (False for ``if (!s.ok())``).
    """

    then_branch: "Node"
    else_branch: Optional["Node"] = None
    cond_status: Optional[str] = None
    cond_true_ok: bool = True
    line: int = 0


@dataclass
class Loop:
    body: "Node"
    line: int = 0


Node = Union[Op, Seq, Branch, Loop]


@dataclass
class Function:
    """One analyzed function (or lambda, flattened into its host)."""

    name: str
    file: str
    line: int
    body: Seq = field(default_factory=Seq)
    hot_path: bool = False
    # Lock expressions required held at entry (PCCHECK_REQUIRES).
    requires: Tuple[str, ...] = ()
    # True when the function's return type is StorageStatus — callers
    # dropping the result matter.
    returns_status: bool = False


def flatten_ops(node: Node) -> List[Op]:
    """All leaf ops in source order, ignoring control flow."""
    out: List[Op] = []

    def walk(n: Node) -> None:
        if isinstance(n, Op):
            out.append(n)
        elif isinstance(n, Seq):
            for child in n.children:
                walk(child)
        elif isinstance(n, Branch):
            walk(n.then_branch)
            if n.else_branch is not None:
                walk(n.else_branch)
        elif isinstance(n, Loop):
            walk(n.body)

    walk(node)
    return out


def dump(node: Node, indent: int = 0) -> str:
    """Debug pretty-printer for IR trees."""
    pad = "  " * indent
    if isinstance(node, Op):
        bits = [node.kind]
        if node.name:
            bits.append(f"name={node.name}")
        if node.released:
            bits.append(f"released={node.released}")
        if node.detail:
            bits.append(f"({node.detail})")
        return f"{pad}@{node.line} {' '.join(bits)}"
    if isinstance(node, Seq):
        lines = [f"{pad}seq"]
        lines += [dump(c, indent + 1) for c in node.children]
        return "\n".join(lines)
    if isinstance(node, Branch):
        cond = "?"
        if node.cond_status:
            cond = f"{'' if node.cond_true_ok else '!'}" \
                   f"{node.cond_status}.ok()"
        lines = [f"{pad}branch@{node.line} {cond}", dump(node.then_branch,
                                                         indent + 1)]
        if node.else_branch is not None:
            lines.append(f"{pad}else")
            lines.append(dump(node.else_branch, indent + 1))
        return "\n".join(lines)
    if isinstance(node, Loop):
        return f"{pad}loop@{node.line}\n" + dump(node.body, indent + 1)
    raise TypeError(f"not an IR node: {node!r}")


def count_paths(node: Node, loop_unrolls: Sequence[int] = (0, 1, 2)) -> int:
    """Number of acyclic paths the walker would enumerate (pre-cap)."""
    if isinstance(node, Op):
        return 1
    if isinstance(node, Seq):
        total = 1
        for child in node.children:
            total *= count_paths(child, loop_unrolls)
        return total
    if isinstance(node, Branch):
        other = (count_paths(node.else_branch, loop_unrolls)
                 if node.else_branch is not None else 1)
        return count_paths(node.then_branch, loop_unrolls) + other
    if isinstance(node, Loop):
        body = count_paths(node.body, loop_unrolls)
        return sum(body ** n for n in loop_unrolls)
    raise TypeError(f"not an IR node: {node!r}")
