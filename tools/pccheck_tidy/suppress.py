"""Unified suppression-comment parsing for pccheck-tidy and pccheck-lint.

One syntax for both tools:

  // <tool>: disable=<check>[,<check>...] -- <justification>

where <tool> is ``pccheck-tidy`` or ``pccheck-lint``. A suppression on
its own comment line applies to the next code line (consecutive
comment lines chain through); a trailing suppression applies to its
own line. The justification after ``--`` is mandatory — a suppression
that omits it does not suppress anything and is itself reported as a
``bad-suppression`` finding, so every silenced diagnostic carries its
reason in the diff.
"""

from __future__ import annotations

import re
from typing import Dict, List, NamedTuple, Set, Tuple

BAD_SUPPRESSION = "bad-suppression"

_DIRECTIVE_RE = re.compile(
    r"//\s*(?P<tool>pccheck-(?:tidy|lint))\s*:\s*disable\s*=\s*"
    r"(?P<checks>[A-Za-z0-9_,\s-]+?)"
    r"(?:\s*--\s*(?P<why>.*?))?\s*$")


class BadSuppression(NamedTuple):
    line: int  # 1-based
    message: str


class SuppressionSet(NamedTuple):
    """Parsed suppressions for one file.

    by_line maps a 1-based *code* line to the set of check names
    suppressed there. malformed lists directives that do not suppress
    (missing justification, empty check list).
    """

    by_line: Dict[int, Set[str]]
    malformed: List[BadSuppression]

    def is_suppressed(self, line: int, check: str) -> bool:
        return check in self.by_line.get(line, ())


def _is_pure_comment(line: str) -> bool:
    stripped = line.lstrip()
    return stripped.startswith("//") or stripped.startswith("*") or \
        stripped.startswith("/*")


def parse_suppressions(lines: List[str], tool: str) -> SuppressionSet:
    """Parse suppression directives for @p tool out of @p lines.

    @param lines  file contents, split into lines (no newlines)
    @param tool   "pccheck-tidy" or "pccheck-lint"
    """
    by_line: Dict[int, Set[str]] = {}
    malformed: List[BadSuppression] = []
    # Pending checks from standalone comment lines, waiting for the
    # next code line.
    pending: Set[str] = set()

    for i, line in enumerate(lines):
        lineno = i + 1
        match = _DIRECTIVE_RE.search(line)
        directive_checks: Set[str] = set()
        if match and match.group("tool") == tool:
            checks = {c.strip() for c in match.group("checks").split(",")
                      if c.strip()}
            why = (match.group("why") or "").strip()
            if not checks:
                malformed.append(BadSuppression(
                    lineno, f"{tool} suppression names no checks"))
            elif not why:
                malformed.append(BadSuppression(
                    lineno,
                    f"{tool} suppression for "
                    f"{', '.join(sorted(checks))} has no justification: "
                    "append \" -- <reason>\" (mandatory)"))
            else:
                directive_checks = checks

        if _is_pure_comment(line):
            pending |= directive_checks
            continue

        # A code line: it receives any pending standalone suppressions
        # plus its own trailing directive.
        effective = pending | directive_checks
        if line.strip() and effective:
            by_line.setdefault(lineno, set()).update(effective)
            pending = set()
        elif not line.strip():
            # Blank lines break the comment→code chain so a stray
            # suppression cannot silently latch onto distant code.
            if pending:
                pending = set()
        # else: code line with no suppressions — also breaks chains.

    return SuppressionSet(by_line=by_line, malformed=malformed)


def filter_findings(findings, suppressions: SuppressionSet,
                    line_of, check_of) -> Tuple[list, list]:
    """Split @p findings into (kept, suppressed) via the parsed set.

    @param line_of   callable finding -> 1-based line
    @param check_of  callable finding -> check/rule name
    """
    kept, dropped = [], []
    for f in findings:
        if suppressions.is_suppressed(line_of(f), check_of(f)):
            dropped.append(f)
        else:
            kept.append(f)
    return kept, dropped
