// pccheck-tidy fixture: every StorageStatus is branched on, returned,
// or forwarded — including the declare-then-assign-in-both-arms idiom
// (exclusive arms are not a dead store) and a status forwarded via
// return. Must analyze clean.
#include <cstdint>

#include "core/slot_store.h"
#include "storage/status.h"

namespace pccheck_tidy_fixture {

using pccheck::Bytes;
using pccheck::SlotStore;
using pccheck::StorageStatus;

StorageStatus
write_one_of(SlotStore& store, bool to_alt, const std::uint8_t* src,
             Bytes len)
{
    StorageStatus status;
    if (to_alt) {
        status = store.write_slot(1, 0, src, len);
    } else {
        status = store.write_slot(0, 0, src, len);
    }
    if (!status.ok()) {
        return status;
    }
    status = store.persist_slot_range(0, 0, len);
    return status;
}

}  // namespace pccheck_tidy_fixture
