// pccheck-tidy fixture: the turnstile publish — claim the write token
// under the mutex, do all device I/O with the mutex released, relock
// only to commit the counter and wake waiters. This is the shape the
// real publish_pointer()/quarantine paths use; it must analyze clean
// for both blocking-under-lock and persistence-ordering.
#include <cstdint>

#include "core/slot_store.h"
#include "storage/device.h"
#include "storage/status.h"
#include "util/annotations.h"

namespace pccheck_tidy_fixture {

using pccheck::CheckpointPointer;
using pccheck::CondVar;
using pccheck::Mutex;
using pccheck::MutexLock;
using pccheck::StorageDevice;
using pccheck::StorageStatus;

class TurnstileRecordWriter {
  public:
    explicit TurnstileRecordWriter(StorageDevice& dev) : dev_(dev) {}

    StorageStatus publish(const CheckpointPointer& ptr);

  private:
    StorageDevice& dev_;
    Mutex mu_;
    CondVar cv_;
    bool writing_ PCCHECK_GUARDED_BY(mu_) = false;
    std::uint64_t last_counter_ PCCHECK_GUARDED_BY(mu_) = 0;
};

StorageStatus
TurnstileRecordWriter::publish(const CheckpointPointer& ptr)
{
    {
        MutexLock lock(mu_);
        while (writing_) {
            cv_.wait(mu_);
        }
        if (ptr.counter <= last_counter_) {
            return StorageStatus::success();
        }
        writing_ = true;
    }

    // Device I/O runs with mu_ released: concurrent committers only
    // contend for the claim/commit instants.
    StorageStatus status = dev_.write(0, &ptr, sizeof(ptr));
    if (status.ok()) {
        status = dev_.persist(0, sizeof(ptr));
    }
    if (status.ok()) {
        status = dev_.fence();
    }

    {
        MutexLock lock(mu_);
        writing_ = false;
        if (status.ok()) {
            last_counter_ = ptr.counter;
        }
        cv_.notify_all();
    }
    return status;
}

}  // namespace pccheck_tidy_fixture
