// pccheck-tidy fixture: the static-handle hoist idiom. The registry
// lookup runs once under the C++ static-init guard; the per-call work
// under the mutex is a single relaxed atomic add, which is fine to
// keep inside the critical section. Must analyze clean.
#include <cstdint>

#include "util/annotations.h"
#include "util/metrics.h"

namespace pccheck_tidy_fixture {

using pccheck::Counter;
using pccheck::MetricsRegistry;
using pccheck::Mutex;
using pccheck::MutexLock;

class HoistedCommitTracker {
  public:
    void on_commit(std::uint64_t bytes);

  private:
    Mutex mu_;
    std::uint64_t committed_bytes_ PCCHECK_GUARDED_BY(mu_) = 0;
};

void
HoistedCommitTracker::on_commit(std::uint64_t bytes)
{
    static Counter& commit_bytes =
        MetricsRegistry::global().counter("fixture.commit.bytes");
    MutexLock lock(mu_);
    committed_bytes_ += bytes;
    commit_bytes.add(bytes);
}

}  // namespace pccheck_tidy_fixture
