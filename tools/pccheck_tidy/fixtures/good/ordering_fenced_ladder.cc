// pccheck-tidy fixture: the canonical commit ladder. Every publish
// path is dominated by a fence, threaded through the usual
// StorageStatus ok-checks — the path-sensitive walker must prove the
// only path reaching publish_pointer() is the fully-fenced one.
#include <cstdint>

#include "core/slot_store.h"
#include "storage/status.h"

namespace pccheck_tidy_fixture {

using pccheck::Bytes;
using pccheck::CheckpointPointer;
using pccheck::SlotStore;
using pccheck::StorageStatus;

StorageStatus
publish_fenced(SlotStore& store, const std::uint8_t* src, Bytes len)
{
    StorageStatus status = store.write_slot(0, 0, src, len);
    if (!status.ok()) {
        return status;
    }
    status = store.persist_slot_range(0, 0, len);
    if (!status.ok()) {
        return status;
    }
    status = store.device().fence();
    if (!status.ok()) {
        return status;
    }
    return store.publish_pointer(CheckpointPointer{1, 0, len, 1, 0});
}

// The ok-ladder variant the real tree uses (nested success guards
// instead of early returns) must also analyze clean: the publish is
// only reachable on the all-ok path, which passed through fence().
StorageStatus
publish_fenced_nested(SlotStore& store, const std::uint8_t* src, Bytes len)
{
    StorageStatus status = store.write_slot(0, 0, src, len);
    if (status.ok()) {
        status = store.persist_slot_range(0, 0, len);
    }
    if (status.ok()) {
        status = store.device().fence();
    }
    if (!status.ok()) {
        return status;
    }
    return store.publish_pointer(CheckpointPointer{2, 0, len, 2, 0});
}

}  // namespace pccheck_tidy_fixture
