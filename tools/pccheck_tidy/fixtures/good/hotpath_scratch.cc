// pccheck-tidy fixture: the scratch-member idiom for hot paths. The
// inner loop reuses a preallocated buffer; the one resize lives on
// the cold first-growth path and carries a justified suppression —
// the file must analyze clean.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/tsa.h"

namespace pccheck_tidy_fixture {

class BatchSummer {
  public:
    explicit BatchSummer(std::size_t capacity) { scratch_.resize(capacity); }

    PCCHECK_HOT_PATH std::uint64_t sum(const std::uint64_t* words,
                                       std::size_t count);

  private:
    std::vector<std::uint64_t> scratch_;
};

PCCHECK_HOT_PATH std::uint64_t
BatchSummer::sum(const std::uint64_t* words, std::size_t count)
{
    if (count > scratch_.size()) {
        // pccheck-tidy: disable=hot-path-alloc -- grows only on the
        // first oversized batch; steady state reuses the buffer.
        scratch_.resize(count);
    }
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
        scratch_[i] = words[i];
        total += scratch_[i];
    }
    return total;
}

}  // namespace pccheck_tidy_fixture
