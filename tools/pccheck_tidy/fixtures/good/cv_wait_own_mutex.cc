// pccheck-tidy fixture: CondVar::wait(mu) releases the mutex it is
// given for the duration of the sleep — waiting on your OWN mutex in
// a predicate loop is the correct turnstile idiom and must not be
// reported as blocking-under-lock.
#include <cstdint>

#include "util/annotations.h"

namespace pccheck_tidy_fixture {

using pccheck::CondVar;
using pccheck::Mutex;
using pccheck::MutexLock;

class DrainBarrier {
  public:
    void arrive();
    void wait_drained();

  private:
    Mutex mu_;
    CondVar cv_;
    std::uint64_t inflight_ PCCHECK_GUARDED_BY(mu_) = 0;
};

void
DrainBarrier::arrive()
{
    MutexLock lock(mu_);
    if (inflight_ > 0) {
        --inflight_;
    }
    cv_.notify_all();
}

void
DrainBarrier::wait_drained()
{
    MutexLock lock(mu_);
    while (inflight_ != 0) {
        cv_.wait(mu_);
    }
}

}  // namespace pccheck_tidy_fixture
