// pccheck-tidy fixture: regression shape for the before_update()
// StageSpan-under-lock fix — constructing a span inside the critical
// section puts tracer bookkeeping (and two clock reads) on every
// waiter's critical path.
#include <cstdint>

#include "obs/stage.h"
#include "util/annotations.h"
#include "util/metrics.h"

namespace pccheck_tidy_fixture {

using pccheck::LatencyHistogram;
using pccheck::MetricsRegistry;
using pccheck::Mutex;
using pccheck::MutexLock;
using pccheck::StageSpan;

class SpanUnderLock {
  public:
    void update(std::uint64_t iteration);

  private:
    Mutex mu_;
    std::uint64_t iteration_ PCCHECK_GUARDED_BY(mu_) = 0;
};

void
SpanUnderLock::update(std::uint64_t iteration)
{
    static LatencyHistogram& hist =
        MetricsRegistry::global().histogram("fixture.stage.update");
    MutexLock lock(mu_);
    // expect: [blocking-under-lock]
    StageSpan span("fixture.update", hist, "iteration", iteration);
    iteration_ = iteration;
}

}  // namespace pccheck_tidy_fixture
