// pccheck-tidy fixture: a StorageStatus computed and then silently
// overwritten — the write's error is lost before anyone branches on
// it, so a transient device glitch becomes invisible corruption.
#include <cstdint>

#include "core/slot_store.h"
#include "storage/status.h"

namespace pccheck_tidy_fixture {

using pccheck::Bytes;
using pccheck::SlotStore;
using pccheck::StorageStatus;

StorageStatus
overwrite_unchecked(SlotStore& store, const std::uint8_t* src, Bytes len)
{
    // expect: [status-discarded]
    StorageStatus status = store.write_slot(0, 0, src, len);
    status = store.persist_slot_range(0, 0, len);
    if (!status.ok()) {
        return status;
    }
    return StorageStatus::success();
}

}  // namespace pccheck_tidy_fixture
