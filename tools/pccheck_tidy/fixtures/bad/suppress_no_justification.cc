// pccheck-tidy fixture: a suppression without the mandatory
// " -- <justification>" tail. It must NOT silence the finding it sits
// on, and must itself be reported, so both hot-path-alloc and
// bad-suppression appear for this file.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/tsa.h"

namespace pccheck_tidy_fixture {

PCCHECK_HOT_PATH std::uint64_t
sum_with_unjustified_suppression(const std::uint64_t* words,
                                 std::size_t count)
{
    // expect: [bad-suppression]
    // expect: [hot-path-alloc]
    // pccheck-tidy: disable=hot-path-alloc
    std::vector<std::uint64_t> copy(words, words + count);
    std::uint64_t total = 0;
    for (std::uint64_t w : copy) {
        total += w;
    }
    return total;
}

}  // namespace pccheck_tidy_fixture
