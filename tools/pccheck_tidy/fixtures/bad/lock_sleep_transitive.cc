// pccheck-tidy fixture: transitive blocking — the function holding
// the mutex never blocks directly, but it calls a helper whose
// summary says may_block (Clock::sleep_for), so the sleep lands
// inside the critical section two frames up.
#include <cstdint>

#include "util/annotations.h"
#include "util/clock.h"

namespace pccheck_tidy_fixture {

using pccheck::Clock;
using pccheck::Mutex;
using pccheck::MutexLock;

void
backoff_briefly(const Clock& clock)
{
    clock.sleep_for(0.01);
}

class RetryQueue {
  public:
    explicit RetryQueue(const Clock& clock) : clock_(clock) {}

    void drain();

  private:
    const Clock& clock_;
    Mutex mu_;
    std::uint64_t pending_ PCCHECK_GUARDED_BY(mu_) = 0;
};

void
RetryQueue::drain()
{
    MutexLock lock(mu_);
    while (pending_ > 0) {
        --pending_;
        // expect: [blocking-under-lock]
        backoff_briefly(clock_);
    }
}

}  // namespace pccheck_tidy_fixture
