// pccheck-tidy fixture: regression shape for the by-name metrics
// lookup under a hot mutex (the replication/replica_store counter
// hoists fixed in this PR): MetricsRegistry::counter() takes the
// registry mutex and hashes the name inside the caller's critical
// section.
#include <cstdint>

#include "util/annotations.h"
#include "util/metrics.h"

namespace pccheck_tidy_fixture {

using pccheck::MetricsRegistry;
using pccheck::Mutex;
using pccheck::MutexLock;

class CommitTracker {
  public:
    void on_commit(std::uint64_t bytes);

  private:
    Mutex mu_;
    std::uint64_t committed_bytes_ PCCHECK_GUARDED_BY(mu_) = 0;
};

void
CommitTracker::on_commit(std::uint64_t bytes)
{
    MutexLock lock(mu_);
    committed_bytes_ += bytes;
    // expect: [blocking-under-lock]
    MetricsRegistry::global().counter("fixture.commit.bytes").add(bytes);
}

}  // namespace pccheck_tidy_fixture
