// pccheck-tidy fixture: a StorageStatus-returning call used as a bare
// statement. [[nodiscard]] makes this a compiler warning; pccheck-tidy
// makes it a CI-gating finding, because a dropped storage error turns
// into corrupt recovery state instead of a visible failure.
#include <cstdint>

#include "core/slot_store.h"

namespace pccheck_tidy_fixture {

using pccheck::Bytes;
using pccheck::SlotStore;

void
fire_and_forget(SlotStore& store, const std::uint8_t* src, Bytes len)
{
    // expect: [status-discarded]
    store.write_slot(0, 0, src, len);
}

}  // namespace pccheck_tidy_fixture
