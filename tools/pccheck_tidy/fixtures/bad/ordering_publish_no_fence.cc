// pccheck-tidy fixture: a pointer-record publish reachable with
// un-fenced slot bytes. The write and persist land, but no fence()
// orders them before the record becomes durable — the exact torn
// state PCcheck's commit protocol (§4.1) exists to prevent.
#include <cstdint>

#include "core/slot_store.h"
#include "storage/status.h"

namespace pccheck_tidy_fixture {

using pccheck::Bytes;
using pccheck::CheckpointPointer;
using pccheck::SlotStore;
using pccheck::StorageStatus;

StorageStatus
publish_without_fence(SlotStore& store, const std::uint8_t* src, Bytes len)
{
    StorageStatus status = store.write_slot(0, 0, src, len);
    if (status.ok()) {
        status = store.persist_slot_range(0, 0, len);
    }
    if (!status.ok()) {
        return status;
    }
    // Missing: store.device().fence() between the persist above and
    // the publish below.
    // expect: [persistence-ordering]
    return store.publish_pointer(CheckpointPointer{1, 0, len, 1, 0});
}

}  // namespace pccheck_tidy_fixture
