// pccheck-tidy fixture: allocations inside a PCCHECK_HOT_PATH
// function — each of the four flagged shapes (throw, container
// construction, make_unique, container growth) takes the allocator
// lock or unwinds, which the persist-engine inner loop cannot afford.
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "util/tsa.h"

namespace pccheck_tidy_fixture {

PCCHECK_HOT_PATH std::uint64_t
checksum_batch(const std::uint64_t* words, std::size_t count)
{
    if (words == nullptr) {
        // expect: [hot-path-alloc]
        throw std::invalid_argument("null batch");
    }
    std::vector<std::uint64_t> copy(words, words + count);
    auto boxed_total = std::make_unique<std::uint64_t>(0);
    for (std::uint64_t w : copy) {
        *boxed_total += w;
    }
    copy.push_back(*boxed_total);
    return copy.back();
}

}  // namespace pccheck_tidy_fixture
