// pccheck-tidy fixture: the pre-turnstile publish_pointer() shape —
// the record write, persist, and fence all execute while the
// serializing mutex is held, so every concurrent committer stalls for
// the full device latency (the §5.2 regression the turnstile fixed).
#include <cstdint>

#include "core/slot_store.h"
#include "storage/device.h"
#include "storage/status.h"
#include "util/annotations.h"

namespace pccheck_tidy_fixture {

using pccheck::CheckpointPointer;
using pccheck::Mutex;
using pccheck::MutexLock;
using pccheck::StorageDevice;
using pccheck::StorageStatus;

class LockedRecordWriter {
  public:
    explicit LockedRecordWriter(StorageDevice& dev) : dev_(dev) {}

    StorageStatus publish(const CheckpointPointer& ptr);

  private:
    StorageDevice& dev_;
    Mutex mu_;
    std::uint64_t last_counter_ PCCHECK_GUARDED_BY(mu_) = 0;
};

StorageStatus
LockedRecordWriter::publish(const CheckpointPointer& ptr)
{
    MutexLock lock(mu_);
    if (ptr.counter <= last_counter_) {
        return StorageStatus::success();
    }
    StorageStatus status = dev_.write(0, &ptr, sizeof(ptr));
    if (!status.ok()) {
        return status;
    }
    // expect: [blocking-under-lock]
    status = dev_.persist(0, sizeof(ptr));
    if (!status.ok()) {
        return status;
    }
    status = dev_.fence();
    if (!status.ok()) {
        return status;
    }
    last_counter_ = ptr.counter;
    return StorageStatus::success();
}

}  // namespace pccheck_tidy_fixture
