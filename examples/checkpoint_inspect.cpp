/**
 * @file
 * Checkpoint-device inspection tool (fsck for PCcheck devices):
 * prints the slot layout, both CHECK_ADDR pointer records, validates
 * data CRCs and training-state stamps, and reports which checkpoint
 * recovery would pick.
 *
 * Usage: checkpoint_inspect <device-file>
 * With no argument, creates a demo device, checkpoints into it, and
 * inspects that.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "storage/file_storage.h"
#include "trainsim/training_state.h"
#include "util/crc32.h"
#include "util/metrics.h"

using namespace pccheck;

namespace {

void
inspect(StorageDevice& device)
{
    SlotStore store = SlotStore::open(device);
    std::printf("layout: %u slots x %s (device %s)\n", store.slot_count(),
                format_bytes(store.slot_size()).c_str(),
                format_bytes(device.size()).c_str());

    const auto candidates = store.candidate_pointers();
    if (candidates.empty()) {
        std::printf("pointer records: none valid (empty or torn "
                    "device)\n");
        return;
    }
    std::printf("pointer records (newest first):\n");
    for (const auto& pointer : candidates) {
        std::vector<std::uint8_t> data(pointer.data_len);
        const bool readable =
            store.read_slot(pointer.slot, 0, data.data(), data.size()).ok();
        const bool crc_ok =
            readable && crc32c(data.data(), data.size()) == pointer.data_crc;
        const auto stamped =
            TrainingState::verify_buffer(data.data(), data.size());
        std::printf("  counter=%llu slot=%u iteration=%llu len=%s "
                    "crc=%s stamp=%s\n",
                    static_cast<unsigned long long>(pointer.counter),
                    pointer.slot,
                    static_cast<unsigned long long>(pointer.iteration),
                    format_bytes(pointer.data_len).c_str(),
                    crc_ok ? "ok" : "MISMATCH",
                    stamped.has_value() ? "consistent" : "torn/absent");
    }

    std::vector<std::uint8_t> buffer;
    const auto recovered = recover_to_buffer(device, &buffer);
    if (recovered.has_value()) {
        std::printf("recovery would restore iteration %llu (counter "
                    "%llu, %s)\n",
                    static_cast<unsigned long long>(recovered->iteration),
                    static_cast<unsigned long long>(recovered->counter),
                    format_bytes(recovered->data_len).c_str());
    } else {
        std::printf("recovery would FAIL: no validatable checkpoint\n");
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc > 1) {
        // Inspect an existing device file (mapped at its current
        // size; contents are not modified).
        FILE* probe = std::fopen(argv[1], "rb");
        if (probe == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::fseek(probe, 0, SEEK_END);
        const long size = std::ftell(probe);
        std::fclose(probe);
        if (size <= 0) {
            std::fprintf(stderr, "%s is empty\n", argv[1]);
            return 1;
        }
        std::printf("inspecting %s\n", argv[1]);
        FileStorage device(argv[1], static_cast<Bytes>(size));
        inspect(device);
        return 0;
    }

    // Demo mode: build a device, take a few checkpoints, inspect.
    const Bytes kState = 256 * 1024;
    GpuConfig gpu_config;
    gpu_config.memory_bytes = kState + kMiB;
    gpu_config.pcie_bytes_per_sec = 0;
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, kState);
    const std::string path = "/tmp/pccheck_inspect_demo.ckpt";
    FileStorage device(path, SlotStore::required_size(3, kState));
    {
        PCcheckConfig config;
        PCcheckCheckpointer checkpointer(state, device, config);
        for (std::uint64_t i = 1; i <= 4; ++i) {
            checkpointer.before_update(i);
            state.stamp(i * 100);
            checkpointer.request_checkpoint(i * 100);
        }
        checkpointer.finish();
    }
    std::printf("inspecting demo device %s\n\n", path.c_str());
    inspect(device);
    std::printf("\nmetrics:\n");
    MetricsRegistry::global().dump(std::cout);
    return 0;
}
