/**
 * @file
 * The §3.4 configuration tool as a CLI: profile a model+device combo
 * and print the optimal number of concurrent checkpoints N* and the
 * minimum checkpoint interval f* for a target overhead q.
 *
 * Usage: tuner_tool [model] [overhead]
 *   model    name from Table 3 (default: opt-1.3b)
 *   overhead allowed slowdown q >= 1 (default: 1.05)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/slot_store.h"
#include "core/tuner.h"
#include "storage/mem_storage.h"
#include "storage/throttled_storage.h"
#include "trainsim/models.h"
#include "util/logging.h"

using namespace pccheck;

int
main(int argc, char** argv)
{
    set_log_level(LogLevel::kWarn);
    const std::string model_name = argc > 1 ? argv[1] : "opt-1.3b";
    const double overhead = argc > 2 ? std::atof(argv[2]) : 1.05;
    if (overhead < 1.0) {
        std::fprintf(stderr, "overhead must be >= 1\n");
        return 1;
    }

    const ScaleFactors factors{100.0, 100000.0};
    const ScaledModel model =
        scale_model(model_by_name(model_name), factors);
    std::printf("tuning %s: m=%s t=%.2f ms q=%.2f (bench scale)\n",
                model_name.c_str(),
                format_bytes(model.checkpoint_bytes).c_str(),
                model.iteration_time * 1e3, overhead);

    GpuConfig gpu_config;
    gpu_config.memory_bytes = model.checkpoint_bytes + 4 * kMiB;
    gpu_config.pcie_bytes_per_sec = factors.scale_bandwidth(12.8e9);
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, model.checkpoint_bytes);

    // Storage budget: room for up to 6 concurrent checkpoints.
    const auto ssd = paper_bandwidth(StorageKind::kSsdMsync);
    ThrottledStorage device(
        std::make_unique<MemStorage>(
            SlotStore::required_size(7, model.checkpoint_bytes)),
        factors.scale_bandwidth(ssd.write_bytes_per_sec),
        factors.scale_bandwidth(ssd.persist_bytes_per_sec),
        factors.scale_bandwidth(ssd.read_bytes_per_sec));

    PCcheckConfig base;
    base.writers_per_checkpoint = 3;
    base.per_writer_bytes_per_sec = factors.scale_bandwidth(1.2e9);
    Tuner tuner(base);
    TunerConstraints constraints;
    constraints.storage_budget =
        SlotStore::required_size(7, model.checkpoint_bytes);
    constraints.max_overhead = overhead;

    const TunerResult result = tuner.optimize(
        state, device, constraints, model.iteration_time,
        /*probes_per_n=*/4);

    std::printf("\n%-4s %-12s %-12s\n", "N", "Tw (ms)", "Tw/N (ms)");
    for (const auto& sample : result.samples) {
        std::printf("%-4d %-12.2f %-12.2f%s\n",
                    sample.concurrent_checkpoints, sample.tw * 1e3,
                    sample.tw_over_n * 1e3,
                    sample.concurrent_checkpoints ==
                            result.concurrent_checkpoints
                        ? "  <-- N*"
                        : "");
    }
    std::printf("\noptimal configuration: N*=%d, checkpoint every %llu "
                "iterations (f*)\n",
                result.concurrent_checkpoints,
                static_cast<unsigned long long>(
                    result.checkpoint_interval));
    std::printf("(paper eq. 3: f* = ceil(Tw / (N* q t)))\n");
    return 0;
}
