/**
 * @file
 * Distributed pipeline-parallel training (paper §3.1/§4.1): a
 * BLOOM-7B-style 6-stage pipeline where every node checkpoints its
 * model partition with its own PCcheck orchestrator and all nodes
 * agree on the globally consistent checkpoint via the rank-0
 * protocol.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/cluster.h"
#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "storage/mem_storage.h"
#include "storage/throttled_storage.h"
#include "trainsim/models.h"

using namespace pccheck;

int
main()
{
    const ScaleFactors factors{350.0, 200000.0};
    const ModelSpec& spec = model_by_name("bloom-7b");
    const ScaledModel model = scale_model(spec, factors);
    const int nodes = spec.pipeline_stages;
    const Bytes partition =
        model.checkpoint_bytes / static_cast<Bytes>(nodes);

    std::printf("model %s: %d pipeline stages, partition %s each\n",
                spec.name.c_str(), nodes,
                format_bytes(partition).c_str());

    ClusterConfig config;
    config.nodes = nodes;
    config.stage_time = model.iteration_time;
    config.partition_bytes = partition;
    config.activation_bytes = partition / 64;
    config.gpu.pcie_bytes_per_sec = factors.scale_bandwidth(12.8e9);
    config.network.nic_bytes_per_sec =
        factors.scale_bandwidth(1.88e9);  // the paper's 15 Gbps NIC
    config.network.latency = 0;
    config.coordinate = true;

    PipelineCluster cluster(config);
    const auto ssd = paper_bandwidth(StorageKind::kSsdMsync);
    std::vector<std::unique_ptr<ThrottledStorage>> devices(
        static_cast<std::size_t>(nodes));

    const auto factory =
        [&](const ClusterNode& node) -> PipelineCluster::NodeCheckpointer {
        const auto index = static_cast<std::size_t>(node.rank);
        PCcheckConfig pc;
        pc.concurrent_checkpoints = 2;
        pc.writers_per_checkpoint = 3;
        pc.per_writer_bytes_per_sec = factors.scale_bandwidth(1.2e9);
        devices[index] = std::make_unique<ThrottledStorage>(
            std::make_unique<MemStorage>(
                SlotStore::required_size(3, partition)),
            factors.scale_bandwidth(ssd.write_bytes_per_sec),
            factors.scale_bandwidth(ssd.persist_bytes_per_sec),
            factors.scale_bandwidth(ssd.read_bytes_per_sec));
        auto checkpointer = std::make_unique<PCcheckCheckpointer>(
            *node.state, *devices[index], pc);
        PCcheckCheckpointer* raw = checkpointer.get();
        return {std::move(checkpointer), [raw] {
                    const auto latest =
                        raw->commit_protocol().latest_pointer();
                    return latest ? latest->iteration : 0;
                }};
    };

    const std::uint64_t iterations = 60;
    const std::uint64_t interval = 10;
    const ClusterResult result =
        cluster.run(iterations, interval, factory);

    std::printf("pipeline throughput: %.1f it/s\n", result.throughput);
    std::printf("globally consistent checkpoint: iteration %llu\n",
                static_cast<unsigned long long>(
                    result.consistent_iteration));
    for (int rank = 0; rank < nodes; ++rank) {
        const auto& stats =
            result.node_stats[static_cast<std::size_t>(rank)];
        std::vector<std::uint8_t> buffer;
        const auto recovered =
            recover_to_buffer(*devices[static_cast<std::size_t>(rank)],
                              &buffer);
        std::printf("  rank %d: %llu checkpoints, stall %.1f ms, latest "
                    "durable iteration %llu\n",
                    rank,
                    static_cast<unsigned long long>(stats.completed),
                    stats.stall_time * 1e3,
                    static_cast<unsigned long long>(
                        recovered ? recovered->iteration : 0));
    }
    return 0;
}
