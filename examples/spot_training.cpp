/**
 * @file
 * Spot-VM training scenario (paper §1, Fig. 2): train under a GCP
 * A100 spot-instance preemption trace, crash at every preemption,
 * recover from the latest checkpoint, and report goodput.
 *
 * The trace is replayed in scaled time so the 16-hour window runs in
 * a couple of seconds; preemptions crash the adversarial crash-sim
 * device, exercising the full recovery path every time.
 */

#include <cstdio>

#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "storage/crash_sim.h"
#include "trace/preemption_trace.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "util/logging.h"

using namespace pccheck;

int
main()
{
    set_log_level(LogLevel::kWarn);
    // Scaled VGG16; the trace is compressed in the same proportion.
    const ScaleFactors factors{600.0, 20000.0};
    const ScaledModel model =
        scale_model(model_by_name("vgg16"), factors);

    // GCP spot profile, compressed: a 16 h window becomes 16h/600.
    SpotProfile profile = gcp_a100_profile();
    profile.duration = factors.scale_time(profile.duration);
    profile.events_per_hour *= factors.time;
    const PreemptionTrace trace = generate_trace(profile, 2026);
    std::printf("spot trace: %zu preemptions over %.1f s (scaled from "
                "16 h)\n",
                trace.events.size(), trace.duration);

    GpuConfig gpu_config;
    gpu_config.memory_bytes = model.checkpoint_bytes + 4 * kMiB;
    gpu_config.pcie_bytes_per_sec = factors.scale_bandwidth(12.8e9);

    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    const Bytes device_bytes = SlotStore::required_size(
        3, model.checkpoint_bytes);
    CrashSimStorage device(device_bytes, StorageKind::kSsdMsync, 7, 0.5);

    const std::uint64_t interval = 10;
    std::uint64_t useful_iterations = 0;
    std::uint64_t wasted_iterations = 0;
    std::uint64_t resume_from = 0;
    Stopwatch wall;

    // Replay: between consecutive preemptions, train; at each
    // preemption, crash the device and recover.
    Seconds previous_event = 0;
    for (std::size_t event = 0; event <= trace.events.size(); ++event) {
        const Seconds until = event < trace.events.size()
                                  ? trace.events[event].time
                                  : trace.duration;
        const auto budget_iters = static_cast<std::uint64_t>(
            (until - previous_event) / model.iteration_time);
        previous_event = until;
        if (budget_iters == 0) {
            continue;
        }
        SimGpu gpu(gpu_config);
        TrainingState state(gpu, model.checkpoint_bytes);
        std::uint64_t start = 1;
        if (resume_from > 0) {
            const auto recovered = recover_into_state(device, state);
            if (recovered.has_value()) {
                start = recovered->iteration + 1;
            }
        }
        PCcheckCheckpointer checkpointer(state, device, config);
        TrainingLoop loop(gpu, state, model);
        loop.run(budget_iters, interval, checkpointer);
        checkpointer.finish();
        const auto latest =
            checkpointer.commit_protocol().latest_pointer();
        const std::uint64_t reached = start + budget_iters - 1;
        const std::uint64_t durable =
            latest ? latest->iteration : resume_from;
        useful_iterations += durable > resume_from ? durable - resume_from
                                                   : 0;
        wasted_iterations += reached - durable;
        resume_from = durable;
        if (event < trace.events.size()) {
            device.crash();  // the preemption
        }
    }

    const double goodput =
        static_cast<double>(useful_iterations) / trace.duration;
    const double ideal = 1.0 / model.iteration_time;
    std::printf("checkpoint interval: every %llu iterations\n",
                static_cast<unsigned long long>(interval));
    std::printf("durable progress: iteration %llu\n",
                static_cast<unsigned long long>(resume_from));
    std::printf("useful iterations: %llu, lost to rollback: %llu\n",
                static_cast<unsigned long long>(useful_iterations),
                static_cast<unsigned long long>(wasted_iterations));
    std::printf("goodput: %.1f it/s (ideal %.1f it/s, %.0f%%)\n",
                goodput, ideal, 100.0 * goodput / ideal);
    std::printf("replay wall time: %.2f s\n", wall.elapsed());
    return 0;
}
