/**
 * @file
 * Sharded checkpointing for combined data + pipeline parallelism
 * (§3.1): one pipeline stage with R data-parallel replicas, each
 * checkpointing 1/R of the stage's state to its own device —
 * "reducing the overall checkpointing overhead" — then a failure and
 * a reassembly of the full stage from the R shard devices.
 *
 * Also demonstrates the §4.2 persistent iterator: the resumed run
 * consumes exactly the batches the crashed run would have.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/orchestrator.h"
#include "core/sharding.h"
#include "core/slot_store.h"
#include "storage/crash_sim.h"
#include "trainsim/data_loader.h"
#include "trainsim/models.h"
#include "trainsim/training_state.h"

using namespace pccheck;

int
main()
{
    constexpr int kReplicas = 4;
    const Bytes stage_bytes = 512 * kKiB;  // one stage's partition

    GpuConfig gpu_config;
    gpu_config.memory_bytes = stage_bytes + 4 * kMiB;
    gpu_config.pcie_bytes_per_sec = 0;
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, stage_bytes);

    const auto plan = plan_shards(stage_bytes, kReplicas);
    std::printf("stage %s split across %d replicas:\n",
                format_bytes(stage_bytes).c_str(), kReplicas);
    for (int replica = 0; replica < kReplicas; ++replica) {
        const auto& shard = plan[static_cast<std::size_t>(replica)];
        std::printf("  replica %d: [%8llu, %8llu)  %s\n", replica,
                    static_cast<unsigned long long>(shard.offset),
                    static_cast<unsigned long long>(shard.offset +
                                                    shard.length),
                    format_bytes(shard.length).c_str());
    }

    // Per-replica crash-sim devices: a real preemption wipes every
    // node's volatile state at once.
    std::vector<std::unique_ptr<CrashSimStorage>> devices;
    for (int replica = 0; replica < kReplicas; ++replica) {
        devices.push_back(std::make_unique<CrashSimStorage>(
            SlotStore::required_size(
                3, plan[static_cast<std::size_t>(replica)].length),
            StorageKind::kPmemNt,
            /*seed=*/100 + static_cast<std::uint64_t>(replica),
            /*eviction=*/0.5));
    }

    // Train 30 iterations, checkpointing each shard every 10.
    DataLoader loader(/*dataset=*/4096, /*batch=*/32, /*seed=*/9);
    {
        std::vector<std::unique_ptr<PCcheckCheckpointer>> shards;
        for (int replica = 0; replica < kReplicas; ++replica) {
            PCcheckConfig config;
            config.region_offset =
                plan[static_cast<std::size_t>(replica)].offset;
            config.region_bytes =
                plan[static_cast<std::size_t>(replica)].length;
            shards.push_back(std::make_unique<PCcheckCheckpointer>(
                state, *devices[static_cast<std::size_t>(replica)],
                config));
        }
        for (std::uint64_t iter = 1; iter <= 30; ++iter) {
            const Batch batch = loader.next();
            (void)batch;  // forward/backward over batch.samples
            for (auto& shard : shards) {
                shard->before_update(iter);
            }
            state.stamp(iter);
            if (iter % 10 == 0) {
                for (auto& shard : shards) {
                    shard->request_checkpoint(iter);
                }
            }
        }
        for (auto& shard : shards) {
            shard->finish();
        }
    }
    std::printf("\ntrained 30 iterations, sharded checkpoints at 10, "
                "20, 30\n");

    // Bulky preemption: every replica crashes.
    for (auto& device : devices) {
        device->crash();
    }

    // Reassemble the stage from the shard devices.
    std::vector<StorageDevice*> device_ptrs;
    for (const auto& device : devices) {
        device_ptrs.push_back(device.get());
    }
    const auto assembled = assemble_shards(device_ptrs, plan);
    if (!assembled.has_value()) {
        std::printf("reassembly FAILED\n");
        return 1;
    }
    std::printf("reassembled stage at iteration %llu (%s, all shards "
                "consistent)\n",
                static_cast<unsigned long long>(assembled->iteration),
                format_bytes(assembled->data.size()).c_str());

    // Resume the input pipeline exactly where that iteration left off.
    DataLoader resumed(4096, 32, 9);
    resumed.seek(assembled->iteration);
    const Batch next = resumed.next();
    std::printf("persistent iterator resumes at batch %llu (epoch "
                "%llu, first sample %llu)\n",
                static_cast<unsigned long long>(next.iteration),
                static_cast<unsigned long long>(next.epoch),
                static_cast<unsigned long long>(next.samples.front()));
    return 0;
}
