/**
 * @file
 * Quickstart: checkpoint a (simulated) training loop with PCcheck,
 * crash, and recover.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * Pass --trace-out=trace.json to capture a Chrome trace of the run
 * (snapshot / persist / commit spans; load it in ui.perfetto.dev) and
 * print per-stage latency percentiles. See docs/OBSERVABILITY.md.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "gpusim/gpu.h"
#include "obs/trace.h"
#include "storage/file_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "trainsim/training_state.h"
#include "util/metrics.h"

using namespace pccheck;

int
main(int argc, char** argv)
{
    std::string trace_out;
    constexpr const char* kTracePrefix = "--trace-out=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], kTracePrefix,
                         std::strlen(kTracePrefix)) == 0) {
            trace_out = argv[i] + std::strlen(kTracePrefix);
        }
    }
    if (!trace_out.empty()) {
        Tracer::global().set_enabled(true);
    }

    // A scaled-down VGG16 workload: sizes ÷2000, times ÷60, so the
    // whole demo runs in well under a second.
    const ScaledModel model =
        scale_model(model_by_name("vgg16"), ScaleFactors{60.0, 2000.0});
    std::printf("model: %s  checkpoint=%s  iteration=%.2f ms\n",
                model.spec.name.c_str(),
                format_bytes(model.checkpoint_bytes).c_str(),
                model.iteration_time * 1e3);

    // 1. A simulated GPU holding the training state.
    GpuConfig gpu_config;
    gpu_config.memory_bytes = model.checkpoint_bytes + 4 * kMiB;
    gpu_config.pcie_bytes_per_sec =
        model.factors.scale_bandwidth(12.8e9);  // PCIe3 x16, scaled
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, model.checkpoint_bytes);

    // 2. A real file as the SSD: PCcheck's mmap + msync path.
    PCcheckConfig config;  // N=2 concurrent checkpoints, 3 writers
    const Bytes device_bytes = SlotStore::required_size(
        static_cast<std::uint32_t>(config.concurrent_checkpoints + 1),
        model.checkpoint_bytes);
    FileStorage device("/tmp/pccheck_quickstart.ckpt", device_bytes);

    // 3. Train 100 iterations, checkpointing every 3 — frequent
    // enough that checkpoint k+1 starts while k is still persisting,
    // the N=2 concurrency PCcheck exists for (visible in the trace;
    // the paper sustains f=10 at ~3% overhead).
    {
        PCcheckCheckpointer checkpointer(state, device, config);
        TrainingLoop loop(gpu, state, model);
        const TrainingResult result = loop.run(100, 3, checkpointer);
        std::printf("trained %llu iterations at %.1f it/s "
                    "(%llu checkpoints, stall %.1f ms)\n",
                    static_cast<unsigned long long>(result.iterations),
                    result.throughput,
                    static_cast<unsigned long long>(
                        result.checkpointer.completed),
                    result.checkpointer.stall_time * 1e3);
    }

    // 4. "Crash": drop everything volatile and recover from the file.
    SimGpu fresh_gpu(gpu_config);
    TrainingState fresh_state(fresh_gpu, model.checkpoint_bytes);
    const auto recovered = recover_into_state(device, fresh_state);
    if (!recovered.has_value()) {
        std::printf("recovery failed: no valid checkpoint\n");
        return 1;
    }
    std::printf("recovered iteration %llu (%s in %.1f ms) — resume "
                "training from iteration %llu\n",
                static_cast<unsigned long long>(recovered->iteration),
                format_bytes(recovered->data_len).c_str(),
                recovered->load_time * 1e3,
                static_cast<unsigned long long>(recovered->iteration + 1));

    if (!trace_out.empty()) {
        Tracer::global().set_enabled(false);
        if (!Tracer::global().write_file(trace_out)) {
            std::printf("failed to write trace to %s\n",
                        trace_out.c_str());
            return 1;
        }
        std::printf("trace: %zu spans -> %s (load in ui.perfetto.dev)\n",
                    Tracer::global().event_count(), trace_out.c_str());
        std::printf("stage metrics:\n");
        MetricsRegistry::global().dump(std::cout);
    }
    return 0;
}
