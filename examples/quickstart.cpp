/**
 * @file
 * Quickstart: checkpoint a (simulated) training loop with PCcheck,
 * crash, and recover.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "gpusim/gpu.h"
#include "storage/file_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "trainsim/training_state.h"

using namespace pccheck;

int
main()
{
    // A scaled-down VGG16 workload: sizes ÷2000, times ÷60, so the
    // whole demo runs in well under a second.
    const ScaledModel model =
        scale_model(model_by_name("vgg16"), ScaleFactors{60.0, 2000.0});
    std::printf("model: %s  checkpoint=%s  iteration=%.2f ms\n",
                model.spec.name.c_str(),
                format_bytes(model.checkpoint_bytes).c_str(),
                model.iteration_time * 1e3);

    // 1. A simulated GPU holding the training state.
    GpuConfig gpu_config;
    gpu_config.memory_bytes = model.checkpoint_bytes + 4 * kMiB;
    gpu_config.pcie_bytes_per_sec =
        model.factors.scale_bandwidth(12.8e9);  // PCIe3 x16, scaled
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, model.checkpoint_bytes);

    // 2. A real file as the SSD: PCcheck's mmap + msync path.
    PCcheckConfig config;  // N=2 concurrent checkpoints, 3 writers
    const Bytes device_bytes = SlotStore::required_size(
        static_cast<std::uint32_t>(config.concurrent_checkpoints + 1),
        model.checkpoint_bytes);
    FileStorage device("/tmp/pccheck_quickstart.ckpt", device_bytes);

    // 3. Train 100 iterations, checkpointing every 10 (the frequency
    // the paper shows PCcheck sustains at ~3% overhead).
    {
        PCcheckCheckpointer checkpointer(state, device, config);
        TrainingLoop loop(gpu, state, model);
        const TrainingResult result = loop.run(100, 10, checkpointer);
        std::printf("trained %llu iterations at %.1f it/s "
                    "(%llu checkpoints, stall %.1f ms)\n",
                    static_cast<unsigned long long>(result.iterations),
                    result.throughput,
                    static_cast<unsigned long long>(
                        result.checkpointer.completed),
                    result.checkpointer.stall_time * 1e3);
    }

    // 4. "Crash": drop everything volatile and recover from the file.
    SimGpu fresh_gpu(gpu_config);
    TrainingState fresh_state(fresh_gpu, model.checkpoint_bytes);
    const auto recovered = recover_into_state(device, fresh_state);
    if (!recovered.has_value()) {
        std::printf("recovery failed: no valid checkpoint\n");
        return 1;
    }
    std::printf("recovered iteration %llu (%s in %.1f ms) — resume "
                "training from iteration %llu\n",
                static_cast<unsigned long long>(recovered->iteration),
                format_bytes(recovered->data_len).c_str(),
                recovered->load_time * 1e3,
                static_cast<unsigned long long>(recovered->iteration + 1));
    return 0;
}
