/**
 * @file
 * Monitoring / debugging scenario (paper §2.1): checkpoint every 10
 * iterations so a monitoring tool can inspect training dynamics with
 * fine granularity — the SageMaker-Debugger-style use case the paper
 * motivates. A "monitor" thread concurrently reads committed
 * checkpoints back from storage and validates them while training
 * continues undisturbed.
 */

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "storage/mem_storage.h"
#include "storage/throttled_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "util/crc32.h"

using namespace pccheck;

int
main()
{
    const ScaledModel model =
        scale_model(model_by_name("bert"), ScaleFactors{60.0, 20000.0});

    GpuConfig gpu_config;
    gpu_config.memory_bytes = model.checkpoint_bytes + 4 * kMiB;
    gpu_config.pcie_bytes_per_sec =
        model.factors.scale_bandwidth(12.8e9);
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, model.checkpoint_bytes);

    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    config.writers_per_checkpoint = 3;
    const auto ssd = paper_bandwidth(StorageKind::kSsdMsync);
    ThrottledStorage device(
        std::make_unique<MemStorage>(
            SlotStore::required_size(3, model.checkpoint_bytes)),
        model.factors.scale_bandwidth(ssd.write_bytes_per_sec),
        model.factors.scale_bandwidth(ssd.persist_bytes_per_sec),
        model.factors.scale_bandwidth(ssd.read_bytes_per_sec));
    config.per_writer_bytes_per_sec =
        model.factors.scale_bandwidth(1.2e9);
    PCcheckCheckpointer checkpointer(state, device, config);

    // The monitor polls storage for new checkpoints while training
    // runs, like an external observability agent tailing the device.
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> observed{0};
    std::thread monitor([&] {
        std::uint64_t last_seen = 0;
        std::vector<std::uint8_t> buffer;
        while (!done.load(std::memory_order_relaxed)) {
            const auto snapshot = recover_to_buffer(device, &buffer);
            if (snapshot.has_value() &&
                snapshot->iteration > last_seen) {
                const auto stamped = TrainingState::verify_buffer(
                    buffer.data(), buffer.size());
                std::printf("[monitor] iteration %6llu  crc=%08x  %s\n",
                            static_cast<unsigned long long>(
                                snapshot->iteration),
                            crc32c(buffer.data(), buffer.size()),
                            stamped.has_value() ? "consistent"
                                                : "TORN (bug!)");
                last_seen = snapshot->iteration;
                observed.fetch_add(1, std::memory_order_relaxed);
            }
            MonotonicClock::instance().sleep_for(0.003);
        }
    });

    TrainingLoop loop(gpu, state, model);
    const TrainingResult result = loop.run(200, 10, checkpointer);
    done.store(true);
    monitor.join();

    const double ideal = ideal_throughput(model);
    std::printf("\ntraining: %.1f it/s (ideal %.1f, overhead %.1f%%)\n",
                result.throughput, ideal,
                100.0 * (ideal / result.throughput - 1.0));
    std::printf("checkpoints completed: %llu, observed by monitor: "
                "%llu\n",
                static_cast<unsigned long long>(
                    result.checkpointer.completed),
                static_cast<unsigned long long>(observed.load()));
    std::printf("checkpoint latency: mean %.1f ms, max %.1f ms\n",
                result.checkpointer.checkpoint_latency.mean() * 1e3,
                result.checkpointer.checkpoint_latency.max() * 1e3);
    return 0;
}
