/**
 * @file
 * Paper Figure 13: sensitivity to the number of parallel writer
 * threads per checkpoint — OPT-350M at a fixed interval of 10,
 * varying p ∈ {1, 2, 3} for N ∈ {1, 2, 3} (DESIGN.md ablation 2).
 *
 * Expected shape: 3 writers beat 1 by ~1.36×/1.16×/1.13× for
 * N = 1/2/3 — the benefit of parallel writers shrinks as concurrent
 * checkpoints already contend for the device.
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "util/csv.h"
#include "util/logging.h"

using namespace pccheck;
using namespace pccheck::bench;

int
main(int argc, char** argv)
{
    set_log_level(LogLevel::kWarn);
    const BenchOptions options = parse_bench_args(argc, argv);
    CsvWriter csv("fig13_threads_sens.csv",
                  {"concurrent", "writers", "slowdown"});
    announce("fig13_threads_sens", csv.path());

    // CI smoke: one cell of the matrix at reduced iterations, enough
    // to exercise concurrent snapshots/persists and emit a trace.
    const std::vector<int> ns = options.smoke
                                    ? std::vector<int>{2}
                                    : std::vector<int>{1, 2, 3};
    const std::vector<int> ps = options.smoke
                                    ? std::vector<int>{3}
                                    : std::vector<int>{1, 2, 3};

    std::printf("=== OPT-350M slowdown (f=10), varying writers p and "
                "concurrency N ===\n%-6s", "N\\p");
    for (const int p : ps) {
        std::printf("      p=%-4d", p);
    }
    std::printf("%12s\n", "p1/p3 gain");
    for (const int n : ns) {
        std::printf("%-6d", n);
        std::vector<double> slowdowns;
        for (const int p : ps) {
            RunSpec spec;
            spec.system = "pccheck";
            spec.model = "opt-350m";
            // Smoke runs checkpoint every 2 iterations so persists
            // back up behind snapshots and the trace shows ≥2
            // checkpoints genuinely in flight.
            spec.interval = options.smoke ? 2 : 10;
            spec.concurrent = n;
            spec.writers = p;
            if (options.smoke) {
                spec.iterations = 60;
            }
            const RunResult result = measure(spec);
            slowdowns.push_back(result.slowdown);
            std::printf("%12.3f", result.slowdown);
            csv.row_numeric(std::to_string(n),
                            {static_cast<double>(p), result.slowdown});
        }
        std::printf("%12.3f\n", slowdowns.front() / slowdowns.back());
    }
    std::printf("\n(paper: 3 threads vs 1 gives 1.36x / 1.16x / 1.13x "
                "improvement for N = 1 / 2 / 3)\n");
    finish_observability(options);
    return 0;
}
