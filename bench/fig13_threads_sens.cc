/**
 * @file
 * Paper Figure 13: sensitivity to the number of parallel writer
 * threads per checkpoint — OPT-350M at a fixed interval of 10,
 * varying p ∈ {1, 2, 3} for N ∈ {1, 2, 3} (DESIGN.md ablation 2).
 *
 * Expected shape: 3 writers beat 1 by ~1.36×/1.16×/1.13× for
 * N = 1/2/3 — the benefit of parallel writers shrinks as concurrent
 * checkpoints already contend for the device.
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "util/csv.h"
#include "util/logging.h"

using namespace pccheck;
using namespace pccheck::bench;

int
main()
{
    set_log_level(LogLevel::kWarn);
    CsvWriter csv("fig13_threads_sens.csv",
                  {"concurrent", "writers", "slowdown"});
    announce("fig13_threads_sens", csv.path());

    std::printf("=== OPT-350M slowdown (f=10), varying writers p and "
                "concurrency N ===\n%-6s", "N\\p");
    for (const int p : {1, 2, 3}) {
        std::printf("      p=%-4d", p);
    }
    std::printf("%12s\n", "p1/p3 gain");
    for (const int n : {1, 2, 3}) {
        std::printf("%-6d", n);
        std::vector<double> slowdowns;
        for (const int p : {1, 2, 3}) {
            RunSpec spec;
            spec.system = "pccheck";
            spec.model = "opt-350m";
            spec.interval = 10;
            spec.concurrent = n;
            spec.writers = p;
            const RunResult result = measure(spec);
            slowdowns.push_back(result.slowdown);
            std::printf("%12.3f", result.slowdown);
            csv.row_numeric(std::to_string(n),
                            {static_cast<double>(p), result.slowdown});
        }
        std::printf("%12.3f\n", slowdowns.front() / slowdowns.back());
    }
    std::printf("\n(paper: 3 threads vs 1 gives 1.36x / 1.16x / 1.13x "
                "improvement for N = 1 / 2 / 3)\n");
    return 0;
}
