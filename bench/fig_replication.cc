/**
 * @file
 * Replication-tier sweep: training throughput with quorum-acked peer
 * replication vs local-only checkpointing, across NIC bandwidths and
 * quorum configurations (docs/REPLICATION.md).
 *
 * Each point trains a scaled model with PCcheck while streaming every
 * checkpoint to in-DRAM peer replicas over SimNetwork; the commit CAS
 * gates on the write quorum. The sweep crosses NIC bandwidth (around
 * the paper's measured 1.88 GB/s VM NIC) with (replicas, quorum) in
 * {local-only, 1/1, 2/1, 2/2} plus a dead-peer 2/1 row, and reports
 * slowdown vs the local-only baseline at the same bandwidth, plus the
 * peers' durable-publish watermark and degradation counters.
 *
 * Expected shape: quorum=1 rides the pipelined overlap and costs a
 * few percent; quorum=2 tracks the slowest peer and feels bandwidth;
 * a dead peer under quorum=1 degrades nothing but pays ack deadlines.
 *
 * Usage: fig_replication [--smoke] [--trace-out=FILE]
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/orchestrator.h"
#include "core/slot_store.h"
#include "net/network.h"
#include "remote/replica_store.h"
#include "remote/replication.h"
#include "storage/mem_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "util/clock.h"
#include "util/csv.h"
#include "util/logging.h"

using namespace pccheck;
using namespace pccheck::bench;

namespace {

constexpr Bytes kState = 512 * kKiB;
constexpr int kConcurrent = 2;
constexpr int kSlots = kConcurrent + 1;
constexpr std::uint64_t kInterval = 2;

GpuConfig
bench_gpu()
{
    GpuConfig config;
    config.memory_bytes = 4 * kMiB;
    config.pcie_bytes_per_sec = 0;
    return config;
}

ScaledModel
bench_model()
{
    return scale_model(model_by_name("vgg16"),
                       ScaleFactors{600.0, 20000.0});
}

/** One replication configuration in the sweep. */
struct Config {
    const char* label;
    int replicas;
    int quorum;
    int dead_peers;  ///< peers killed before the run (highest ids)
};

/** Measured outcome of one (bandwidth, config) point. */
struct Point {
    double throughput = 0;  ///< iterations/sec, wall clock
    CheckpointerStats stats;
    std::uint64_t degraded = 0;
    std::uint64_t acks = 0;
    Bytes replicated = 0;
    std::uint64_t watermark = 0;  ///< max surviving-peer watermark
};

Point
run_point(double nic_bytes_per_sec, const Config& cfg,
          std::uint64_t iterations)
{
    Point out;

    NetworkConfig net;
    net.nodes = cfg.replicas + 1;
    net.nic_bytes_per_sec = nic_bytes_per_sec;
    SimNetwork network(net);

    std::vector<std::unique_ptr<ReplicaStore>> stores;
    std::vector<ReplicaPeer> peers;
    for (int p = 0; p < cfg.replicas; ++p) {
        stores.push_back(std::make_unique<ReplicaStore>());
        peers.push_back({p + 1, stores.back().get()});
    }

    std::unique_ptr<ReplicationEngine> engine;
    if (cfg.replicas > 0) {
        ReplicationConfig rconfig;
        rconfig.replicas = cfg.replicas;
        rconfig.quorum = cfg.quorum;
        rconfig.chunk_bytes = 128 * kKiB;
        rconfig.ack_timeout = 0.02;
        engine = std::make_unique<ReplicationEngine>(
            network, 0, rconfig, peers);
    }
    for (int d = 0; d < cfg.dead_peers; ++d) {
        network.kill_node(cfg.replicas - d);
    }

    MemStorage device(SlotStore::required_size(kSlots, kState));
    SimGpu gpu(bench_gpu());
    TrainingState state(gpu, kState);
    PCcheckConfig config;
    config.concurrent_checkpoints = kConcurrent;

    Stopwatch watch;
    {
        PCcheckCheckpointer checkpointer(state, device, config);
        if (engine != nullptr) {
            checkpointer.attach_replication(engine.get());
        }
        TrainingLoop loop(gpu, state, bench_model());
        loop.run(iterations, kInterval, checkpointer);
        if (engine != nullptr) {
            engine->flush();
        }
        out.stats = checkpointer.stats();
    }
    const Seconds elapsed = watch.elapsed();
    out.throughput = static_cast<double>(iterations) / elapsed;
    if (engine != nullptr) {
        out.degraded = engine->degraded();
        out.acks = engine->acks();
        out.replicated = engine->bytes_sent();
    }
    for (int p = 0; p + cfg.dead_peers < cfg.replicas; ++p) {
        out.watermark = std::max(out.watermark, stores[p]->watermark());
    }
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    const BenchOptions options = parse_bench_args(argc, argv);
    set_log_level(LogLevel::kWarn);
    const std::uint64_t iterations = options.smoke ? 12 : 40;

    // Around the paper's measured 15 Gbps (1.88 GB/s) VM NIC.
    const std::vector<double> bandwidths = {0.47e9, 0.94e9, 1.88e9,
                                            3.76e9};
    const std::vector<Config> configs = {
        {"local", 0, 0, 0},   {"r1q1", 1, 1, 0}, {"r2q1", 2, 1, 0},
        {"r2q2", 2, 2, 0},    {"r2q1-dead", 2, 1, 1},
    };

    CsvWriter csv("fig_replication.csv",
                  {"nic_gbps", "config", "replicas", "quorum",
                   "dead_peers", "throughput_it_s", "slowdown_vs_local",
                   "completed", "degraded", "acks", "replicated_mib",
                   "peer_watermark"});
    announce("fig_replication", csv.path());

    std::printf("=== Replication tier: throughput vs NIC bandwidth "
                "and quorum ===\n%-10s", "NIC GB/s");
    for (const Config& cfg : configs) {
        std::printf("%12s", cfg.label);
    }
    std::printf("\n");

    for (const double bw : bandwidths) {
        const double gbps = bw / 1e9;
        std::printf("%-10.2f", gbps);
        double local = 0;
        for (const Config& cfg : configs) {
            const Point point = run_point(bw, cfg, iterations);
            if (cfg.replicas == 0) {
                local = point.throughput;
            }
            const double slowdown =
                point.throughput > 0 ? local / point.throughput : 0;
            std::printf("%12.2f", point.throughput);
            csv.row({std::to_string(gbps), cfg.label,
                     std::to_string(cfg.replicas),
                     std::to_string(cfg.quorum),
                     std::to_string(cfg.dead_peers),
                     std::to_string(point.throughput),
                     std::to_string(slowdown),
                     std::to_string(point.stats.completed),
                     std::to_string(point.degraded),
                     std::to_string(point.acks),
                     std::to_string(static_cast<double>(
                                        point.replicated) /
                                    static_cast<double>(kMiB)),
                     std::to_string(point.watermark)});
        }
        std::printf("\n");
    }
    std::printf("\nslowdown_vs_local and peer watermarks are in %s\n",
                csv.path().c_str());
    finish_observability(options);
    return 0;
}
