/**
 * @file
 * §5.2.2 recovery times: the §4.2 bounds at full scale per model and
 * interval, plus a measured end-to-end recovery (device → host →
 * verified → GPU) on the scaled substrate.
 *
 * Expected shape (paper): OPT-1.3B needs ~80 s when checkpointing
 * every 100 iterations with CheckFreq at 5% overhead, while PCcheck
 * gets the same overhead at f=50 and recovers in ~50 s; BLOOM-7B
 * recovers in 26 s with PCcheck vs 250 s for CheckFreq/Gemini.
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "goodput/recovery_model.h"
#include "storage/mem_storage.h"
#include "storage/throttled_storage.h"
#include "trainsim/models.h"
#include "util/csv.h"
#include "util/logging.h"

using namespace pccheck;
using namespace pccheck::bench;

int
main()
{
    set_log_level(LogLevel::kWarn);
    CsvWriter csv("recovery_times.csv",
                  {"model", "interval", "system", "expected_recovery_s"});
    announce("recovery_times", csv.path());

    std::printf("=== Expected recovery time [s], full scale (§4.2 "
                "bounds, midpoint) ===\n");
    std::printf("%-12s %-9s %-10s %-10s %-10s\n", "model", "interval",
                "pccheck", "checkfreq", "gpm");
    for (const char* model_name : {"opt-1.3b", "bloom-7b"}) {
        const ModelSpec& spec = model_by_name(model_name);
        const Bytes partition =
            spec.checkpoint_bytes /
            static_cast<Bytes>(std::max(spec.pipeline_stages, 1));
        for (const std::uint64_t interval :
             {10ULL, 25ULL, 50ULL, 100ULL}) {
            RecoveryModelInputs in;
            in.iteration_time = spec.iteration_time;
            in.interval = interval;
            in.checkpoint_time =
                static_cast<double>(partition) / 0.45e9;
            in.load_time = static_cast<double>(partition) / 0.9e9;
            in.concurrent = 2;
            std::printf("%-12s %-9llu", model_name,
                        static_cast<unsigned long long>(interval));
            for (const char* system : {"pccheck", "checkfreq", "gpm"}) {
                const Seconds recovery = expected_recovery(system, in);
                std::printf(" %-10.1f", recovery);
                csv.row({model_name, std::to_string(interval), system,
                         std::to_string(recovery)});
            }
            std::printf("\n");
        }
    }

    // Measured end-to-end recovery on the scaled substrate: persist a
    // checkpoint, drop the GPU, recover, verify, reload.
    std::printf("\n--- measured scaled recovery (OPT-1.3B profile) "
                "---\n");
    const ModelSpec& spec = model_by_name("opt-1.3b");
    const ScaleFactors factors = auto_factors(spec);
    const ScaledModel model = scale_model(spec, factors);
    const auto ssd = paper_bandwidth(StorageKind::kSsdMsync);
    ThrottledStorage device(
        std::make_unique<MemStorage>(
            SlotStore::required_size(3, model.checkpoint_bytes)),
        factors.scale_bandwidth(ssd.write_bytes_per_sec),
        factors.scale_bandwidth(ssd.persist_bytes_per_sec),
        factors.scale_bandwidth(ssd.read_bytes_per_sec));
    GpuConfig gpu_config;
    gpu_config.memory_bytes = model.checkpoint_bytes + 4 * kMiB;
    gpu_config.pcie_bytes_per_sec = factors.scale_bandwidth(12.8e9);
    {
        SimGpu gpu(gpu_config);
        TrainingState state(gpu, model.checkpoint_bytes);
        PCcheckConfig config;
        PCcheckCheckpointer checkpointer(state, device, config);
        state.stamp(123);
        checkpointer.request_checkpoint(123);
        checkpointer.finish();
    }
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, model.checkpoint_bytes);
    const auto recovered = recover_into_state(device, state);
    if (recovered.has_value()) {
        std::printf("recovered iteration %llu; load time %.1f ms "
                    "scaled = %.1f s full scale (paper l for 16.2 GB "
                    "at 0.9 GB/s: 18 s)\n",
                    static_cast<unsigned long long>(
                        recovered->iteration),
                    recovered->load_time * 1e3,
                    recovered->load_time * factors.time);
    }
    return 0;
}
