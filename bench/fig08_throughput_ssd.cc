/**
 * @file
 * Paper Figure 8: training throughput vs. checkpoint frequency on
 * SSD, for all Table 3 models, PCcheck vs. CheckFreq and GPM (plus
 * Gemini on the distributed models). Measured on the scaled substrate
 * (DESIGN.md §1); the expected shape is the paper's: CheckFreq
 * collapses at high frequency, GPM degrades with checkpoint size,
 * PCcheck stays within a few percent of ideal from f ≈ 10 up.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "trainsim/models.h"
#include "util/csv.h"
#include "util/logging.h"

using namespace pccheck;
using namespace pccheck::bench;

int
main()
{
    set_log_level(LogLevel::kWarn);
    const std::vector<std::string> models = {
        "vgg16", "transformerxl", "bert", "opt-1.3b", "opt-2.7b",
        "bloom-7b"};
    const std::vector<std::uint64_t> intervals = {1, 10, 25, 50, 100};

    CsvWriter csv("fig08_throughput_ssd.csv",
                  {"model", "system", "interval", "throughput_it_s",
                   "ideal_it_s", "slowdown", "stall_s"});
    announce("fig08_throughput_ssd", csv.path());

    for (const auto& model : models) {
        const bool distributed =
            model_by_name(model).pipeline_stages > 1;
        const auto& systems =
            distributed ? kDistributedSystems : kSingleGpuSystems;
        std::printf("\n=== %s (%s) — throughput [it/s], SSD ===\n",
                    model.c_str(),
                    distributed ? "pipeline-parallel" : "single GPU");
        std::printf("%-10s", "interval");
        for (const auto& system : systems) {
            std::printf("%12s", system.c_str());
        }
        std::printf("%12s\n", "ideal");

        for (const std::uint64_t interval : intervals) {
            std::printf("%-10llu",
                        static_cast<unsigned long long>(interval));
            double ideal = 0;
            for (const auto& system : systems) {
                RunSpec spec;
                spec.system = system;
                spec.model = model;
                spec.interval = interval;
                const RunResult result = measure(spec);
                ideal = result.ideal_throughput;
                std::printf("%12.1f", result.throughput);
                csv.row({model, system, std::to_string(interval),
                         std::to_string(result.throughput),
                         std::to_string(result.ideal_throughput),
                         std::to_string(result.slowdown),
                         std::to_string(result.stats.stall_time)});
            }
            std::printf("%12.1f\n", ideal);
        }
    }
    return 0;
}
