/**
 * @file
 * Paper Figure 1: BLOOM-7B training slowdown of CheckFreq and Gemini
 * vs. checkpoint interval, with the recovery time on the secondary
 * axis. Produced with the analytical model at full scale (a 6-node
 * A100 cluster is not replayable in real time); the model is
 * cross-validated against measured scaled runs in model_validation.
 *
 * Expected shape: both systems exceed 10% overhead for intervals
 * ≤ 50 iterations (CheckFreq up to ~15× at f=1), while recovery time
 * grows linearly with the interval.
 */

#include <cstdio>

#include "bench/common.h"
#include "goodput/analytic.h"
#include "goodput/recovery_model.h"
#include "trainsim/models.h"
#include "util/csv.h"

using namespace pccheck;
using namespace pccheck::bench;

int
main()
{
    const ModelSpec& bloom = model_by_name("bloom-7b");
    AnalyticInputs in;
    in.iteration_time = bloom.iteration_time;
    // Per-node partition: the 108 GB state is split over 6 stages.
    in.checkpoint_bytes =
        bloom.checkpoint_bytes /
        static_cast<Bytes>(bloom.pipeline_stages);
    in.per_writer_bytes_per_sec = 1.2e9;

    CsvWriter csv("fig01_motivation.csv",
                  {"interval", "checkfreq_slowdown", "gemini_slowdown",
                   "recovery_s"});
    announce("fig01_motivation", csv.path());

    const double ideal = analytic_throughput("ideal", in);
    std::printf("=== BLOOM-7B slowdown vs checkpoint interval "
                "(analytic, full scale) ===\n");
    std::printf("%-10s %-12s %-12s %-12s\n", "interval", "checkfreq",
                "gemini", "recovery(s)");
    for (const std::uint64_t interval : {1ULL, 5ULL, 10ULL, 25ULL, 50ULL,
                                         100ULL}) {
        in.interval = interval;
        const double checkfreq =
            ideal / analytic_throughput("checkfreq", in);
        const double gemini = ideal / analytic_throughput("gemini", in);
        RecoveryModelInputs rec;
        rec.iteration_time = in.iteration_time;
        rec.interval = interval;
        rec.checkpoint_time = analytic_checkpoint_time("checkfreq", in);
        rec.load_time = static_cast<double>(in.checkpoint_bytes) / 0.9e9;
        const Seconds recovery = expected_recovery("checkfreq", rec);
        std::printf("%-10llu %-12.2f %-12.2f %-12.1f\n",
                    static_cast<unsigned long long>(interval), checkfreq,
                    gemini, recovery);
        csv.row_numeric(std::to_string(interval),
                        {checkfreq, gemini, recovery});
    }
    std::printf("\n(paper: >10%% overhead for both when checkpointing "
                "every <=50 iterations; 15x-1.05x for CheckFreq from "
                "f=1 to f=100)\n");
    return 0;
}
