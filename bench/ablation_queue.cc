/**
 * @file
 * DESIGN.md ablation 5: the free-slot queue implementation under
 * checkpoint-like contention — the array-based lock-free queue
 * (Vyukov/LCRQ family, the paper's choice via Morrison & Afek), the
 * Michael–Scott linked queue, and a mutex-guarded deque. Google
 * Benchmark binary; ops = one dequeue + one enqueue, hammered by
 * several threads over a small slot set, exactly the commit
 * protocol's access pattern.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "core/free_slot_queue.h"

using namespace pccheck;

namespace {

void
run_queue_bench(benchmark::State& state, SlotQueueKind kind)
{
    static std::unique_ptr<FreeSlotQueue> queue;
    if (state.thread_index() == 0) {
        queue = make_slot_queue(kind, 64);
        for (std::uint32_t slot = 0; slot < 8; ++slot) {
            queue->try_enqueue(slot);
        }
    }
    for (auto _ : state) {
        const auto slot = queue->try_dequeue();
        if (slot.has_value()) {
            benchmark::DoNotOptimize(*slot);
            queue->try_enqueue(*slot);
        }
    }
    if (state.thread_index() == 0) {
        state.SetItemsProcessed(state.iterations() * state.threads());
    }
}

void
BM_VyukovQueue(benchmark::State& state)
{
    run_queue_bench(state, SlotQueueKind::kVyukov);
}

void
BM_MichaelScottQueue(benchmark::State& state)
{
    run_queue_bench(state, SlotQueueKind::kMichaelScott);
}

void
BM_MutexQueue(benchmark::State& state)
{
    run_queue_bench(state, SlotQueueKind::kMutex);
}

}  // namespace

BENCHMARK(BM_VyukovQueue)->Threads(1)->Threads(4)->UseRealTime();
BENCHMARK(BM_MichaelScottQueue)->Threads(1)->Threads(4)->UseRealTime();
BENCHMARK(BM_MutexQueue)->Threads(1)->Threads(4)->UseRealTime();

BENCHMARK_MAIN();
