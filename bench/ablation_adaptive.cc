/**
 * @file
 * §3.4 extension: adaptive checkpoint-interval control under a
 * time-varying workload. The iteration time drifts during training
 * (input-bound vision phases, activation offloading — §3.4's stated
 * motivation); a fixed f tuned for the fast phase violates the
 * overhead budget in the slow phase or wastes recovery granularity in
 * the fast one. The adaptive controller re-evaluates eq. (3) online.
 */

#include <cstdio>

#include "bench/common.h"
#include "core/adaptive.h"
#include "core/orchestrator.h"
#include "core/slot_store.h"
#include "storage/mem_storage.h"
#include "storage/throttled_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "util/csv.h"
#include "util/logging.h"

using namespace pccheck;
using namespace pccheck::bench;

namespace {

struct PhaseResult {
    double throughput;
    std::uint64_t checkpoints;
    std::uint64_t interval_seen;
};

/** Run one phase (fixed iteration time) through the adaptive stack. */
PhaseResult
run_phase(SimGpu& gpu, TrainingState& state, ScaledModel model,
          Seconds iteration_time, AdaptiveCheckpointer& adaptive,
          AdaptiveController& controller, std::uint64_t iterations,
          std::uint64_t start)
{
    model.iteration_time = iteration_time;
    TrainingLoop loop(gpu, state, model);
    const std::uint64_t before = adaptive.checkpoints_taken();
    const TrainingResult result =
        loop.run(iterations, /*every iteration*/ 1, adaptive, start);
    return PhaseResult{result.throughput,
                       adaptive.checkpoints_taken() - before,
                       controller.interval()};
}

}  // namespace

int
main()
{
    set_log_level(LogLevel::kWarn);
    const ModelSpec& spec = model_by_name("opt-350m");
    const ScaleFactors factors = auto_factors(spec);
    const ScaledModel model = scale_model(spec, factors);

    GpuConfig gpu_config;
    gpu_config.memory_bytes = model.checkpoint_bytes + 4 * kMiB;
    gpu_config.pcie_bytes_per_sec = factors.scale_bandwidth(12.8e9);
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, model.checkpoint_bytes);

    const auto ssd = paper_bandwidth(StorageKind::kSsdMsync);
    ThrottledStorage device(
        std::make_unique<MemStorage>(
            SlotStore::required_size(3, model.checkpoint_bytes)),
        factors.scale_bandwidth(ssd.write_bytes_per_sec),
        factors.scale_bandwidth(ssd.persist_bytes_per_sec),
        factors.scale_bandwidth(ssd.read_bytes_per_sec));

    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    config.per_writer_bytes_per_sec = factors.scale_bandwidth(1.2e9);
    PCcheckCheckpointer inner(state, device, config);

    AdaptiveController::Options options;
    options.max_overhead = 1.05;
    options.concurrent = config.concurrent_checkpoints;
    AdaptiveController controller(options, /*initial_interval=*/10);
    AdaptiveCheckpointer adaptive(inner, controller);

    CsvWriter csv("ablation_adaptive.csv",
                  {"phase", "iteration_time_ms", "interval_chosen",
                   "checkpoints", "throughput_it_s"});
    announce("ablation_adaptive", csv.path());

    // Three phases: nominal → 3× slower (input-bound) → nominal.
    struct Phase {
        const char* name;
        double time_multiplier;
        std::uint64_t iterations;
    };
    const Phase phases[] = {
        {"nominal", 1.0, 250}, {"input-bound", 3.0, 250},
        {"nominal-again", 1.0, 500}};

    std::printf("=== adaptive interval under workload phases "
                "(OPT-350M, q=1.05) ===\n");
    std::printf("%-14s %-14s %-10s %-12s %-12s\n", "phase", "iter (ms)",
                "f chosen", "checkpoints", "it/s");
    std::uint64_t start = 1;
    for (const Phase& phase : phases) {
        const PhaseResult result = run_phase(
            gpu, state, model, model.iteration_time * phase.time_multiplier,
            adaptive, controller, phase.iterations, start);
        start += phase.iterations;
        std::printf("%-14s %-14.2f %-10llu %-12llu %-12.1f\n", phase.name,
                    model.iteration_time * phase.time_multiplier * 1e3,
                    static_cast<unsigned long long>(result.interval_seen),
                    static_cast<unsigned long long>(result.checkpoints),
                    result.throughput);
        csv.row({phase.name,
                 std::to_string(model.iteration_time *
                                phase.time_multiplier * 1e3),
                 std::to_string(result.interval_seen),
                 std::to_string(result.checkpoints),
                 std::to_string(result.throughput)});
    }
    std::printf("\ncontroller adaptations: %llu  (slower iterations → "
                "eq. (3) allows a smaller f; the interval follows)\n",
                static_cast<unsigned long long>(
                    controller.adaptations()));
    return 0;
}
