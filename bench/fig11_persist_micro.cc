/**
 * @file
 * Paper Figure 11: end-to-end time to copy + persist ONE checkpoint
 * of varying size, per system (log-scale y in the paper). Google
 * Benchmark binary; times are at bench scale (sizes ÷2000, durations
 * ÷60 ⇒ bandwidths ×(60/2000) of full scale), so multiply reported
 * times by 60 for the paper-scale equivalent.
 *
 * Expected shape: Gemini fastest (writes no storage), PCcheck up to
 * ~1.9× faster than CheckFreq/GPM thanks to parallel writers and the
 * optimized copy path.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/checkfreq.h"
#include "baselines/gemini.h"
#include "baselines/gpm.h"
#include "baselines/sync_checkpoint.h"
#include "bench/common.h"
#include "core/orchestrator.h"
#include "core/slot_store.h"
#include "net/network.h"
#include "storage/mem_storage.h"
#include "trainsim/training_state.h"
#include "util/logging.h"

using namespace pccheck;
using namespace pccheck::bench;

namespace {

/** Paper sizes (GB) ÷ 2000 with durations ÷ 60. */
const ScaleFactors kFactors{60.0, 2000.0};
const Bytes kSizes[] = {
    static_cast<Bytes>(1.1e9 / 2000),   // VGG16
    static_cast<Bytes>(2.7e9 / 2000),   // TransformerXL
    static_cast<Bytes>(4.0e9 / 2000),   // BERT
    static_cast<Bytes>(16.2e9 / 2000),  // OPT-1.3B
};

struct Rig {
    explicit Rig(Bytes state_bytes, std::uint32_t slots = 3)
    {
        GpuConfig gpu_config;
        gpu_config.memory_bytes = state_bytes + 4 * kMiB;
        gpu_config.pcie_bytes_per_sec =
            kFactors.scale_bandwidth(12.8e9);
        gpu = std::make_unique<SimGpu>(gpu_config);
        state = std::make_unique<TrainingState>(*gpu, state_bytes);
        const auto ssd = paper_bandwidth(StorageKind::kSsdMsync);
        device = std::make_unique<ThrottledStorage>(
            std::make_unique<MemStorage>(
                SlotStore::required_size(slots, state_bytes)),
            kFactors.scale_bandwidth(ssd.write_bytes_per_sec),
            kFactors.scale_bandwidth(ssd.persist_bytes_per_sec),
            kFactors.scale_bandwidth(ssd.read_bytes_per_sec));
    }

    std::unique_ptr<SimGpu> gpu;
    std::unique_ptr<TrainingState> state;
    std::unique_ptr<ThrottledStorage> device;
};

void
BM_CheckFreqPersist(benchmark::State& bench_state)
{
    const Bytes size = kSizes[bench_state.range(0)];
    Rig rig(size);
    BaselineConfig config;
    config.serialize_bytes_per_sec = kFactors.scale_bandwidth(1.0e9);
    config.per_writer_bytes_per_sec = kFactors.scale_bandwidth(1.2e9);
    CheckFreqCheckpointer checkpointer(*rig.state, *rig.device, config);
    std::uint64_t iter = 0;
    for (auto _ : bench_state) {
        rig.state->stamp(++iter);
        checkpointer.request_checkpoint(iter);
        checkpointer.finish();
    }
    bench_state.counters["size_mb"] =
        static_cast<double>(size) / 1e6;
}

void
BM_GpmPersist(benchmark::State& bench_state)
{
    const Bytes size = kSizes[bench_state.range(0)];
    Rig rig(size);
    GpmCheckpointer checkpointer(*rig.state, *rig.device);
    std::uint64_t iter = 0;
    for (auto _ : bench_state) {
        rig.state->stamp(++iter);
        checkpointer.request_checkpoint(iter);
    }
    bench_state.counters["size_mb"] =
        static_cast<double>(size) / 1e6;
}

void
BM_PccheckPersist(benchmark::State& bench_state)
{
    const Bytes size = kSizes[bench_state.range(0)];
    Rig rig(size);
    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    config.writers_per_checkpoint = 3;
    config.chunk_bytes = size / 4;
    config.per_writer_bytes_per_sec = kFactors.scale_bandwidth(1.2e9);
    PCcheckCheckpointer checkpointer(*rig.state, *rig.device, config);
    std::uint64_t iter = 0;
    for (auto _ : bench_state) {
        rig.state->stamp(++iter);
        checkpointer.request_checkpoint(iter);
        checkpointer.finish();
    }
    bench_state.counters["size_mb"] =
        static_cast<double>(size) / 1e6;
}

void
BM_GeminiPersist(benchmark::State& bench_state)
{
    const Bytes size = kSizes[bench_state.range(0)];
    Rig rig(size);
    NetworkConfig net_config;
    net_config.nodes = 2;
    net_config.nic_bytes_per_sec = kFactors.scale_bandwidth(1.88e9);
    net_config.latency = 0;
    SimNetwork network(net_config);
    MemStorage peer(size);
    GeminiCheckpointer checkpointer(*rig.state, network, 0, 1, peer);
    std::uint64_t iter = 0;
    for (auto _ : bench_state) {
        rig.state->stamp(++iter);
        checkpointer.request_checkpoint(iter);
        checkpointer.finish();
    }
    bench_state.counters["size_mb"] =
        static_cast<double>(size) / 1e6;
}

}  // namespace

BENCHMARK(BM_CheckFreqPersist)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_GpmPersist)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_PccheckPersist)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_GeminiPersist)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

int
main(int argc, char** argv)
{
    set_log_level(LogLevel::kWarn);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
