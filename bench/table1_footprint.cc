/**
 * @file
 * Paper Table 1: memory/storage footprint per system, in multiples of
 * the checkpoint size m. Prints the model's table and audits it
 * against the instrumented allocations of the actual implementations
 * (PCcheck staging arena + slot layout; baseline slot layouts).
 */

#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "core/orchestrator.h"
#include "core/slot_store.h"
#include "goodput/footprint.h"
#include "storage/mem_storage.h"
#include "trainsim/training_state.h"
#include "util/csv.h"

using namespace pccheck;
using namespace pccheck::bench;

int
main()
{
    constexpr Bytes kM = 256 * kKiB;  // checkpoint size for the audit
    constexpr int kN = 3;             // PCcheck concurrency

    CsvWriter csv("table1_footprint.csv",
                  {"system", "gpu_mem_m", "dram_m", "storage_m",
                   "audited_dram_m", "audited_storage_m"});
    announce("table1_footprint", csv.path());

    std::printf("=== Table 1: footprint in multiples of checkpoint "
                "size m (N=%d for PCcheck) ===\n", kN);
    std::printf("%-10s %-8s %-10s %-9s %-14s %-14s\n", "system",
                "GPU", "DRAM", "storage", "audited DRAM",
                "audited storage");

    auto audit_storage = [](std::uint32_t slots) {
        // Slot layout bytes, minus the 4 KiB metadata overhead, per m.
        return static_cast<double>(SlotStore::required_size(slots, kM)) /
               static_cast<double>(kM);
    };

    // PCcheck: audit the real orchestrator's allocations.
    double pccheck_dram = 0;
    double pccheck_storage = 0;
    {
        GpuConfig gpu_config;
        gpu_config.memory_bytes = kM + kMiB;
        gpu_config.pcie_bytes_per_sec = 0;
        SimGpu gpu(gpu_config);
        TrainingState state(gpu, kM);
        MemStorage device(SlotStore::required_size(kN + 1, kM));
        PCcheckConfig config;
        config.concurrent_checkpoints = kN;
        PCcheckCheckpointer checkpointer(state, device, config);
        pccheck_dram = static_cast<double>(checkpointer.staging_bytes()) /
                       static_cast<double>(kM);
        pccheck_storage =
            static_cast<double>(checkpointer.storage_bytes()) /
            static_cast<double>(kM);
    }

    struct Row {
        const char* system;
        double audited_dram;
        double audited_storage;
    };
    const Row rows[] = {
        {"checkfreq", 1.0, audit_storage(2)},
        {"gpm", 0.0, audit_storage(2)},
        {"gemini", 1.0, 0.0},
        {"pccheck", pccheck_dram, pccheck_storage},
    };

    for (const Row& row : rows) {
        const Footprint fp = model_footprint(row.system, kN, 0.03);
        std::printf("%-10s %-8.2f ", row.system, fp.gpu_mem);
        if (fp.dram_min == fp.dram_max) {
            std::printf("%-10.2f", fp.dram_max);
        } else {
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%.0f..%.0fm", fp.dram_min,
                          fp.dram_max);
            std::printf("%-10s", buf);
        }
        std::printf(" %-9.2f %-14.2f %-14.2f\n", fp.storage,
                    row.audited_dram, row.audited_storage);
        csv.row_numeric(row.system,
                        {fp.gpu_mem, fp.dram_max, fp.storage,
                         row.audited_dram, row.audited_storage});
    }
    std::printf("\n(audited storage includes a fixed 4 KiB metadata "
                "page + per-slot alignment; PCcheck storage = "
                "(N+1)·m as Table 1 requires)\n");
    return 0;
}
