/**
 * @file
 * Paper Figure 2: goodput as a function of checkpoint interval for
 * BLOOM-7B on the GCP spot trace — ideal / CheckFreq / Gemini /
 * PCcheck. Full-scale analytic throughput + §5.2.3 trace replay.
 *
 * Expected shape: ideal peaks at small intervals; CheckFreq and
 * Gemini peak around f=50-100 reaching only ~66% / ~58% of the ideal
 * peak; PCcheck tracks close to ideal from f≈10.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "goodput/analytic.h"
#include "goodput/goodput.h"
#include "goodput/recovery_model.h"
#include "trace/preemption_trace.h"
#include "trainsim/models.h"
#include "util/csv.h"

using namespace pccheck;
using namespace pccheck::bench;

int
main()
{
    const ModelSpec& bloom = model_by_name("bloom-7b");
    const PreemptionTrace trace = generate_trace(gcp_a100_profile(), 16);

    AnalyticInputs in;
    in.iteration_time = bloom.iteration_time;
    in.checkpoint_bytes =
        bloom.checkpoint_bytes /
        static_cast<Bytes>(bloom.pipeline_stages);
    in.per_writer_bytes_per_sec = 1.2e9;

    const std::vector<std::string> systems = {"ideal", "checkfreq",
                                              "gemini", "pccheck"};
    CsvWriter csv("fig02_goodput_motivation.csv",
                  {"interval", "ideal", "checkfreq", "gemini", "pccheck"});
    announce("fig02_goodput_motivation", csv.path());

    std::printf("=== BLOOM-7B goodput [it/s] on GCP spot trace "
                "(%zu preemptions / 16 h) ===\n",
                trace.events.size());
    std::printf("%-10s", "interval");
    for (const auto& system : systems) {
        std::printf("%12s", system.c_str());
    }
    std::printf("\n");

    std::vector<double> peak(systems.size(), 0);
    for (const std::uint64_t interval :
         {1ULL, 5ULL, 10ULL, 25ULL, 50ULL, 100ULL, 250ULL}) {
        in.interval = interval;
        std::printf("%-10llu", static_cast<unsigned long long>(interval));
        std::vector<double> row;
        for (std::size_t i = 0; i < systems.size(); ++i) {
            const std::string& system = systems[i];
            const std::string rec_system =
                system == "ideal" ? "pccheck" : system;
            RecoveryModelInputs rec;
            rec.iteration_time = in.iteration_time;
            rec.interval = interval;
            rec.checkpoint_time =
                analytic_checkpoint_time(rec_system, in);
            rec.load_time =
                static_cast<double>(in.checkpoint_bytes) / 0.9e9;
            rec.concurrent = in.concurrent;
            GoodputInputs gp;
            gp.throughput = analytic_throughput(system, in);
            gp.expected_recovery = expected_recovery(rec_system, rec);
            gp.reattach_time = system == "gemini" ? 0.0 : 5.5;
            const double goodput = replay_goodput(trace, gp).goodput;
            peak[i] = std::max(peak[i], goodput);
            row.push_back(goodput);
            std::printf("%12.3f", goodput);
        }
        std::printf("\n");
        csv.row_numeric(std::to_string(interval), row);
    }

    std::printf("\npeak goodput as %% of ideal peak: ");
    for (std::size_t i = 1; i < systems.size(); ++i) {
        std::printf("%s %.0f%%  ", systems[i].c_str(),
                    100.0 * peak[i] / peak[0]);
    }
    std::printf("\n(paper: CheckFreq 66%%, Gemini 58%%, PCcheck close "
                "to ideal)\n");
    return 0;
}
