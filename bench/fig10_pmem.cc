/**
 * @file
 * Paper Figure 10: BERT checkpointing on Intel Optane PMEM. The PMEM
 * write path (nt-store + sfence, 4.01 GB/s) is much faster than the
 * SSD, so every system improves — but PCcheck still wins at all
 * frequencies. Also ablates the §3.3 nt-store vs clwb decision
 * (DESIGN.md ablation 6).
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "util/csv.h"
#include "util/logging.h"

using namespace pccheck;
using namespace pccheck::bench;

int
main()
{
    set_log_level(LogLevel::kWarn);
    const std::vector<std::uint64_t> intervals = {1, 10, 25, 50, 100};

    CsvWriter csv("fig10_pmem.csv",
                  {"system", "storage", "interval", "throughput_it_s",
                   "slowdown"});
    announce("fig10_pmem", csv.path());

    std::printf("=== BERT on PMEM (nt-store path) — throughput [it/s] "
                "===\n%-10s", "interval");
    for (const auto& system : kSingleGpuSystems) {
        std::printf("%12s", system.c_str());
    }
    std::printf("%12s\n", "ideal");
    for (const std::uint64_t interval : intervals) {
        std::printf("%-10llu", static_cast<unsigned long long>(interval));
        double ideal = 0;
        for (const auto& system : kSingleGpuSystems) {
            RunSpec spec;
            spec.system = system;
            spec.model = "bert";
            spec.interval = interval;
            spec.storage = StorageKind::kPmemNt;
            const RunResult result = measure(spec);
            ideal = result.ideal_throughput;
            std::printf("%12.1f", result.throughput);
            csv.row({system, "pmem-nt", std::to_string(interval),
                     std::to_string(result.throughput),
                     std::to_string(result.slowdown)});
        }
        std::printf("%12.1f\n", ideal);
    }

    // nt-store vs clwb persist path (4.01 vs 2.46 GB/s, §3.3). At
    // f=1 the checkpoint demand (~16 GB/s) saturates either path, so
    // the bandwidth difference is visible in training throughput.
    std::printf("\n--- PCcheck persist-path ablation (f=1) ---\n");
    for (const StorageKind kind :
         {StorageKind::kPmemNt, StorageKind::kPmemClwb}) {
        RunSpec spec;
        spec.system = "pccheck";
        spec.model = "bert";
        spec.interval = 1;
        spec.storage = kind;
        const RunResult result = measure(spec);
        const char* name =
            kind == StorageKind::kPmemNt ? "nt-store" : "clwb";
        std::printf("%-10s throughput %.1f it/s  slowdown %.3fx\n", name,
                    result.throughput, result.slowdown);
        csv.row({"pccheck", name, "1",
                 std::to_string(result.throughput),
                 std::to_string(result.slowdown)});
    }
    std::printf("(paper: by checkpointing every 10 instead of 100 "
                "iterations, recovery drops 10x at equal overhead)\n");
    return 0;
}
