/**
 * @file
 * Crash-monkey sweep at bench scale: hundreds of seeded runs of the
 * full training loop with N concurrent checkpoints over the
 * adversarial CrashSimStorage, each crashing at a random storage-op
 * index, recovering from the captured media image, and validating the
 * paper's invariant — at any crash point at least one fully persisted,
 * CRC-valid checkpoint exists.
 *
 * Usage: crash_sweep [--seeds=N] [--smoke]
 *   --seeds=N  number of crash seeds (default 200)
 *   --smoke    32 seeds, for CI
 * Any invariant violation prints its seed and crash-op index so the
 * failing run can be replayed exactly.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/orchestrator.h"
#include "core/recovery.h"
#include "core/slot_store.h"
#include "faults/fault.h"
#include "faults/faulty_storage.h"
#include "storage/crash_sim.h"
#include "storage/mem_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"

using namespace pccheck;
using namespace pccheck::bench;

namespace {

constexpr Bytes kState = 16 * 1024;
constexpr int kConcurrent = 2;
constexpr int kSlots = kConcurrent + 1;
constexpr std::uint64_t kWarmupIters = 4;
constexpr std::uint64_t kMainIters = 14;
constexpr std::uint64_t kInterval = 2;

GpuConfig
fast_gpu()
{
    GpuConfig config;
    config.memory_bytes = 2 * kMiB;
    config.pcie_bytes_per_sec = 0;
    return config;
}

ScaledModel
tiny_model()
{
    return scale_model(model_by_name("vgg16"),
                       ScaleFactors{600.0, 20000.0});
}

struct SeedRun {
    std::uint64_t ops_after_warmup = 0;
    std::uint64_t ops_total = 0;
    bool crashed = false;
    std::uint64_t warm_iteration = 0;
    std::vector<std::uint8_t> image;
};

SeedRun
run_training(std::uint64_t seed, std::uint64_t crash_op)
{
    SeedRun out;
    auto injector = std::make_shared<FaultInjector>(seed);
    auto media_owned = std::make_unique<CrashSimStorage>(
        SlotStore::required_size(kSlots, kState), StorageKind::kPmemNt,
        seed, 0.5);
    CrashSimStorage* media = media_owned.get();
    FaultyStorage device(std::move(media_owned), injector);

    SimGpu gpu(fast_gpu());
    TrainingState state(gpu, kState);
    PCcheckConfig config;
    config.concurrent_checkpoints = kConcurrent;
    config.retry_seed = seed;

    {
        PCcheckCheckpointer warm(state, device, config);
        TrainingLoop loop(gpu, state, tiny_model());
        loop.run(kWarmupIters, kInterval, warm);
        const auto latest = warm.commit_protocol().latest_pointer();
        PCCHECK_CHECK(latest.has_value());
        out.warm_iteration = latest->iteration;
    }
    out.ops_after_warmup = injector->ops();

    if (crash_op > 0) {
        FaultRule crash;
        crash.point = "*";
        crash.action = FaultAction::kCrash;
        crash.trigger = FaultTrigger::kNthOp;
        crash.nth = crash_op;
        crash.limit = 1;
        injector->set_crash_handler([&out, media] {
            out.image = media->crash_image();
        });
        injector->set_plan(FaultPlan{}.add(crash));
    }

    {
        PCcheckCheckpointer main_ck(state, device, config);
        TrainingLoop loop(gpu, state, tiny_model());
        loop.run(kMainIters, kInterval, main_ck, kWarmupIters + 1);
    }
    out.ops_total = injector->ops();
    out.crashed = injector->crashes() > 0;
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    set_log_level(LogLevel::kWarn);
    int seeds = 200;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--seeds=", 0) == 0) {
            seeds = std::atoi(arg.c_str() + 8);
        } else if (arg == "--smoke") {
            seeds = 32;
        }
    }
    PCCHECK_CHECK_MSG(seeds >= 1, "--seeds must be positive");

    CsvWriter csv("crash_sweep.csv",
                  {"seed", "crash_op", "crashed", "recovered_iteration",
                   "warm_iteration"});
    announce("crash_sweep", csv.path());

    const SeedRun calib = run_training(12345, 0);
    PCCHECK_CHECK(calib.ops_total > calib.ops_after_warmup);
    std::printf("op stream: %llu warmup + %llu faultable ops/run\n",
                static_cast<unsigned long long>(calib.ops_after_warmup),
                static_cast<unsigned long long>(
                    calib.ops_total - calib.ops_after_warmup));

    int crashed = 0;
    int violations = 0;
    std::uint64_t worst_loss = 0;
    for (int s = 1; s <= seeds; ++s) {
        const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(s);
        Rng pick(seed * 0x9E3779B97F4A7C15ULL);
        const std::uint64_t crash_op =
            calib.ops_after_warmup + 1 +
            pick.next_below(calib.ops_total - calib.ops_after_warmup);
        const SeedRun run = run_training(seed, crash_op);
        std::uint64_t recovered_iteration = 0;
        if (run.crashed) {
            ++crashed;
            MemStorage dead(run.image.size());
            std::memcpy(dead.raw(), run.image.data(), run.image.size());
            std::vector<std::uint8_t> buffer;
            const auto recovered = recover_to_buffer(dead, &buffer);
            const bool valid =
                recovered.has_value() &&
                recovered->iteration >= run.warm_iteration &&
                TrainingState::verify_buffer(buffer.data(),
                                             buffer.size()) ==
                    std::make_optional(recovered->iteration);
            if (!valid) {
                ++violations;
                std::printf("VIOLATION seed=%llu crash_op=%llu\n",
                            static_cast<unsigned long long>(seed),
                            static_cast<unsigned long long>(crash_op));
            } else {
                recovered_iteration = recovered->iteration;
                const std::uint64_t newest_possible =
                    kWarmupIters + kMainIters;
                worst_loss = std::max(
                    worst_loss, newest_possible - recovered->iteration);
            }
        }
        csv.row({std::to_string(seed), std::to_string(crash_op),
                 run.crashed ? "1" : "0",
                 std::to_string(recovered_iteration),
                 std::to_string(run.warm_iteration)});
    }

    std::printf("seeds=%d crashed=%d violations=%d worst_loss=%llu "
                "iterations\n",
                seeds, crashed, violations,
                static_cast<unsigned long long>(worst_loss));
    return violations == 0 ? 0 : 1;
}
