/**
 * @file
 * §2.2 comparison: just-in-time checkpointing [Gupta et al.] vs
 * PCcheck's periodic checkpointing on spot traces with increasingly
 * bulky preemptions. JIT wins when failures are isolated (no
 * steady-state overhead, replicas always survive); it collapses once
 * bulky preemptions routinely take out every replica of some
 * partition — the paper's argument for periodic checkpointing on
 * preemptible resources.
 */

#include <cstdio>

#include "bench/common.h"
#include "goodput/analytic.h"
#include "goodput/goodput.h"
#include "goodput/jit.h"
#include "goodput/recovery_model.h"
#include "trace/preemption_trace.h"
#include "trainsim/models.h"
#include "util/csv.h"

using namespace pccheck;
using namespace pccheck::bench;

int
main()
{
    const ModelSpec& spec = model_by_name("opt-1.3b");
    AnalyticInputs in;
    in.iteration_time = spec.iteration_time;
    in.checkpoint_bytes = spec.checkpoint_bytes;
    in.interval = 25;
    in.per_writer_bytes_per_sec = 1.2e9;

    CsvWriter csv("ablation_jit.csv",
                  {"burst_max", "jit_goodput", "pccheck_goodput",
                   "jit_catastrophic"});
    announce("ablation_jit", csv.path());

    std::printf("=== JIT vs PCcheck periodic (OPT-1.3B, f=25, 64 VMs, "
                "2 replicas) ===\n");
    std::printf("%-10s %-12s %-12s %-18s\n", "burst_max", "jit",
                "pccheck", "jit catastrophes");
    for (const int burst_max : {1, 2, 4, 8, 16, 32}) {
        SpotProfile profile = gcp_a100_profile();
        profile.burst_probability = burst_max > 1 ? 0.4 : 0.0;
        profile.burst_max = burst_max;
        const PreemptionTrace trace = generate_trace(profile, 99);

        // JIT: ideal throughput, catastrophic on full-replica loss.
        JitInputs jit;
        jit.total_vms = 64;
        jit.replicas = 2;
        jit.throughput = analytic_throughput("ideal", in);
        jit.jit_recovery = 60;
        jit.fallback_recovery = 3600;  // last daily checkpoint / redo
        Rng rng(7);
        const JitGoodputResult jit_result =
            replay_jit_goodput(trace, jit, rng);

        // PCcheck: periodic with the §4.2 expected recovery.
        RecoveryModelInputs rec;
        rec.iteration_time = in.iteration_time;
        rec.interval = in.interval;
        rec.checkpoint_time = analytic_checkpoint_time("pccheck", in);
        rec.load_time =
            static_cast<double>(in.checkpoint_bytes) / 0.9e9;
        rec.concurrent = in.concurrent;
        GoodputInputs gp;
        gp.throughput = analytic_throughput("pccheck", in);
        gp.expected_recovery = expected_recovery("pccheck", rec);
        const GoodputResult pccheck_result = replay_goodput(trace, gp);

        std::printf("%-10d %-12.4f %-12.4f %zu of %zu\n", burst_max,
                    jit_result.goodput, pccheck_result.goodput,
                    jit_result.catastrophic_failures,
                    trace.events.size());
        csv.row_numeric(
            std::to_string(burst_max),
            {jit_result.goodput, pccheck_result.goodput,
             static_cast<double>(jit_result.catastrophic_failures)});
    }
    std::printf("\n(JIT is ideal under isolated failures; bulky "
                "preemptions that kill all replicas of a partition "
                "force full fallbacks — §2.2)\n");
    return 0;
}
