/**
 * @file
 * §5.2.1 H100 variant: "We also experiment with a higher-end machine
 * for OPT-1.3B, using a Standard_NC40ads_H100_v5 VM from Azure with
 * an H100 GPU and a 3.5 TB NVMe SSD. We observe similar patterns for
 * PCcheck and the baselines, since the iteration time was halved, and
 * the disk bandwidth doubled."
 *
 * Reproduced by literally halving t and doubling the SSD channel: the
 * Tw/(f·t) ratios — and therefore every curve — are unchanged, which
 * is what "similar patterns" means and what this bench verifies.
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "goodput/analytic.h"
#include "trainsim/models.h"
#include "util/csv.h"

using namespace pccheck;
using namespace pccheck::bench;

int
main()
{
    const ModelSpec& opt = model_by_name("opt-1.3b");

    CsvWriter csv("fig08_h100.csv",
                  {"machine", "system", "interval", "slowdown"});
    announce("fig08_h100", csv.path());

    struct Machine {
        const char* name;
        double time_factor;  ///< iteration time multiplier
        double ssd_factor;   ///< disk bandwidth multiplier
        double pcie;         ///< GPU link bandwidth
    };
    const Machine machines[] = {
        {"a100-pd-ssd", 1.0, 1.0, 12.8e9},
        {"h100-nvme", 0.5, 2.0, 50.0e9},  // PCIe5 x16 + fast NVMe
    };

    std::printf("=== OPT-1.3B slowdown (analytic): A100+pd-ssd vs "
                "H100+NVMe ===\n%-14s", "interval");
    for (const Machine& machine : machines) {
        std::printf(" %12s", machine.name);
    }
    std::printf("   (pccheck; ratio should match: t halved, disk "
                "doubled)\n");

    for (const std::uint64_t interval :
         {1ULL, 10ULL, 25ULL, 50ULL, 100ULL}) {
        std::printf("%-14llu", static_cast<unsigned long long>(interval));
        for (const Machine& machine : machines) {
            AnalyticInputs in;
            in.iteration_time = opt.iteration_time * machine.time_factor;
            in.checkpoint_bytes = opt.checkpoint_bytes;
            in.interval = interval;
            in.pcie_bytes_per_sec = machine.pcie;
            in.storage_bytes_per_sec = 0.8e9 * machine.ssd_factor;
            in.per_writer_bytes_per_sec = 1.2e9 * machine.ssd_factor;
            const double slowdown =
                analytic_throughput("ideal", in) /
                analytic_throughput("pccheck", in);
            std::printf(" %12.3f", slowdown);
            csv.row({machine.name, "pccheck", std::to_string(interval),
                     std::to_string(slowdown)});
        }
        std::printf("\n");
    }
    std::printf("\n(both halve t and double disk bandwidth, so the "
                "Tw/(f·t) ratio — and the curve shape — is identical; "
                "'similar patterns' as §5.2.1 reports)\n");
    return 0;
}
