/**
 * @file
 * Paper Figure 14: sensitivity to the DRAM staging budget and chunked
 * pipelining — OPT-1.3B at f=15, DRAM ∈ {m, 1.5m, 2m}, non-pipelined
 * vs 2/4/8 chunks (DESIGN.md ablation 3).
 *
 * Expected shape: pipelining is slightly better than monolithic
 * staging; shrinking DRAM from 2m to m costs at most a few percent —
 * PCcheck is usable under tight memory budgets (§5.4.3).
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "trainsim/models.h"
#include "util/csv.h"
#include "util/logging.h"

using namespace pccheck;
using namespace pccheck::bench;

int
main()
{
    set_log_level(LogLevel::kWarn);
    const ModelSpec& spec = model_by_name("opt-1.3b");
    const ScaleFactors factors = auto_factors(spec);
    const Bytes m = factors.scale_size(spec.checkpoint_bytes);

    struct DramPoint {
        const char* label;
        double multiple;
    };
    const std::vector<DramPoint> dram_points = {
        {"m", 1.0}, {"1.5m", 1.5}, {"2m", 2.0}};
    const std::vector<int> chunk_counts = {1, 2, 4, 8};

    CsvWriter csv("fig14_dram_sens.csv",
                  {"dram", "chunks", "throughput_it_s", "slowdown"});
    announce("fig14_dram_sens", csv.path());

    std::printf("=== OPT-1.3B throughput [it/s] (f=15), varying DRAM "
                "and pipeline chunks ===\n%-8s", "DRAM");
    for (const int chunks : chunk_counts) {
        if (chunks == 1) {
            std::printf("%14s", "monolithic");
        } else {
            std::printf("         p%-4d", chunks);
        }
    }
    std::printf("\n");

    double best = 0;
    double dram_m_best = 0;
    for (const auto& dram : dram_points) {
        std::printf("%-8s", dram.label);
        for (const int chunks : chunk_counts) {
            RunSpec run;
            run.system = "pccheck";
            run.model = "opt-1.3b";
            run.interval = 15;
            run.dram_bytes =
                static_cast<Bytes>(dram.multiple *
                                   static_cast<double>(m));
            run.chunk_bytes =
                chunks == 1 ? 0 : m / static_cast<Bytes>(chunks);
            const RunResult result = measure(run);
            std::printf("%14.2f", result.throughput);
            csv.row({dram.label, std::to_string(chunks),
                     std::to_string(result.throughput),
                     std::to_string(result.slowdown)});
            best = std::max(best, result.throughput);
            if (dram.multiple == 1.0) {
                dram_m_best = std::max(dram_m_best, result.throughput);
            }
        }
        std::printf("\n");
    }
    std::printf("\nDRAM=m costs %.1f%% vs best (paper: <= 7%%)\n",
                100.0 * (best - dram_m_best) / best);
    return 0;
}
