/**
 * @file
 * Paper Figure 9: goodput when replaying the GCP A100 spot preemption
 * trace, per model and checkpoint interval, for CheckFreq / GPM /
 * PCcheck (+ Gemini distributed) against the ideal upper bound.
 *
 * Throughputs are read from fig08_throughput_ssd.csv when present
 * (run fig08 first — the default `for b in build/bench/*` order does)
 * and measured on the spot otherwise. The per-failure cost follows
 * §5.2.3: expected recovery from the §4.2 bounds plus the 5.5 s
 * pd-ssd reattach (waived for Gemini), scaled to bench time.
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "goodput/goodput.h"
#include "goodput/recovery_model.h"
#include "trace/preemption_trace.h"
#include "trainsim/models.h"
#include "util/csv.h"
#include "util/logging.h"

using namespace pccheck;
using namespace pccheck::bench;

namespace {

struct Key {
    std::string model;
    std::string system;
    std::uint64_t interval;

    bool
    operator<(const Key& other) const
    {
        return std::tie(model, system, interval) <
               std::tie(other.model, other.system, other.interval);
    }
};

/** throughput, ideal: loaded from fig08's CSV when available. */
std::map<Key, std::pair<double, double>>
load_fig08()
{
    std::map<Key, std::pair<double, double>> table;
    std::ifstream in("fig08_throughput_ssd.csv");
    if (!in) {
        return table;
    }
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
        std::istringstream iss(line);
        std::string model;
        std::string system;
        std::string interval;
        std::string throughput;
        std::string ideal;
        if (std::getline(iss, model, ',') &&
            std::getline(iss, system, ',') &&
            std::getline(iss, interval, ',') &&
            std::getline(iss, throughput, ',') &&
            std::getline(iss, ideal, ',')) {
            table[{model, system, std::stoull(interval)}] = {
                std::stod(throughput), std::stod(ideal)};
        }
    }
    return table;
}

}  // namespace

int
main()
{
    set_log_level(LogLevel::kWarn);
    const auto fig08 = load_fig08();
    if (fig08.empty()) {
        std::printf("# fig08 CSV not found — measuring throughputs "
                    "inline (slower)\n");
    }

    const std::vector<std::string> models = {
        "vgg16", "transformerxl", "bert",
        "opt-1.3b", "opt-2.7b", "bloom-7b"};
    const std::vector<std::uint64_t> intervals = {1, 10, 25, 50, 100};

    CsvWriter csv("fig09_goodput_trace.csv",
                  {"model", "system", "interval", "goodput_it_s",
                   "ideal_goodput_it_s"});
    announce("fig09_goodput_trace", csv.path());

    for (const auto& model : models) {
        const ModelSpec& spec = model_by_name(model);
        const bool distributed = spec.pipeline_stages > 1;
        const auto& systems =
            distributed ? kDistributedSystems : kSingleGpuSystems;
        const ScaleFactors factors = auto_factors(spec);

        // Compress the 16 h GCP trace by the model's time factor.
        SpotProfile profile = gcp_a100_profile();
        profile.duration = factors.scale_time(profile.duration);
        profile.events_per_hour *= factors.time;
        const PreemptionTrace trace = generate_trace(profile, 16);
        const Seconds load_time = factors.scale_time(
            static_cast<double>(spec.checkpoint_bytes /
                                static_cast<Bytes>(std::max(
                                    spec.pipeline_stages, 1))) /
            0.9e9);

        std::printf("\n=== %s goodput [it/s] on GCP trace (%zu "
                    "failures, bench scale) ===\n",
                    model.c_str(), trace.events.size());
        std::printf("%-10s", "interval");
        for (const auto& system : systems) {
            std::printf("%12s", system.c_str());
        }
        std::printf("%12s\n", "ideal");

        std::vector<double> peak(systems.size() + 1, 0);
        for (const std::uint64_t interval : intervals) {
            std::printf("%-10llu",
                        static_cast<unsigned long long>(interval));
            double ideal_tp = 0;
            for (std::size_t i = 0; i < systems.size(); ++i) {
                const auto& system = systems[i];
                double throughput = 0;
                const auto it = fig08.find({model, system, interval});
                if (it != fig08.end()) {
                    throughput = it->second.first;
                    ideal_tp = it->second.second;
                } else {
                    RunSpec spec_run;
                    spec_run.system = system;
                    spec_run.model = model;
                    spec_run.interval = interval;
                    const RunResult result = measure(spec_run);
                    throughput = result.throughput;
                    ideal_tp = result.ideal_throughput;
                }
                RecoveryModelInputs rec;
                rec.iteration_time = factors.scale_time(
                    spec.iteration_time);
                rec.interval = interval;
                rec.checkpoint_time = factors.scale_time(full_scale_tw(
                    spec, StorageKind::kSsdMsync));
                rec.load_time = load_time;
                rec.concurrent = 2;
                if (system == "gemini") {
                    // Gemini checkpoints to and recovers from remote
                    // DRAM over the NIC instead of the SSD.
                    const auto partition = static_cast<double>(
                        spec.checkpoint_bytes /
                        static_cast<Bytes>(
                            std::max(spec.pipeline_stages, 1)));
                    rec.checkpoint_time =
                        factors.scale_time(partition / 1.88e9);
                    rec.load_time =
                        factors.scale_time(partition / 1.88e9);
                }
                GoodputInputs gp;
                gp.throughput = throughput;
                gp.expected_recovery = expected_recovery(
                    system == "gpm" ? "gpm"
                    : system == "pccheck" ? "pccheck"
                                          : "checkfreq",
                    rec);
                gp.reattach_time =
                    system == "gemini" ? 0.0 : factors.scale_time(5.5);
                const double goodput =
                    replay_goodput(trace, gp).goodput;
                peak[i] = std::max(peak[i], goodput);
                std::printf("%12.1f", goodput);
                csv.row({model, system, std::to_string(interval),
                         std::to_string(goodput),
                         std::to_string(ideal_tp)});
            }
            // Ideal: full throughput, minimal recovery.
            RecoveryModelInputs rec;
            rec.iteration_time =
                factors.scale_time(spec.iteration_time);
            rec.interval = interval;
            rec.checkpoint_time = 0;
            rec.load_time = load_time;
            GoodputInputs gp;
            gp.throughput = ideal_tp;
            gp.expected_recovery = expected_recovery("gpm", rec);
            gp.reattach_time = factors.scale_time(5.5);
            const double ideal_goodput =
                replay_goodput(trace, gp).goodput;
            peak.back() = std::max(peak.back(), ideal_goodput);
            std::printf("%12.1f\n", ideal_goodput);
        }
        std::printf("peak vs ideal peak: ");
        for (std::size_t i = 0; i < systems.size(); ++i) {
            std::printf("%s %.0f%%  ", systems[i].c_str(),
                        100.0 * peak[i] / peak.back());
        }
        std::printf("\n");
    }
    std::printf("\n(paper: PCcheck up to 2.86x CheckFreq, 1.75x GPM, "
                "2.75x Gemini at matched frequencies; peak-vs-peak up "
                "to 1.25-1.44x)\n");
    return 0;
}
