#ifndef PCCHECK_BENCH_COMMON_H_
#define PCCHECK_BENCH_COMMON_H_

/**
 * @file
 * Shared harness for the figure-reproduction benches: per-model
 * scaling, paper-calibrated device construction, and measured
 * throughput runs for every checkpointing system (single-GPU and
 * pipeline-parallel clusters).
 *
 * Scaling: each model is translated so one iteration lasts about
 * target_iteration (default 3 ms) and one checkpoint about target_m
 * (default 1.5 MiB); device and PCIe bandwidths are multiplied by
 * Kt/Ks, preserving every ratio in the paper's model (DESIGN.md §1).
 */

#include <string>
#include <vector>

#include "storage/device.h"
#include "storage/throttled_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "util/csv.h"

namespace pccheck::bench {

/** Systems the harness can measure. */
inline const std::vector<std::string> kSingleGpuSystems = {
    "checkfreq", "gpm", "pccheck"};
inline const std::vector<std::string> kDistributedSystems = {
    "checkfreq", "gpm", "gemini", "pccheck"};

/** Scale a model so benches run in milliseconds (see file comment). */
ScaleFactors auto_factors(const ModelSpec& spec,
                          Seconds target_iteration = 3e-3,
                          Bytes target_m = 1536 * kKiB);

/** Knobs of one measured run. */
struct RunSpec {
    std::string system;            ///< none/sync/checkfreq/gpm/pccheck
    std::string model;             ///< Table 3 name
    std::uint64_t interval = 10;   ///< f; 0 = no checkpoints
    StorageKind storage = StorageKind::kSsdMsync;
    int concurrent = 2;            ///< N (pccheck)
    int writers = 3;               ///< p (pccheck)
    Bytes chunk_bytes = 0;         ///< pipelining (pccheck)
    Bytes dram_bytes = 0;          ///< staging budget (pccheck)
    std::uint64_t iterations = 0;  ///< 0 = auto (enough cycles)
};

/** Result of one measured run. */
struct RunResult {
    double throughput = 0;       ///< iterations/sec, bench scale
    double ideal_throughput = 0; ///< 1/t at the same scale
    double slowdown = 0;         ///< ideal / measured
    CheckpointerStats stats;
    ScaleFactors factors;
    Seconds iteration_time = 0;  ///< scaled t
};

/**
 * Measure one configuration. Single-stage models run the single-GPU
 * loop; pipeline models (OPT-2.7B, BLOOM-7B) run the cluster harness
 * with one checkpointer per stage ("gemini" only there).
 */
RunResult measure(const RunSpec& spec);

/** Paper-scale full-device write time m/Ts (Tw floor), seconds. */
Seconds full_scale_tw(const ModelSpec& spec, StorageKind kind);

/** Print a CSV path notice (keeps bench outputs uniform). */
void announce(const std::string& bench, const std::string& csv_path);

/** Observability knobs every bench accepts on its command line. */
struct BenchOptions {
    std::string trace_out;  ///< --trace-out=FILE; empty = tracing off
    bool smoke = false;     ///< --smoke: reduced iterations for CI
};

/**
 * Parse --trace-out=FILE and --smoke from @p argv (unknown args are
 * ignored) and enable span capture when a trace path was given.
 */
BenchOptions parse_bench_args(int argc, char** argv);

/**
 * Bench epilogue: write the Chrome trace (when --trace-out was given)
 * and dump the stage-latency metrics (p50/p95/p99) to stdout.
 */
void finish_observability(const BenchOptions& options);

}  // namespace pccheck::bench

#endif  // PCCHECK_BENCH_COMMON_H_
