#include "bench/common.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include <cstring>
#include <iostream>

#include "baselines/checkfreq.h"
#include "baselines/gemini.h"
#include "baselines/gpm.h"
#include "baselines/sync_checkpoint.h"
#include "core/cluster.h"
#include "core/orchestrator.h"
#include "core/slot_store.h"
#include "goodput/analytic.h"
#include "obs/trace.h"
#include "storage/mem_storage.h"
#include "trainsim/training_state.h"
#include "util/check.h"
#include "util/metrics.h"

namespace pccheck::bench {
namespace {

/** Full-scale single-writer and serialization bandwidths (bytes/s). */
constexpr double kPerWriterSsd = 1.2e9;
constexpr double kPerWriterPmem = 1.6e9;
constexpr double kSerialize = 1.0e9;  // torch.save CPU serialization
constexpr double kPcieA100 = 12.8e9;  // PCIe3 x16 effective
constexpr double kNicGcp = 1.88e9;    // 15 Gbps VM NIC

double
per_writer_for(StorageKind kind)
{
    return kind == StorageKind::kSsdMsync ? kPerWriterSsd : kPerWriterPmem;
}

/**
 * Enough iterations to reach persist-backlog steady state: several
 * checkpoint cycles AND several checkpoint-write times Tw, so slot
 * and staging-buffer backpressure is fully expressed (a short run
 * hides the backlog in the N-slot startup transient).
 */
std::uint64_t
auto_iterations(std::uint64_t interval, bool distributed,
                Seconds tw_scaled, Seconds iteration_time)
{
    if (interval == 0) {
        return 50;
    }
    const auto tw_iters = static_cast<std::uint64_t>(
        5.0 * tw_scaled / iteration_time);
    const std::uint64_t hi = distributed ? 300 : 500;
    return std::clamp<std::uint64_t>(
        std::max(3 * interval, tw_iters), 40, hi);
}

std::unique_ptr<ThrottledStorage>
make_device(StorageKind kind, const ScaleFactors& factors,
            std::uint32_t slots, Bytes slot_size,
            double persist_efficiency = 1.0)
{
    const StorageBandwidth bw = paper_bandwidth(kind);
    const Bytes capacity = SlotStore::required_size(slots, slot_size);
    // Timing-only benches: MemStorage backing for both kinds (crash
    // semantics are exercised in tests/, not here).
    return std::make_unique<ThrottledStorage>(
        std::make_unique<MemStorage>(capacity),
        factors.scale_bandwidth(bw.write_bytes_per_sec),
        factors.scale_bandwidth(bw.persist_bytes_per_sec *
                                persist_efficiency),
        factors.scale_bandwidth(bw.read_bytes_per_sec));
}

/** GPM's UVM write-back reaches ~half the SSD's bandwidth. */
double
gpm_efficiency(StorageKind kind)
{
    return kind == StorageKind::kSsdMsync ? kGpmUvmEfficiency : 1.0;
}

RunResult
measure_single(const RunSpec& spec, const ScaledModel& model)
{
    GpuConfig gpu_config;
    gpu_config.memory_bytes = model.checkpoint_bytes + 4 * kMiB;
    gpu_config.pcie_bytes_per_sec =
        model.factors.scale_bandwidth(kPcieA100);
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, model.checkpoint_bytes);

    const std::uint32_t slots =
        spec.system == "pccheck"
            ? static_cast<std::uint32_t>(spec.concurrent + 1)
            : 2;
    auto device = make_device(
        spec.storage, model.factors, slots, model.checkpoint_bytes,
        spec.system == "gpm" ? gpm_efficiency(spec.storage) : 1.0);

    std::unique_ptr<Checkpointer> checkpointer;
    if (spec.system == "none") {
        checkpointer = std::make_unique<NoCheckpointer>();
    } else if (spec.system == "sync" || spec.system == "checkfreq") {
        BaselineConfig config;
        config.serialize_bytes_per_sec =
            model.factors.scale_bandwidth(kSerialize);
        config.per_writer_bytes_per_sec =
            model.factors.scale_bandwidth(per_writer_for(spec.storage));
        config.compute_crc = false;  // timing bench: avoid CPU noise
        if (spec.system == "sync") {
            checkpointer = std::make_unique<SyncCheckpointer>(
                state, *device, config);
        } else {
            checkpointer = std::make_unique<CheckFreqCheckpointer>(
                state, *device, config);
        }
    } else if (spec.system == "gpm") {
        checkpointer = std::make_unique<GpmCheckpointer>(
            state, *device, MonotonicClock::instance(),
            /*compute_crc=*/false);
    } else if (spec.system == "pccheck") {
        PCcheckConfig config;
        config.concurrent_checkpoints = spec.concurrent;
        config.writers_per_checkpoint = spec.writers;
        config.chunk_bytes = spec.chunk_bytes;
        config.dram_bytes = spec.dram_bytes;
        config.per_writer_bytes_per_sec =
            model.factors.scale_bandwidth(per_writer_for(spec.storage));
        config.compute_crc = false;  // timing bench: avoid CPU noise
        checkpointer = std::make_unique<PCcheckCheckpointer>(
            state, *device, config);
    } else {
        fatal("measure: unknown single-GPU system " + spec.system);
    }

    const Seconds tw_scaled =
        model.factors.scale_time(full_scale_tw(model.spec, spec.storage));
    const std::uint64_t iterations =
        spec.iterations ? spec.iterations
                        : auto_iterations(spec.interval, false, tw_scaled,
                                          model.iteration_time);
    TrainingLoop loop(gpu, state, model);
    const TrainingResult run =
        loop.run(iterations, spec.interval, *checkpointer);

    RunResult result;
    result.throughput = run.throughput;
    result.ideal_throughput = ideal_throughput(model);
    result.slowdown = result.ideal_throughput / run.throughput;
    result.stats = run.checkpointer;
    result.factors = model.factors;
    result.iteration_time = model.iteration_time;
    return result;
}

RunResult
measure_cluster(const RunSpec& spec, const ScaledModel& model)
{
    const int nodes = model.spec.pipeline_stages;
    const Bytes partition =
        std::max<Bytes>(model.checkpoint_bytes /
                            static_cast<Bytes>(nodes),
                        64 * kKiB);
    ClusterConfig config;
    config.nodes = nodes;
    config.stage_time = model.iteration_time;
    config.update_fraction = model.spec.update_fraction;
    config.partition_bytes = partition;
    config.activation_bytes = std::max<Bytes>(partition / 64, 4096);
    config.gpu.pcie_bytes_per_sec =
        model.factors.scale_bandwidth(kPcieA100);
    config.network.nic_bytes_per_sec =
        model.factors.scale_bandwidth(kNicGcp);
    config.network.latency = 0;
    config.coordinate = spec.system == "pccheck";

    PipelineCluster cluster(config);
    std::vector<std::unique_ptr<StorageDevice>> devices(
        static_cast<std::size_t>(nodes));
    std::vector<std::unique_ptr<MemStorage>> peer_memory(
        static_cast<std::size_t>(nodes));

    const auto factory =
        [&](const ClusterNode& node) -> PipelineCluster::NodeCheckpointer {
        const auto index = static_cast<std::size_t>(node.rank);
        const std::uint32_t slots =
            spec.system == "pccheck"
                ? static_cast<std::uint32_t>(spec.concurrent + 1)
                : 2;
        if (spec.system != "gemini" && spec.system != "none") {
            devices[index] = make_device(
                spec.storage, model.factors, slots, partition,
                spec.system == "gpm" ? gpm_efficiency(spec.storage)
                                     : 1.0);
        }
        if (spec.system == "none") {
            return {std::make_unique<NoCheckpointer>(), nullptr};
        }
        if (spec.system == "checkfreq") {
            BaselineConfig bl;
            bl.serialize_bytes_per_sec =
                model.factors.scale_bandwidth(kSerialize);
            bl.per_writer_bytes_per_sec = model.factors.scale_bandwidth(
                per_writer_for(spec.storage));
            bl.compute_crc = false;
            return {std::make_unique<CheckFreqCheckpointer>(
                        *node.state, *devices[index], bl),
                    nullptr};
        }
        if (spec.system == "gpm") {
            return {std::make_unique<GpmCheckpointer>(
                        *node.state, *devices[index],
                        MonotonicClock::instance(),
                        /*compute_crc=*/false),
                    nullptr};
        }
        if (spec.system == "gemini") {
            peer_memory[index] = std::make_unique<MemStorage>(partition);
            const int peer = (node.rank + 1) % nodes;
            return {std::make_unique<GeminiCheckpointer>(
                        *node.state, *node.network, node.rank, peer,
                        *peer_memory[index]),
                    nullptr};
        }
        if (spec.system == "pccheck") {
            PCcheckConfig pc;
            pc.concurrent_checkpoints = spec.concurrent;
            pc.writers_per_checkpoint = spec.writers;
            pc.chunk_bytes = spec.chunk_bytes;
            pc.dram_bytes = spec.dram_bytes;
            pc.per_writer_bytes_per_sec = model.factors.scale_bandwidth(
                per_writer_for(spec.storage));
            pc.compute_crc = false;
            auto checkpointer = std::make_unique<PCcheckCheckpointer>(
                *node.state, *devices[index], pc);
            PCcheckCheckpointer* raw = checkpointer.get();
            return {std::move(checkpointer), [raw] {
                        const auto latest =
                            raw->commit_protocol().latest_pointer();
                        return latest ? latest->iteration : 0;
                    }};
        }
        fatal("measure: unknown distributed system " + spec.system);
    };

    const StorageBandwidth bw = paper_bandwidth(spec.storage);
    const double channel = spec.storage == StorageKind::kSsdMsync
                               ? bw.persist_bytes_per_sec
                               : bw.write_bytes_per_sec;
    const Seconds tw_scaled = model.factors.scale_time(
        static_cast<double>(model.spec.checkpoint_bytes /
                            static_cast<Bytes>(nodes)) /
        channel);
    const std::uint64_t iterations =
        spec.iterations ? spec.iterations
                        : auto_iterations(spec.interval, true, tw_scaled,
                                          model.iteration_time);
    const ClusterResult run =
        cluster.run(iterations, spec.interval, factory);

    RunResult result;
    result.throughput = run.throughput;
    // Ideal pipeline rate: compute plus the serial activation hop.
    const Seconds act_time =
        config.network.nic_bytes_per_sec > 0
            ? static_cast<double>(config.activation_bytes) /
                  config.network.nic_bytes_per_sec
            : 0.0;
    result.ideal_throughput =
        1.0 / (config.stage_time + act_time + config.network.latency);
    result.slowdown = result.ideal_throughput / run.throughput;
    for (const auto& stats : run.node_stats) {
        result.stats.requested += stats.requested;
        result.stats.completed += stats.completed;
        result.stats.stall_time += stats.stall_time;
        result.stats.checkpoint_latency.merge(stats.checkpoint_latency);
    }
    result.factors = model.factors;
    result.iteration_time = model.iteration_time;
    return result;
}

}  // namespace

ScaleFactors
auto_factors(const ModelSpec& spec, Seconds target_iteration,
             Bytes target_m)
{
    ScaleFactors factors;
    factors.time = std::max(1.0, spec.iteration_time / target_iteration);
    factors.size = std::max(
        1.0, static_cast<double>(spec.checkpoint_bytes) /
                 static_cast<double>(target_m));
    return factors;
}

namespace {

RunResult
measure_raw(const RunSpec& spec)
{
    const ModelSpec& model_spec = model_by_name(spec.model);
    const ScaledModel model =
        scale_model(model_spec, auto_factors(model_spec));
    if (model_spec.pipeline_stages > 1) {
        return measure_cluster(spec, model);
    }
    PCCHECK_CHECK_MSG(spec.system != "gemini",
                      "gemini requires a distributed model");
    return measure_single(spec, model);
}

/** Measured no-checkpoint throughput per model (the paper's
 *  horizontal baseline), cached across calls within one binary. */
double
measured_baseline(const std::string& model)
{
    static std::map<std::string, double> cache;
    const auto it = cache.find(model);
    if (it != cache.end()) {
        return it->second;
    }
    RunSpec spec;
    spec.system = "none";
    spec.model = model;
    spec.interval = 0;
    // Long enough to amortize cluster/thread startup; otherwise long
    // checkpointed runs can appear faster than a short baseline.
    spec.iterations = 200;
    const double throughput = measure_raw(spec).throughput;
    cache[model] = throughput;
    return throughput;
}

}  // namespace

RunResult
measure(const RunSpec& spec)
{
    RunResult result = measure_raw(spec);
    if (spec.system != "none") {
        // Compare against the measured no-checkpoint run, like the
        // paper's figures, which removes the constant harness bias
        // (sleep granularity, loop overhead) from every slowdown.
        result.ideal_throughput = measured_baseline(spec.model);
        result.slowdown = result.ideal_throughput / result.throughput;
    }
    return result;
}

Seconds
full_scale_tw(const ModelSpec& spec, StorageKind kind)
{
    const StorageBandwidth bw = paper_bandwidth(kind);
    const double channel = kind == StorageKind::kSsdMsync
                               ? bw.persist_bytes_per_sec
                               : bw.write_bytes_per_sec;
    return static_cast<double>(spec.checkpoint_bytes) / channel;
}

void
announce(const std::string& bench, const std::string& csv_path)
{
    std::printf("# %s — results written to %s\n", bench.c_str(),
                csv_path.c_str());
}

BenchOptions
parse_bench_args(int argc, char** argv)
{
    BenchOptions options;
    constexpr const char* kTracePrefix = "--trace-out=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], kTracePrefix,
                         std::strlen(kTracePrefix)) == 0) {
            options.trace_out = argv[i] + std::strlen(kTracePrefix);
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            options.smoke = true;
        }
    }
    if (!options.trace_out.empty()) {
        Tracer::global().set_enabled(true);
    }
    return options;
}

void
finish_observability(const BenchOptions& options)
{
    if (!options.trace_out.empty()) {
        Tracer::global().set_enabled(false);
        if (Tracer::global().write_file(options.trace_out)) {
            std::printf("# trace: %zu spans (%zu dropped) -> %s\n",
                        Tracer::global().event_count(),
                        Tracer::global().dropped_count(),
                        options.trace_out.c_str());
        } else {
            std::printf("# trace: failed to write %s\n",
                        options.trace_out.c_str());
        }
    }
    std::printf("# stage metrics:\n");
    MetricsRegistry::global().dump(std::cout);
}

}  // namespace pccheck::bench
