/**
 * @file
 * Paper Figure 12: sensitivity to the number of concurrent
 * checkpoints — slowdown over no-checkpointing for VGG16, varying
 * the frequency and N ∈ {1, 2, 4} (DESIGN.md ablation 1).
 *
 * Expected shape: N > 1 is consistently better than N = 1 at high
 * frequency; beyond ~4 the SSD is saturated and extra concurrency
 * stops paying.
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "util/csv.h"
#include "util/logging.h"

using namespace pccheck;
using namespace pccheck::bench;

int
main()
{
    set_log_level(LogLevel::kWarn);
    const std::vector<int> concurrency = {1, 2, 4};
    const std::vector<std::uint64_t> intervals = {1, 5, 10, 25, 50, 100};

    CsvWriter csv("fig12_concurrent_sens.csv",
                  {"interval", "n1_slowdown", "n2_slowdown",
                   "n4_slowdown"});
    announce("fig12_concurrent_sens", csv.path());

    std::printf("=== VGG16 slowdown over no checkpointing, varying N "
                "===\n%-10s", "interval");
    for (const int n : concurrency) {
        std::printf("       N=%-3d", n);
    }
    std::printf("\n");
    for (const std::uint64_t interval : intervals) {
        std::printf("%-10llu", static_cast<unsigned long long>(interval));
        std::vector<double> row;
        for (const int n : concurrency) {
            RunSpec spec;
            spec.system = "pccheck";
            spec.model = "vgg16";
            spec.interval = interval;
            spec.concurrent = n;
            const RunResult result = measure(spec);
            row.push_back(result.slowdown);
            std::printf("%12.2f", result.slowdown);
        }
        std::printf("\n");
        csv.row_numeric(std::to_string(interval), row);
    }
    std::printf("\n(paper: more than one concurrent checkpoint is "
                "consistently better; no more than 4 needed)\n");
    return 0;
}
