/**
 * @file
 * DESIGN.md ablation 4 / §3.3: DRAM staging vs GPUDirect-style direct
 * GPU→storage writes. The direct path skips the DRAM hop but cannot
 * overlap the fast GPU copy with the slow persist, and the whole
 * transfer sits on the snapshot critical path — the paper's reason
 * for choosing the staged design ("PCcheck achieves higher overall
 * throughput by overlapping fast GPU-to-DRAM copies with slower
 * persistent writes").
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/orchestrator.h"
#include "core/slot_store.h"
#include "storage/mem_storage.h"
#include "storage/throttled_storage.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "util/csv.h"
#include "util/logging.h"

using namespace pccheck;
using namespace pccheck::bench;

namespace {

double
run_mode(bool direct, std::uint64_t interval, std::uint64_t iterations)
{
    const ModelSpec& spec = model_by_name("bert");
    const ScaleFactors factors = auto_factors(spec);
    const ScaledModel model = scale_model(spec, factors);

    GpuConfig gpu_config;
    gpu_config.memory_bytes = model.checkpoint_bytes + 4 * kMiB;
    gpu_config.pcie_bytes_per_sec = factors.scale_bandwidth(12.8e9);
    SimGpu gpu(gpu_config);
    TrainingState state(gpu, model.checkpoint_bytes);

    const auto pmem = paper_bandwidth(StorageKind::kPmemNt);
    ThrottledStorage device(
        std::make_unique<MemStorage>(
            SlotStore::required_size(3, model.checkpoint_bytes)),
        factors.scale_bandwidth(pmem.write_bytes_per_sec),
        factors.scale_bandwidth(pmem.persist_bytes_per_sec),
        factors.scale_bandwidth(pmem.read_bytes_per_sec));

    PCcheckConfig config;
    config.concurrent_checkpoints = 2;
    config.direct_to_storage = direct;
    config.per_writer_bytes_per_sec = factors.scale_bandwidth(1.6e9);
    PCcheckCheckpointer checkpointer(state, device, config);
    TrainingLoop loop(gpu, state, model);
    return loop.run(iterations, interval, checkpointer).throughput;
}

}  // namespace

int
main()
{
    set_log_level(LogLevel::kWarn);
    CsvWriter csv("ablation_direct.csv",
                  {"interval", "staged_it_s", "direct_it_s",
                   "staged_advantage"});
    announce("ablation_direct", csv.path());

    std::printf("=== BERT on PMEM: staged (DRAM hop) vs GPUDirect-style "
                "===\n%-10s %-12s %-12s %-12s\n", "interval", "staged",
                "direct", "staged/dir");
    for (const std::uint64_t interval : {1ULL, 5ULL, 10ULL, 25ULL}) {
        const std::uint64_t iterations = 40 * interval > 200
                                             ? 200
                                             : 40 * interval;
        const double staged =
            run_mode(/*direct=*/false, interval, iterations);
        const double direct =
            run_mode(/*direct=*/true, interval, iterations);
        std::printf("%-10llu %-12.1f %-12.1f %-12.2f\n",
                    static_cast<unsigned long long>(interval), staged,
                    direct, staged / direct);
        csv.row_numeric(std::to_string(interval),
                        {staged, direct, staged / direct});
    }
    std::printf("\n(§3.3: the staged path wins because the GPU→DRAM "
                "copy overlaps the persistent write)\n");
    return 0;
}
