/**
 * @file
 * Delta-tier sustainability sweep (docs/DELTA_LOG.md): durability
 * points per second — checkpoints whose bytes are durable when the
 * call returns — for the full-image tier vs the incremental tier,
 * across dirty fractions, under the SAME throttled storage bandwidth.
 *
 * Full mode: every iteration takes a complete checkpoint
 * (request_checkpoint + finish), paying m bytes per point. Delta mode:
 * one full checkpoint every kFullInterval iterations re-bases the
 * chain; every other iteration seals one delta frame carrying only
 * the chunks the sparse update dirtied (~f·m bytes). The headline
 * number is the sustainable checkpoint frequency ratio at small f —
 * the paper-motivating regime where most of the state is cold between
 * checkpoints.
 *
 * Each configuration runs kReps times; the CSV carries every rep and
 * BENCH_delta.json the medians (the CI perf gate's input — see
 * docs/USAGE.md for the BENCH_*.json convention). The run fails (exit
 * 1) if the delta tier cannot sustain >= 3x the full tier's frequency
 * at dirty fraction <= 0.10.
 *
 * Usage: fig_delta [--smoke] [--trace-out=FILE]
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/orchestrator.h"
#include "core/slot_store.h"
#include "storage/mem_storage.h"
#include "storage/throttled_storage.h"
#include "trainsim/training_state.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/csv.h"
#include "util/logging.h"

using namespace pccheck;
using namespace pccheck::bench;

namespace {

constexpr Bytes kState = 1 * kMiB;
constexpr int kConcurrent = 2;
constexpr int kSlots = kConcurrent + 1;
/** Sized for a whole epoch of frames even at dirty fraction 1.0. */
constexpr Bytes kLogBytes = 32 * kMiB;
constexpr std::uint64_t kFullInterval = 16;
constexpr std::uint64_t kSparseSeed = 7;
constexpr int kReps = 3;

/** Same throttled media for both tiers: ~100 MB/s writes. */
constexpr double kWriteBps = 100e6;
constexpr double kPersistBps = 200e6;
constexpr double kReadBps = 1e9;

struct Rig {
    Rig()
    {
        GpuConfig gpu_config;
        gpu_config.memory_bytes = 4 * kMiB;
        gpu_config.pcie_bytes_per_sec = 0;  // isolate storage cost
        gpu = std::make_unique<SimGpu>(gpu_config);
        state = std::make_unique<TrainingState>(*gpu, kState);
        device = std::make_unique<ThrottledStorage>(
            std::make_unique<MemStorage>(
                SlotStore::required_size(kSlots, kState, kLogBytes)),
            kWriteBps, kPersistBps, kReadBps);
    }

    std::unique_ptr<SimGpu> gpu;
    std::unique_ptr<TrainingState> state;
    std::unique_ptr<ThrottledStorage> device;
};

struct Point {
    double points_per_sec = 0;  ///< durability points per second
    std::uint64_t delta_frames = 0;
    std::uint64_t delta_skipped = 0;
    Bytes delta_bytes = 0;
};

/**
 * One measured run: @p iterations durability points, each preceded by
 * a sparse update dirtying @p fraction of the state.
 */
Point
run_mode(bool use_delta, double fraction, std::uint64_t iterations)
{
    Rig rig;
    PCcheckConfig config;
    config.concurrent_checkpoints = kConcurrent;
    if (use_delta) {
        config.delta_log_bytes = kLogBytes;
    }
    PCcheckCheckpointer checkpointer(*rig.state, *rig.device, config);

    Point out;
    Stopwatch watch;
    for (std::uint64_t i = 1; i <= iterations; ++i) {
        rig.state->sparse_update(i, fraction, kSparseSeed);
        if (!use_delta || (i - 1) % kFullInterval == 0) {
            // Full-image durability point (re-bases the chain).
            checkpointer.request_checkpoint(i);
            checkpointer.finish();
        } else {
            // Incremental durability point: durable when it returns.
            checkpointer.request_delta(i);
        }
    }
    const Seconds elapsed = watch.elapsed();
    out.points_per_sec = static_cast<double>(iterations) / elapsed;
    const CheckpointerStats stats = checkpointer.stats();
    out.delta_frames = stats.delta_frames;
    out.delta_skipped = stats.delta_skipped;
    out.delta_bytes = stats.delta_bytes;
    return out;
}

double
median3(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
}

/** Metric key suffix for a dirty fraction: 0.10 -> "f10". */
std::string
fraction_key(double fraction)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "f%02d",
                  static_cast<int>(fraction * 100 + 0.5));
    return buf;
}

}  // namespace

int
main(int argc, char** argv)
{
    const BenchOptions options = parse_bench_args(argc, argv);
    set_log_level(LogLevel::kWarn);
    const std::uint64_t iterations = options.smoke ? 8 : 24;
    const std::vector<double> fractions =
        options.smoke ? std::vector<double>{0.10, 1.0}
                      : std::vector<double>{0.01, 0.05, 0.10, 0.25,
                                            0.50, 1.0};

    CsvWriter csv("fig_delta.csv",
                  {"dirty_fraction", "mode", "rep", "points_per_sec",
                   "delta_frames", "delta_skipped", "delta_mib"});
    announce("fig_delta", csv.path());

    std::printf("=== Delta tier: durability points/sec vs full-image, "
                "same %.0f MB/s media ===\n", kWriteBps / 1e6);
    std::printf("%-10s %14s %14s %10s\n", "fraction", "full pts/s",
                "delta pts/s", "speedup");

    std::vector<std::pair<std::string, double>> metrics;
    bool ok = true;
    for (const double fraction : fractions) {
        std::vector<double> full_reps;
        std::vector<double> delta_reps;
        for (int rep = 0; rep < kReps; ++rep) {
            const Point full = run_mode(false, fraction, iterations);
            const Point delta = run_mode(true, fraction, iterations);
            PCCHECK_CHECK_MSG(delta.delta_skipped == 0,
                              "delta log too small for the sweep");
            full_reps.push_back(full.points_per_sec);
            delta_reps.push_back(delta.points_per_sec);
            csv.row({std::to_string(fraction), "full",
                     std::to_string(rep),
                     std::to_string(full.points_per_sec), "0", "0",
                     "0"});
            csv.row({std::to_string(fraction), "delta",
                     std::to_string(rep),
                     std::to_string(delta.points_per_sec),
                     std::to_string(delta.delta_frames),
                     std::to_string(delta.delta_skipped),
                     std::to_string(static_cast<double>(
                                        delta.delta_bytes) /
                                    static_cast<double>(kMiB))});
        }
        const double full_med = median3(full_reps);
        const double delta_med = median3(delta_reps);
        const double speedup = full_med > 0 ? delta_med / full_med : 0;
        std::printf("%-10.2f %14.2f %14.2f %9.2fx\n", fraction,
                    full_med, delta_med, speedup);
        const std::string key = fraction_key(fraction);
        metrics.emplace_back("full_points_per_sec_" + key, full_med);
        metrics.emplace_back("delta_points_per_sec_" + key, delta_med);
        metrics.emplace_back("delta_speedup_" + key, speedup);
        // The tentpole claim: >= 3x sustainable checkpoint frequency
        // at a <= 10% dirty fraction under the same bandwidth.
        if (fraction <= 0.10 + 1e-9 && speedup < 3.0) {
            std::printf("FAIL: speedup %.2fx < 3x at fraction %.2f\n",
                        speedup, fraction);
            ok = false;
        }
    }

    // BENCH_delta.json: the medians, in the normalized metrics schema
    // tools/bench_compare.py consumes (docs/USAGE.md).
    FILE* json = std::fopen("BENCH_delta.json", "w");
    PCCHECK_CHECK(json != nullptr);
    std::fprintf(json, "{\n  \"bench\": \"fig_delta\",\n");
    std::fprintf(json, "  \"reps\": %d,\n  \"metrics\": {\n", kReps);
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        std::fprintf(json, "    \"%s\": %.6f%s\n",
                     metrics[i].first.c_str(), metrics[i].second,
                     i + 1 < metrics.size() ? "," : "");
    }
    std::fprintf(json, "  }\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_delta.json (%zu metrics, median of %d)\n",
                metrics.size(), kReps);

    finish_observability(options);
    return ok ? 0 : 1;
}
