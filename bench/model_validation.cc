/**
 * @file
 * Cross-validation of the three throughput estimators used across the
 * benches (§3.4):
 *   1. measured scaled execution (real threads, throttled devices);
 *   2. the virtual-time timeline simulator;
 *   3. the closed-form analytic model.
 * Agreement between them is what justifies using (3) for the
 * full-scale motivation figures. Also validates the tuner's f*
 * against a measured overhead sweep.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "goodput/analytic.h"
#include "sim/timeline.h"
#include "trainsim/models.h"
#include "util/csv.h"
#include "util/logging.h"

using namespace pccheck;
using namespace pccheck::bench;

int
main()
{
    set_log_level(LogLevel::kWarn);
    CsvWriter csv("model_validation.csv",
                  {"model", "interval", "measured_slowdown",
                   "timeline_slowdown", "analytic_slowdown"});
    announce("model_validation", csv.path());

    std::printf("=== PCcheck slowdown: measured vs timeline-sim vs "
                "analytic ===\n");
    std::printf("%-14s %-9s %-10s %-10s %-10s\n", "model", "interval",
                "measured", "timeline", "analytic");

    RunningStat timeline_err;
    RunningStat analytic_err;
    for (const char* model_name : {"vgg16", "bert", "opt-1.3b"}) {
        const ModelSpec& spec = model_by_name(model_name);
        for (const std::uint64_t interval : {1ULL, 10ULL, 50ULL}) {
            // 1. Measured.
            RunSpec run;
            run.system = "pccheck";
            run.model = model_name;
            run.interval = interval;
            const RunResult measured = measure(run);

            // 2. Timeline simulation at full scale.
            TimelineParams params;
            params.train_time =
                spec.iteration_time * (1 - spec.update_fraction);
            params.update_time =
                spec.iteration_time * spec.update_fraction;
            params.snapshot_time =
                static_cast<double>(spec.checkpoint_bytes) / 12.8e9;
            params.persist_time = full_scale_tw(
                spec, StorageKind::kSsdMsync);
            params.interval = interval;
            params.concurrent = run.concurrent;
            params.iterations = std::max<std::uint64_t>(
                40, 4 * interval);
            const Timeline timeline =
                simulate_timeline(Discipline::kPCcheck, params);
            const double timeline_slowdown =
                timeline.makespan /
                (static_cast<double>(params.iterations) *
                 spec.iteration_time);

            // 3. Analytic.
            AnalyticInputs in;
            in.iteration_time = spec.iteration_time;
            in.checkpoint_bytes = spec.checkpoint_bytes;
            in.interval = interval;
            in.concurrent = run.concurrent;
            in.writers = run.writers;
            in.per_writer_bytes_per_sec = 1.2e9;
            const double analytic_slowdown =
                analytic_throughput("ideal", in) /
                analytic_throughput("pccheck", in);

            std::printf("%-14s %-9llu %-10.3f %-10.3f %-10.3f\n",
                        model_name,
                        static_cast<unsigned long long>(interval),
                        measured.slowdown, timeline_slowdown,
                        analytic_slowdown);
            csv.row({model_name, std::to_string(interval),
                     std::to_string(measured.slowdown),
                     std::to_string(timeline_slowdown),
                     std::to_string(analytic_slowdown)});
            timeline_err.add(std::abs(timeline_slowdown -
                                      measured.slowdown) /
                             measured.slowdown);
            analytic_err.add(std::abs(analytic_slowdown -
                                      measured.slowdown) /
                             measured.slowdown);
        }
    }
    std::printf("\nmean relative error vs measured: timeline %.1f%%, "
                "analytic %.1f%%\n",
                100.0 * timeline_err.mean(),
                100.0 * analytic_err.mean());
    return 0;
}
