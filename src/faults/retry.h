#ifndef PCCHECK_FAULTS_RETRY_H_
#define PCCHECK_FAULTS_RETRY_H_

/**
 * @file
 * Bounded retry with deterministic exponential backoff.
 *
 * Storage media fail in two ways the checkpoint path must tell apart:
 * transient errors (EIO under memory pressure, a slow msync, a flaky
 * CXL link) that a short wait cures, and permanent errors (device gone,
 * media worn out) that no amount of retrying fixes. The persist engine
 * retries transients through this policy and escalates permanents to a
 * checkpoint-attempt abort.
 *
 * Determinism contract: the jittered delay for attempt k depends only
 * on (seed, k) — not on how many other retry loops ran before, nor on
 * thread interleaving. Every fault-injection experiment therefore
 * replays the same retry timeline from its seed.
 */

#include <cstdint>

#include "storage/status.h"

namespace pccheck {

/** Knobs for a bounded exponential-backoff retry loop. */
struct RetryPolicy {
    /** Total tries including the first (so 4 = 1 try + 3 retries). */
    int max_attempts = 4;
    /** Delay before the first retry, seconds. */
    double base_delay = 20e-6;
    /** Delay growth factor per retry. */
    double multiplier = 2.0;
    /** Ceiling on any single delay, seconds. */
    double max_delay = 2e-3;
    /** Jitter fraction: delay is scaled by a factor uniform in
     *  [1 - jitter, 1 + jitter]. */
    double jitter = 0.25;
};

/**
 * Deterministic backoff schedule: delay(k) is a pure function of the
 * construction seed and k. Stateless between calls, so concurrent
 * retry loops sharing a policy never perturb each other's timelines.
 */
class Backoff {
  public:
    Backoff(const RetryPolicy& policy, std::uint64_t seed)
        : policy_(policy), seed_(seed)
    {
    }

    /** Jittered delay in seconds before retry @p attempt (0-based:
     *  attempt 0 is the delay after the first failure). */
    double delay(int attempt) const;

    const RetryPolicy& policy() const { return policy_; }
    std::uint64_t seed() const { return seed_; }

  private:
    RetryPolicy policy_;
    std::uint64_t seed_;
};

/** Sleeps for @p seconds of real time (granularity ~µs). */
void backoff_sleep(double seconds);

/**
 * Runs @p op up to policy().max_attempts times, sleeping the backoff
 * delay between attempts while the result is a transient error.
 * Returns the first success or permanent error, or the last transient
 * error once attempts are exhausted. Bumps the
 * pccheck.storage.transient_errors / pccheck.storage.retries counters
 * and wraps each backoff wait in a "persist.retry" trace span.
 */
template <typename Op>
StorageStatus
retry_storage_op(Op&& op, const Backoff& backoff)
{
    // Implemented via the type-erased helper so the counter/trace
    // plumbing lives in one translation unit.
    struct Thunk {
        Op& op;
        static StorageStatus call(void* self)
        {
            return static_cast<Thunk*>(self)->op();
        }
    } thunk{op};
    return detail_retry_storage_op(&Thunk::call, &thunk, backoff);
}

/** Type-erased body of retry_storage_op (see retry.cc). */
StorageStatus detail_retry_storage_op(StorageStatus (*call)(void*),
                                      void* ctx, const Backoff& backoff);

}  // namespace pccheck

#endif  // PCCHECK_FAULTS_RETRY_H_
