#include "faults/fault.h"

#include <cstdlib>
#include <utility>

#include "faults/retry.h"
#include "util/check.h"

namespace pccheck {
namespace {

/** Splits @p s on @p sep, dropping empty pieces. */
std::vector<std::string>
split(const std::string& s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t end = s.find(sep, start);
        const std::string piece =
            s.substr(start, end == std::string::npos ? end : end - start);
        if (!piece.empty()) {
            out.push_back(piece);
        }
        if (end == std::string::npos) {
            break;
        }
        start = end + 1;
    }
    return out;
}

std::uint64_t
parse_u64(const std::string& s, const std::string& what)
{
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0') {
        fatal("FaultPlan: bad " + what + " '" + s + "'");
    }
    return static_cast<std::uint64_t>(v);
}

double
parse_f64(const std::string& s, const std::string& what)
{
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0') {
        fatal("FaultPlan: bad " + what + " '" + s + "'");
    }
    return v;
}

void
parse_action(const std::string& spec, FaultRule* rule)
{
    const std::size_t eq = spec.find('=');
    const std::string name = spec.substr(0, eq);
    if (name == "transient") {
        rule->action = FaultAction::kTransient;
    } else if (name == "permanent") {
        rule->action = FaultAction::kPermanent;
    } else if (name == "stall") {
        rule->action = FaultAction::kStall;
        if (eq == std::string::npos) {
            fatal("FaultPlan: stall needs a duration, e.g. stall=0.001");
        }
        rule->stall_seconds = parse_f64(spec.substr(eq + 1), "stall seconds");
    } else if (name == "crash") {
        rule->action = FaultAction::kCrash;
    } else if (name == "drop") {
        rule->action = FaultAction::kDrop;
    } else if (name == "node_loss") {
        rule->action = FaultAction::kNodeLoss;
    } else if (name == "bitflip") {
        rule->action = FaultAction::kBitflip;
        if (eq == std::string::npos) {
            fatal("FaultPlan: bitflip needs a byte mask, e.g. bitflip=0x04");
        }
        const std::string arg = spec.substr(eq + 1);
        char* end = nullptr;
        const unsigned long long mask =
            std::strtoull(arg.c_str(), &end, 0);  // decimal or 0x-hex
        if (end == arg.c_str() || *end != '\0' || mask == 0 || mask > 0xff) {
            fatal("FaultPlan: bitflip mask must be a byte in [1,255]: '" +
                  arg + "'");
        }
        rule->bitflip_mask = static_cast<std::uint8_t>(mask);
    } else if (name == "unreadable") {
        rule->action = FaultAction::kUnreadable;
    } else {
        fatal("FaultPlan: unknown action '" + name + "'");
    }
    if (name != "stall" && name != "bitflip" && eq != std::string::npos) {
        fatal("FaultPlan: action '" + name + "' takes no argument");
    }
}

void
parse_trigger(const std::string& spec, FaultRule* rule)
{
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos) {
        fatal("FaultPlan: trigger needs a value: '" + spec + "'");
    }
    const std::string name = spec.substr(0, eq);
    const std::string arg = spec.substr(eq + 1);
    if (name == "nth") {
        rule->trigger = FaultTrigger::kNthOp;
        rule->nth = parse_u64(arg, "nth");
        PCCHECK_CHECK_MSG(rule->nth >= 1, "nth is 1-based");
    } else if (name == "every") {
        rule->trigger = FaultTrigger::kEveryNthOp;
        rule->nth = parse_u64(arg, "every");
        PCCHECK_CHECK_MSG(rule->nth >= 1, "every needs period >= 1");
    } else if (name == "p") {
        rule->trigger = FaultTrigger::kProbability;
        rule->probability = parse_f64(arg, "probability");
        PCCHECK_CHECK_MSG(
            rule->probability >= 0.0 && rule->probability <= 1.0,
            "probability must be in [0,1]");
    } else if (name == "window") {
        rule->trigger = FaultTrigger::kOpWindow;
        const std::size_t dash = arg.find('-');
        if (dash == std::string::npos) {
            fatal("FaultPlan: window needs LO-HI: '" + arg + "'");
        }
        rule->window_lo = parse_u64(arg.substr(0, dash), "window lo");
        rule->window_hi = parse_u64(arg.substr(dash + 1), "window hi");
        PCCHECK_CHECK_MSG(rule->window_lo >= 1 &&
                              rule->window_lo <= rule->window_hi,
                          "window bounds must satisfy 1 <= lo <= hi");
    } else {
        fatal("FaultPlan: unknown trigger '" + name + "'");
    }
}

FaultRule
parse_rule(const std::string& spec)
{
    FaultRule rule;
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos || colon == 0) {
        fatal("FaultPlan: rule needs point:action@trigger: '" + spec + "'");
    }
    rule.point = spec.substr(0, colon);
    const std::size_t at = spec.find('@', colon + 1);
    if (at == std::string::npos) {
        fatal("FaultPlan: rule needs @trigger: '" + spec + "'");
    }
    parse_action(spec.substr(colon + 1, at - colon - 1), &rule);
    std::string trigger = spec.substr(at + 1);
    const std::size_t comma = trigger.find(',');
    if (comma != std::string::npos) {
        const std::string extra = trigger.substr(comma + 1);
        trigger = trigger.substr(0, comma);
        if (extra.rfind("limit=", 0) != 0) {
            fatal("FaultPlan: unknown rule option '" + extra + "'");
        }
        rule.limit = parse_u64(extra.substr(6), "limit");
    }
    parse_trigger(trigger, &rule);
    return rule;
}

}  // namespace

FaultPlan
FaultPlan::parse(const std::string& spec)
{
    FaultPlan plan;
    for (const std::string& rule : split(spec, ';')) {
        plan.add(parse_rule(rule));
    }
    return plan;
}

FaultInjector::FaultInjector(std::uint64_t seed, FaultPlan plan)
    : plan_(std::move(plan)), rng_(seed),
      fired_(plan_.rules().size(), 0)
{
}

void
FaultInjector::set_plan(FaultPlan plan)
{
    MutexLock lock(mu_);
    plan_ = std::move(plan);
    fired_.assign(plan_.rules().size(), 0);
}

void
FaultInjector::set_crash_handler(std::function<void()> handler)
{
    MutexLock lock(mu_);
    crash_handler_ = std::move(handler);
}

void
FaultInjector::set_node_loss_handler(std::function<void()> handler)
{
    MutexLock lock(mu_);
    node_loss_handler_ = std::move(handler);
}

StorageStatus
FaultInjector::on_op(const char* point)
{
    // Write-path points cannot express data corruption; a kBitflip
    // rule matching here degrades to a silent no-op by design (the
    // mask is reported only through on_op_full).
    return on_op_full(point).status;
}

FaultOutcome
FaultInjector::on_op_full(const char* point)
{
    double stall_seconds = 0.0;
    std::function<void()> crash;
    std::function<void()> node_loss;
    StorageStatus status = StorageStatus::success();
    std::uint8_t bitflip_mask = 0;
    {
        MutexLock lock(mu_);
        ++op_index_;
        const std::vector<FaultRule>& rules = plan_.rules();
        for (std::size_t i = 0; i < rules.size(); ++i) {
            const FaultRule& rule = rules[i];
            if (rule.point != "*" && rule.point != point) {
                continue;
            }
            if (rule.limit != 0 && fired_[i] >= rule.limit) {
                continue;
            }
            bool fires = false;
            switch (rule.trigger) {
              case FaultTrigger::kNthOp:
                fires = op_index_ == rule.nth;
                break;
              case FaultTrigger::kEveryNthOp:
                fires = op_index_ % rule.nth == 0;
                break;
              case FaultTrigger::kProbability:
                fires = rng_.chance(rule.probability);
                break;
              case FaultTrigger::kOpWindow:
                fires = op_index_ >= rule.window_lo &&
                        op_index_ <= rule.window_hi;
                break;
            }
            if (!fires) {
                continue;
            }
            ++fired_[i];
            ++injected_;
            switch (rule.action) {
              case FaultAction::kTransient:
                status = StorageStatus::transient_error(point);
                break;
              case FaultAction::kPermanent:
                status = StorageStatus::permanent_error(point);
                break;
              case FaultAction::kStall:
                stall_seconds = rule.stall_seconds;
                break;
              case FaultAction::kCrash:
                ++crashes_;
                crash = crash_handler_;
                break;
              case FaultAction::kDrop:
                // A drop is retryable from the sender's point of view:
                // resend after the ack deadline.
                status = StorageStatus::transient_error(point);
                break;
              case FaultAction::kNodeLoss:
                ++node_losses_;
                node_loss = node_loss_handler_;
                // The loss is observed by the op itself: the handler
                // kills the device/NIC, and the killed component fails
                // this very op (FaultyStorage dead check, SimNetwork
                // alive check run after on_op returns).
                break;
              case FaultAction::kBitflip:
                // The op "succeeds" — latent corruption is silent at
                // the device level and only CRC checks can surface it.
                bitflip_mask = rule.bitflip_mask;
                break;
              case FaultAction::kUnreadable:
                // Unreadable sector: retrying the same LBA keeps
                // failing, so this is the permanent class.
                status = StorageStatus::permanent_error(point);
                break;
            }
            break;  // first firing rule wins
        }
    }
    // Side effects run outside the lock: the crash handler typically
    // snapshots the storage device (its own mutex), and a stall must
    // not serialize every other fault point behind this op.
    if (crash) {
        crash();
    }
    if (node_loss) {
        node_loss();
    }
    if (stall_seconds > 0.0) {
        backoff_sleep(stall_seconds);
    }
    return FaultOutcome{status, bitflip_mask};
}

std::uint64_t
FaultInjector::ops() const
{
    MutexLock lock(mu_);
    return op_index_;
}

std::uint64_t
FaultInjector::injected() const
{
    MutexLock lock(mu_);
    return injected_;
}

std::uint64_t
FaultInjector::crashes() const
{
    MutexLock lock(mu_);
    return crashes_;
}

std::uint64_t
FaultInjector::node_losses() const
{
    MutexLock lock(mu_);
    return node_losses_;
}

}  // namespace pccheck
