#ifndef PCCHECK_FAULTS_FAULT_H_
#define PCCHECK_FAULTS_FAULT_H_

/**
 * @file
 * Deterministic, seeded fault injection.
 *
 * The checkpoint path is instrumented with named fault points
 * ("storage.write", "storage.persist", ...). A FaultPlan is a list of
 * rules — which point, what action, on what schedule — and a
 * FaultInjector evaluates the plan at every op, entirely driven by a
 * seed and a global op counter. Same plan + same seed + same op order
 * → exactly the same faults, which is what makes crash-sweep failures
 * replayable (`--seed=N` reproduces the run bit for bit).
 *
 * Actions model the failure taxonomy of the persist path:
 *  - transient: one-shot retryable error (EIO under pressure);
 *  - permanent: non-retryable error (device gone) — escalates to a
 *    checkpoint-attempt abort upstream;
 *  - stall:     the op succeeds but takes extra wall time (tail
 *    latency / a competing flush);
 *  - crash:     fires the registered crash handler (the sweep harness
 *    snapshots the CrashSimStorage durable image there);
 *  - drop:      network: the bytes vanish in flight, the sender only
 *    learns at the ack deadline (SimNetwork::transfer_for);
 *  - node_loss: fires the registered node-loss handler, which
 *    atomically kills one rank's storage (FaultyStorage::kill) and
 *    NIC (SimNetwork::kill_node) — the full-node failure replica
 *    recovery exists for.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/status.h"
#include "util/annotations.h"
#include "util/rng.h"

namespace pccheck {

/** What a firing rule does to the instrumented op. */
enum class FaultAction {
    kTransient,  ///< return a retryable error
    kPermanent,  ///< return a non-retryable error
    kStall,      ///< delay the op, then let it succeed
    kCrash,      ///< invoke the crash handler, op proceeds
    kDrop,       ///< network: bytes vanish in flight (retryable error)
    kNodeLoss,   ///< invoke the node-loss handler, op then fails
    kBitflip,    ///< read path: XOR a byte mask into the data (bit rot)
    kUnreadable, ///< read path: sector unreadable (permanent error)
};

/** When a rule fires, relative to the injector's global op counter. */
enum class FaultTrigger {
    kNthOp,       ///< exactly op index n (1-based)
    kEveryNthOp,  ///< every n-th op (n, 2n, 3n, ...)
    kProbability, ///< independently per op with probability p
    kOpWindow,    ///< every op with index in [lo, hi] (1-based, incl.)
};

/** One fault rule: point filter + action + schedule. */
struct FaultRule {
    /** Fault-point name to match; "*" matches every point. */
    std::string point = "*";
    FaultAction action = FaultAction::kTransient;
    /** Stall duration (seconds); kStall only. */
    double stall_seconds = 0.0;
    FaultTrigger trigger = FaultTrigger::kNthOp;
    /** kNthOp index or kEveryNthOp period (1-based). */
    std::uint64_t nth = 1;
    /** kProbability per-op chance in [0,1]. */
    double probability = 0.0;
    /** kOpWindow bounds, 1-based inclusive. */
    std::uint64_t window_lo = 0;
    std::uint64_t window_hi = 0;
    /** Max firings; 0 = unlimited. */
    std::uint64_t limit = 0;
    /** kBitflip byte mask XORed into the read data (non-zero). */
    std::uint8_t bitflip_mask = 0;
};

/**
 * Ordered list of fault rules. The first rule that matches and fires
 * wins for a given op.
 */
class FaultPlan {
  public:
    FaultPlan() = default;

    /**
     * Parse a plan from a compact spec — rules joined by ';', each
     *
     *     point:action[=arg]@trigger[,limit=N]
     *
     * with action one of `transient`, `permanent`, `stall=SECONDS`,
     * `crash`, `drop`, `node_loss`, `bitflip=MASK` (byte mask, decimal
     * or 0x-hex, read points only), `unreadable` (read points only),
     * and trigger one of `nth=N`, `every=N`, `p=P`, `window=LO-HI`.
     * Examples:
     *
     *     storage.persist:transient@p=0.01
     *     *:crash@nth=1234
     *     storage.write:stall=0.005@every=100,limit=3
     *     net.transfer:drop@p=0.02
     *     net.transfer:stall=0.001@every=10
     *     *:node_loss@nth=900,limit=1
     *     storage.read:bitflip=0x04@nth=7,limit=1
     *     storage.read:unreadable@p=0.05
     *
     * Calls fatal() on malformed specs.
     */
    static FaultPlan parse(const std::string& spec);

    FaultPlan& add(FaultRule rule)
    {
        rules_.push_back(std::move(rule));
        return *this;
    }

    const std::vector<FaultRule>& rules() const { return rules_; }
    bool empty() const { return rules_.empty(); }

  private:
    std::vector<FaultRule> rules_;
};

/**
 * Full result of evaluating one op: the injected status plus read-path
 * data corruption. A non-zero @p bitflip_mask means the op succeeded
 * but the bytes it returned are rotted — the decorator XORs the mask
 * into the data it hands back (silent corruption; only CRC
 * verification downstream can notice).
 */
struct FaultOutcome {
    StorageStatus status = StorageStatus::success();
    std::uint8_t bitflip_mask = 0;
};

/**
 * Evaluates a FaultPlan at every instrumented op. Thread safe; with
 * serialized ops the firing sequence is a pure function of (plan,
 * seed). The global op counter advances on every on_op() call whether
 * or not a rule fires, so "crash at op N" addresses a well-defined
 * point in the storage-op stream.
 */
class FaultInjector {
  public:
    explicit FaultInjector(std::uint64_t seed = 1, FaultPlan plan = {});

    /** Replace the plan (e.g. arm faults only after formatting). */
    void set_plan(FaultPlan plan);

    /** Handler invoked (outside the injector lock) by kCrash rules. */
    void set_crash_handler(std::function<void()> handler);

    /**
     * Handler invoked (outside the injector lock) by kNodeLoss rules.
     * The harness wires it to kill one rank's storage and NIC in one
     * step, so the loss is atomic from the checkpoint path's view.
     */
    void set_node_loss_handler(std::function<void()> handler);

    /**
     * Evaluate one op at fault point @p point (a literal with static
     * lifetime; it is kept as error context). Returns the injected
     * error, or success — after applying any stall and firing any
     * crash handler.
     */
    StorageStatus on_op(const char* point);

    /**
     * Like on_op() but also reports read-path data corruption
     * (kBitflip). Read-instrumented decorators call this; write-path
     * points keep the plain on_op(). Both share the single global op
     * counter, so "crash at op N" and "rot the read at op N" address
     * the same interleaved op stream.
     */
    FaultOutcome on_op_full(const char* point);

    /** Total ops observed. */
    std::uint64_t ops() const;
    /** Total rule firings (all actions). */
    std::uint64_t injected() const;
    /** kCrash firings. */
    std::uint64_t crashes() const;
    /** kNodeLoss firings. */
    std::uint64_t node_losses() const;

  private:
    mutable Mutex mu_;
    FaultPlan plan_ PCCHECK_GUARDED_BY(mu_);
    Rng rng_ PCCHECK_GUARDED_BY(mu_);
    std::uint64_t op_index_ PCCHECK_GUARDED_BY(mu_) = 0;
    std::uint64_t injected_ PCCHECK_GUARDED_BY(mu_) = 0;
    std::uint64_t crashes_ PCCHECK_GUARDED_BY(mu_) = 0;
    std::uint64_t node_losses_ PCCHECK_GUARDED_BY(mu_) = 0;
    std::vector<std::uint64_t> fired_ PCCHECK_GUARDED_BY(mu_);
    std::function<void()> crash_handler_ PCCHECK_GUARDED_BY(mu_);
    std::function<void()> node_loss_handler_ PCCHECK_GUARDED_BY(mu_);
};

}  // namespace pccheck

#endif  // PCCHECK_FAULTS_FAULT_H_
