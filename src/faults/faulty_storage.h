#ifndef PCCHECK_FAULTS_FAULTY_STORAGE_H_
#define PCCHECK_FAULTS_FAULTY_STORAGE_H_

/**
 * @file
 * Fault-injecting decorator around any StorageDevice.
 *
 * Routes every write/persist/fence through a FaultInjector fault point
 * before delegating to the inner device. An injected error is returned
 * without touching the inner device (the op never happened, matching a
 * failed syscall); stalls and crash triggers let the op proceed after
 * the side effect. Reads are passed through untouched — recovery must
 * be able to inspect the media even when the write path is unhealthy.
 *
 * Stacks with the other decorators, e.g.
 * FaultyStorage(ThrottledStorage(CrashSimStorage)) gives bandwidth
 * modeling + adversarial crash images + fault schedules in one device.
 */

#include <memory>

#include "faults/fault.h"
#include "storage/device.h"

namespace pccheck {

/** Fault-point names used by FaultyStorage (static lifetime). */
inline constexpr const char kFaultStorageWrite[] = "storage.write";
inline constexpr const char kFaultStoragePersist[] = "storage.persist";
inline constexpr const char kFaultStorageFence[] = "storage.fence";

/** Device decorator that evaluates a FaultInjector on the write path. */
class FaultyStorage final : public StorageDevice {
  public:
    /**
     * @param inner decorated device (owned)
     * @param injector shared fault injector — the harness keeps its
     *        own reference to set plans and crash handlers mid-run
     */
    FaultyStorage(std::unique_ptr<StorageDevice> inner,
                  std::shared_ptr<FaultInjector> injector);

    Bytes size() const override { return inner_->size(); }
    StorageStatus write(Bytes offset, const void* src, Bytes len) override;
    void read(Bytes offset, void* dst, Bytes len) const override;
    StorageStatus persist(Bytes offset, Bytes len) override;
    StorageStatus fence() override;
    StorageKind kind() const override { return inner_->kind(); }

    StorageDevice& inner() { return *inner_; }
    FaultInjector& injector() { return *injector_; }

  private:
    std::unique_ptr<StorageDevice> inner_;
    std::shared_ptr<FaultInjector> injector_;
};

}  // namespace pccheck

#endif  // PCCHECK_FAULTS_FAULTY_STORAGE_H_
