#ifndef PCCHECK_FAULTS_FAULTY_STORAGE_H_
#define PCCHECK_FAULTS_FAULTY_STORAGE_H_

/**
 * @file
 * Fault-injecting decorator around any StorageDevice.
 *
 * Routes every read/write/persist/fence through a FaultInjector fault
 * point before delegating to the inner device. An injected error is
 * returned without touching the inner device (the op never happened,
 * matching a failed syscall); stalls and crash triggers let the op
 * proceed after the side effect. The read path additionally models
 * media decay: an `unreadable` rule fails the read with a permanent
 * error (bad sector) and a `bitflip=MASK` rule lets the read succeed
 * but XORs the mask into the first returned byte (silent bit rot only
 * CRC verification can catch).
 *
 * Stacks with the other decorators, e.g.
 * FaultyStorage(ThrottledStorage(CrashSimStorage)) gives bandwidth
 * modeling + adversarial crash images + fault schedules in one device.
 *
 * kill() puts the decorator into dead-node mode — the storage half of
 * the node_loss fault action: every write-path op returns a permanent
 * error and reads see zeros, so a local CHECK_ADDR recovery scan finds
 * nothing valid and replica-aware recovery must take over.
 */

#include <atomic>
#include <functional>
#include <memory>
#include <utility>

#include "faults/fault.h"
#include "storage/device.h"

namespace pccheck {

/** Fault-point names used by FaultyStorage (static lifetime). */
inline constexpr const char kFaultStorageRead[] = "storage.read";
inline constexpr const char kFaultStorageWrite[] = "storage.write";
inline constexpr const char kFaultStoragePersist[] = "storage.persist";
inline constexpr const char kFaultStorageFence[] = "storage.fence";
/** Error context reported by a killed device. */
inline constexpr const char kFaultStorageDead[] = "storage.node_loss";

/** Device decorator that evaluates a FaultInjector on the write path. */
class FaultyStorage final : public StorageDevice {
  public:
    /**
     * @param inner decorated device (owned)
     * @param injector shared fault injector — the harness keeps its
     *        own reference to set plans and crash handlers mid-run
     */
    FaultyStorage(std::unique_ptr<StorageDevice> inner,
                  std::shared_ptr<FaultInjector> injector);

    Bytes size() const override { return inner_->size(); }
    StorageStatus write(Bytes offset, const void* src, Bytes len) override;
    StorageStatus read(Bytes offset, void* dst, Bytes len) const override;
    StorageStatus persist(Bytes offset, Bytes len) override;
    StorageStatus fence() override;
    StorageKind kind() const override { return inner_->kind(); }
    void set_observe_hook(
        std::function<void(const StorageOp&)> hook) override
    {
        inner_->set_observe_hook(std::move(hook));
    }

    StorageDevice& inner() { return *inner_; }
    FaultInjector& injector() { return *injector_; }

    /**
     * Dead-node mode (node_loss): all future write-path ops fail with
     * a permanent error; reads fill zeros. Irreversible — a lost
     * node's media does not come back.
     */
    void kill();

    bool dead() const
    {
        // relaxed: liveness flag; the op that raced past it behaves as
        // if issued just before the loss.
        return dead_.load(std::memory_order_relaxed);
    }

  private:
    std::unique_ptr<StorageDevice> inner_;
    std::shared_ptr<FaultInjector> injector_;
    std::atomic<bool> dead_{false};
};

}  // namespace pccheck

#endif  // PCCHECK_FAULTS_FAULTY_STORAGE_H_
