#include "faults/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/trace.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace pccheck {

double
Backoff::delay(int attempt) const
{
    if (attempt < 0) {
        attempt = 0;
    }
    double base = policy_.base_delay;
    for (int i = 0; i < attempt; ++i) {
        base *= policy_.multiplier;
        if (base >= policy_.max_delay) {
            base = policy_.max_delay;
            break;
        }
    }
    base = std::min(base, policy_.max_delay);
    // Fresh generator per (seed, attempt): the jitter draw cannot
    // depend on how many delays were computed before, which keeps the
    // schedule identical across thread interleavings.
    Rng rng(seed_ ^ (0x9E3779B97F4A7C15ULL *
                     (static_cast<std::uint64_t>(attempt) + 1)));
    const double factor =
        1.0 + policy_.jitter * (2.0 * rng.next_double() - 1.0);
    return std::max(0.0, base * factor);
}

void
backoff_sleep(double seconds)
{
    if (seconds <= 0.0) {
        return;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

StorageStatus
detail_retry_storage_op(StorageStatus (*call)(void*), void* ctx,
                        const Backoff& backoff)
{
    Counter& transients =
        MetricsRegistry::global().counter("pccheck.storage.transient_errors");
    Counter& retries =
        MetricsRegistry::global().counter("pccheck.storage.retries");
    const int attempts = std::max(1, backoff.policy().max_attempts);
    StorageStatus status = StorageStatus::success();
    for (int attempt = 0; attempt < attempts; ++attempt) {
        status = call(ctx);
        if (status.ok() || status.is_permanent()) {
            return status;
        }
        transients.add();
        if (attempt + 1 >= attempts) {
            break;  // exhausted: surface the transient error
        }
        retries.add();
        PCCHECK_TRACE_SPAN("persist.retry", "attempt", attempt);
        backoff_sleep(backoff.delay(attempt));
    }
    return status;
}

}  // namespace pccheck
