#include "faults/faulty_storage.h"

#include <utility>

#include "util/check.h"

namespace pccheck {

FaultyStorage::FaultyStorage(std::unique_ptr<StorageDevice> inner,
                             std::shared_ptr<FaultInjector> injector)
    : inner_(std::move(inner)), injector_(std::move(injector))
{
    PCCHECK_CHECK(inner_ != nullptr);
    PCCHECK_CHECK(injector_ != nullptr);
}

StorageStatus
FaultyStorage::write(Bytes offset, const void* src, Bytes len)
{
    StorageStatus injected = injector_->on_op(kFaultStorageWrite);
    if (!injected.ok()) {
        return injected;
    }
    return inner_->write(offset, src, len);
}

void
FaultyStorage::read(Bytes offset, void* dst, Bytes len) const
{
    inner_->read(offset, dst, len);
}

StorageStatus
FaultyStorage::persist(Bytes offset, Bytes len)
{
    StorageStatus injected = injector_->on_op(kFaultStoragePersist);
    if (!injected.ok()) {
        return injected;
    }
    return inner_->persist(offset, len);
}

StorageStatus
FaultyStorage::fence()
{
    StorageStatus injected = injector_->on_op(kFaultStorageFence);
    if (!injected.ok()) {
        return injected;
    }
    return inner_->fence();
}

}  // namespace pccheck
