#include "faults/faulty_storage.h"

#include <cstring>
#include <utility>

#include "util/check.h"

namespace pccheck {

FaultyStorage::FaultyStorage(std::unique_ptr<StorageDevice> inner,
                             std::shared_ptr<FaultInjector> injector)
    : inner_(std::move(inner)), injector_(std::move(injector))
{
    PCCHECK_CHECK(inner_ != nullptr);
    PCCHECK_CHECK(injector_ != nullptr);
}

StorageStatus
FaultyStorage::write(Bytes offset, const void* src, Bytes len)
{
    StorageStatus injected = injector_->on_op(kFaultStorageWrite);
    // Dead check runs after on_op so the op that fired node_loss is
    // itself the first casualty (the loss is atomic in the op stream).
    if (dead()) {
        return StorageStatus::permanent_error(kFaultStorageDead);
    }
    if (!injected.ok()) {
        return injected;
    }
    return inner_->write(offset, src, len);
}

StorageStatus
FaultyStorage::read(Bytes offset, void* dst, Bytes len) const
{
    const FaultOutcome injected = injector_->on_op_full(kFaultStorageRead);
    if (dead()) {
        // Lost media reads as zeros: no magic, no pointer records, so
        // SlotStore::open rejects the device and recovery must fall
        // back to the replica tier.
        std::memset(dst, 0, len);
        return StorageStatus::permanent_error(kFaultStorageDead);
    }
    if (!injected.status.ok()) {
        return injected.status;
    }
    StorageStatus status = inner_->read(offset, dst, len);
    if (status.ok() && injected.bitflip_mask != 0 && len > 0) {
        // Silent bit rot: the device reports success but the payload
        // is corrupt. Flip the first byte so any CRC over the range
        // fails deterministically.
        static_cast<std::uint8_t*>(dst)[0] ^= injected.bitflip_mask;
    }
    return status;
}

StorageStatus
FaultyStorage::persist(Bytes offset, Bytes len)
{
    StorageStatus injected = injector_->on_op(kFaultStoragePersist);
    if (dead()) {
        return StorageStatus::permanent_error(kFaultStorageDead);
    }
    if (!injected.ok()) {
        return injected;
    }
    return inner_->persist(offset, len);
}

StorageStatus
FaultyStorage::fence()
{
    StorageStatus injected = injector_->on_op(kFaultStorageFence);
    if (dead()) {
        return StorageStatus::permanent_error(kFaultStorageDead);
    }
    if (!injected.ok()) {
        return injected;
    }
    return inner_->fence();
}

void
FaultyStorage::kill()
{
    // relaxed: see dead().
    dead_.store(true, std::memory_order_relaxed);
}

}  // namespace pccheck
