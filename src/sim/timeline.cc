#include "sim/timeline.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "util/check.h"

namespace pccheck {
namespace {

/** Min-heap of next-free times for a pooled resource. */
class ResourcePool {
  public:
    ResourcePool(int count, Seconds initial)
    {
        for (int i = 0; i < count; ++i) {
            free_times_.push(initial);
        }
    }

    /** Earliest time a unit is free; removes it from the pool. */
    Seconds
    acquire()
    {
        PCCHECK_CHECK(!free_times_.empty());
        const Seconds t = free_times_.top();
        free_times_.pop();
        return t;
    }

    /** Return a unit that frees at @p time. */
    void release(Seconds time) { free_times_.push(time); }

  private:
    std::priority_queue<Seconds, std::vector<Seconds>,
                        std::greater<Seconds>>
        free_times_;
};

struct Scheduler {
    const TimelineParams& params;
    Timeline timeline;
    Seconds compute_free = 0;
    Seconds copy_free = 0;
    Seconds storage_free = 0;
    Seconds snapshot_barrier = 0;  ///< U may not start before this
    Seconds prev_persist_end = 0;  ///< CheckFreq single-checkpoint gate

    void
    add(PhaseKind kind, std::uint64_t iter, std::uint64_t chunk,
        Seconds start, Seconds end)
    {
        timeline.phases.push_back(Phase{kind, iter, chunk, start, end});
        timeline.makespan = std::max(timeline.makespan, end);
        if (kind == PhaseKind::kTrain || kind == PhaseKind::kUpdate) {
            timeline.gpu_busy += end - start;
        }
    }
};

void
schedule(Discipline discipline, Scheduler& s)
{
    const TimelineParams& p = s.params;
    ResourcePool slots(std::max(p.concurrent, 1), 0.0);
    ResourcePool buffers(std::max(p.staging_buffers, 1), 0.0);
    const int chunks = std::max(p.chunks, 1);
    const Seconds chunk_snap = p.snapshot_time / chunks;
    const Seconds chunk_persist = p.persist_time / chunks;

    for (std::uint64_t iter = 1; iter <= p.iterations; ++iter) {
        const Seconds t_start = s.compute_free;
        const Seconds t_end = t_start + p.train_time;
        s.add(PhaseKind::kTrain, iter, 0, t_start, t_end);

        const Seconds u_start = std::max(t_end, s.snapshot_barrier);
        const Seconds u_end = u_start + p.update_time;
        s.add(PhaseKind::kUpdate, iter, 0, u_start, u_end);
        s.compute_free = u_end;

        if (p.interval == 0 || iter % p.interval != 0) {
            continue;
        }
        ++s.timeline.checkpoints;

        switch (discipline) {
          case Discipline::kSync: {
            const Seconds c_end = u_end + p.snapshot_time;
            s.add(PhaseKind::kSnapshot, iter, 0, u_end, c_end);
            const Seconds p_end = c_end + p.persist_time;
            s.add(PhaseKind::kPersist, iter, 0, c_end, p_end);
            s.compute_free = p_end;  // training fully blocked
            break;
          }
          case Discipline::kGpm: {
            // Copy kernel + persist hold the compute engine; no DRAM
            // snapshot phase exists.
            const Seconds p_end = u_end + p.persist_time;
            s.add(PhaseKind::kPersist, iter, 0, u_end, p_end);
            s.compute_free = p_end;
            break;
          }
          case Discipline::kCheckFreq: {
            const Seconds c_start =
                std::max({u_end, s.copy_free, s.prev_persist_end});
            const Seconds c_end = c_start + p.snapshot_time;
            s.add(PhaseKind::kSnapshot, iter, 0, c_start, c_end);
            s.copy_free = c_end;
            s.snapshot_barrier = c_end;
            const Seconds p_start = std::max(c_end, s.storage_free);
            const Seconds p_end = p_start + p.persist_time;
            s.add(PhaseKind::kPersist, iter, 0, p_start, p_end);
            s.storage_free = p_end;
            s.prev_persist_end = p_end;
            break;
          }
          case Discipline::kPCcheck: {
            const Seconds slot_ready = slots.acquire();
            Seconds prev_chunk_copy = std::max(u_end, slot_ready);
            Seconds last_persist_end = 0;
            Seconds last_copy_end = 0;
            for (int chunk = 0; chunk < chunks; ++chunk) {
                const Seconds buf_ready = buffers.acquire();
                const Seconds c_start =
                    std::max({prev_chunk_copy, s.copy_free, buf_ready});
                const Seconds c_end = c_start + chunk_snap;
                s.add(PhaseKind::kSnapshot, iter,
                      static_cast<std::uint64_t>(chunk), c_start, c_end);
                s.copy_free = c_end;
                prev_chunk_copy = c_end;
                last_copy_end = c_end;
                const Seconds p_start = std::max(c_end, s.storage_free);
                const Seconds p_end = p_start + chunk_persist;
                s.add(PhaseKind::kPersist, iter,
                      static_cast<std::uint64_t>(chunk), p_start, p_end);
                s.storage_free = p_end;
                buffers.release(p_end);
                last_persist_end = p_end;
            }
            s.snapshot_barrier = last_copy_end;
            slots.release(last_persist_end);
            break;
          }
        }
    }
    s.timeline.gpu_stall = s.timeline.makespan - s.timeline.gpu_busy;
}

char
phase_char(PhaseKind kind)
{
    switch (kind) {
      case PhaseKind::kTrain: return 'T';
      case PhaseKind::kUpdate: return 'U';
      case PhaseKind::kSnapshot: return 'C';
      case PhaseKind::kPersist: return 'P';
    }
    return '?';
}

int
phase_row(PhaseKind kind)
{
    switch (kind) {
      case PhaseKind::kTrain:
      case PhaseKind::kUpdate:
        return 0;  // GPU
      case PhaseKind::kSnapshot:
        return 1;  // copy engine
      case PhaseKind::kPersist:
        return 2;  // storage
    }
    return 0;
}

}  // namespace

Timeline
simulate_timeline(Discipline discipline, const TimelineParams& params)
{
    PCCHECK_CHECK(params.iterations >= 1);
    Scheduler scheduler{params, {}, 0, 0, 0, 0, 0};
    schedule(discipline, scheduler);
    return std::move(scheduler.timeline);
}

std::string
Timeline::render(Seconds step) const
{
    PCCHECK_CHECK(step > 0);
    const auto width =
        static_cast<std::size_t>(makespan / step) + 1;
    std::vector<std::string> rows(3, std::string(width, '.'));
    for (const auto& phase : phases) {
        const int row = phase_row(phase.kind);
        auto begin = static_cast<std::size_t>(phase.start / step);
        auto end = static_cast<std::size_t>(phase.end / step);
        end = std::min(end, width - 1);
        for (std::size_t i = begin; i <= end && i < width; ++i) {
            rows[static_cast<std::size_t>(row)][i] =
                phase_char(phase.kind);
        }
    }
    std::ostringstream oss;
    oss << "GPU   |" << rows[0] << "|\n"
        << "COPY  |" << rows[1] << "|\n"
        << "STORE |" << rows[2] << "|";
    return oss.str();
}

Seconds
paper_runtime_model(const TimelineParams& params)
{
    const Seconds t = params.train_time + params.update_time;
    const double f = static_cast<double>(params.interval);
    const double a = static_cast<double>(params.iterations);
    const double n = static_cast<double>(std::max(params.concurrent, 1));
    // §3.4 defines Tw as the per-checkpoint time at WORST CASE, i.e.
    // with all N checkpoints contending for the storage channel: on a
    // bandwidth-bound device that is N × the uncontended channel time.
    const Seconds tw = n * params.persist_time + params.snapshot_time;
    const double periods = std::max(a / (f * n) - 1.0, 0.0);
    return f * t + std::max(tw, n * f * t) * periods + tw;
}

}  // namespace pccheck
