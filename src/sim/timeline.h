#ifndef PCCHECK_SIM_TIMELINE_H_
#define PCCHECK_SIM_TIMELINE_H_

/**
 * @file
 * Virtual-time timeline simulator of the checkpointing disciplines,
 * reproducing the paper's schedule diagrams (Fig. 3 sync, Fig. 4
 * CheckFreq, Fig. 6 PCcheck, Fig. 7 PCcheck-pipelined) and validating
 * the §3.4 runtime formulas against constructed schedules.
 *
 * The simulation is constructive: resources (GPU compute, copy
 * engine, storage channel, N checkpoint slots, c staging buffers) are
 * tracked by their next-free times, and each phase of each iteration
 * is placed at the earliest instant consistent with the discipline's
 * dependency rules. No wall-clock time passes.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "util/clock.h"

namespace pccheck {

/** Kind of a scheduled phase. */
enum class PhaseKind { kTrain, kUpdate, kSnapshot, kPersist };

/** One scheduled phase of the timeline. */
struct Phase {
    PhaseKind kind;
    std::uint64_t iteration;
    std::uint64_t chunk;  ///< chunk index for pipelined C/P, else 0
    Seconds start;
    Seconds end;
};

/** Checkpointing discipline to schedule. */
enum class Discipline {
    kSync,       ///< Fig. 3: T U C P all serial
    kGpm,        ///< C+P on the compute engine (no DRAM hop)
    kCheckFreq,  ///< Fig. 4: C overlaps T; one checkpoint at a time
    kPCcheck,    ///< Fig. 6: N concurrent checkpoints
};

/** Workload/hardware parameters in virtual seconds. */
struct TimelineParams {
    Seconds train_time = 0.9;     ///< T phase
    Seconds update_time = 0.1;    ///< U phase
    Seconds snapshot_time = 0.5;  ///< C: GPU→DRAM for the whole state
    Seconds persist_time = 2.0;   ///< Tw: DRAM→storage for the state
    std::uint64_t iterations = 8;
    std::uint64_t interval = 1;   ///< f
    int concurrent = 2;           ///< N (PCcheck)
    int chunks = 1;               ///< >1 enables Fig. 7 pipelining
    int staging_buffers = 2;      ///< c: DRAM chunk buffers available
};

/** Result: the schedule plus summary metrics. */
struct Timeline {
    std::vector<Phase> phases;
    Seconds makespan = 0;
    Seconds gpu_busy = 0;    ///< time compute engine worked (T+U)
    Seconds gpu_stall = 0;   ///< makespan − gpu_busy
    std::uint64_t checkpoints = 0;

    /** ASCII rendering (one row per resource) for the bench output. */
    std::string render(Seconds step) const;
};

/** Build the schedule for @p discipline under @p params. */
Timeline simulate_timeline(Discipline discipline,
                           const TimelineParams& params);

/**
 * §3.4 runtime_2 prediction:
 *   f·t + max(Tw, N·f·t) · (A/(f·N) − 1) + Tw
 * with runtime_1 as the N = 1 special case.
 */
Seconds paper_runtime_model(const TimelineParams& params);

}  // namespace pccheck

#endif  // PCCHECK_SIM_TIMELINE_H_
