#include "gpusim/gpu.h"

#include <algorithm>
#include <cstring>

#include "obs/trace.h"
#include "storage/device.h"
#include "util/check.h"

namespace pccheck {

SimGpu::SimGpu(const GpuConfig& config, const Clock& clock)
    : config_(config), clock_(clock), arena_(config.memory_bytes, 0),
      pcie_(config.pcie_bytes_per_sec, clock),
      copy_pool_(std::make_unique<ThreadPool>(
          static_cast<std::size_t>(std::max(config.copy_engines, 1))))
{
    PCCHECK_CHECK(config.pcie_bytes_per_sec >= 0);
    PCCHECK_CHECK(config.unpinned_penalty > 0 &&
                  config.unpinned_penalty <= 1.0);
}

SimGpu::~SimGpu() = default;

DevPtr
SimGpu::alloc(Bytes size)
{
    MutexLock lock(alloc_mu_);
    const Bytes aligned = align_up(size, 256);
    if (alloc_cursor_ + aligned > arena_.size()) {
        fatal("SimGpu: out of device memory (asked " + format_bytes(size) +
              ", used " + format_bytes(alloc_cursor_) + " of " +
              format_bytes(arena_.size()) + ")");
    }
    DevPtr ptr{alloc_cursor_, size};
    alloc_cursor_ += aligned;
    return ptr;
}

void
SimGpu::reset_allocations()
{
    MutexLock lock(alloc_mu_);
    alloc_cursor_ = 0;
}

Bytes
SimGpu::memory_used() const
{
    MutexLock lock(alloc_mu_);
    return alloc_cursor_;
}

double
SimGpu::effective_bw(bool pinned) const
{
    return pinned ? 1.0 : config_.unpinned_penalty;
}

void
SimGpu::dma_transfer(Bytes len, bool pinned)
{
    // Unpinned copies occupy the channel longer (staging copy), which
    // we model by inflating the charged byte count.
    const auto charged =
        static_cast<Bytes>(static_cast<double>(len) / effective_bw(pinned));
    pcie_.acquire(charged);
    // relaxed: monitoring counter, no ordering with the copy needed.
    pcie_bytes_.fetch_add(len, std::memory_order_relaxed);
}

void
SimGpu::copy_to_host(void* dst, DevPtr src, Bytes offset, Bytes len,
                     bool pinned)
{
    PCCHECK_CHECK_MSG(offset + len <= src.size,
                      "copy_to_host out of range off=" << offset
                                                       << " len=" << len);
    PCCHECK_TRACE_SPAN("gpu.copy_to_host", "len", len, "pinned",
                       pinned ? 1 : 0);
    dma_transfer(len, pinned);
    std::memcpy(dst, arena_.data() + src.offset + offset, len);
}

void
SimGpu::copy_to_device(DevPtr dst, Bytes offset, const void* src, Bytes len,
                       bool pinned)
{
    PCCHECK_CHECK(offset + len <= dst.size);
    PCCHECK_TRACE_SPAN("gpu.copy_to_device", "len", len, "pinned",
                       pinned ? 1 : 0);
    dma_transfer(len, pinned);
    std::memcpy(arena_.data() + dst.offset + offset, src, len);
}

std::future<void>
SimGpu::copy_to_host_async(void* dst, DevPtr src, Bytes offset, Bytes len,
                           bool pinned)
{
    return copy_pool_->submit([this, dst, src, offset, len, pinned] {
        copy_to_host(dst, src, offset, len, pinned);
    });
}

void
SimGpu::launch_kernel(Seconds duration)
{
    MutexLock lock(compute_mu_);
    PCCHECK_TRACE_SPAN("gpu.kernel");
    // pccheck-tidy: disable=blocking-under-lock -- compute_mu_ IS the
    // modeled GPU compute engine: holding it for the kernel's duration
    // simulates SM occupancy, not a lost-concurrency bug.
    clock_.sleep_for(duration);
}

StorageStatus
SimGpu::kernel_copy_to_storage(StorageDevice& storage, Bytes dst_offset,
                               DevPtr src, Bytes src_offset, Bytes len)
{
    PCCHECK_CHECK(src_offset + len <= src.size);
    MutexLock lock(compute_mu_);
    PCCHECK_TRACE_SPAN("gpu.kernel_copy_to_storage", "len", len);
    // The copy kernel streams over PCIe at a reduced rate and keeps
    // the SMs busy for the whole transfer (GPM's UVM path).
    const auto charged = static_cast<Bytes>(static_cast<double>(len) /
                                            config_.kernel_copy_factor);
    // pccheck-tidy: disable=blocking-under-lock -- the copy kernel owns
    // the SMs for the whole transfer (GPM UVM semantics); compute_mu_
    // models exactly that occupancy.
    pcie_.acquire(charged);
    // relaxed: monitoring counter, no ordering with the copy needed.
    pcie_bytes_.fetch_add(len, std::memory_order_relaxed);
    return storage.write(dst_offset,
                         arena_.data() + src.offset + src_offset, len);
}

StorageStatus
SimGpu::direct_copy_to_storage(StorageDevice& storage, Bytes dst_offset,
                               DevPtr src, Bytes src_offset, Bytes len)
{
    PCCHECK_CHECK(src_offset + len <= src.size);
    PCCHECK_TRACE_SPAN("gpu.direct_copy_to_storage", "len", len);
    // P2P transfer: PCIe time is paid, then the device write (its own
    // throttle models the medium). No DRAM hop, no compute engine.
    pcie_.acquire(len);
    // relaxed: monitoring counter, no ordering with the copy needed.
    pcie_bytes_.fetch_add(len, std::memory_order_relaxed);
    return storage.write(dst_offset,
                         arena_.data() + src.offset + src_offset, len);
}

std::uint8_t*
SimGpu::device_data(DevPtr ptr, Bytes offset)
{
    PCCHECK_CHECK(offset < ptr.size);
    return arena_.data() + ptr.offset + offset;
}

const std::uint8_t*
SimGpu::device_data(DevPtr ptr, Bytes offset) const
{
    PCCHECK_CHECK(offset < ptr.size);
    return arena_.data() + ptr.offset + offset;
}

Bytes
SimGpu::pcie_bytes_moved() const
{
    // relaxed: monitoring read; staleness is acceptable.
    return pcie_bytes_.load(std::memory_order_relaxed);
}

}  // namespace pccheck
