#ifndef PCCHECK_GPUSIM_GPU_H_
#define PCCHECK_GPUSIM_GPU_H_

/**
 * @file
 * Simulated GPU.
 *
 * Replaces CUDA for this reproduction (see DESIGN.md §1). The model
 * keeps exactly the properties the checkpointing path depends on:
 *
 *  - Device memory is a host arena addressed by DevPtr handles, so
 *    checkpoints contain real, verifiable bytes.
 *  - DMA copy engines move data between device and host over a shared
 *    PCIe bandwidth throttle, on their own threads — copies overlap
 *    with compute, like real copy engines (§2.3 "Data Copy Engines").
 *  - Copies from unpinned host memory pay a pinning penalty, modeling
 *    the staging copy cudaMemcpy performs for pageable memory.
 *  - The compute engine executes one "kernel" at a time; training
 *    iterations and GPM-style copy kernels contend for it, which is
 *    precisely why GPM stalls training while PCcheck does not.
 */

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "concurrent/thread_pool.h"
#include "storage/status.h"
#include "util/annotations.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/throttle.h"

namespace pccheck {

class StorageDevice;

/** Handle to device memory (offset into the device arena). */
struct DevPtr {
    Bytes offset = 0;
    Bytes size = 0;

    bool valid() const { return size > 0; }
};

/** Host buffer wrapper carrying the pinned-memory attribute. */
struct HostBuffer {
    std::uint8_t* data = nullptr;
    Bytes size = 0;
    bool pinned = false;
};

/** Static configuration of a simulated GPU. */
struct GpuConfig {
    Bytes memory_bytes = 512 * kMiB;
    /** PCIe copy-engine bandwidth, bytes/sec (paper: PCIe3 x16 ≈ 12.8e9
     *  effective on the A100 VM; x8 ≈ 6.4e9 on the RTX box). */
    double pcie_bytes_per_sec = 12.8e9;
    /** Number of DMA copy engines (A100 exposes several; 2 suffices). */
    int copy_engines = 2;
    /** Bandwidth factor for unpinned (pageable) host memory. */
    double unpinned_penalty = 0.45;
    /** Bandwidth factor for copy kernels (GPM-style, uses SMs). */
    double kernel_copy_factor = 0.85;
};

/**
 * Simulated GPU with device memory, DMA copy engines, and a compute
 * engine. Thread safe: any host thread may launch kernels or copies.
 */
class SimGpu {
  public:
    explicit SimGpu(const GpuConfig& config,
                    const Clock& clock = MonotonicClock::instance());
    ~SimGpu();

    SimGpu(const SimGpu&) = delete;
    SimGpu& operator=(const SimGpu&) = delete;

    /** Allocate device memory; throws FatalError when exhausted. */
    DevPtr alloc(Bytes size);

    /** Release device memory (bump allocator: only full reset frees). */
    void reset_allocations();

    Bytes memory_used() const;
    const GpuConfig& config() const { return config_; }

    /**
     * Synchronous DMA copy device→host. Pays PCIe bandwidth; runs on
     * the calling thread but does NOT occupy the compute engine.
     */
    void copy_to_host(void* dst, DevPtr src, Bytes offset, Bytes len,
                      bool pinned = true);

    /** Synchronous DMA copy host→device. */
    void copy_to_device(DevPtr dst, Bytes offset, const void* src,
                        Bytes len, bool pinned = true);

    /** Asynchronous DMA copy device→host on a copy engine thread. */
    std::future<void> copy_to_host_async(void* dst, DevPtr src,
                                         Bytes offset, Bytes len,
                                         bool pinned = true);

    /**
     * Occupy the compute engine for @p duration modeled seconds (a
     * training step's forward/backward or update kernel).
     */
    void launch_kernel(Seconds duration);

    /**
     * GPM-style copy kernel: moves device data directly into a
     * storage device while HOLDING the compute engine (no DMA). This
     * is the §2.2 behaviour that makes GPM stall training.
     * Returns the storage write's status.
     */
    StorageStatus kernel_copy_to_storage(StorageDevice& storage,
                                         Bytes dst_offset, DevPtr src,
                                         Bytes src_offset, Bytes len);

    /**
     * GPUDirect-style peer-to-peer DMA: the copy engine writes device
     * data straight into the storage device, bypassing DRAM staging
     * (§3.3 "using peer-to-peer PCIe technologies such as GPUDirect
     * Storage"). Does NOT hold the compute engine, but serializes the
     * PCIe channel with the storage write for the whole transfer —
     * the reason §3.3 finds staging + overlap faster overall.
     * Returns the storage write's status.
     */
    StorageStatus direct_copy_to_storage(StorageDevice& storage,
                                         Bytes dst_offset, DevPtr src,
                                         Bytes src_offset, Bytes len);

    /** Direct pointer into the device arena (fill/verify helpers). */
    std::uint8_t* device_data(DevPtr ptr, Bytes offset = 0);
    const std::uint8_t* device_data(DevPtr ptr, Bytes offset = 0) const;

    /** Total bytes moved over PCIe so far (monitoring). */
    Bytes pcie_bytes_moved() const;

  private:
    double effective_bw(bool pinned) const;
    void dma_transfer(Bytes len, bool pinned);

    GpuConfig config_;
    const Clock& clock_;
    std::vector<std::uint8_t> arena_;
    mutable Mutex alloc_mu_;
    Bytes alloc_cursor_ PCCHECK_GUARDED_BY(alloc_mu_) = 0;
    BandwidthThrottle pcie_;
    Mutex compute_mu_;  ///< the single compute engine (a capability
                        ///< with no data: holding it IS occupying the
                        ///< SMs)
    std::unique_ptr<ThreadPool> copy_pool_;
    std::atomic<Bytes> pcie_bytes_{0};
};

}  // namespace pccheck

#endif  // PCCHECK_GPUSIM_GPU_H_
