#include "core/free_slot_queue.h"

#include "util/check.h"

namespace pccheck {

std::unique_ptr<FreeSlotQueue>
make_slot_queue(SlotQueueKind kind, std::size_t capacity)
{
    switch (kind) {
      case SlotQueueKind::kVyukov:
        return std::make_unique<VyukovSlotQueue>(capacity);
      case SlotQueueKind::kMichaelScott:
        return std::make_unique<MsSlotQueue>(capacity);
      case SlotQueueKind::kMutex:
        return std::make_unique<MutexSlotQueue>(capacity);
    }
    PCCHECK_CHECK(false);
    return nullptr;
}

}  // namespace pccheck
