#ifndef PCCHECK_CORE_RECOVERY_PLANNER_H_
#define PCCHECK_CORE_RECOVERY_PLANNER_H_

/**
 * @file
 * Multi-source recovery planning (docs/RECOVERY.md).
 *
 * recover_to_buffer / recover_latest walk one device and give up when
 * it holds nothing valid. The RecoveryPlanner generalizes that into a
 * survey → rank → verify → fall back loop over every source that can
 * produce a checkpoint image:
 *
 *   - the local slot arena (CHECK_ADDR pointer records),
 *   - the local delta-frame chain (replayed on top of the chosen base
 *     when its base counter matches),
 *   - any number of pluggable RecoverySources (peer ReplicaStores via
 *     remote/replica_source.h, test doubles, future tiers).
 *
 * Candidates are ranked newest-counter-first with source cost as the
 * tie break, then tried in order. Each candidate ends with a verdict:
 * CRC-valid, torn (bytes readable but fail their CRC), unreadable
 * (media error), or stale (superseded before it was tried). A torn or
 * unreadable *newest local* slot is quarantined in the SlotStore —
 * skipped by recovery and never recycled by the commit protocol until
 * repaired — while older local candidates that fail CRC are classified
 * stale (their slot was legitimately recycled under the record).
 *
 * When the winning image came from a remote source and the local
 * arena is writable, the planner can salvage: re-persist the image
 * into a local slot under the full write→persist→fence→publish
 * contract (psan-checked), so the next recovery is local again. That
 * write-back is what makes recovery re-entrant — a crash during
 * salvage leaves either the old state or a fully published new record,
 * never a half-trusted slot (tests/recovery_storm_test.cc and the MC
 * recovery-crash enumerator check exactly this).
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "core/recovery.h"
#include "core/slot_store.h"
#include "storage/device.h"
#include "util/clock.h"

namespace pccheck {

/** Outcome of examining one recovery candidate. */
enum class CandidateVerdict {
    kUntried,     ///< ranked but never reached (a better one won)
    kValid,       ///< bytes read and CRC-verified
    kTorn,        ///< bytes readable but fail their CRC
    kUnreadable,  ///< media error while reading
    kStale,       ///< superseded: slot recycled under an old record
};

const char* to_string(CandidateVerdict verdict);

/** One restorable checkpoint image, wherever it lives. */
struct RecoveryCandidate {
    std::uint64_t counter = 0;
    std::uint64_t iteration = 0;
    Bytes data_len = 0;
    std::uint32_t data_crc = 0;  ///< 0 = no CRC recorded
    /** Rank tie-break among equal counters: lower is preferred
     *  (0 for local slots; modeled transfer time for peers). */
    double cost = 0.0;
    bool local = false;
    std::uint32_t slot = 0;   ///< local candidates: arena slot
    int source_node = -1;     ///< remote candidates: peer node id
    const char* source = "";  ///< source name (static lifetime)
    CandidateVerdict verdict = CandidateVerdict::kUntried;
};

/**
 * A tier that can enumerate and serve checkpoint images. Implemented
 * by remote/replica_source.h for peer ReplicaStores; the local slot
 * arena is built into the planner. Sources are not owned and must
 * outlive the planner.
 */
class RecoverySource {
  public:
    virtual ~RecoverySource() = default;

    /** Source name for reports/logs (static lifetime). */
    virtual const char* name() const = 0;

    /** Enumerate currently restorable images (cheap; no payload IO). */
    virtual std::vector<RecoveryCandidate> survey() = 0;

    /**
     * Fetch @p candidate's image into @p out (resized to data_len).
     * Returns false when the bytes cannot be produced (peer died,
     * version evicted, transfer timed out) — the planner marks the
     * candidate unreadable and falls back. CRC verification of the
     * fetched bytes is the planner's job, not the source's.
     */
    virtual bool fetch(const RecoveryCandidate& candidate,
                       std::vector<std::uint8_t>* out) = 0;
};

/** What the planner recovered, with the full per-candidate audit. */
struct PlannedRecovery {
    RecoveryResult result;
    bool from_replica = false;  ///< image came from a remote source
    int source_node = -1;       ///< serving peer (-1 = local)
    /** Every surveyed candidate in rank order, verdicts filled in up
     *  to (and including) the winner; later ones stay kUntried or are
     *  marked kStale. */
    std::vector<RecoveryCandidate> report;
    /** Local slots newly quarantined during this recovery. */
    std::uint64_t slots_quarantined = 0;
    /** True when the image was re-persisted into the local arena. */
    bool salvaged = false;
};

/** Unified local + pluggable-source recovery with verdicts. */
class RecoveryPlanner {
  public:
    struct Options {
        /** Re-persist a remotely restored image into the local arena
         *  (full persist→fence→publish contract). */
        bool salvage = true;
        /** Replay the local delta chain on top of the chosen base. */
        bool replay_delta = true;
        /** Quarantine the newest local slot when torn/unreadable. */
        bool quarantine = true;
    };

    /**
     * @param local_device this node's checkpoint media, or nullptr
     *        when the media is gone entirely (remote-only recovery)
     */
    explicit RecoveryPlanner(StorageDevice* local_device);
    RecoveryPlanner(StorageDevice* local_device, Options options,
                    const Clock& clock = MonotonicClock::instance());

    /** Register an additional source (borrowed, outlives planner). */
    void add_source(RecoverySource* source);

    /**
     * The ranked candidate list as of now (survey only — no payload
     * reads, no verdicts). recover() re-surveys internally.
     */
    std::vector<RecoveryCandidate> plan();

    /**
     * Try candidates best-first until one verifies; quarantine and
     * salvage per Options. @return std::nullopt when every source is
     * exhausted (all verdicts are then torn/unreadable/stale).
     */
    std::optional<PlannedRecovery> recover(std::vector<std::uint8_t>* out);

  private:
    std::vector<RecoveryCandidate> survey_local(const SlotStore& store);
    /** Salvage @p image into the arena; true when published. */
    bool salvage_local(SlotStore& store,
                       const std::vector<std::uint8_t>& image,
                       const RecoveryCandidate& chosen,
                       PlannedRecovery* planned);

    StorageDevice* local_device_;
    Options options_;
    const Clock* clock_;
    std::vector<RecoverySource*> sources_;
};

}  // namespace pccheck

#endif  // PCCHECK_CORE_RECOVERY_PLANNER_H_
