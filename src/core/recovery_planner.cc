#include "core/recovery_planner.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "delta/delta_log.h"
#include "psan/psan.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace pccheck {
namespace {

/** Internal ranking entry: candidate + the source that serves it
 *  (nullptr = the built-in local arena). */
struct Ranked {
    RecoveryCandidate candidate;
    RecoverySource* source = nullptr;
};

void
rank(std::vector<Ranked>* entries)
{
    std::sort(entries->begin(), entries->end(),
              [](const Ranked& a, const Ranked& b) {
                  if (a.candidate.counter != b.candidate.counter) {
                      return a.candidate.counter > b.candidate.counter;
                  }
                  return a.candidate.cost < b.candidate.cost;
              });
}

}  // namespace

const char*
to_string(CandidateVerdict verdict)
{
    switch (verdict) {
      case CandidateVerdict::kUntried:
        return "untried";
      case CandidateVerdict::kValid:
        return "valid";
      case CandidateVerdict::kTorn:
        return "torn";
      case CandidateVerdict::kUnreadable:
        return "unreadable";
      case CandidateVerdict::kStale:
        return "stale";
    }
    return "?";
}

RecoveryPlanner::RecoveryPlanner(StorageDevice* local_device)
    : RecoveryPlanner(local_device, Options())
{
}

RecoveryPlanner::RecoveryPlanner(StorageDevice* local_device,
                                 Options options, const Clock& clock)
    : local_device_(local_device), options_(options), clock_(&clock)
{
}

void
RecoveryPlanner::add_source(RecoverySource* source)
{
    PCCHECK_CHECK(source != nullptr);
    sources_.push_back(source);
}

std::vector<RecoveryCandidate>
RecoveryPlanner::survey_local(const SlotStore& store)
{
    std::vector<RecoveryCandidate> candidates;
    for (const CheckpointPointer& pointer : store.candidate_pointers()) {
        RecoveryCandidate candidate;
        candidate.counter = pointer.counter;
        candidate.iteration = pointer.iteration;
        candidate.data_len = pointer.data_len;
        candidate.data_crc = pointer.data_crc;
        candidate.cost = 0.0;  // local reads beat any network fetch
        candidate.local = true;
        candidate.slot = pointer.slot;
        candidate.source = "local";
        candidates.push_back(candidate);
    }
    return candidates;
}

std::vector<RecoveryCandidate>
RecoveryPlanner::plan()
{
    std::vector<Ranked> entries;
    if (local_device_ != nullptr) {
        try {
            SlotStore store = SlotStore::open(*local_device_);
            for (RecoveryCandidate& c : survey_local(store)) {
                entries.push_back(Ranked{c, nullptr});
            }
        } catch (const FatalError&) {
            // Wiped/unreadable arena: no local candidates.
        }
    }
    for (RecoverySource* source : sources_) {
        for (RecoveryCandidate& c : source->survey()) {
            c.source = source->name();
            entries.push_back(Ranked{c, source});
        }
    }
    rank(&entries);
    std::vector<RecoveryCandidate> candidates;
    candidates.reserve(entries.size());
    for (const Ranked& entry : entries) {
        candidates.push_back(entry.candidate);
    }
    return candidates;
}

bool
RecoveryPlanner::salvage_local(SlotStore& store,
                               const std::vector<std::uint8_t>& image,
                               const RecoveryCandidate& chosen,
                               PlannedRecovery* planned)
{
    psan::ScopeLabel psan_label("recovery.salvage");
    if (image.size() > store.slot_size()) {
        return false;  // local arena cannot hold this checkpoint
    }
    // Pick a target slot whose loss cannot regress the local floor:
    // a quarantined slot no NEWER-counter record references first (the
    // salvage doubles as its repair), then a slot no surviving pointer
    // record references, then the slot referenced by @p chosen's OWN
    // counter — the corrupt copy this salvage replaces, so a torn
    // write there changes nothing recovery could have used. Never a
    // live older record's slot: a crash mid-write would destroy the
    // last good local copy while the rotten one still fails CRC (the
    // exact failure mode the MC recovery-crash mutation models).
    //
    // A quarantined slot still referenced by a record NEWER than
    // @p chosen is only used as a last resort, and only after that
    // stale record is durably invalidated: salvaging an older image
    // under a surviving newer record would make the next recovery
    // CRC-fail that record as "newest local", re-quarantine the slot
    // now holding the only valid local copy, and hide the salvaged
    // record behind the quarantine — local recovery dead despite a
    // good local copy.
    std::unordered_set<std::uint32_t> referenced;
    std::unordered_set<std::uint32_t> newer_referenced;
    std::optional<std::uint32_t> same_counter_slot;
    const auto records =
        store.candidate_pointers(/*include_quarantined=*/true);
    for (const CheckpointPointer& pointer : records) {
        referenced.insert(pointer.slot);
        if (pointer.counter == chosen.counter) {
            same_counter_slot = pointer.slot;
        }
        if (pointer.counter > chosen.counter) {
            newer_referenced.insert(pointer.slot);
        }
    }
    std::optional<std::uint32_t> target;
    const std::vector<std::uint32_t> quarantined =
        store.quarantined_slots();
    for (std::uint32_t slot : quarantined) {
        if (!newer_referenced.contains(slot)) {
            target = slot;
            break;
        }
    }
    if (!target.has_value()) {
        for (std::uint32_t slot = 0; slot < store.slot_count(); ++slot) {
            if (!referenced.contains(slot)) {
                target = slot;
                break;
            }
        }
    }
    if (!target.has_value() && same_counter_slot.has_value() &&
        !newer_referenced.contains(*same_counter_slot)) {
        target = same_counter_slot;
    }
    if (!target.has_value() && !quarantined.empty()) {
        // Last resort: only newer-referenced quarantined slots remain.
        // Retire the stale record(s) first — they name corrupt bytes
        // this salvage is about to overwrite, so invalidating them
        // loses nothing recoverable and makes the slot unreferenced
        // before the write lands. Crash analysis: after the durable
        // invalidation the local arena holds at most the other (older)
        // record, exactly what it effectively held already.
        target = quarantined.front();
        for (const CheckpointPointer& pointer : records) {
            if (pointer.slot == *target &&
                pointer.counter > chosen.counter &&
                !store.invalidate_record(pointer.counter).ok()) {
                return false;  // stale record survives; don't salvage
            }
        }
    }
    if (!target.has_value()) {
        return false;  // every slot holds a live copy; don't risk one
    }
    // Full persist contract, then verify the media actually holds the
    // bytes before the record (or the quarantine release) trusts it.
    if (!store.repair_slot(*target, image.data(), image.size()).ok()) {
        return false;
    }
    std::vector<std::uint8_t> readback(image.size());
    if (!store.read_slot(*target, 0, readback.data(), readback.size())
             .ok()) {
        return false;
    }
    const std::uint32_t image_crc = crc32c(image.data(), image.size());
    if (crc32c(readback.data(), readback.size()) != image_crc) {
        return false;  // media rejected the repair; leave quarantine on
    }
    if (store.is_quarantined(*target) &&
        !store.release_quarantine(*target).ok()) {
        return false;
    }
    CheckpointPointer pointer;
    pointer.counter = chosen.counter;
    pointer.slot = *target;
    pointer.data_len = image.size();
    pointer.iteration = chosen.iteration;
    pointer.data_crc = chosen.data_crc != 0 ? chosen.data_crc : image_crc;
    if (!store.publish_pointer(pointer).ok()) {
        return false;
    }
    LOG_INFO("pccheck: salvaged checkpoint counter "
             << chosen.counter << " into local slot " << *target);
    MetricsRegistry::global().counter("pccheck.recovery.salvages").add();
    planned->salvaged = true;
    return true;
}

std::optional<PlannedRecovery>
RecoveryPlanner::recover(std::vector<std::uint8_t>* out)
{
    PCCHECK_CHECK(out != nullptr);
    Stopwatch watch(*clock_);
    // V5: everything recovery reads must be durable media content; the
    // salvage/repair writes below re-earn durability explicitly.
    psan::RecoveryScope psan_scope;
    psan::ScopeLabel psan_label("recovery.planner");
    MetricsRegistry::global().counter("pccheck.recovery.planner_runs").add();

    std::optional<SlotStore> store;
    if (local_device_ != nullptr) {
        try {
            store.emplace(SlotStore::open(*local_device_));
        } catch (const FatalError&) {
            // Unformatted / wiped / truncated media: every local
            // candidate is unreadable before we even rank.
        }
    }
    std::vector<Ranked> entries;
    if (store.has_value()) {
        for (RecoveryCandidate& c : survey_local(*store)) {
            entries.push_back(Ranked{c, nullptr});
        }
    }
    for (RecoverySource* source : sources_) {
        for (RecoveryCandidate& c : source->survey()) {
            c.source = source->name();
            entries.push_back(Ranked{c, source});
        }
    }
    rank(&entries);

    PlannedRecovery planned;
    planned.report.reserve(entries.size());
    for (const Ranked& entry : entries) {
        planned.report.push_back(entry.candidate);
    }

    // Newest-first, falling back source by source. The first local
    // candidate is the newest record the arena still claims: if ITS
    // payload is bad, that is latent corruption worth quarantining.
    // Older local candidates that fail CRC were usually recycled under
    // a stale record — a healthy condition, classified kStale.
    bool newest_local_tried = false;
    std::optional<std::size_t> winner;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        RecoveryCandidate& candidate = planned.report[i];
        RecoverySource* source = entries[i].source;
        const bool is_newest_local = candidate.local && !newest_local_tried;
        if (candidate.local) {
            newest_local_tried = true;
        }
        if (candidate.local) {
            out->resize(candidate.data_len);
            if (!store
                     ->read_slot(candidate.slot, 0, out->data(),
                                 candidate.data_len)
                     .ok()) {
                candidate.verdict = CandidateVerdict::kUnreadable;
                // A media error is never a legitimate recycle.
                if (options_.quarantine &&
                    store->quarantine_slot(candidate.slot).ok()) {
                    ++planned.slots_quarantined;
                    MetricsRegistry::global()
                        .counter("pccheck.recovery.quarantined")
                        .add();
                }
                continue;
            }
        } else {
            if (!source->fetch(candidate, out)) {
                candidate.verdict = CandidateVerdict::kUnreadable;
                continue;
            }
        }
        if (candidate.data_crc != 0 &&
            crc32c(out->data(), out->size()) != candidate.data_crc) {
            if (candidate.local && !is_newest_local) {
                candidate.verdict = CandidateVerdict::kStale;
                continue;
            }
            candidate.verdict = CandidateVerdict::kTorn;
            if (candidate.local && options_.quarantine &&
                store->quarantine_slot(candidate.slot).ok()) {
                ++planned.slots_quarantined;
                MetricsRegistry::global()
                    .counter("pccheck.recovery.quarantined")
                    .add();
            }
            continue;
        }
        candidate.verdict = CandidateVerdict::kValid;
        winner = i;
        break;
    }
    if (!winner.has_value()) {
        return std::nullopt;
    }

    const RecoveryCandidate& chosen = planned.report[*winner];
    // Everything strictly older than the winner is superseded.
    for (std::size_t i = *winner + 1; i < planned.report.size(); ++i) {
        if (planned.report[i].verdict == CandidateVerdict::kUntried &&
            planned.report[i].counter < chosen.counter) {
            planned.report[i].verdict = CandidateVerdict::kStale;
        }
    }
    planned.from_replica = !chosen.local;
    planned.source_node = chosen.local ? -1 : chosen.source_node;
    planned.result.counter = chosen.counter;
    planned.result.iteration = chosen.iteration;
    planned.result.data_len = chosen.data_len;
    planned.result.data_crc = chosen.data_crc;

    if (planned.from_replica) {
        MetricsRegistry::global()
            .counter("pccheck.recovery.replica_restores")
            .add();
        if (options_.salvage && store.has_value()) {
            salvage_local(*store, *out, chosen, &planned);
        }
    }

    // Replay the local delta chain on top of the chosen base. The
    // chain validates its base counter itself, so a base restored from
    // a replica still picks up frames sealed against the same counter.
    if (options_.replay_delta && store.has_value() &&
        store->delta_bytes() > 0) {
        const DeltaRegion region{store->delta_offset(),
                                 store->delta_bytes()};
        const DeltaReplayStats replay =
            delta_replay(*local_device_, region, chosen.counter,
                         chosen.iteration, out->data(), out->size());
        if (replay.frames_applied > 0) {
            planned.result.iteration = replay.iteration;
        }
        planned.result.delta_frames = replay.frames_applied;
        planned.result.delta_seq = replay.last_seq;
    }
    planned.result.load_time = watch.elapsed();
    return planned;
}

}  // namespace pccheck
