#include "core/slot_store.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "psan/psan.h"
#include "psan/psan_storage.h"
#include "util/check.h"
#include "util/crc32.h"

namespace pccheck {
namespace {

constexpr std::uint64_t kMagic = 0x50434348454B3031ULL;  // "PCCHEK01"
constexpr std::uint32_t kVersion = 1;
constexpr Bytes kHeaderOffset = 0;
constexpr Bytes kRecordBase = 64;
constexpr Bytes kRecordStride = 64;
constexpr Bytes kDataAlign = 4096;

/** Raw on-device header (64 bytes). */
struct DeviceHeader {
    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t slot_count;
    std::uint64_t slot_size;
    std::uint64_t data_offset;
    /** Delta-log region (docs/DELTA_LOG.md); both zero on devices
     *  formatted without one — including all pre-delta-tier devices,
     *  whose pad bytes were written as zero, so version stays 1. */
    std::uint64_t delta_offset;
    std::uint64_t delta_len;
    /** Quarantined-slot bitmap (bit i = slot i corrupt). Devices
     *  formatted before the quarantine tier wrote these pad bytes as
     *  zero — an empty quarantine — so version stays 1. */
    std::uint64_t quarantine_bits;
    std::uint8_t pad[8];
};
static_assert(sizeof(DeviceHeader) == 64);

/** Raw on-device pointer record (64 bytes, checksum-protected). */
struct RawRecord {
    std::uint64_t counter;
    std::uint32_t slot;
    std::uint32_t data_crc;
    std::uint64_t data_len;
    std::uint64_t iteration;
    std::uint8_t pad[28];
    std::uint32_t record_checksum;  ///< CRC of all preceding fields
};
static_assert(sizeof(RawRecord) == 64);

std::uint32_t
record_crc(const RawRecord& rec)
{
    return crc32c(&rec, offsetof(RawRecord, record_checksum));
}

}  // namespace

std::shared_ptr<SlotStore::QuarantineState>
SlotStore::quarantine_state_for(const StorageDevice* device,
                                std::uint64_t header_bits, bool reset)
{
    static Mutex* registry_mu = new Mutex;
    static auto* registry = new std::unordered_map<
        const StorageDevice*, std::weak_ptr<QuarantineState>>;
    MutexLock lock(*registry_mu);
    // Expired entries (every handle on that device destroyed) are
    // purged so a device allocated at a recycled address starts fresh.
    for (auto it = registry->begin(); it != registry->end();) {
        it = it->second.expired() ? registry->erase(it) : std::next(it);
    }
    std::weak_ptr<QuarantineState>& entry = (*registry)[device];
    std::shared_ptr<QuarantineState> state = entry.lock();
    if (state == nullptr) {
        state = std::make_shared<QuarantineState>();
        {
            MutexLock state_lock(state->mu);
            state->bits = header_bits;
        }
        entry = state;
    } else if (reset) {
        MutexLock state_lock(state->mu);
        state->bits = header_bits;
    }
    // A live shared entry is at least as fresh as the header the
    // caller just read (the cache is only advanced after a durable
    // header write), so open() adopts it unchanged.
    return state;
}

SlotStore::SlotStore(StorageDevice& device, std::uint32_t slot_count,
                     Bytes slot_size, Bytes delta_offset, Bytes delta_bytes,
                     std::uint64_t quarantine_bits, bool reset_quarantine)
    : device_(&device), psan_(dynamic_cast<PsanStorage*>(&device)),
      slot_count_(slot_count), slot_size_(slot_size),
      data_offset_(kDataAlign), delta_offset_(delta_offset),
      delta_bytes_(delta_bytes),
      publish_(std::make_shared<PublishState>()),
      quarantine_(quarantine_state_for(&device, quarantine_bits,
                                       reset_quarantine))
{
}

Bytes
SlotStore::required_size(std::uint32_t slot_count, Bytes slot_size,
                         Bytes delta_log_bytes)
{
    return kDataAlign +
           static_cast<Bytes>(slot_count) * align_up(slot_size, kDataAlign) +
           align_up(delta_log_bytes, kDataAlign);
}

Bytes
SlotStore::record_offset(int index)
{
    return kRecordBase + static_cast<Bytes>(index) * kRecordStride;
}

SlotStore
SlotStore::format(StorageDevice& device, std::uint32_t slot_count,
                  Bytes slot_size, Bytes delta_log_bytes)
{
    PCCHECK_CHECK(slot_count >= 2);  // N >= 1 concurrent + 1 guaranteed
    PCCHECK_CHECK(slot_size > 0);
    const Bytes needed =
        required_size(slot_count, slot_size, delta_log_bytes);
    if (device.size() < needed) {
        fatal("SlotStore: device too small: " + format_bytes(device.size()) +
              " < " + format_bytes(needed));
    }
    const Bytes delta_bytes = align_up(delta_log_bytes, kDataAlign);
    const Bytes delta_offset =
        delta_bytes > 0 ? required_size(slot_count, slot_size) : 0;
    psan::ScopeLabel psan_label("slot_store.format");
    if (auto* psan = dynamic_cast<PsanStorage*>(&device)) {
        // Reformat discards all previous content: drop the sanitizer's
        // checkpoint/frame protection before overwriting it.
        psan->on_format();
    }
    DeviceHeader header{};
    header.magic = kMagic;
    header.version = kVersion;
    header.slot_count = slot_count;
    header.slot_size = slot_size;
    header.data_offset = kDataAlign;
    header.delta_offset = delta_offset;
    header.delta_len = delta_bytes;
    // Formatting is a setup path: a device that cannot even hold its
    // header is unusable, so errors escalate instead of retrying.
    PCCHECK_MUST(device.write(kHeaderOffset, &header, sizeof(header)));

    // Invalidate both pointer records.
    RawRecord empty{};
    empty.record_checksum = ~record_crc(empty);  // deliberately bad
    PCCHECK_MUST(device.write(record_offset(0), &empty, sizeof(empty)));
    PCCHECK_MUST(device.write(record_offset(1), &empty, sizeof(empty)));

    // Only the header and the two pointer records were written; the
    // rest of the first page is untouched, so persisting the full
    // kDataAlign would flush 61 clean cache lines per format on PMEM
    // (flagged by psan rule V4).
    PCCHECK_MUST(device.persist(0, kRecordBase + 2 * kRecordStride));
    PCCHECK_MUST(device.fence());
    if (delta_bytes > 0) {
        // Kill any previous delta chain: zero the first frame header
        // so replay of the fresh layout stops immediately.
        const std::uint8_t dead_frame[64] = {};
        PCCHECK_MUST(
            device.write(delta_offset, dead_frame, sizeof(dead_frame)));
        PCCHECK_MUST(device.persist(delta_offset, sizeof(dead_frame)));
        PCCHECK_MUST(device.fence());
    }
    return SlotStore(device, slot_count, slot_size, delta_offset,
                     delta_bytes, 0, /*reset_quarantine=*/true);
}

SlotStore
SlotStore::open(StorageDevice& device)
{
    DeviceHeader header{};
    if (device.size() < sizeof(header)) {
        fatal("SlotStore: device smaller than header");
    }
    const StorageStatus header_read =
        device.read(kHeaderOffset, &header, sizeof(header));
    if (!header_read.ok()) {
        fatal(std::string("SlotStore: header unreadable (") +
              header_read.context() + ")");
    }
    if (header.magic != kMagic) {
        fatal("SlotStore: bad magic (device not formatted)");
    }
    if (header.version != kVersion) {
        fatal("SlotStore: unsupported version");
    }
    if (device.size() <
        required_size(header.slot_count, header.slot_size)) {
        fatal("SlotStore: header inconsistent with device size");
    }
    if (header.delta_len > 0 &&
        (header.delta_offset <
             required_size(header.slot_count, header.slot_size) ||
         header.delta_offset + header.delta_len > device.size())) {
        fatal("SlotStore: delta region inconsistent with device size");
    }
    return SlotStore(device, header.slot_count, header.slot_size,
                     header.delta_len > 0 ? header.delta_offset : 0,
                     header.delta_len, header.quarantine_bits,
                     /*reset_quarantine=*/false);
}

Bytes
SlotStore::slot_offset(std::uint32_t slot) const
{
    PCCHECK_CHECK_MSG(slot < slot_count_, "slot " << slot << " out of range");
    return data_offset_ +
           static_cast<Bytes>(slot) * align_up(slot_size_, kDataAlign);
}

StorageStatus
SlotStore::write_slot(std::uint32_t slot, Bytes offset, const void* src,
                      Bytes len)
{
    PCCHECK_CHECK_MSG(offset + len <= slot_size_,
                      "slot write overflow off=" << offset << " len=" << len);
    return device_->write(slot_offset(slot) + offset, src, len);
}

StorageStatus
SlotStore::persist_slot_range(std::uint32_t slot, Bytes offset, Bytes len)
{
    PCCHECK_CHECK(offset + len <= slot_size_);
    return device_->persist(slot_offset(slot) + offset, len);
}

StorageStatus
SlotStore::read_slot(std::uint32_t slot, Bytes offset, void* dst,
                     Bytes len) const
{
    PCCHECK_CHECK(offset + len <= slot_size_);
    return device_->read(slot_offset(slot) + offset, dst, len);
}

StorageStatus
SlotStore::publish_pointer(const CheckpointPointer& ptr)
{
    PCCHECK_CHECK(ptr.slot < slot_count_);
    PCCHECK_CHECK(ptr.data_len <= slot_size_);
    // Serialize with concurrent commit winners: two in-flight
    // publishes with counters of equal parity target the SAME record,
    // and a delayed older publish must not overwrite a newer durable
    // record whose predecessor slot has already been recycled.
    //
    // Writer turnstile: the claim (and the staleness drop) happens
    // under mu, but the record's write+persist+fence runs OUTSIDE it,
    // so last_published readers never block behind device I/O. A
    // publish that slept through a newer writer's completion re-checks
    // staleness after every wait and is dropped exactly as before.
    {
        MutexLock lock(publish_->mu);
        while (publish_->writing) {
            publish_->cv.wait(publish_->mu);
        }
        if (publish_->any && ptr.counter < publish_->last_counter) {
            return StorageStatus::success();
        }
        publish_->writing = true;
    }
    psan::ScopeLabel psan_label("slot_store.publish");
    if (psan_ != nullptr) {
        // V1: the slot data this record makes reachable must already
        // be durable (persisted and, on PMEM, fenced) before the
        // record can claim it.
        psan_->on_publish_begin(ptr.counter, slot_offset(ptr.slot),
                                ptr.data_len);
    }
    RawRecord rec{};
    rec.counter = ptr.counter;
    rec.slot = ptr.slot;
    rec.data_crc = ptr.data_crc;
    rec.data_len = ptr.data_len;
    rec.iteration = ptr.iteration;
    rec.record_checksum = record_crc(rec);
    const Bytes off = record_offset(static_cast<int>(ptr.counter % 2));
    StorageStatus status = device_->write(off, &rec, sizeof(rec));
    if (status.ok()) {
        status = device_->persist(off, sizeof(rec));
    }
    if (status.ok()) {
        status = device_->fence();
    }
    if (status.ok() && psan_ != nullptr) {
        // V2 on the record lines themselves, then move lost-update
        // protection to this checkpoint's payload.
        psan_->on_publish_durable(ptr.counter, off, sizeof(rec),
                                  slot_offset(ptr.slot), ptr.data_len);
    }
    MutexLock lock(publish_->mu);
    publish_->writing = false;
    if (status.ok()) {
        publish_->any = true;
        publish_->last_counter = ptr.counter;
        publish_->last_ptr = ptr;
    }
    // On error last_counter is left alone so a retry of this very
    // publish is not dropped as stale. The previous record is
    // untouched on media (tearing the new record's slot is handled by
    // recovery's checksum fallback).
    publish_->cv.notify_all();
    return status;
}

std::optional<CheckpointPointer>
SlotStore::last_published() const
{
    MutexLock lock(publish_->mu);
    if (!publish_->any) {
        return std::nullopt;
    }
    return publish_->last_ptr;
}

std::vector<CheckpointPointer>
SlotStore::candidate_pointers(bool include_quarantined) const
{
    std::vector<CheckpointPointer> candidates;
    for (int index = 0; index < 2; ++index) {
        RawRecord rec{};
        if (!device_->read(record_offset(index), &rec, sizeof(rec)).ok()) {
            continue;  // unreadable record lines: same as torn
        }
        if (rec.record_checksum != record_crc(rec)) {
            continue;
        }
        if (rec.slot >= slot_count_ || rec.data_len > slot_size_) {
            continue;
        }
        if (!include_quarantined && is_quarantined(rec.slot)) {
            continue;  // known-corrupt payload awaiting repair
        }
        candidates.push_back(CheckpointPointer{
            rec.counter, rec.slot, rec.data_len, rec.iteration,
            rec.data_crc});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const CheckpointPointer& a, const CheckpointPointer& b) {
                  return a.counter > b.counter;
              });
    return candidates;
}

std::optional<CheckpointPointer>
SlotStore::recover_pointer(bool validate_data) const
{
    std::optional<CheckpointPointer> best;
    for (int index = 0; index < 2; ++index) {
        RawRecord rec{};
        if (!device_->read(record_offset(index), &rec, sizeof(rec)).ok()) {
            continue;  // unreadable record lines: same as torn
        }
        if (rec.record_checksum != record_crc(rec)) {
            continue;  // torn or never written
        }
        if (rec.slot >= slot_count_ || rec.data_len > slot_size_) {
            continue;  // stale garbage that happened to checksum? reject
        }
        if (is_quarantined(rec.slot)) {
            continue;  // known-corrupt payload awaiting repair
        }
        CheckpointPointer ptr{rec.counter, rec.slot, rec.data_len,
                              rec.iteration, rec.data_crc};
        // data_crc == 0 marks "checksum disabled" (PCcheckConfig::
        // compute_crc = false); skip the data validation then.
        if (validate_data && ptr.data_crc != 0) {
            std::vector<std::uint8_t> data(ptr.data_len);
            if (!read_slot(ptr.slot, 0, data.data(), ptr.data_len).ok()) {
                continue;  // unreadable payload: treat like a torn slot
            }
            if (crc32c(data.data(), data.size()) != ptr.data_crc) {
                continue;  // slot was recycled under this stale record
            }
        }
        if (!best.has_value() || ptr.counter > best->counter) {
            best = ptr;
        }
    }
    return best;
}

StorageStatus
SlotStore::write_quarantine_bits(std::uint64_t bits)
{
    const Bytes off = kHeaderOffset + offsetof(DeviceHeader, quarantine_bits);
    StorageStatus status = device_->write(off, &bits, sizeof(bits));
    if (status.ok()) {
        status = device_->persist(off, sizeof(bits));
    }
    if (status.ok()) {
        status = device_->fence();
    }
    return status;
}

StorageStatus
SlotStore::quarantine_slot(std::uint32_t slot)
{
    PCCHECK_CHECK_MSG(slot < slot_count_,
                      "quarantine: slot " << slot << " out of range");
    if (slot >= 64) {
        return StorageStatus::permanent_error("slot_store.quarantine_width");
    }
    psan::ScopeLabel psan_label("slot_store.quarantine");
    // Writer turnstile (see QuarantineState): the new bitmap value is
    // computed and claimed under mu, but its write+persist+fence runs
    // outside the lock so commit-path is_quarantined checks never
    // stall behind quarantine I/O. Waiters recompute against the
    // committed bits after every wake, so concurrent writers never
    // lose each other's updates.
    std::uint64_t bits = 0;
    bool need_write = false;
    {
        MutexLock lock(quarantine_->mu);
        while (quarantine_->writing) {
            quarantine_->cv.wait(quarantine_->mu);
        }
        bits = quarantine_->bits | (1ull << slot);
        need_write = bits != quarantine_->bits;
        if (need_write) {
            quarantine_->writing = true;
        }
    }
    if (need_write) {
        const StorageStatus status = write_quarantine_bits(bits);
        MutexLock lock(quarantine_->mu);
        quarantine_->writing = false;
        quarantine_->cv.notify_all();
        if (!status.ok()) {
            // Not durable: keep the cached set unchanged so callers
            // can retry; the slot stays eligible until then.
            return status;
        }
        quarantine_->bits = bits;
    }
    if (psan_ != nullptr) {
        psan_->on_quarantine(slot_offset(slot), slot_size_);
    }
    return StorageStatus::success();
}

StorageStatus
SlotStore::release_quarantine(std::uint32_t slot)
{
    PCCHECK_CHECK_MSG(slot < slot_count_,
                      "release_quarantine: slot " << slot << " out of range");
    if (slot >= 64) {
        return StorageStatus::permanent_error("slot_store.quarantine_width");
    }
    psan::ScopeLabel psan_label("slot_store.release_quarantine");
    // Same writer turnstile as quarantine_slot: claim under mu, run
    // the bitmap I/O outside it.
    std::uint64_t bits = 0;
    {
        MutexLock lock(quarantine_->mu);
        while (quarantine_->writing) {
            quarantine_->cv.wait(quarantine_->mu);
        }
        bits = quarantine_->bits & ~(1ull << slot);
        if (bits == quarantine_->bits) {
            return StorageStatus::success();
        }
        quarantine_->writing = true;
    }
    const StorageStatus status = write_quarantine_bits(bits);
    MutexLock lock(quarantine_->mu);
    quarantine_->writing = false;
    quarantine_->cv.notify_all();
    if (status.ok()) {
        quarantine_->bits = bits;
    }
    return status;
}

bool
SlotStore::is_quarantined(std::uint32_t slot) const
{
    if (slot >= 64) {
        return false;
    }
    MutexLock lock(quarantine_->mu);
    return (quarantine_->bits & (1ull << slot)) != 0;
}

std::vector<std::uint32_t>
SlotStore::quarantined_slots() const
{
    std::vector<std::uint32_t> slots;
    MutexLock lock(quarantine_->mu);
    for (std::uint32_t slot = 0; slot < slot_count_ && slot < 64; ++slot) {
        if ((quarantine_->bits & (1ull << slot)) != 0) {
            slots.push_back(slot);
        }
    }
    return slots;
}

StorageStatus
SlotStore::invalidate_record(std::uint64_t counter)
{
    const Bytes off = record_offset(static_cast<int>(counter % 2));
    RawRecord rec{};
    StorageStatus status = device_->read(off, &rec, sizeof(rec));
    if (!status.ok()) {
        return status;
    }
    if (rec.record_checksum != record_crc(rec) || rec.counter != counter) {
        // Already torn, or a different publish owns this parity slot:
        // nothing stale left to retire.
        return StorageStatus::success();
    }
    psan::ScopeLabel psan_label("slot_store.invalidate_record");
    rec.record_checksum = ~record_crc(rec);  // deliberately bad
    status = device_->write(off, &rec, sizeof(rec));
    if (status.ok()) {
        status = device_->persist(off, sizeof(rec));
    }
    if (status.ok()) {
        status = device_->fence();
    }
    return status;
}

StorageStatus
SlotStore::repair_slot(std::uint32_t slot, const void* src, Bytes len)
{
    PCCHECK_CHECK_MSG(len <= slot_size_,
                      "repair overflow len=" << len);
    psan::ScopeLabel psan_label("slot_store.repair");
    // Full persist contract: the salvaged bytes must be durable before
    // anyone trusts the slot again (release_quarantine / publish).
    StorageStatus status = device_->write(slot_offset(slot), src, len);
    if (status.ok()) {
        status = device_->persist(slot_offset(slot), len);
    }
    if (status.ok()) {
        status = device_->fence();
    }
    if (status.ok() && psan_ != nullptr) {
        psan_->on_repair_durable(slot_offset(slot), len);
    }
    return status;
}

}  // namespace pccheck
