#ifndef PCCHECK_CORE_CLUSTER_H_
#define PCCHECK_CORE_CLUSTER_H_

/**
 * @file
 * Pipeline-parallel training cluster harness (§3.1 "Checkpointing for
 * Distributed Training").
 *
 * Each node (one thread, one SimGpu) owns a partition of the model
 * (OPT-2.7B: 2 stages, BLOOM-7B: 6 stages), trains in steady-state
 * pipeline fashion, forwards activations to the next stage over the
 * simulated network, and checkpoints its own partition through a
 * per-node Checkpointer created by the caller's factory. Every
 * checkpoint interval, the nodes run the rank-0 consensus of §4.1 on
 * the latest locally committed iteration, yielding the globally
 * consistent checkpoint the paper requires.
 */

#include <functional>
#include <memory>
#include <vector>

#include "core/distributed.h"
#include "gpusim/gpu.h"
#include "net/network.h"
#include "trainsim/checkpointer.h"
#include "trainsim/models.h"
#include "trainsim/training_state.h"
#include "util/clock.h"

namespace pccheck {

/** Cluster-wide workload parameters. */
struct ClusterConfig {
    int nodes = 2;
    /** Per-stage iteration time (steady-state pipeline), seconds. */
    Seconds stage_time = 0.002;
    double update_fraction = 0.1;
    /** Checkpoint partition per node (m_total / nodes). */
    Bytes partition_bytes = 64 * kKiB;
    /** Activation bytes exchanged per iteration between stages. */
    Bytes activation_bytes = 4 * kKiB;
    GpuConfig gpu;          ///< per-node GPU configuration
    NetworkConfig network;  ///< inter-node fabric
    /** Run the rank-0 checkpoint-ID consensus every interval. */
    bool coordinate = true;
    /**
     * Per-message coordination timeout (modeled seconds); 0 waits
     * forever. With a timeout, surviving ranks degrade to local-only
     * checkpointing when a peer goes silent instead of hanging.
     */
    Seconds coordinate_timeout = 0;
    /**
     * Fault injection: rank @p kill_rank stops training (and never
     * coordinates again) after completing iteration @p kill_at_iter.
     * -1 disables. Requires coordinate_timeout > 0 when coordination
     * is enabled, else the survivors would block forever.
     */
    int kill_rank = -1;
    std::uint64_t kill_at_iter = 0;
};

/** Per-node view handed to the checkpointer factory. */
struct ClusterNode {
    int rank = 0;
    SimGpu* gpu = nullptr;
    TrainingState* state = nullptr;
    SimNetwork* network = nullptr;
};

/** Outcome of a cluster run. */
struct ClusterResult {
    double throughput = 0;  ///< pipeline iterations per second
    Seconds wall_time = 0;
    std::vector<CheckpointerStats> node_stats;
    /** Globally consistent checkpoint iteration (0 if none/disabled). */
    std::uint64_t consistent_iteration = 0;
    /** True when any rank's coordination degraded (peer timeout). */
    bool degraded = false;
    /** Total coordination rounds that timed out across all ranks. */
    std::uint64_t coordinate_timeouts = 0;
};

/** Pipeline-parallel training cluster over SimNetwork. */
class PipelineCluster {
  public:
    /**
     * Creates a Checkpointer for one node; also queried (through
     * latest_iteration) for the node's newest durably committed
     * iteration when coordination runs.
     */
    struct NodeCheckpointer {
        std::unique_ptr<Checkpointer> checkpointer;
        /** Latest locally committed iteration; 0 when none. */
        std::function<std::uint64_t()> latest_iteration;
    };
    using Factory = std::function<NodeCheckpointer(const ClusterNode&)>;

    explicit PipelineCluster(
        const ClusterConfig& config,
        const Clock& clock = MonotonicClock::instance());
    ~PipelineCluster();

    PipelineCluster(const PipelineCluster&) = delete;
    PipelineCluster& operator=(const PipelineCluster&) = delete;

    /**
     * Train @p iterations pipeline iterations, checkpointing every
     * @p interval (0 disables), one checkpointer per node from
     * @p factory. Blocks until all nodes finish and all checkpoints
     * drain.
     */
    ClusterResult run(std::uint64_t iterations, std::uint64_t interval,
                      const Factory& factory);

    SimNetwork& network() { return *network_; }
    SimGpu& gpu(int rank) { return *gpus_[static_cast<std::size_t>(rank)]; }
    TrainingState& state(int rank)
    {
        return *states_[static_cast<std::size_t>(rank)];
    }

  private:
    ClusterConfig config_;
    const Clock* clock_;
    std::unique_ptr<SimNetwork> network_;
    std::vector<std::unique_ptr<SimGpu>> gpus_;
    std::vector<std::unique_ptr<TrainingState>> states_;
};

}  // namespace pccheck

#endif  // PCCHECK_CORE_CLUSTER_H_
