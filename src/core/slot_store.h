#ifndef PCCHECK_CORE_SLOT_STORE_H_
#define PCCHECK_CORE_SLOT_STORE_H_

/**
 * @file
 * On-device checkpoint layout and the persistent CHECK_ADDR pointer.
 *
 * A storage device is formatted as:
 *
 *   [ DeviceHeader | PointerRecord[2] | slot 0 | ... | slot N | delta ]
 *
 * giving N+1 slots of slot_size bytes each — §3.2: "(N+1)·m to allow N
 * concurrent checkpoints and guarantee at least one valid checkpoint
 * at any time" — optionally followed by the delta-log region of the
 * incremental checkpoint tier (docs/DELTA_LOG.md). The header records
 * the region's offset and length; a zero length (including every
 * device formatted before the delta tier existed) means no delta
 * region.
 *
 * The persistent CHECK_ADDR is represented by TWO alternating
 * PointerRecords protected by record checksums (superblock-pair
 * technique): record (counter mod 2) is rewritten for each committed
 * checkpoint, so a crash that tears the in-flight record still leaves
 * the previous record intact, and the slot it references is only
 * recycled after the newer record is durable. Each record additionally
 * carries a CRC of the checkpoint data, letting recovery detect a slot
 * that was recycled under a stale record.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "storage/device.h"
#include "util/annotations.h"
#include "util/bytes.h"

namespace pccheck {

class PsanStorage;

/** Committed-checkpoint descriptor (what CHECK_ADDR points to). */
struct CheckpointPointer {
    std::uint64_t counter = 0;    ///< global checkpoint counter value
    std::uint32_t slot = 0;       ///< slot holding the data
    std::uint64_t data_len = 0;   ///< valid bytes within the slot
    std::uint64_t iteration = 0;  ///< training iteration of the state
    std::uint32_t data_crc = 0;   ///< CRC-32C of the slot data
};

/** Checkpoint slot arena + durable pointer records on one device. */
class SlotStore {
  public:
    /**
     * Format @p device with @p slot_count slots of @p slot_size bytes,
     * plus an optional delta-log region of @p delta_log_bytes.
     * Pre-existing content is discarded (including any previous delta
     * chain: the region's first frame header is invalidated).
     * @p device must outlive this.
     */
    static SlotStore format(StorageDevice& device, std::uint32_t slot_count,
                            Bytes slot_size, Bytes delta_log_bytes = 0);

    /**
     * Open an already formatted device (recovery path). Throws
     * FatalError if the header is missing or corrupt.
     */
    static SlotStore open(StorageDevice& device);

    std::uint32_t slot_count() const { return slot_count_; }
    Bytes slot_size() const { return slot_size_; }
    StorageDevice& device() { return *device_; }

    /**
     * The persistence sanitizer wrapping this store's device, or
     * nullptr when psan is off (detected at construction; see
     * docs/PSAN.md). Protocol sites use this to report publish/seal
     * ordering steps without paying anything in unsanitized builds.
     */
    PsanStorage* psan() const { return psan_; }

    /** Device offset of the delta-log region (0 when absent). */
    Bytes delta_offset() const { return delta_offset_; }
    /** Delta-log region capacity; 0 = device has no delta tier. */
    Bytes delta_bytes() const { return delta_bytes_; }

    /** Device offset of the first byte of @p slot. */
    Bytes slot_offset(std::uint32_t slot) const;

    /** Write @p len bytes into @p slot at @p offset (volatile). */
    StorageStatus write_slot(std::uint32_t slot, Bytes offset,
                             const void* src, Bytes len);

    /** Persist [offset, offset+len) of @p slot (no fence). */
    StorageStatus persist_slot_range(std::uint32_t slot, Bytes offset,
                                     Bytes len);

    /** Read @p len bytes of @p slot at @p offset. A failed read means
     *  the slot's media is unreadable — the caller decides between
     *  quarantine (recovery/scrub) and abort (protocol paths). */
    StorageStatus read_slot(std::uint32_t slot, Bytes offset, void* dst,
                            Bytes len) const;

    /**
     * Durably publish @p ptr as the latest checkpoint: writes the
     * alternating pointer record, persists it, and fences. The caller
     * must have already persisted (and fenced, on PMEM) the slot data.
     *
     * Thread-safe: concurrent commit winners are serialized, and a
     * publish that arrives after a higher-counter record is already
     * durable is dropped — its slot may have been recycled, so writing
     * it would point the record at data being overwritten. (A dropped
     * stale publish returns success: a newer record is durable.)
     *
     * On storage error nothing is considered published: last_counter
     * is not advanced, so the caller may retry this same publish.
     */
    StorageStatus publish_pointer(const CheckpointPointer& ptr);

    /**
     * Read back the newest valid pointer record, validating the
     * record checksum and, if @p validate_data, the data CRC against
     * the slot contents. Falls back to the older record when the
     * newer one is torn or its data does not verify.
     *
     * @return std::nullopt when no valid checkpoint exists.
     */
    std::optional<CheckpointPointer> recover_pointer(
        bool validate_data = true) const;

    /**
     * All syntactically valid pointer records, newest first, WITHOUT
     * reading the slot data. Callers that will read the data anyway
     * (recovery) validate the CRC themselves against the single read.
     * Records referencing a quarantined slot are skipped unless
     * @p include_quarantined — the scrubber passes true to learn the
     * descriptor (counter, length, CRC) the repair must restore.
     */
    std::vector<CheckpointPointer> candidate_pointers(
        bool include_quarantined = false) const;

    /**
     * The newest pointer THIS process durably published (nullopt
     * before the first successful publish). Unlike the advisory
     * in-memory CHECK_ADDR, this reflects only records whose
     * write+persist+fence completed — the signal the delta tier's
     * epoch GC gates on (docs/DELTA_LOG.md).
     */
    std::optional<CheckpointPointer> last_published() const;

    // ---- quarantine (latent-corruption containment) ----
    //
    // A slot whose data fails CRC or whose media is unreadable is
    // QUARANTINED: skipped by recovery, never handed out or recycled
    // by the commit protocol, until a repair write restores verified
    // bytes. The quarantine set is a bitmap persisted in the device
    // header (write+persist+fence), so it survives restart and every
    // SlotStore opened on the device agrees after reopen. Slots >= 64
    // cannot be quarantined (bitmap width); quarantine_slot reports
    // a permanent error for them instead of silently succeeding.

    /** Durably mark @p slot corrupt. Idempotent. Lifts the psan
     *  lost-update protection on its payload so a salvage write is
     *  legal. */
    StorageStatus quarantine_slot(std::uint32_t slot);

    /** Durably return @p slot to service. Call only after its content
     *  has been re-verified (repair_slot + CRC readback). */
    StorageStatus release_quarantine(std::uint32_t slot);

    bool is_quarantined(std::uint32_t slot) const;

    /** Quarantined slot indices, ascending. */
    std::vector<std::uint32_t> quarantined_slots() const;

    /**
     * Salvage write: replace @p slot's payload with @p len verified
     * bytes from @p src under the full persist contract
     * (write→persist→fence), reporting durability to psan. Does NOT
     * release the quarantine — the caller re-reads and CRC-checks the
     * slot first, then calls release_quarantine().
     */
    StorageStatus repair_slot(std::uint32_t slot, const void* src,
                              Bytes len);

    /**
     * Durably invalidate the pointer record written for @p counter
     * (deliberately-bad record checksum, write→persist→fence), iff the
     * record parity slot still holds exactly that counter — a record
     * already torn or overwritten by a newer publish is left alone.
     * Recovery salvage uses this to retire a stale newer record whose
     * quarantined slot is about to be rewritten with an older image,
     * so no surviving record can point at bytes it does not describe.
     */
    StorageStatus invalidate_record(std::uint64_t counter);

    /** Bytes of device capacity this layout requires. */
    static Bytes required_size(std::uint32_t slot_count, Bytes slot_size,
                               Bytes delta_log_bytes = 0);

  private:
    SlotStore(StorageDevice& device, std::uint32_t slot_count,
              Bytes slot_size, Bytes delta_offset, Bytes delta_bytes,
              std::uint64_t quarantine_bits, bool reset_quarantine);

    static Bytes record_offset(int index);

    // Shared by copies of this SlotStore (which alias the same device):
    // serializes pointer-record writers and remembers the newest
    // published counter so stale publishes can be dropped. Writers are
    // serialized by the `writing` turnstile, NOT by holding mu across
    // the record's write+persist+fence — mu is only held for state
    // transitions, so commit-path readers (last_published) never wait
    // behind a device fence (docs/STATIC_ANALYSIS.md,
    // blocking-under-lock).
    struct PublishState {
        Mutex mu;
        CondVar cv;
        /** A writer's record I/O is in flight (claimed under mu,
         *  performed outside it). */
        bool writing PCCHECK_GUARDED_BY(mu) = false;
        std::uint64_t last_counter PCCHECK_GUARDED_BY(mu) = 0;
        bool any PCCHECK_GUARDED_BY(mu) = false;
        /** Full pointer of the newest durable publish (valid iff any). */
        CheckpointPointer last_ptr PCCHECK_GUARDED_BY(mu);
    };

    // In-memory cache of the durable quarantine bitmap, so membership
    // tests don't hit the device. Shared by EVERY SlotStore on the
    // same device — copies and independent open()s alike, via a
    // process-wide registry keyed by device — so a quarantine taken
    // through one handle (e.g. RecoveryPlanner's internal open) is
    // immediately visible to a ConcurrentCommit/Scrubber built on a
    // handle opened earlier. format() resets the shared state along
    // with the on-device bitmap.
    // Like PublishState, bitmap writers serialize through the
    // `writing` turnstile and run the header write+persist+fence
    // outside mu, so is_quarantined (on the commit winner's path)
    // never blocks behind quarantine I/O.
    struct QuarantineState {
        mutable Mutex mu;
        CondVar cv;
        /** A writer's bitmap I/O is in flight (claimed under mu). */
        bool writing PCCHECK_GUARDED_BY(mu) = false;
        std::uint64_t bits PCCHECK_GUARDED_BY(mu) = 0;
    };

    /**
     * Process-wide registry lookup: the QuarantineState shared by all
     * stores on @p device, created from @p header_bits on first use.
     * With @p reset (the format path) the cached bits are forced to
     * @p header_bits even if other handles are live — the on-device
     * bitmap was just durably rewritten.
     */
    static std::shared_ptr<QuarantineState> quarantine_state_for(
        const StorageDevice* device, std::uint64_t header_bits,
        bool reset);

    /** Durably write @p bits into the header bitmap field. The caller
     *  must hold the quarantine writer turnstile (writing == true),
     *  NOT quarantine_->mu — the I/O runs outside the lock. */
    StorageStatus write_quarantine_bits(std::uint64_t bits);

    StorageDevice* device_;
    PsanStorage* psan_ = nullptr;
    std::uint32_t slot_count_;
    Bytes slot_size_;
    Bytes data_offset_;
    Bytes delta_offset_ = 0;
    Bytes delta_bytes_ = 0;
    std::shared_ptr<PublishState> publish_;
    std::shared_ptr<QuarantineState> quarantine_;
};

}  // namespace pccheck

#endif  // PCCHECK_CORE_SLOT_STORE_H_
