#ifndef PCCHECK_CORE_DISTRIBUTED_H_
#define PCCHECK_CORE_DISTRIBUTED_H_

/**
 * @file
 * Distributed checkpoint coordination (§3.1, §4.1): with one
 * orchestrator per node, all peers must agree on the latest globally
 * consistent checkpoint so that every node's persistent partition
 * corresponds to the same iteration.
 *
 * Protocol, as in the paper: after a successful local commit each peer
 * sends its checkpoint ID to rank 0 and waits; once rank 0 has IDs
 * from every peer it notifies them to continue, and each peer advances
 * its peer_check to the agreed value.
 *
 * Graceful degradation: with a non-zero timeout a rank that stops
 * hearing from its peers (peer process died, network partition) does
 * not hang — the round times out, the rank keeps its last consistent
 * id, flags itself degraded, and continues checkpointing locally.
 * Every message carries a round number so a late message from a
 * timed-out round can never be confused with the current round.
 */

#include <cstdint>
#include <map>
#include <vector>

#include "net/network.h"

namespace pccheck {

/** Rank-0 rendezvous advancing the globally consistent checkpoint. */
class DistributedCoordinator {
  public:
    /**
     * @param network fabric shared by all ranks (must outlive this)
     * @param rank this node's rank in [0, world)
     * @param world total participating nodes
     * @param timeout max modeled seconds to wait for any single peer
     *        message inside coordinate(); 0 = wait forever
     */
    DistributedCoordinator(SimNetwork& network, int rank, int world,
                           Seconds timeout = 0);

    /**
     * Announce the locally committed checkpoint @p checkpoint_id
     * (iteration number) and block until every rank has announced or
     * the round times out.
     *
     * @return the globally consistent checkpoint id — the minimum
     *         announced value, which all ranks are guaranteed to have
     *         persisted; on timeout, the previous consistent id
     *         (unchanged), with the rank marked degraded.
     */
    std::uint64_t coordinate(std::uint64_t checkpoint_id);

    /** Last globally consistent checkpoint id (peer_check). */
    std::uint64_t last_consistent() const { return peer_check_; }

    /** True once any coordination round has timed out on this rank. */
    bool degraded() const { return degraded_; }

    /** Number of coordination rounds that timed out on this rank. */
    std::uint64_t timeouts() const { return timeouts_; }

    int rank() const { return rank_; }
    int world() const { return world_; }

  private:
    void note_timeout();
    std::uint64_t coordinate_rank0(std::uint64_t checkpoint_id);
    std::uint64_t coordinate_peer(std::uint64_t checkpoint_id);

    SimNetwork* network_;
    int rank_;
    int world_;
    Seconds timeout_;
    std::uint64_t peer_check_ = 0;
    std::uint64_t round_ = 0;
    bool degraded_ = false;
    std::uint64_t timeouts_ = 0;
    /** Rank 0 only: announces received for rounds ahead of ours
     *  (survivors race ahead after a timed-out round). */
    std::map<std::uint64_t, std::vector<std::uint64_t>> pending_;
};

}  // namespace pccheck

#endif  // PCCHECK_CORE_DISTRIBUTED_H_
