#ifndef PCCHECK_CORE_DISTRIBUTED_H_
#define PCCHECK_CORE_DISTRIBUTED_H_

/**
 * @file
 * Distributed checkpoint coordination (§3.1, §4.1): with one
 * orchestrator per node, all peers must agree on the latest globally
 * consistent checkpoint so that every node's persistent partition
 * corresponds to the same iteration.
 *
 * Protocol, as in the paper: after a successful local commit each peer
 * sends its checkpoint ID to rank 0 and waits; once rank 0 has IDs
 * from every peer it notifies them to continue, and each peer advances
 * its peer_check to the agreed value.
 */

#include <cstdint>

#include "net/network.h"

namespace pccheck {

/** Rank-0 rendezvous advancing the globally consistent checkpoint. */
class DistributedCoordinator {
  public:
    /**
     * @param network fabric shared by all ranks (must outlive this)
     * @param rank this node's rank in [0, world)
     * @param world total participating nodes
     */
    DistributedCoordinator(SimNetwork& network, int rank, int world);

    /**
     * Announce the locally committed checkpoint @p checkpoint_id
     * (iteration number) and block until every rank has announced.
     *
     * @return the globally consistent checkpoint id — the minimum
     *         announced value, which all ranks are guaranteed to have
     *         persisted.
     */
    std::uint64_t coordinate(std::uint64_t checkpoint_id);

    /** Last globally consistent checkpoint id (peer_check). */
    std::uint64_t last_consistent() const { return peer_check_; }

    int rank() const { return rank_; }
    int world() const { return world_; }

  private:
    SimNetwork* network_;
    int rank_;
    int world_;
    std::uint64_t peer_check_ = 0;
};

}  // namespace pccheck

#endif  // PCCHECK_CORE_DISTRIBUTED_H_
