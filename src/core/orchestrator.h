#ifndef PCCHECK_CORE_ORCHESTRATOR_H_
#define PCCHECK_CORE_ORCHESTRATOR_H_

/**
 * @file
 * The PCcheck orchestrator (§3.1 "Life of a Checkpoint") — the main
 * public entry point of the library, implementing the Checkpointer
 * interface used by the training loop.
 *
 * Data path per checkpoint:
 *   ① training reaches a checkpoint iteration;
 *   ② a ticket (global counter + free slot from the lock-free queue)
 *     is taken — concurrently with up to N-1 other checkpoints;
 *   ③ the snapshot thread drives the GPU copy engines to stage the
 *     state into pinned DRAM chunk buffers;
 *   ④ the persist engine writes each staged chunk to its slot with p
 *     parallel writer threads; the last writer of the last chunk runs
 *     the Listing-1 commit (CAS on CHECK_ADDR + durable pointer).
 *
 * Training interaction: request_checkpoint() only registers the
 * request; the next before_update() blocks until the GPU→DRAM copy of
 * every registered snapshot has finished (the T→U stall of Fig. 6) —
 * never until persistence completes. Persist backpressure arises only
 * through free-slot (N) and free-chunk (M) exhaustion, which is the
 * throughput-memory tradeoff of §3.2.
 */

#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "concurrent/mpmc_queue.h"
#include "core/concurrent_commit.h"
#include "core/config.h"
#include "core/persist_engine.h"
#include "core/slot_store.h"
#include "delta/delta_log.h"
#include "delta/dirty_tracker.h"
#include "gpusim/gpu.h"
#include "psan/psan_storage.h"
#include "remote/replication.h"
#include "trainsim/checkpointer.h"
#include "trainsim/training_state.h"
#include "util/annotations.h"

namespace pccheck {

/** PCcheck's concurrent checkpointing orchestrator. */
class PCcheckCheckpointer final : public Checkpointer {
  public:
    /**
     * Format @p device for the configured N and attach to the
     * training state. All references must outlive the orchestrator.
     *
     * @param state training state to checkpoint (defines m)
     * @param device persistent device; must hold (N+1)·m plus metadata
     * @param config Table 2 knobs
     * @param clock time source for stall accounting
     */
    PCcheckCheckpointer(TrainingState& state, StorageDevice& device,
                        const PCcheckConfig& config,
                        const Clock& clock = MonotonicClock::instance());

    ~PCcheckCheckpointer() override;

    std::string name() const override { return "pccheck"; }
    void before_update(std::uint64_t iteration) override;
    void request_checkpoint(std::uint64_t iteration) override;

    /**
     * Incremental checkpoint tier (docs/DELTA_LOG.md): synchronously
     * seal one delta frame holding every chunk dirtied since the last
     * frame. Requires config.delta_log_bytes > 0 (no-op otherwise)
     * and a durable full checkpoint to base the chain on (requests
     * before the first publish are counted as skipped). Runs on the
     * caller's thread — WAL semantics: when this returns, the frame
     * is durable or the request was skipped, never half-appended.
     */
    void request_delta(std::uint64_t iteration) override;

    void finish() override;
    CheckpointerStats stats() const override;

    /** The commit protocol (exposed for tests and tools). */
    ConcurrentCommit& commit_protocol() { return *commit_; }
    SlotStore& slot_store() { return *store_; }
    /** Delta appender; nullptr when the tier is disabled. */
    DeltaLog* delta_log() { return delta_log_.get(); }
    /** Dirty tracker; nullptr when the tier is disabled. */
    DirtyTracker* dirty_tracker() { return tracker_.get(); }

    /**
     * Attach the peer-replication tier (docs/REPLICATION.md). Each
     * staged chunk then streams to the engine's peers concurrently
     * with the local persist, and the commit CAS waits for the
     * engine's write quorum (await_quorum) before publishing the
     * replicated watermark. Call before any checkpoint is requested;
     * the engine must outlive the orchestrator. nullptr detaches.
     * Not used on the direct_to_storage ablation path, which stages
     * nothing in DRAM for the network to read.
     */
    void attach_replication(ReplicationEngine* engine);

    /** DRAM actually allocated for staging buffers (Table 1 audit). */
    Bytes staging_bytes() const { return staging_.size(); }
    /** Device bytes the layout occupies, delta region included
     *  (Table 1 audit). */
    Bytes storage_bytes() const
    {
        return SlotStore::required_size(store_->slot_count(),
                                        store_->slot_size()) +
               store_->delta_bytes();
    }

  private:
    struct Request {
        std::uint64_t iteration = 0;
        Seconds request_time = 0;
        std::uint64_t trace_begin_ns = 0;  ///< lifecycle span anchor
        bool stop = false;
    };

    void snapshot_worker();
    void run_snapshot(const Request& request);
    void note_delta_skipped(std::uint64_t iteration, const char* reason);
    std::uint8_t* acquire_chunk_buffer();
    void release_chunk_buffer(std::uint8_t* buffer);
    void on_checkpoint_complete(std::uint64_t iteration,
                                Seconds request_time);
    void on_checkpoint_aborted(std::uint64_t iteration);

    TrainingState* state_;
    StorageDevice* device_;
    PCcheckConfig config_;
    const Clock* clock_;

    Bytes chunk_bytes_;        ///< effective chunk size (m if unpipelined)
    std::size_t chunk_count_;  ///< staging buffers available (c = M / b)
    Bytes region_offset_ = 0;  ///< shard start within the state (§3.1)
    Bytes region_bytes_ = 0;   ///< shard length (m)

    /** Sanitizer interposed over the caller's device when config.psan
     *  is set (docs/PSAN.md). Declared before store_/delta_log_ so it
     *  outlives everything holding a pointer into it. */
    std::unique_ptr<PsanStorage> psan_device_;
    std::unique_ptr<SlotStore> store_;
    std::unique_ptr<ConcurrentCommit> commit_;
    std::unique_ptr<PersistEngine> engine_;
    /** Optional peer-replication tier (not owned; may be null). */
    ReplicationEngine* replication_ = nullptr;

    /** Incremental tier (null unless config.delta_log_bytes > 0).
     *  request_delta runs on the training thread only; the tracker is
     *  internally synchronized against the snapshot worker. */
    std::unique_ptr<DirtyTracker> tracker_;
    std::unique_ptr<DeltaLog> delta_log_;
    /** Host staging for the dirty chunks of one frame. */
    std::vector<std::uint8_t> delta_scratch_;

    /** Staging arena + free-buffer queue (step ② of Fig. 5). */
    std::vector<std::uint8_t> staging_;
    std::unique_ptr<MpmcBoundedQueue<std::uint8_t*>> free_buffers_;

    /** Request queue feeding the snapshot worker. */
    mutable Mutex mu_;
    CondVar request_cv_;   ///< worker wakeups
    CondVar snapshot_cv_;  ///< before_update wakeups
    CondVar complete_cv_;  ///< finish() wakeups
    std::deque<Request> requests_ PCCHECK_GUARDED_BY(mu_);
    /** requested, GPU copy not done */
    std::size_t snapshots_pending_ PCCHECK_GUARDED_BY(mu_) = 0;
    std::uint64_t requested_ PCCHECK_GUARDED_BY(mu_) = 0;
    std::uint64_t completed_ PCCHECK_GUARDED_BY(mu_) = 0;
    /** Attempts abandoned on storage failure (slot recycled). */
    std::uint64_t aborted_ PCCHECK_GUARDED_BY(mu_) = 0;
    Seconds stall_time_ PCCHECK_GUARDED_BY(mu_) = 0;
    RunningStat latency_ PCCHECK_GUARDED_BY(mu_);
    std::uint64_t delta_frames_ PCCHECK_GUARDED_BY(mu_) = 0;
    std::uint64_t delta_bytes_ PCCHECK_GUARDED_BY(mu_) = 0;
    std::uint64_t delta_skipped_ PCCHECK_GUARDED_BY(mu_) = 0;

    std::thread worker_;
};

}  // namespace pccheck

#endif  // PCCHECK_CORE_ORCHESTRATOR_H_
