#ifndef PCCHECK_CORE_FREE_SLOT_QUEUE_H_
#define PCCHECK_CORE_FREE_SLOT_QUEUE_H_

/**
 * @file
 * Free-slot queue used by the concurrent checkpoint algorithm (§4.1:
 * "Queue is a lock-free queue based on [Morrison & Afek], holding
 * available slots for storing checkpoints").
 *
 * Three interchangeable implementations back the DESIGN.md decision-5
 * ablation: the Vyukov-style array queue (default), the Michael–Scott
 * linked queue, and a mutex-guarded deque (non-lock-free reference).
 */

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "concurrent/mpmc_queue.h"
#include "concurrent/ms_queue.h"
#include "util/annotations.h"

namespace pccheck {

/** Abstract MPMC queue of free slot indices. */
class FreeSlotQueue {
  public:
    virtual ~FreeSlotQueue() = default;
    virtual bool try_enqueue(std::uint32_t slot) = 0;
    virtual std::optional<std::uint32_t> try_dequeue() = 0;
    virtual std::string name() const = 0;
};

/** Which implementation to instantiate. */
enum class SlotQueueKind { kVyukov, kMichaelScott, kMutex };

/** Factory. @p capacity bounds the number of queued slots. */
std::unique_ptr<FreeSlotQueue> make_slot_queue(SlotQueueKind kind,
                                               std::size_t capacity);

/** Array-based lock-free queue (default; LCRQ-family). */
class VyukovSlotQueue final : public FreeSlotQueue {
  public:
    explicit VyukovSlotQueue(std::size_t capacity) : queue_(capacity) {}
    bool try_enqueue(std::uint32_t slot) override
    {
        return queue_.try_enqueue(slot);
    }
    std::optional<std::uint32_t> try_dequeue() override
    {
        return queue_.try_dequeue();
    }
    std::string name() const override { return "vyukov"; }

  private:
    MpmcBoundedQueue<std::uint32_t> queue_;
};

/** Linked lock-free queue (Michael–Scott with tagged indices). */
class MsSlotQueue final : public FreeSlotQueue {
  public:
    explicit MsSlotQueue(std::size_t capacity) : queue_(capacity) {}
    bool try_enqueue(std::uint32_t slot) override
    {
        return queue_.try_enqueue(slot);
    }
    std::optional<std::uint32_t> try_dequeue() override
    {
        return queue_.try_dequeue();
    }
    std::string name() const override { return "michael-scott"; }

  private:
    MsQueue<std::uint32_t> queue_;
};

/** Mutex-based reference implementation (ablation baseline). */
class MutexSlotQueue final : public FreeSlotQueue {
  public:
    explicit MutexSlotQueue(std::size_t capacity) : capacity_(capacity) {}
    bool try_enqueue(std::uint32_t slot) override
    {
        MutexLock lock(mu_);
        if (slots_.size() >= capacity_) {
            return false;
        }
        slots_.push_back(slot);
        return true;
    }
    std::optional<std::uint32_t> try_dequeue() override
    {
        MutexLock lock(mu_);
        if (slots_.empty()) {
            return std::nullopt;
        }
        const std::uint32_t slot = slots_.front();
        slots_.pop_front();
        return slot;
    }
    std::string name() const override { return "mutex"; }

  private:
    Mutex mu_;
    std::size_t capacity_;
    std::deque<std::uint32_t> slots_ PCCHECK_GUARDED_BY(mu_);
};

}  // namespace pccheck

#endif  // PCCHECK_CORE_FREE_SLOT_QUEUE_H_
