#include "core/distributed.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace pccheck {
namespace {

constexpr std::uint64_t kTagAnnounce = 0xC0FFEE01;
constexpr std::uint64_t kTagCommit = 0xC0FFEE02;

std::vector<std::uint8_t>
encode_u64(std::uint64_t value)
{
    std::vector<std::uint8_t> bytes(sizeof(value));
    std::memcpy(bytes.data(), &value, sizeof(value));
    return bytes;
}

std::uint64_t
decode_u64(const std::vector<std::uint8_t>& bytes)
{
    PCCHECK_CHECK(bytes.size() == sizeof(std::uint64_t));
    std::uint64_t value = 0;
    std::memcpy(&value, bytes.data(), sizeof(value));
    return value;
}

}  // namespace

DistributedCoordinator::DistributedCoordinator(SimNetwork& network, int rank,
                                               int world)
    : network_(&network), rank_(rank), world_(world)
{
    PCCHECK_CHECK(world >= 1);
    PCCHECK_CHECK(rank >= 0 && rank < world);
    PCCHECK_CHECK(world <= network.nodes());
}

std::uint64_t
DistributedCoordinator::coordinate(std::uint64_t checkpoint_id)
{
    if (world_ == 1) {
        peer_check_ = checkpoint_id;
        return checkpoint_id;
    }
    if (rank_ == 0) {
        // Gather announcements from every other rank; ours is local.
        std::uint64_t agreed = checkpoint_id;
        for (int received = 0; received + 1 < world_; ++received) {
            const NetMessage msg = network_->recv_msg(0);
            PCCHECK_CHECK_MSG(msg.tag == kTagAnnounce,
                              "unexpected tag " << msg.tag);
            agreed = std::min(agreed, decode_u64(msg.payload));
        }
        for (int peer = 1; peer < world_; ++peer) {
            network_->send_msg(0, peer, kTagCommit, encode_u64(agreed));
        }
        peer_check_ = agreed;
        return agreed;
    }
    network_->send_msg(rank_, 0, kTagAnnounce, encode_u64(checkpoint_id));
    const NetMessage msg = network_->recv_msg(rank_);
    PCCHECK_CHECK(msg.tag == kTagCommit);
    peer_check_ = decode_u64(msg.payload);
    return peer_check_;
}

}  // namespace pccheck
