#include "core/distributed.h"

#include <algorithm>
#include <cstring>

#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace pccheck {
namespace {

constexpr std::uint64_t kTagAnnounce = 0xC0FFEE01;
constexpr std::uint64_t kTagCommit = 0xC0FFEE02;

/** Payload: (round, checkpoint id), 16 bytes little-endian native. */
std::vector<std::uint8_t>
encode_pair(std::uint64_t round, std::uint64_t value)
{
    std::vector<std::uint8_t> bytes(2 * sizeof(std::uint64_t));
    std::memcpy(bytes.data(), &round, sizeof(round));
    std::memcpy(bytes.data() + sizeof(round), &value, sizeof(value));
    return bytes;
}

void
decode_pair(const std::vector<std::uint8_t>& bytes, std::uint64_t* round,
            std::uint64_t* value)
{
    PCCHECK_CHECK(bytes.size() == 2 * sizeof(std::uint64_t));
    std::memcpy(round, bytes.data(), sizeof(*round));
    std::memcpy(value, bytes.data() + sizeof(*round), sizeof(*value));
}

}  // namespace

DistributedCoordinator::DistributedCoordinator(SimNetwork& network, int rank,
                                               int world, Seconds timeout)
    : network_(&network), rank_(rank), world_(world), timeout_(timeout)
{
    PCCHECK_CHECK(world >= 1);
    PCCHECK_CHECK(rank >= 0 && rank < world);
    PCCHECK_CHECK(world <= network.nodes());
    PCCHECK_CHECK(timeout >= 0);
}

void
DistributedCoordinator::note_timeout()
{
    ++timeouts_;
    degraded_ = true;
    MetricsRegistry::global()
        .counter("pccheck.coordinate.timeouts")
        .add();
    LOG_WARN("pccheck: rank " << rank_ << " coordination round " << round_
                              << " timed out; continuing degraded with "
                                 "peer_check="
                              << peer_check_);
}

std::uint64_t
DistributedCoordinator::coordinate(std::uint64_t checkpoint_id)
{
    ++round_;
    if (world_ == 1) {
        peer_check_ = checkpoint_id;
        return checkpoint_id;
    }
    PCCHECK_TRACE_SPAN("coordinate", "rank", rank_, "round", round_);
    return rank_ == 0 ? coordinate_rank0(checkpoint_id)
                      : coordinate_peer(checkpoint_id);
}

std::uint64_t
DistributedCoordinator::coordinate_rank0(std::uint64_t checkpoint_id)
{
    // Gather announcements from every other rank; ours is local.
    std::uint64_t agreed = checkpoint_id;
    int received = 0;
    // Announces that arrived early: survivors of a timed-out round run
    // ahead and announce the next round while we were still draining
    // the previous one.
    if (const auto it = pending_.find(round_); it != pending_.end()) {
        for (const std::uint64_t value : it->second) {
            agreed = std::min(agreed, value);
            ++received;
        }
        pending_.erase(it);
    }
    bool timed_out = false;
    while (received + 1 < world_) {
        std::optional<NetMessage> msg;
        if (timeout_ > 0) {
            msg = network_->recv_msg_for(0, timeout_);
            if (!msg.has_value()) {
                timed_out = true;
                break;
            }
        } else {
            msg = network_->recv_msg(0);
        }
        PCCHECK_CHECK_MSG(msg->tag == kTagAnnounce,
                          "unexpected tag " << msg->tag);
        std::uint64_t round = 0;
        std::uint64_t value = 0;
        decode_pair(msg->payload, &round, &value);
        if (round < round_) {
            continue;  // announce for a round that already timed out
        }
        if (round > round_) {
            pending_[round].push_back(value);
            continue;
        }
        agreed = std::min(agreed, value);
        ++received;
    }
    if (timed_out) {
        // Unblock any peer that did announce this round, WITHOUT
        // advancing the consistent id — a silent peer may not have
        // persisted anything newer.
        for (int peer = 1; peer < world_; ++peer) {
            network_->send_msg(0, peer, kTagCommit,
                               encode_pair(round_, peer_check_));
        }
        note_timeout();
        return peer_check_;
    }
    for (int peer = 1; peer < world_; ++peer) {
        network_->send_msg(0, peer, kTagCommit,
                           encode_pair(round_, agreed));
    }
    peer_check_ = agreed;
    return agreed;
}

std::uint64_t
DistributedCoordinator::coordinate_peer(std::uint64_t checkpoint_id)
{
    network_->send_msg(rank_, 0, kTagAnnounce,
                       encode_pair(round_, checkpoint_id));
    for (;;) {
        std::optional<NetMessage> msg;
        if (timeout_ > 0) {
            msg = network_->recv_msg_for(rank_, timeout_);
            if (!msg.has_value()) {
                note_timeout();
                return peer_check_;
            }
        } else {
            msg = network_->recv_msg(rank_);
        }
        PCCHECK_CHECK(msg->tag == kTagCommit);
        std::uint64_t round = 0;
        std::uint64_t value = 0;
        decode_pair(msg->payload, &round, &value);
        if (round < round_) {
            continue;  // late commit for a round we already timed out
        }
        PCCHECK_CHECK_MSG(round == round_, "commit from future round "
                                               << round << " at round "
                                               << round_);
        peer_check_ = value;
        return peer_check_;
    }
}

}  // namespace pccheck
