#include "core/adaptive.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pccheck {

AdaptiveController::AdaptiveController(const Options& options,
                                       std::uint64_t initial_interval)
    : options_(options), interval_(initial_interval)
{
    PCCHECK_CHECK(options.max_overhead >= 1.0);
    PCCHECK_CHECK(options.concurrent >= 1);
    PCCHECK_CHECK(options.ewma_alpha > 0 && options.ewma_alpha <= 1.0);
    PCCHECK_CHECK(options.min_interval >= 1);
    PCCHECK_CHECK(options.max_interval >= options.min_interval);
    interval_ = std::clamp(interval_, options.min_interval,
                           options.max_interval);
}

void
AdaptiveController::observe_iteration(Seconds duration)
{
    if (duration <= 0) {
        return;
    }
    MutexLock lock(mu_);
    if (!t_seeded_) {
        t_ewma_ = duration;
        t_seeded_ = true;
    } else {
        t_ewma_ += options_.ewma_alpha * (duration - t_ewma_);
    }
    maybe_adapt_locked();
}

void
AdaptiveController::observe_checkpoint(Seconds tw)
{
    if (tw <= 0) {
        return;
    }
    MutexLock lock(mu_);
    if (!tw_seeded_) {
        tw_ewma_ = tw;
        tw_seeded_ = true;
    } else {
        tw_ewma_ += options_.ewma_alpha * (tw - tw_ewma_);
    }
    maybe_adapt_locked();
}

void
AdaptiveController::maybe_adapt_locked()
{
    if (!t_seeded_ || !tw_seeded_) {
        return;
    }
    // Paper eq. (3): f* = ceil(Tw / (N q t)).
    const double raw =
        tw_ewma_ / (static_cast<double>(options_.concurrent) *
                    options_.max_overhead * t_ewma_);
    const auto target = std::clamp<std::uint64_t>(
        static_cast<std::uint64_t>(std::ceil(std::max(raw, 1.0))),
        options_.min_interval, options_.max_interval);
    // Hysteresis: only move when materially different.
    const double ratio = static_cast<double>(target) /
                         static_cast<double>(interval_);
    if (ratio > 1.0 + options_.hysteresis ||
        ratio < 1.0 - options_.hysteresis) {
        interval_ = target;
        ++adaptations_;
    }
}

std::uint64_t
AdaptiveController::interval() const
{
    MutexLock lock(mu_);
    return interval_;
}

Seconds
AdaptiveController::iteration_estimate() const
{
    MutexLock lock(mu_);
    return t_ewma_;
}

Seconds
AdaptiveController::tw_estimate() const
{
    MutexLock lock(mu_);
    return tw_ewma_;
}

std::uint64_t
AdaptiveController::adaptations() const
{
    MutexLock lock(mu_);
    return adaptations_;
}

AdaptiveCheckpointer::AdaptiveCheckpointer(Checkpointer& inner,
                                           AdaptiveController& controller,
                                           const Clock& clock)
    : inner_(&inner), controller_(&controller), clock_(&clock)
{
}

void
AdaptiveCheckpointer::before_update(std::uint64_t iteration)
{
    inner_->before_update(iteration);
}

void
AdaptiveCheckpointer::request_checkpoint(std::uint64_t iteration)
{
    const Seconds now = clock_->now();
    if (last_request_time_ >= 0) {
        controller_->observe_iteration(now - last_request_time_);
    }
    last_request_time_ = now;

    // Harvest completed-checkpoint latencies from the inner system.
    const CheckpointerStats stats = inner_->stats();
    if (stats.completed > completed_seen_ &&
        stats.checkpoint_latency.count() > 0) {
        controller_->observe_checkpoint(stats.checkpoint_latency.mean());
        completed_seen_ = stats.completed;
    }

    if (iteration - last_checkpoint_iteration_ >=
        controller_->interval()) {
        inner_->request_checkpoint(iteration);
        last_checkpoint_iteration_ = iteration;
        ++taken_;
    }
}

void
AdaptiveCheckpointer::finish()
{
    inner_->finish();
    const CheckpointerStats stats = inner_->stats();
    if (stats.completed > completed_seen_ &&
        stats.checkpoint_latency.count() > 0) {
        controller_->observe_checkpoint(stats.checkpoint_latency.mean());
        completed_seen_ = stats.completed;
    }
}

CheckpointerStats
AdaptiveCheckpointer::stats() const
{
    return inner_->stats();
}

}  // namespace pccheck
