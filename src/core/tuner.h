#ifndef PCCHECK_CORE_TUNER_H_
#define PCCHECK_CORE_TUNER_H_

/**
 * @file
 * Configuration tuner (§3.4): given user constraints (DRAM budget M,
 * storage budget S, acceptable slowdown q) and workload parameters
 * (iteration time t, checkpoint size m), find the number of concurrent
 * checkpoints N* minimizing Tw/N and the minimum checkpoint interval
 *
 *     f* = ceil( Tw / (N* · q · t) )            (paper eq. 3)
 *
 * Tw is measured empirically: the tuner issues checkpoints against the
 * real device through the orchestrator, exactly like the paper's
 * profiling round, for each candidate N.
 */

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "storage/device.h"
#include "trainsim/training_state.h"
#include "util/clock.h"

namespace pccheck {

/** User constraints (Table 2 right column). */
struct TunerConstraints {
    Bytes dram_budget = 0;      ///< M; 0 = 2m default
    Bytes storage_budget = 0;   ///< S; bounds N <= S/m - 1
    double max_overhead = 1.05; ///< q >= 1
};

/** Per-candidate profiling measurement. */
struct TunerSample {
    int concurrent_checkpoints = 0;  ///< N probed
    Seconds tw = 0;                  ///< measured checkpoint time
    double tw_over_n = 0;            ///< the §3.4 objective
};

/** Tuner output. */
struct TunerResult {
    int concurrent_checkpoints = 1;       ///< N*
    std::uint64_t checkpoint_interval = 1; ///< f*
    Seconds tw = 0;                        ///< Tw at N*
    std::vector<TunerSample> samples;      ///< full profiling data
};

/** §3.4 closed form: minimum f for a given Tw, N, q, t. */
std::uint64_t min_checkpoint_interval(Seconds tw, int n, double q,
                                      Seconds t);

/** PCcheck's profiling-based configuration tool. */
class Tuner {
  public:
    /**
     * @param base orchestration knobs reused for every probe (p,
     *        chunking, queue kind, per-writer ceiling)
     */
    explicit Tuner(const PCcheckConfig& base) : base_(base) {}

    /**
     * Profile @p device with checkpoints of @p state issued every
     * @p iteration_time seconds, varying N in [1, S/m - 1], and return
     * the optimal configuration. The device is reformatted per probe.
     *
     * @param probes_per_n checkpoints issued per candidate N
     */
    TunerResult optimize(TrainingState& state, StorageDevice& device,
                         const TunerConstraints& constraints,
                         Seconds iteration_time, int probes_per_n = 4,
                         const Clock& clock = MonotonicClock::instance());

  private:
    PCcheckConfig base_;
};

}  // namespace pccheck

#endif  // PCCHECK_CORE_TUNER_H_
