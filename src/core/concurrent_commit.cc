#include "core/concurrent_commit.h"

#include "obs/stage.h"
#include "psan/psan_storage.h"
#include "util/check.h"
#include "util/metrics.h"

namespace pccheck {
namespace {

/** Backoff between free-slot polls, seconds (short; slots free in ms). */
constexpr Seconds kSlotBackoff = 20e-6;

}  // namespace

std::uint64_t
ConcurrentCommit::pack(std::uint64_t counter, std::uint32_t slot)
{
    PCCHECK_CHECK(counter < (1ULL << 48));
    return (counter << 16) | (slot & 0xFFFF);
}

std::uint64_t
ConcurrentCommit::counter_of(std::uint64_t packed)
{
    return packed >> 16;
}

std::uint32_t
ConcurrentCommit::slot_of(std::uint64_t packed)
{
    return static_cast<std::uint32_t>(packed & 0xFFFF);
}

ConcurrentCommit::ConcurrentCommit(SlotStore& store,
                                   SlotQueueKind queue_kind,
                                   const Clock& clock)
    : store_(&store), clock_(&clock),
      free_slots_(make_slot_queue(queue_kind, store.slot_count())),
      parked_(store.slot_count()), check_addr_(pack(0, kNoSlot)),
      meta_(store.slot_count())
{
    PCCHECK_CHECK(store.slot_count() < kNoSlot);
    // If the device already holds a checkpoint (reopen after crash),
    // adopt it as the current CHECK_ADDR and keep its slot reserved.
    const auto recovered = store.recover_pointer(/*validate_data=*/true);
    std::uint32_t reserved = kNoSlot;
    if (recovered.has_value()) {
        // pre-concurrency: constructor recovery path — no other thread
        // can observe CHECK_ADDR yet, so a plain store (not the CAS
        // the commit protocol mandates) is safe here and only here.
        // relaxed: same reason; handoff of `this` publishes the value.
        check_addr_.store(pack(recovered->counter, recovered->slot),
                          std::memory_order_relaxed);
        // relaxed: constructor, no concurrent access yet.
        g_counter_.store(recovered->counter, std::memory_order_relaxed);
        meta_[recovered->slot] = {recovered->data_len, recovered->iteration,
                                  recovered->data_crc};
        reserved = recovered->slot;
    }
    for (std::uint32_t slot = 0; slot < store.slot_count(); ++slot) {
        if (slot == reserved) {
            continue;
        }
        // Quarantined slots stay out of the pool (parked): handing one
        // out as scratch would overwrite the corrupt-but-repairable
        // payload the quarantine is preserving. restore_slot()
        // re-admits them once the scrubber has repaired and released
        // the quarantine.
        if (store.is_quarantined(slot)) {
            // relaxed: constructor, no concurrent access yet.
            parked_[slot].store(true, std::memory_order_relaxed);
            continue;
        }
        PCCHECK_CHECK(free_slots_->try_enqueue(slot));
    }
}

CheckpointTicket
ConcurrentCommit::begin()
{
    CheckpointTicket ticket;
    // Listing 1 line 3: sample CHECK_ADDR before taking the counter so
    // the later CAS attempt is legal (our counter is strictly larger
    // than the sampled one).
    ticket.last_check = check_addr_.load(std::memory_order_acquire);
    ticket.counter =
        g_counter_.fetch_add(1, std::memory_order_acq_rel) + 1;
    // Lines 8-11: wait for a free slot.
    static LatencyHistogram& wait_hist =
        MetricsRegistry::global().histogram("pccheck.stage.slot_wait");
    StageSpan span("commit.slot_wait", wait_hist, "counter",
                   ticket.counter);
    for (;;) {
        const auto slot = free_slots_->try_dequeue();
        if (slot.has_value()) {
            ticket.slot = *slot;
            return ticket;
        }
        clock_->sleep_for(kSlotBackoff);
    }
}

bool
ConcurrentCommit::try_begin(CheckpointTicket* ticket)
{
    const std::uint64_t last =
        check_addr_.load(std::memory_order_acquire);
    const auto slot = free_slots_->try_dequeue();
    if (!slot.has_value()) {
        return false;
    }
    ticket->last_check = last;
    ticket->counter =
        g_counter_.fetch_add(1, std::memory_order_acq_rel) + 1;
    ticket->slot = *slot;
    return true;
}

CommitResult
ConcurrentCommit::commit(const CheckpointTicket& ticket, Bytes data_len,
                         std::uint64_t iteration, std::uint32_t data_crc)
{
    static LatencyHistogram& commit_hist =
        MetricsRegistry::global().histogram("pccheck.stage.commit");
    StageSpan span("commit.cas", commit_hist, "counter",
                   ticket.counter, "slot", ticket.slot);
    // Side-table entry is owned exclusively by this ticket until the
    // slot is recycled; the CAS below publishes it.
    meta_[ticket.slot] = {data_len, iteration, data_crc};
    const std::uint64_t mine = pack(ticket.counter, ticket.slot);
    std::uint64_t expected = ticket.last_check;

    CommitResult result;
    for (;;) {
        if (check_addr_.compare_exchange_strong(
                expected, mine, std::memory_order_acq_rel)) {
            // Lines 22-25: winner — durably publish the new pointer
            // (BARRIER), then recycle the superseded slot. Publishing
            // before recycling is what keeps the latest durable record
            // pointing at intact data. Transient record-write failures
            // retry with deterministic backoff.
            const Backoff backoff(retry_, retry_seed_ ^ ticket.counter);
            const StorageStatus published = retry_storage_op(
                [this, &ticket, data_len, iteration, data_crc] {
                    return store_->publish_pointer(CheckpointPointer{
                        ticket.counter, ticket.slot, data_len, iteration,
                        data_crc});
                },
                backoff);
            const std::uint32_t old_slot = slot_of(expected);
            if (published.ok()) {
                if (old_slot != kNoSlot &&
                    store_->is_quarantined(old_slot)) {
                    // The scrubber quarantined the superseded slot
                    // while it was still the recovery target. It must
                    // not re-enter the pool — handing it out as
                    // scratch would let a fresh checkpoint publish
                    // into a slot recovery skips. It stays parked
                    // until the scrubber reclaims it (release +
                    // restore_slot).
                    parked_[old_slot].store(true,
                                            std::memory_order_release);
                    // The scrubber may have released the quarantine
                    // (and no-op'd its restore) between our check and
                    // the park — re-admit instead of leaking the slot.
                    if (!store_->is_quarantined(old_slot) &&
                        parked_[old_slot].exchange(
                            false, std::memory_order_acq_rel)) {
                        while (!free_slots_->try_enqueue(old_slot)) {
                            clock_->sleep_for(kSlotBackoff);
                        }
                        result.freed_slot = old_slot;
                    }
                } else if (old_slot != kNoSlot) {
                    // try_enqueue can report a transient "full" while a
                    // concurrent dequeuer sits between claiming a cell
                    // and releasing its sequence word (found by
                    // mc_check, docs/MODEL_CHECKING.md). The queue is
                    // never arithmetically full here — at most
                    // slot_count-1 slots are free when a superseded
                    // slot is recycled — so backing off until the
                    // dequeuer finishes always terminates.
                    while (!free_slots_->try_enqueue(old_slot)) {
                        clock_->sleep_for(kSlotBackoff);
                    }
                    result.freed_slot = old_slot;
                }
                result.published = true;
            } else {
                // The durable record still references old_slot, so it
                // must NOT be recycled — overwriting it would destroy
                // the only fully persisted checkpoint. Roll the
                // in-memory CHECK_ADDR back instead and recycle OUR
                // slot: an unpublished winner that kept slots pinned
                // would drain the free-slot pool under a dead record
                // store and park begin() forever (the node-loss sweep
                // hit exactly that). If a newer winner already CASed
                // past us the rollback fails and that winner owns our
                // slot — it frees it on its durable publish, or rolls
                // back to us and at most one slot stays parked until
                // storage heals.
                std::uint64_t still_mine = mine;
                if (check_addr_.compare_exchange_strong(
                        still_mine, expected,
                        std::memory_order_acq_rel)) {
                    while (!free_slots_->try_enqueue(ticket.slot)) {
                        clock_->sleep_for(kSlotBackoff);
                    }
                    result.freed_slot = ticket.slot;
                }
                // relaxed: monitoring counter, no ordering required.
                publish_failures_.fetch_add(1,
                                            std::memory_order_relaxed);
            }
            // relaxed: monitoring counter, no ordering required.
            wins_.fetch_add(1, std::memory_order_relaxed);
            result.won = true;
            return result;
        }
        // CAS failed; `expected` now holds the current CHECK_ADDR.
        if (counter_of(expected) < ticket.counter) {
            // Lines 26-28: the registered checkpoint is older than
            // ours — retry against it.
            continue;
        }
        // Lines 29-31: a more recent checkpoint is already registered
        // (and its publisher persists it); our data is superseded, so
        // recycle our own slot. Same transient-full retry as the
        // winner path above.
        while (!free_slots_->try_enqueue(ticket.slot)) {
            clock_->sleep_for(kSlotBackoff);
        }
        // relaxed: monitoring counter, no ordering required.
        losses_.fetch_add(1, std::memory_order_relaxed);
        result.freed_slot = ticket.slot;
        return result;
    }
}

void
ConcurrentCommit::abort(const CheckpointTicket& ticket)
{
    // Same transient-full retry as commit(); see the winner path.
    while (!free_slots_->try_enqueue(ticket.slot)) {
        clock_->sleep_for(kSlotBackoff);
    }
    // relaxed: monitoring counter, no ordering required.
    aborts_.fetch_add(1, std::memory_order_relaxed);
}

void
ConcurrentCommit::restore_slot(std::uint32_t slot)
{
    PCCHECK_CHECK(slot < store_->slot_count());
    PCCHECK_CHECK_MSG(!store_->is_quarantined(slot),
                      "restore_slot on a still-quarantined slot");
    // Only a slot this protocol parked may be re-admitted. A slot that
    // was quarantined while free (or while owned by an in-flight
    // ticket) was never withheld — enqueueing it here would put it in
    // the pool twice and let two commits scribble the same slot.
    if (!parked_[slot].exchange(false, std::memory_order_acq_rel)) {
        return;
    }
    // Same transient-full retry as commit(); see the winner path.
    while (!free_slots_->try_enqueue(slot)) {
        clock_->sleep_for(kSlotBackoff);
    }
}

void
ConcurrentCommit::note_replicated(std::uint64_t counter)
{
    if (PsanStorage* psan = store_->psan()) {
        // V1 early-ack: a watermark naming a counter newer than the
        // newest durable publish would promise replicas data the local
        // record never made durable.
        psan->on_watermark_advance(counter);
    }
    // Monotonic max: concurrent commits may report out of order.
    // relaxed: advisory watermark; the durable publish it describes
    // was already ordered by the commit path's own fences.
    std::uint64_t seen =
        replicated_watermark_.load(std::memory_order_relaxed);
    while (seen < counter) {
        // relaxed: same advisory monotonic-max loop as above.
        if (replicated_watermark_.compare_exchange_strong(
                seen, counter, std::memory_order_relaxed)) {
            break;
        }
    }
}

void
ConcurrentCommit::set_retry(const RetryPolicy& policy, std::uint64_t seed)
{
    retry_ = policy;
    retry_seed_ = seed;
}

std::uint64_t
ConcurrentCommit::latest_counter() const
{
    return counter_of(check_addr_.load(std::memory_order_acquire));
}

std::optional<CheckpointPointer>
ConcurrentCommit::latest_pointer() const
{
    const std::uint64_t packed =
        check_addr_.load(std::memory_order_acquire);
    const std::uint32_t slot = slot_of(packed);
    if (slot == kNoSlot) {
        return std::nullopt;
    }
    const SlotMeta& meta = meta_[slot];
    return CheckpointPointer{counter_of(packed), slot, meta.data_len,
                             meta.iteration, meta.data_crc};
}

}  // namespace pccheck
