#include "core/persist_engine.h"

#include <algorithm>
#include <vector>

#include "obs/stage.h"
#include "psan/psan.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/sync.h"
#include "util/tsa.h"

namespace pccheck {
namespace {

/** Range-level status aggregation: permanent beats transient beats ok. */
StorageStatus
merge_status(const StorageStatus& a, const StorageStatus& b)
{
    if (a.is_permanent()) {
        return a;
    }
    if (b.is_permanent()) {
        return b;
    }
    return a.ok() ? b : a;
}

}  // namespace

PersistEngine::PersistEngine(SlotStore& store,
                             const PersistEngineConfig& config,
                             const Clock& clock)
    : store_(&store), config_(config), clock_(&clock),
      pool_(std::make_unique<ThreadPool>(
          static_cast<std::size_t>(std::max(config.writer_threads, 1)),
          config.pin_writers))
{
}

Backoff
PersistEngine::stripe_backoff(std::uint32_t slot, Bytes offset) const
{
    // Per-stripe seed: the retry timeline of one stripe must not
    // depend on which other stripes failed first.
    const std::uint64_t seed =
        config_.retry_seed ^
        (static_cast<std::uint64_t>(slot) * 0x9E3779B97F4A7C15ULL) ^
        ((offset + 1) * 0xBF58476D1CE4E5B9ULL);
    return Backoff(config_.retry, seed);
}

PCCHECK_HOT_PATH StorageStatus
PersistEngine::write_stripe(std::uint32_t slot, Bytes offset,
                            const std::uint8_t* src, Bytes len,
                            bool is_pmem)
{
    static Counter& bytes_persisted =
        MetricsRegistry::global().counter("pccheck.persist.bytes");
    static LatencyHistogram& chunk_hist =
        MetricsRegistry::global().histogram(
            "pccheck.stage.persist_chunk");
    StageSpan span("persist.chunk", chunk_hist, "slot", slot, "len",
                   len);
    psan::ScopeLabel psan_label("persist_engine.stripe");
    Stopwatch watch(*clock_);
    // A transient error anywhere in the write→persist→fence sequence
    // retries the whole stripe: the write may not have reached the
    // medium, so persisting the old contents would be meaningless.
    const StorageStatus status = retry_storage_op(
        [this, slot, offset, src, len, is_pmem] {
            StorageStatus s = store_->write_slot(slot, offset, src, len);
            if (s.ok() && is_pmem) {
                // §4.1: each writer must persist and fence its own
                // data; the fence is internal to each CPU.
                s = store_->persist_slot_range(slot, offset, len);
                if (s.ok()) {
                    s = store_->device().fence();
                }
            }
            return s;
        },
        stripe_backoff(slot, offset));
    if (status.ok()) {
        bytes_persisted.add(len);
    }
    if (config_.per_writer_bytes_per_sec > 0) {
        const Seconds floor = static_cast<double>(len) /
                              config_.per_writer_bytes_per_sec;
        const Seconds elapsed = watch.elapsed();
        if (elapsed < floor) {
            clock_->sleep_for(floor - elapsed);
        }
    }
    return status;
}

PersistResult
PersistEngine::persist_range(std::uint32_t slot, Bytes offset,
                             const std::uint8_t* src, Bytes len,
                             int parallel_writers)
{
    PCCHECK_CHECK(parallel_writers >= 1);
    const bool is_pmem = needs_fence(store_->device().kind());
    PCCHECK_TRACE_SPAN("persist.range", "slot", slot, "len", len);
    Stopwatch watch(*clock_);

    const auto writers = static_cast<Bytes>(parallel_writers);
    const Bytes stripe = align_up((len + writers - 1) / writers, 64);
    std::size_t stripe_count = 0;
    for (Bytes start = 0; start < len; start += stripe) {
        ++stripe_count;
    }
    // Each stripe writes its own element; future.get() below
    // synchronizes the read back.
    std::vector<StorageStatus> statuses(stripe_count);
    std::vector<std::future<void>> futures;
    futures.reserve(stripe_count);
    std::size_t index = 0;
    for (Bytes start = 0; start < len; start += stripe) {
        const Bytes this_len = std::min(stripe, len - start);
        StorageStatus* out = &statuses[index++];
        futures.push_back(pool_->submit(
            [this, slot, offset, src, start, this_len, is_pmem, out] {
                *out = write_stripe(slot, offset + start, src + start,
                                    this_len, is_pmem);
            }));
    }
    PersistResult result;
    for (auto& future : futures) {
        future.get();
    }
    for (const StorageStatus& status : statuses) {
        result.status = merge_status(result.status, status);
    }
    if (!is_pmem && result.status.ok()) {
        // §4.1: on SSD the main thread issues a single msync covering
        // the checkpoint range.
        result.status = retry_storage_op(
            [this, slot, offset, len] {
                return store_->persist_slot_range(slot, offset, len);
            },
            stripe_backoff(slot, offset));
    }
    result.elapsed = watch.elapsed();
    return result;
}

void
PersistEngine::persist_range_async(std::uint32_t slot, Bytes offset,
                                   const std::uint8_t* src, Bytes len,
                                   int parallel_writers,
                                   std::function<void(StorageStatus)> done)
{
    PCCHECK_CHECK(parallel_writers >= 1);
    const bool is_pmem = needs_fence(store_->device().kind());

    const auto writers = static_cast<Bytes>(parallel_writers);
    const Bytes stripe = align_up((len + writers - 1) / writers, 64);
    std::size_t stripe_count = 0;
    for (Bytes start = 0; start < len; start += stripe) {
        ++stripe_count;
    }
    if (stripe_count == 0) {
        done(StorageStatus::success());
        return;
    }
    struct Shared {
        Atomic<std::size_t> remaining;
        std::function<void(StorageStatus)> done;
        Mutex mu;
        StorageStatus error PCCHECK_GUARDED_BY(mu);
    };
    auto shared = std::make_shared<Shared>();
    // relaxed: store precedes the stripe-task submissions that share
    // the counter; the pool's queue handoff publishes it.
    shared->remaining.store(stripe_count, std::memory_order_relaxed);
    shared->done = std::move(done);

    for (Bytes start = 0; start < len; start += stripe) {
        const Bytes this_len = std::min(stripe, len - start);
        pool_->submit([this, shared, slot, offset, src, start, this_len,
                       len, is_pmem] {
            const StorageStatus stripe_status = write_stripe(
                slot, offset + start, src + start, this_len, is_pmem);
            if (!stripe_status.ok()) {
                MutexLock lock(shared->mu);
                shared->error =
                    merge_status(shared->error, stripe_status);
            }
            if (shared->remaining.fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                StorageStatus range_status = StorageStatus::success();
                {
                    MutexLock lock(shared->mu);
                    range_status = shared->error;
                }
                if (!is_pmem && range_status.ok()) {
                    range_status = retry_storage_op(
                        [this, slot, offset, len] {
                            return store_->persist_slot_range(slot,
                                                              offset, len);
                        },
                        stripe_backoff(slot, offset));
                }
                shared->done(range_status);
            }
        });
    }
}

}  // namespace pccheck
