#include "core/persist_engine.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "obs/stage.h"
#include "util/check.h"
#include "util/metrics.h"

namespace pccheck {

PersistEngine::PersistEngine(SlotStore& store,
                             const PersistEngineConfig& config,
                             const Clock& clock)
    : store_(&store), config_(config), clock_(&clock),
      pool_(std::make_unique<ThreadPool>(
          static_cast<std::size_t>(std::max(config.writer_threads, 1)),
          config.pin_writers))
{
}

void
PersistEngine::write_stripe(std::uint32_t slot, Bytes offset,
                            const std::uint8_t* src, Bytes len,
                            bool is_pmem)
{
    static Counter& bytes_persisted =
        MetricsRegistry::global().counter("pccheck.persist.bytes");
    static LatencyHistogram& chunk_hist =
        MetricsRegistry::global().histogram(
            "pccheck.stage.persist_chunk");
    StageSpan span("persist.chunk", chunk_hist, "slot", slot, "len",
                   len);
    Stopwatch watch(*clock_);
    store_->write_slot(slot, offset, src, len);
    bytes_persisted.add(len);
    if (is_pmem) {
        // §4.1: each writer must persist and fence its own data; the
        // fence is internal to each CPU.
        store_->persist_slot_range(slot, offset, len);
        store_->device().fence();
    }
    if (config_.per_writer_bytes_per_sec > 0) {
        const Seconds floor = static_cast<double>(len) /
                              config_.per_writer_bytes_per_sec;
        const Seconds elapsed = watch.elapsed();
        if (elapsed < floor) {
            clock_->sleep_for(floor - elapsed);
        }
    }
}

Seconds
PersistEngine::persist_range(std::uint32_t slot, Bytes offset,
                             const std::uint8_t* src, Bytes len,
                             int parallel_writers)
{
    PCCHECK_CHECK(parallel_writers >= 1);
    const bool is_pmem = needs_fence(store_->device().kind());
    PCCHECK_TRACE_SPAN("persist.range", "slot", slot, "len", len);
    Stopwatch watch(*clock_);

    const auto writers = static_cast<Bytes>(parallel_writers);
    const Bytes stripe = align_up((len + writers - 1) / writers, 64);
    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<std::size_t>(parallel_writers));
    for (Bytes start = 0; start < len; start += stripe) {
        const Bytes this_len = std::min(stripe, len - start);
        futures.push_back(pool_->submit(
            [this, slot, offset, src, start, this_len, is_pmem] {
                write_stripe(slot, offset + start, src + start, this_len,
                             is_pmem);
            }));
    }
    for (auto& future : futures) {
        future.get();
    }
    if (!is_pmem) {
        // §4.1: on SSD the main thread issues a single msync covering
        // the checkpoint range.
        store_->persist_slot_range(slot, offset, len);
    }
    return watch.elapsed();
}

void
PersistEngine::persist_range_async(std::uint32_t slot, Bytes offset,
                                   const std::uint8_t* src, Bytes len,
                                   int parallel_writers,
                                   std::function<void()> done)
{
    PCCHECK_CHECK(parallel_writers >= 1);
    const bool is_pmem = needs_fence(store_->device().kind());

    const auto writers = static_cast<Bytes>(parallel_writers);
    const Bytes stripe = align_up((len + writers - 1) / writers, 64);
    std::size_t stripe_count = 0;
    for (Bytes start = 0; start < len; start += stripe) {
        ++stripe_count;
    }
    if (stripe_count == 0) {
        done();
        return;
    }
    struct Shared {
        std::atomic<std::size_t> remaining;
        std::function<void()> done;
    };
    auto shared = std::make_shared<Shared>();
    // relaxed: store precedes the stripe-task submissions that share
    // the counter; the pool's queue handoff publishes it.
    shared->remaining.store(stripe_count, std::memory_order_relaxed);
    shared->done = std::move(done);

    for (Bytes start = 0; start < len; start += stripe) {
        const Bytes this_len = std::min(stripe, len - start);
        pool_->submit([this, shared, slot, offset, src, start, this_len,
                       len, is_pmem] {
            write_stripe(slot, offset + start, src + start, this_len,
                         is_pmem);
            if (shared->remaining.fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                if (!is_pmem) {
                    store_->persist_slot_range(slot, offset, len);
                }
                shared->done();
            }
        });
    }
}

}  // namespace pccheck
