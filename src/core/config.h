#ifndef PCCHECK_CORE_CONFIG_H_
#define PCCHECK_CORE_CONFIG_H_

/**
 * @file
 * PCcheck configuration — the knobs of paper Table 2.
 */

#include <cstdint>
#include <string>

#include "core/free_slot_queue.h"
#include "faults/retry.h"
#include "psan/psan.h"
#include "util/bytes.h"

namespace pccheck {

/** Configuration parameters of Table 2 (plus modeling knobs). */
struct PCcheckConfig {
    /** N: maximum concurrent checkpoints; slot count on device = N+1. */
    int concurrent_checkpoints = 2;
    /** p: parallel writer threads persisting each checkpoint. */
    int writers_per_checkpoint = 3;
    /**
     * b: pipeline chunk size in bytes. 0 disables pipelining: the
     * whole checkpoint is staged before persisting starts (Fig. 6
     * mode); > 0 enables the chunked overlap of Fig. 7.
     */
    Bytes chunk_bytes = 0;
    /**
     * M: DRAM dedicated to staging buffers. 0 defaults to 2×m as in
     * the paper's evaluation setup (§5.2.1).
     */
    Bytes dram_bytes = 0;
    /** Free-slot queue implementation (DESIGN.md ablation 5). */
    SlotQueueKind queue_kind = SlotQueueKind::kVyukov;
    /** Use pinned host staging memory for GPU copies (§3.3). */
    bool pinned_memory = true;
    /** Per-writer-thread storage bandwidth ceiling; 0 = uncapped. */
    double per_writer_bytes_per_sec = 0;
    /**
     * GPUDirect-style mode: copy engines write straight into the
     * persistent device, skipping DRAM staging (§3.3). Kept as an
     * ablation — the staged path overlaps fast GPU→DRAM copies with
     * slow persists and wins overall (DESIGN.md decision 4).
     */
    bool direct_to_storage = false;
    /**
     * Shard region of the training state this orchestrator owns
     * (§3.1: with combined data and pipeline parallelism each stage's
     * checkpoint is partitioned among its data-parallel replicas).
     * region_bytes = 0 checkpoints the whole state.
     */
    Bytes region_offset = 0;
    Bytes region_bytes = 0;
    /** Pin writer threads to cores (artifact §A.2 optimization). */
    bool pin_writer_threads = false;
    /**
     * Checksum checkpoint data (CRC-32C) so recovery can detect slots
     * recycled under stale pointer records. Disable only for timing
     * benches on CPU-starved hosts — a data_crc of 0 in the pointer
     * record makes recovery skip the check.
     */
    bool compute_crc = true;
    /**
     * Delta-log region size for the incremental checkpoint tier
     * (docs/DELTA_LOG.md). 0 disables the tier: request_delta() is a
     * no-op and the device carries only the full-image slot layout.
     * When > 0 the device must additionally hold this many bytes, and
     * the orchestrator must own the whole state (no shard region).
     */
    Bytes delta_log_bytes = 0;
    /**
     * Dirty-tracking granularity: the update path marks, and each
     * delta frame carries, chunks of this size. Defaults to the
     * TrainingState marker stride so one sparse update dirties
     * exactly one chunk.
     */
    Bytes delta_chunk_bytes = 4096;
    /**
     * Transient-storage-error retry schedule (persist stripes and the
     * commit-time pointer publish). Defaults keep checkpoints alive
     * through sporadic EIO-class failures; a permanent error or
     * retry exhaustion aborts the attempt and recycles its slot.
     */
    RetryPolicy storage_retry;
    /** Seed for deterministic backoff jitter (fault experiments). */
    std::uint64_t retry_seed = 1;
    /**
     * Run under the persistence sanitizer (docs/PSAN.md): the
     * orchestrator interposes a PsanStorage decorator over the device,
     * checking the durability contract on every storage op. Defaults
     * to the PCCHECK_PSAN environment variable / CMake option so the
     * whole existing test corpus runs sanitized without edits.
     */
    bool psan = psan::psan_default_enabled();

    /** Validate ranges; throws FatalError on nonsense values. */
    void validate() const;

    /** One-line summary, e.g. "pccheck N=2 p=3 pipelined(4MiB)". */
    std::string to_string() const;
};

}  // namespace pccheck

#endif  // PCCHECK_CORE_CONFIG_H_
