#ifndef PCCHECK_CORE_CONCURRENT_COMMIT_H_
#define PCCHECK_CORE_CONCURRENT_COMMIT_H_

/**
 * @file
 * The concurrent checkpoint commit protocol — the C++ realization of
 * the paper's Listing 1.
 *
 * A checkpoint's life:
 *   1. begin(): sample the current CHECK_ADDR, take a ticket from the
 *      monotonically increasing global counter (atomic_add, line 5),
 *      and dequeue a free slot (lines 6-11, blocking while all N are
 *      in flight).
 *   2. The caller persists the checkpoint data into the slot (the
 *      persist threads of Listing 1, lines 12-15 — done by
 *      PersistEngine).
 *   3. commit(): CAS loop on CHECK_ADDR (lines 16-34). The winner
 *      durably publishes the new pointer record (BARRIER) and then
 *      recycles the superseded checkpoint's slot; a loser that
 *      observes a newer registered counter recycles its own slot.
 *
 * CHECK_ADDR is a single 64-bit word packing (counter, slot); the full
 * checkpoint descriptor lives in a per-slot side table written before
 * the CAS attempt. This keeps the hot path to one CAS and avoids
 * pointer-reclamation hazards while preserving the algorithm's
 * structure and guarantees:
 *
 *  - at least one fully persisted checkpoint always exists (the
 *    latest durable pointer record always references a slot that is
 *    not in the free queue);
 *  - old checkpoints never overwrite newer ones (CAS legality: a
 *    ticket only replaces a strictly smaller counter, guaranteed
 *    because CHECK_ADDR is sampled before the counter is taken);
 *  - with at most N concurrent writers the protocol is lock-free.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "core/free_slot_queue.h"
#include "core/slot_store.h"
#include "faults/retry.h"
#include "util/clock.h"
#include "util/sync.h"

namespace pccheck {

/** Ticket identifying one in-flight checkpoint. */
struct CheckpointTicket {
    std::uint64_t counter = 0;    ///< ordering ticket (global counter)
    std::uint32_t slot = 0;       ///< slot reserved for the data
    std::uint64_t last_check = 0; ///< packed CHECK_ADDR sampled at begin
};

/** Outcome of a commit() call. */
struct CommitResult {
    bool won = false;            ///< became the latest checkpoint
    /** Winner only: the new pointer record is durable. A winner with
     *  published == false could not persist the record (storage
     *  failure after retries); it rolls the in-memory CHECK_ADDR back
     *  and recycles its slot, so the previously durable checkpoint
     *  remains the recovery target and capacity is not lost. */
    bool published = false;
    std::uint32_t freed_slot = 0;
};

/** Listing-1 commit protocol over a SlotStore. */
class ConcurrentCommit {
  public:
    /**
     * @param store formatted slot arena (slot_count = N + 1)
     * @param queue_kind free-slot queue implementation (ablation)
     * @param clock used for the bounded backoff while awaiting a slot
     */
    explicit ConcurrentCommit(
        SlotStore& store,
        SlotQueueKind queue_kind = SlotQueueKind::kVyukov,
        const Clock& clock = MonotonicClock::instance());

    /**
     * Start a checkpoint: returns a ticket with a fresh counter and a
     * reserved slot. Blocks (with backoff) while all N slots are in
     * flight — this is the training stall of §3.2 when DRAM/storage
     * cannot keep up.
     */
    CheckpointTicket begin();

    /**
     * Non-blocking variant; returns false when no slot is free.
     * The ticket is only valid when true is returned.
     */
    bool try_begin(CheckpointTicket* ticket);

    /**
     * Publish the ticket's checkpoint after its data is durable.
     * Implements Listing 1 lines 16-34.
     *
     * @param data_len valid bytes written into the slot
     * @param iteration training iteration the data represents
     * @param data_crc CRC-32C of the slot data (recovery validation)
     */
    CommitResult commit(const CheckpointTicket& ticket, Bytes data_len,
                        std::uint64_t iteration, std::uint32_t data_crc);

    /**
     * Abort an in-flight ticket: returns the slot to the free queue
     * without publishing. This is the production error path — when the
     * persist engine reports a permanent storage failure (or exhausts
     * its transient retries) the orchestrator aborts the attempt so
     * the slot is recycled instead of leaking, and the previously
     * committed checkpoint remains the recovery target.
     */
    void abort(const CheckpointTicket& ticket);

    /**
     * Return a repaired slot to the free pool. Quarantined slots are
     * withheld from the pool (parked) at construction and when a
     * commit supersedes a quarantined CHECK_ADDR slot (a corrupt slot
     * must not be handed out as scratch while its quarantine marks the
     * payload as the last copy worth repairing); after the scrubber
     * repairs and releases one, this puts it back in service. The slot
     * must be released from quarantine first.
     *
     * Only slots this protocol actually parked are re-admitted: a
     * restore of a slot that is free or owned by an in-flight ticket
     * is a no-op, so a stray release/restore can never enqueue the
     * same slot twice (two commits writing one slot would let a
     * successful commit publish bytes another writer is clobbering).
     */
    void restore_slot(std::uint32_t slot);

    /** Retry schedule for the durable pointer-record publish inside
     *  commit(); jitter is derived from (seed, ticket counter). */
    void set_retry(const RetryPolicy& policy, std::uint64_t seed);

    /** In-memory view of the latest committed checkpoint counter. */
    std::uint64_t latest_counter() const;

    /**
     * In-memory view of the latest committed checkpoint descriptor;
     * std::nullopt before the first commit. Reads the side table
     * without synchronization, so call it from a quiescent point or
     * treat the value as advisory (monitoring / coordination).
     */
    std::optional<CheckpointPointer> latest_pointer() const;

    /**
     * Record that checkpoint @p counter is both durably published
     * locally and replica-quorum-acked — the replication tier's
     * durable-publish watermark. Monotonic max; called by the
     * orchestrator only after ReplicationEngine::await_quorum
     * succeeded and the winner's pointer record is durable, so the
     * watermark never names a counter an un-acked replica would have
     * to serve.
     */
    void note_replicated(std::uint64_t counter);

    /** Newest counter known durable + quorum-acked (0 before any). */
    std::uint64_t replicated_watermark() const
    {
        // relaxed: advisory watermark for recovery assertions and
        // monitoring; no ordering required.
        return replicated_watermark_.load(std::memory_order_relaxed);
    }

    /** Number of checkpoints that won commit so far. */
    std::uint64_t commits_won() const
    {
        // relaxed: monitoring counter, no ordering required.
        return wins_.load(std::memory_order_relaxed);
    }

    /** Number of commits superseded by a newer concurrent one. */
    std::uint64_t commits_superseded() const
    {
        // relaxed: monitoring counter, no ordering required.
        return losses_.load(std::memory_order_relaxed);
    }

    /** Number of tickets aborted without publishing. */
    std::uint64_t commits_aborted() const
    {
        // relaxed: monitoring counter, no ordering required.
        return aborts_.load(std::memory_order_relaxed);
    }

    /** Number of winner publishes that failed after retries. */
    std::uint64_t publish_failures() const
    {
        // relaxed: monitoring counter, no ordering required.
        return publish_failures_.load(std::memory_order_relaxed);
    }

    SlotStore& store() { return *store_; }

  private:
    struct SlotMeta {
        Bytes data_len = 0;
        std::uint64_t iteration = 0;
        std::uint32_t data_crc = 0;
    };

    static constexpr std::uint32_t kNoSlot = 0xFFFF;

    static std::uint64_t pack(std::uint64_t counter, std::uint32_t slot);
    static std::uint64_t counter_of(std::uint64_t packed);
    static std::uint32_t slot_of(std::uint64_t packed);

    SlotStore* store_;
    const Clock* clock_;
    std::unique_ptr<FreeSlotQueue> free_slots_;
    /** Slot i was withheld from the free pool for quarantine (true
     *  until restore_slot re-admits it). Guards against restoring a
     *  slot the pool never lost. */
    std::vector<Atomic<bool>> parked_;
    Atomic<std::uint64_t> g_counter_{0};
    Atomic<std::uint64_t> check_addr_;  ///< packed (counter, slot)
    std::vector<SlotMeta> meta_;        ///< side table, one per slot
    Atomic<std::uint64_t> wins_{0};
    Atomic<std::uint64_t> losses_{0};
    Atomic<std::uint64_t> aborts_{0};
    Atomic<std::uint64_t> publish_failures_{0};
    Atomic<std::uint64_t> replicated_watermark_{0};
    RetryPolicy retry_;
    std::uint64_t retry_seed_ = 1;
};

}  // namespace pccheck

#endif  // PCCHECK_CORE_CONCURRENT_COMMIT_H_
