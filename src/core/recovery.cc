#include "core/recovery.h"

#include "core/slot_store.h"
#include "psan/psan.h"
#include "util/check.h"
#include "util/crc32.h"

namespace pccheck {

std::optional<RecoveryResult>
recover_to_buffer(StorageDevice& device, std::vector<std::uint8_t>* out,
                  const Clock& clock)
{
    PCCHECK_CHECK(out != nullptr);
    Stopwatch watch(clock);
    // V5: everything recovery touches from here on must be on durable
    // media (or untouched pre-existing content) — reading a line only
    // the volatile domain holds would vanish in a real crash.
    psan::RecoveryScope psan_scope;
    psan::ScopeLabel psan_label("recovery.to_buffer");
    SlotStore store = SlotStore::open(device);
    // Newest-first over the valid pointer records; one slot read per
    // candidate, CRC-validated against that same read (no double read
    // on the common path).
    for (const CheckpointPointer& pointer : store.candidate_pointers()) {
        out->resize(pointer.data_len);
        if (!store.read_slot(pointer.slot, 0, out->data(), pointer.data_len)
                 .ok()) {
            continue;  // unreadable slot media; fall back
        }
        if (pointer.data_crc != 0 &&
            crc32c(out->data(), out->size()) != pointer.data_crc) {
            continue;  // slot recycled under a stale record; fall back
        }
        RecoveryResult result;
        result.iteration = pointer.iteration;
        result.counter = pointer.counter;
        result.data_len = pointer.data_len;
        result.load_time = watch.elapsed();
        result.data_crc = pointer.data_crc;
        return result;
    }
    return std::nullopt;
}

std::optional<RecoveryResult>
recover_latest(StorageDevice& device, std::vector<std::uint8_t>* out,
               const Clock& clock,
               const std::function<bool(const DeltaFrameInfo&)>& observer)
{
    PCCHECK_CHECK(out != nullptr);
    Stopwatch watch(clock);
    // V5: see recover_to_buffer.
    psan::RecoveryScope psan_scope;
    psan::ScopeLabel psan_label("recovery.latest");
    SlotStore store = SlotStore::open(device);
    for (const CheckpointPointer& pointer : store.candidate_pointers()) {
        out->resize(pointer.data_len);
        if (!store.read_slot(pointer.slot, 0, out->data(), pointer.data_len)
                 .ok()) {
            continue;  // unreadable slot media; fall back
        }
        if (pointer.data_crc != 0 &&
            crc32c(out->data(), out->size()) != pointer.data_crc) {
            continue;  // slot recycled under a stale record; fall back
        }
        RecoveryResult result;
        result.counter = pointer.counter;
        result.data_len = pointer.data_len;
        result.data_crc = pointer.data_crc;
        // Replay the frame chain based on this checkpoint. The replay
        // stops by itself at the first torn / out-of-order frame, so
        // a crash mid-append only costs the in-flight frame.
        const DeltaRegion region{store.delta_offset(),
                                 store.delta_bytes()};
        const DeltaReplayStats replay =
            delta_replay(device, region, pointer.counter,
                         pointer.iteration, out->data(), out->size(),
                         observer);
        result.iteration = replay.frames_applied > 0 ? replay.iteration
                                                     : pointer.iteration;
        result.delta_frames = replay.frames_applied;
        result.delta_seq = replay.last_seq;
        result.load_time = watch.elapsed();
        return result;
    }
    return std::nullopt;
}

#if !defined(PCCHECK_MC)

std::optional<RecoveryResult>
recover_into_state(StorageDevice& device, TrainingState& state, bool pinned,
                   const Clock& clock)
{
    Stopwatch watch(clock);
    std::vector<std::uint8_t> buffer;
    auto result = recover_to_buffer(device, &buffer, clock);
    if (!result.has_value()) {
        return std::nullopt;
    }
    PCCHECK_CHECK_MSG(buffer.size() <= state.size(),
                      "checkpoint larger than training state: "
                          << buffer.size() << " > " << state.size());
    // Validate the stamp before touching GPU memory: a checkpoint the
    // markers reject must never be restored.
    const auto stamped =
        TrainingState::verify_buffer(buffer.data(), buffer.size());
    if (!stamped.has_value()) {
        return std::nullopt;
    }
    PCCHECK_CHECK_MSG(*stamped == result->iteration,
                      "pointer iteration " << result->iteration
                                           << " != stamped " << *stamped);
    state.gpu().copy_to_device(state.device_ptr(), 0, buffer.data(),
                               buffer.size(), pinned);
    state.stamp(result->iteration);
    result->load_time = watch.elapsed();
    return result;
}

std::optional<RecoveryResult>
recover_latest_into_state(StorageDevice& device, TrainingState& state,
                          bool pinned, const Clock& clock)
{
    Stopwatch watch(clock);
    std::vector<std::uint8_t> buffer;
    auto result = recover_latest(device, &buffer, clock);
    if (!result.has_value()) {
        return std::nullopt;
    }
    PCCHECK_CHECK_MSG(buffer.size() <= state.size(),
                      "checkpoint larger than training state: "
                          << buffer.size() << " > " << state.size());
    // Sparse oracle: every marker must sit at its offset, and none may
    // exceed the recovered iteration — frames legitimately leave
    // untouched chunks at older iterations (and an empty frame
    // advances the iteration without touching any marker), but nothing
    // may be newer than what the manifest + sealed frames claim.
    const auto stamped =
        TrainingState::verify_buffer_sparse(buffer.data(), buffer.size());
    if (!stamped.has_value()) {
        return std::nullopt;
    }
    PCCHECK_CHECK_MSG(*stamped <= result->iteration,
                      "state stamped " << *stamped
                                       << " is newer than recovered "
                                       << result->iteration);
    state.restore(buffer.data(), buffer.size(), result->iteration, pinned);
    result->load_time = watch.elapsed();
    return result;
}

#endif  // !PCCHECK_MC

}  // namespace pccheck
