#include "core/config.h"

#include <sstream>

#include "util/check.h"

namespace pccheck {

void
PCcheckConfig::validate() const
{
    if (concurrent_checkpoints < 1) {
        fatal("PCcheckConfig: concurrent_checkpoints must be >= 1");
    }
    if (concurrent_checkpoints > 0xFFFE) {
        fatal("PCcheckConfig: concurrent_checkpoints too large");
    }
    if (writers_per_checkpoint < 1) {
        fatal("PCcheckConfig: writers_per_checkpoint must be >= 1");
    }
    if (per_writer_bytes_per_sec < 0) {
        fatal("PCcheckConfig: per_writer_bytes_per_sec must be >= 0");
    }
    if (delta_log_bytes > 0) {
        if (delta_chunk_bytes == 0) {
            fatal("PCcheckConfig: delta_chunk_bytes must be > 0");
        }
        if (region_offset != 0 || region_bytes != 0) {
            // Frame chunk offsets are absolute state offsets; sharded
            // orchestrators would need per-shard logs (ROADMAP).
            fatal("PCcheckConfig: delta tier requires the whole state "
                  "(no shard region)");
        }
    }
}

std::string
PCcheckConfig::to_string() const
{
    std::ostringstream oss;
    oss << "pccheck N=" << concurrent_checkpoints << " p="
        << writers_per_checkpoint;
    if (chunk_bytes > 0) {
        oss << " pipelined(" << format_bytes(chunk_bytes) << ")";
    } else {
        oss << " non-pipelined";
    }
    if (delta_log_bytes > 0) {
        oss << " delta(" << format_bytes(delta_log_bytes) << ")";
    }
    if (psan) {
        oss << " psan";
    }
    return oss.str();
}

}  // namespace pccheck
