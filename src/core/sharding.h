#ifndef PCCHECK_CORE_SHARDING_H_
#define PCCHECK_CORE_SHARDING_H_

/**
 * @file
 * Checkpoint sharding for combined data + pipeline parallelism
 * (§3.1): "the checkpoint state of each pipeline stage is partitioned
 * among the data parallel replicas of this stage, reducing the
 * overall checkpointing overhead."
 *
 * plan_shards() splits one stage's state into marker-aligned shard
 * ranges, one per data-parallel replica; each replica runs its own
 * PCcheck orchestrator with PCcheckConfig::region_* set to its range.
 * assemble_shards() reconstructs the stage state from the replicas'
 * devices after a failure, requiring all shards to carry the same
 * iteration (which the rank-0 coordination guarantees at every
 * globally consistent checkpoint).
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "storage/device.h"
#include "util/bytes.h"

namespace pccheck {

/** One replica's shard of a stage's checkpoint state. */
struct ShardRange {
    Bytes offset = 0;
    Bytes length = 0;
};

/**
 * Split @p stage_bytes into @p replicas contiguous shards, each
 * aligned to @p align (the training-state marker stride by default).
 * The last shard absorbs the remainder. Throws FatalError when the
 * stage is too small for the replica count.
 */
std::vector<ShardRange> plan_shards(Bytes stage_bytes, int replicas,
                                    Bytes align = 4096);

/** Result of reassembling a stage from its shard devices. */
struct AssembledStage {
    std::uint64_t iteration = 0;
    std::vector<std::uint8_t> data;  ///< the full stage state
};

/**
 * Recover every replica's shard from its device and reassemble the
 * stage. All shards must verify and agree on one iteration.
 *
 * @param devices one formatted device per replica, in plan order
 * @param plan the shard plan the replicas checkpointed with
 * @return the reassembled stage, or std::nullopt if any shard is
 *         missing/corrupt or iterations disagree
 */
std::optional<AssembledStage> assemble_shards(
    const std::vector<StorageDevice*>& devices,
    const std::vector<ShardRange>& plan);

}  // namespace pccheck

#endif  // PCCHECK_CORE_SHARDING_H_
