#ifndef PCCHECK_CORE_PERSIST_ENGINE_H_
#define PCCHECK_CORE_PERSIST_ENGINE_H_

/**
 * @file
 * Parallel persist engine: moves staged DRAM chunks into checkpoint
 * slots using multiple writer threads (§3.3 "using multiple threads to
 * persist each checkpoint").
 *
 * The engine stripes each range across p writer tasks on a shared
 * pool. Two real-hardware effects are modeled:
 *  - the device's aggregate bandwidth (enforced by the storage
 *    device's throttle, shared by all writers);
 *  - a per-writer-thread bandwidth ceiling (a single thread cannot
 *    saturate the device — the reason Fig. 13 shows 3 writers beating
 *    1 until the device saturates).
 *
 * Persistence protocol follows §4.1: on PMEM every writer persists and
 * fences its own stripes (the fence is per-CPU); on SSD the stripes
 * only write, and the calling thread issues one msync over the range.
 */

#include <cstdint>
#include <functional>
#include <memory>

#include "concurrent/thread_pool.h"
#include "core/slot_store.h"
#include "faults/retry.h"
#include "util/clock.h"

namespace pccheck {

/** Persist-engine tuning knobs. */
struct PersistEngineConfig {
    /** Writer-pool size; should be >= N * p for full concurrency. */
    int writer_threads = 8;
    /** Per-thread write bandwidth ceiling, bytes/sec; 0 = uncapped. */
    double per_writer_bytes_per_sec = 0;
    /** Pin writer threads to cores (artifact: "PCcheck uses thread
     *  pinning to specific cores for higher performance"). */
    bool pin_writers = false;
    /** Transient-error retry schedule for every stripe. */
    RetryPolicy retry;
    /** Seed for the deterministic backoff jitter; each stripe derives
     *  its own schedule from (retry_seed, slot, offset). */
    std::uint64_t retry_seed = 1;
};

/** Outcome of a synchronous persist_range call. */
struct [[nodiscard]] PersistResult {
    /** Success, or the aggregated stripe error (permanent wins over
     *  transient; transient means retries were exhausted). */
    StorageStatus status = StorageStatus::success();
    /** Modeled wall time of the persist, seconds. */
    Seconds elapsed = 0;
    bool ok() const { return status.ok(); }
};

/** Striped, multi-threaded write+persist executor over a SlotStore. */
class PersistEngine {
  public:
    /**
     * @param store destination slot arena (must outlive the engine)
     * @param config pool size and per-writer ceiling
     * @param clock pacing time source
     */
    PersistEngine(SlotStore& store, const PersistEngineConfig& config,
                  const Clock& clock = MonotonicClock::instance());

    /**
     * Durably write @p len bytes from @p src into @p slot at
     * @p offset, striped across @p parallel_writers tasks. Blocks
     * until the range is durable (including fences on PMEM) or every
     * stripe has exhausted its transient-error retries / hit a
     * permanent error — see PersistResult::status.
     */
    PersistResult persist_range(std::uint32_t slot, Bytes offset,
                                const std::uint8_t* src, Bytes len,
                                int parallel_writers);

    /**
     * Asynchronous variant used by the pipelined orchestrator: the
     * stripes are dispatched to the writer pool and the call returns
     * immediately. The stripe that finishes last makes the range
     * durable (msync on SSD) and then invokes @p done on its own
     * thread — §4.1: "the thread responsible for this batch will
     * execute Lines 16-34" — passing the aggregated range status.
     * @p src must stay valid until @p done runs.
     */
    void persist_range_async(std::uint32_t slot, Bytes offset,
                             const std::uint8_t* src, Bytes len,
                             int parallel_writers,
                             std::function<void(StorageStatus)> done);

    SlotStore& store() { return *store_; }
    const PersistEngineConfig& config() const { return config_; }

  private:
    StorageStatus write_stripe(std::uint32_t slot, Bytes offset,
                               const std::uint8_t* src, Bytes len,
                               bool is_pmem);
    Backoff stripe_backoff(std::uint32_t slot, Bytes offset) const;

    SlotStore* store_;
    PersistEngineConfig config_;
    const Clock* clock_;
    std::unique_ptr<ThreadPool> pool_;
};

}  // namespace pccheck

#endif  // PCCHECK_CORE_PERSIST_ENGINE_H_
