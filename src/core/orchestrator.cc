#include "core/orchestrator.h"

#include "core/recovery.h"

#include <algorithm>
#include <memory>

#include "obs/stage.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/sync.h"

namespace pccheck {
namespace {

/** Backoff while waiting for a free staging buffer. */
constexpr Seconds kBufferBackoff = 20e-6;

/** Cap on the shared writer pool size. */
constexpr int kMaxWriterThreads = 24;

}  // namespace

PCcheckCheckpointer::PCcheckCheckpointer(TrainingState& state,
                                         StorageDevice& device,
                                         const PCcheckConfig& config,
                                         const Clock& clock)
    : state_(&state), device_(&device), config_(config), clock_(&clock)
{
    config_.validate();
    if (config_.psan && dynamic_cast<PsanStorage*>(&device) == nullptr) {
        // Interpose the persistence sanitizer (docs/PSAN.md): every
        // storage op below this point — formatting, salvage, the
        // persist engine, the delta log, recovery — flows through the
        // shadow state machine. Devices already wrapped by the caller
        // are left alone.
        psan_device_ = std::make_unique<PsanStorage>(device);
        device_ = psan_device_.get();
    }
    region_offset_ = config_.region_offset;
    region_bytes_ = config_.region_bytes > 0 ? config_.region_bytes
                                             : state.size();
    if (region_offset_ + region_bytes_ > state.size()) {
        fatal("PCcheck: shard region exceeds the training state");
    }
    const Bytes m = region_bytes_;
    const Bytes dram = config_.dram_bytes > 0 ? config_.dram_bytes : 2 * m;
    if (dram < std::min<Bytes>(m, config_.chunk_bytes > 0
                                      ? config_.chunk_bytes
                                      : m)) {
        fatal("PCcheck: DRAM budget smaller than one staging chunk");
    }
    chunk_bytes_ = config_.chunk_bytes > 0 ? std::min(config_.chunk_bytes, m)
                                           : m;
    chunk_count_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(dram / chunk_bytes_));

    const auto slot_count =
        static_cast<std::uint32_t>(config_.concurrent_checkpoints + 1);
    // The delta region rides behind the slot arena; its expected size
    // is part of the geometry a reopen must match.
    const Bytes expected_delta =
        SlotStore::required_size(slot_count, m, config_.delta_log_bytes) -
        SlotStore::required_size(slot_count, m);
    // Durability across restarts (invariant I1): never wipe an
    // existing checkpoint. Reopen a compatible layout in place; when
    // the geometry changed (different N, m, or delta capacity),
    // salvage the latest valid checkpoint — delta frames replayed on
    // top (recover_latest) — reformat, and republish it before any
    // new checkpoint can start.
    bool opened = false;
    std::vector<std::uint8_t> salvaged;
    std::optional<RecoveryResult> salvage_info;
    try {
        SlotStore existing = SlotStore::open(*device_);
        if (existing.slot_count() == slot_count &&
            existing.slot_size() == m &&
            existing.delta_bytes() == expected_delta) {
            store_ = std::make_unique<SlotStore>(existing);
            opened = true;
        } else {
            salvage_info = recover_latest(*device_, &salvaged, clock);
        }
    } catch (const FatalError&) {
        // Unformatted device: fresh format below.
    }
    if (!opened) {
        psan::ScopeLabel psan_label("orchestrator.salvage");
        store_ = std::make_unique<SlotStore>(SlotStore::format(
            *device_, slot_count, m, config_.delta_log_bytes));
        if (salvage_info.has_value() && salvaged.size() <= m) {
            // Salvage runs before training starts; a device that fails
            // here cannot host checkpoints at all, so escalate.
            PCCHECK_MUST(store_->write_slot(0, 0, salvaged.data(),
                                            salvaged.size()));
            PCCHECK_MUST(
                store_->persist_slot_range(0, 0, salvaged.size()));
            PCCHECK_MUST(device_->fence());
            PCCHECK_MUST(store_->publish_pointer(CheckpointPointer{
                salvage_info->counter, 0, salvaged.size(),
                salvage_info->iteration,
                crc32c(salvaged.data(), salvaged.size())}));
        }
    }
    commit_ = std::make_unique<ConcurrentCommit>(*store_,
                                                 config_.queue_kind, clock);
    commit_->set_retry(config_.storage_retry, config_.retry_seed);

    PersistEngineConfig engine_config;
    engine_config.writer_threads =
        std::min(kMaxWriterThreads, config_.concurrent_checkpoints *
                                        config_.writers_per_checkpoint);
    engine_config.per_writer_bytes_per_sec =
        config_.per_writer_bytes_per_sec;
    engine_config.pin_writers = config_.pin_writer_threads;
    engine_config.retry = config_.storage_retry;
    engine_config.retry_seed = config_.retry_seed;
    engine_ = std::make_unique<PersistEngine>(*store_, engine_config,
                                              clock);

    if (store_->delta_bytes() > 0) {
        tracker_ = std::make_unique<DirtyTracker>(
            region_bytes_, config_.delta_chunk_bytes);
        delta_log_ = std::make_unique<DeltaLog>(
            *device_, DeltaRegion{store_->delta_offset(),
                                  store_->delta_bytes()});
        // From here every stamp/sparse_update feeds the tracker; the
        // destructor detaches it (the state outlives this object).
        state_->attach_dirty_tracker(tracker_.get());
    }

    staging_.resize(chunk_count_ * chunk_bytes_);
    free_buffers_ =
        std::make_unique<MpmcBoundedQueue<std::uint8_t*>>(chunk_count_);
    for (std::size_t i = 0; i < chunk_count_; ++i) {
        PCCHECK_CHECK(
            free_buffers_->try_enqueue(staging_.data() + i * chunk_bytes_));
    }

    worker_ = std::thread([this] { snapshot_worker(); });
}

PCcheckCheckpointer::~PCcheckCheckpointer()
{
    {
        MutexLock lock(mu_);
        Request stop_request;
        stop_request.stop = true;
        requests_.push_back(stop_request);
    }
    request_cv_.notify_all();
    worker_.join();
    // Drain async persists so pool tasks never outlive the staging
    // arena (members are destroyed in reverse declaration order).
    {
        MutexLock lock(mu_);
        while (completed_ + aborted_ != requested_) {
            complete_cv_.wait(mu_);
        }
    }
    // A completed checkpoint can still have replication in flight: a
    // met quorum returns await_quorum before slow peers drain, and
    // watermark advances are queued behind them. Those strand tasks
    // read this object's staging buffers and release into its
    // free-buffer queue, so they must finish before members die.
    if (replication_ != nullptr) {
        replication_->flush();
    }
    if (tracker_ != nullptr) {
        state_->attach_dirty_tracker(nullptr);
    }
}

void
PCcheckCheckpointer::attach_replication(ReplicationEngine* engine)
{
    replication_ = engine;
    if (engine == nullptr) {
        return;
    }
    if (PsanStorage* psan = store_->psan()) {
        // Route the engine's peer-side watermark advances through the
        // sanitizer's early-ack check (V1) without giving remote/ a
        // psan dependency.
        engine->set_watermark_guard([psan](std::uint64_t counter) {
            psan->on_watermark_advance(counter);
        });
    }
}

void
PCcheckCheckpointer::before_update(std::uint64_t iteration)
{
    {
        MutexLock lock(mu_);
        if (snapshots_pending_ == 0) {
            return;
        }
    }
    // The span (whose destructor observes a mutex-guarded histogram)
    // lives outside the lock: mu_ serializes the commit bookkeeping,
    // and tracing must never extend that critical section
    // (blocking-under-lock, docs/STATIC_ANALYSIS.md). The re-check
    // under the lock below handles snapshots that completed in the
    // window between the two acquisitions.
    static LatencyHistogram& stall_hist =
        MetricsRegistry::global().histogram(
            "pccheck.stage.update_stall");
    StageSpan span("train.update_stall", stall_hist, "iteration",
                   iteration);
    Stopwatch watch(*clock_);
    {
        MutexLock lock(mu_);
        while (snapshots_pending_ != 0) {
            snapshot_cv_.wait(mu_);
        }
        stall_time_ += watch.elapsed();
    }
}

void
PCcheckCheckpointer::request_checkpoint(std::uint64_t iteration)
{
    {
        MutexLock lock(mu_);
        ++requested_;
        ++snapshots_pending_;
        requests_.push_back(
            Request{iteration, clock_->now(), Tracer::now_ns(), false});
    }
    MetricsRegistry::global()
        .counter("pccheck.checkpoints.requested")
        .add();
    request_cv_.notify_all();
}

void
PCcheckCheckpointer::note_delta_skipped(std::uint64_t iteration,
                                        const char* reason)
{
    LOG_WARN("pccheck: skipped delta frame for iteration " << iteration
                                                           << ": "
                                                           << reason);
    {
        MutexLock lock(mu_);
        ++delta_skipped_;
    }
    MetricsRegistry::global().counter("pccheck.delta.skipped").add();
}

void
PCcheckCheckpointer::request_delta(std::uint64_t iteration)
{
    if (delta_log_ == nullptr) {
        return;  // tier disabled (config.delta_log_bytes == 0)
    }
    static LatencyHistogram& delta_hist =
        MetricsRegistry::global().histogram(
            "pccheck.stage.delta_append");
    StageSpan span("checkpoint.delta", delta_hist, "iteration",
                   iteration);

    // The chain must hang off a DURABLE full checkpoint. Prefer the
    // newest pointer this process published (its write+persist+fence
    // completed — the only safe epoch-GC gate; the in-memory
    // CHECK_ADDR can transiently lead durable state). On a freshly
    // reopened device, before anything publishes, adopt the pointer
    // recovery itself would select from media.
    std::optional<CheckpointPointer> base = store_->last_published();
    if (!base.has_value() && delta_log_->epoch_base() == 0) {
        base = store_->recover_pointer();
    }
    std::vector<std::uint32_t> chunks;
    if (base.has_value() &&
        base->counter != delta_log_->epoch_base()) {
        // A newer full checkpoint is durably published: this reset IS
        // the log GC (docs/DELTA_LOG.md), and the candidate set opened
        // at that checkpoint's begin() — every chunk dirtied after its
        // snapshot — seeds the new chain. An unknown counter (reopened
        // device) degrades to all chunks: the first frame is then a
        // full delta, which is restart-safe.
        chunks = tracker_->adopt_base(base->counter);
        delta_log_->reset_epoch(base->counter, base->iteration);
    } else if (delta_log_->epoch_base() != 0) {
        chunks = tracker_->collect_frame();
    } else {
        note_delta_skipped(iteration, "no durable full checkpoint");
        return;
    }

    std::vector<DeltaChunk> refs;
    refs.reserve(chunks.size());
    Bytes data_bytes = 0;
    for (const std::uint32_t c : chunks) {
        refs.push_back(DeltaChunk{tracker_->chunk_offset(c),
                                  tracker_->chunk_len(c)});
        data_bytes += tracker_->chunk_len(c);
    }
    const Bytes need = DeltaLog::frame_bytes(
        static_cast<std::uint32_t>(refs.size()), data_bytes);
    if (iteration <= delta_log_->last_iteration()) {
        // Direct-API misuse guard (the training loop never requests a
        // delta at or before the chain tip): keep the chunks dirty for
        // the next frame instead of corrupting monotonicity.
        tracker_->restore(chunks);
        note_delta_skipped(iteration, "iteration not past chain tip");
        return;
    }
    if (need > delta_log_->free_bytes()) {
        tracker_->restore(chunks);
        note_delta_skipped(iteration, "delta log full");
        return;
    }

    // Stage the dirty chunk bytes GPU→host, concatenated in ref order.
    delta_scratch_.resize(data_bytes);
    const DevPtr src = state_->device_ptr();
    Bytes off = 0;
    for (const DeltaChunk& ref : refs) {
        state_->gpu().copy_to_host(delta_scratch_.data() + off, src,
                                   region_offset_ + ref.offset, ref.len,
                                   config_.pinned_memory);
        off += ref.len;
    }

    const Backoff backoff(config_.storage_retry,
                          config_.retry_seed ^ (iteration * 2 + 1));
    const StorageStatus status = retry_storage_op(
        [this, iteration, &refs] {
            return delta_log_->append(iteration, refs,
                                      delta_scratch_.data());
        },
        backoff);
    if (!status.ok()) {
        // The frame never sealed (append leaves the head in place on
        // failure): re-mark the chunks so no update drops out of the
        // chain, and surface the skip.
        tracker_->restore(chunks);
        note_delta_skipped(iteration, "storage failure");
        return;
    }
    {
        MutexLock lock(mu_);
        ++delta_frames_;
        delta_bytes_ += data_bytes;
    }
    MetricsRegistry::global().counter("pccheck.delta.frames").add();
    MetricsRegistry::global().counter("pccheck.delta.bytes").add(
        data_bytes);
}

void
PCcheckCheckpointer::finish()
{
    MutexLock lock(mu_);
    while (completed_ + aborted_ != requested_) {
        complete_cv_.wait(mu_);
    }
}

CheckpointerStats
PCcheckCheckpointer::stats() const
{
    MutexLock lock(mu_);
    CheckpointerStats stats;
    stats.requested = requested_;
    stats.completed = completed_;
    stats.aborted = aborted_;
    stats.stall_time = stall_time_;
    stats.checkpoint_latency = latency_;
    stats.delta_frames = delta_frames_;
    stats.delta_bytes = delta_bytes_;
    stats.delta_skipped = delta_skipped_;
    return stats;
}

void
PCcheckCheckpointer::snapshot_worker()
{
    for (;;) {
        Request request;
        {
            MutexLock lock(mu_);
            while (requests_.empty()) {
                request_cv_.wait(mu_);
            }
            request = requests_.front();
            requests_.pop_front();
        }
        if (request.stop) {
            return;
        }
        run_snapshot(request);
    }
}

std::uint8_t*
PCcheckCheckpointer::acquire_chunk_buffer()
{
    static LatencyHistogram& wait_hist =
        MetricsRegistry::global().histogram(
            "pccheck.stage.buffer_wait");
    StageSpan span("snapshot.buffer_wait", wait_hist);
    for (;;) {
        const auto buffer = free_buffers_->try_dequeue();
        if (buffer.has_value()) {
            return *buffer;
        }
        clock_->sleep_for(kBufferBackoff);
    }
}

void
PCcheckCheckpointer::release_chunk_buffer(std::uint8_t* buffer)
{
    // try_enqueue can transiently report "full" while a concurrent
    // acquirer sits between claiming a cell and releasing its sequence
    // word (the same race concurrent_commit.cc documents for the
    // free-slot queue; the replication tier's second releaser thread
    // makes it easy to hit). The queue is never arithmetically full —
    // only chunk_count_ buffers exist — so backing off until the
    // dequeuer finishes always terminates.
    while (!free_buffers_->try_enqueue(buffer)) {
        clock_->sleep_for(kBufferBackoff);
    }
}

void
PCcheckCheckpointer::run_snapshot(const Request& request)
{
    // ② Listing 1 lines 3-11: sample CHECK_ADDR, take a counter,
    // reserve a slot. Blocks while N checkpoints are in flight, which
    // stalls training through before_update — the §3.2 backpressure.
    const CheckpointTicket ticket = commit_->begin();
    if (tracker_ != nullptr) {
        // Every chunk dirtied from here on is NOT captured by this
        // snapshot: open a candidate set so that, should the delta
        // tier later re-base onto this checkpoint, exactly those
        // chunks make up the first frame (docs/DELTA_LOG.md).
        tracker_->begin_candidate(ticket.counter);
    }
    const Bytes len = region_bytes_;
    const DevPtr src = state_->device_ptr();
    const std::uint64_t iteration = state_->iteration();

    struct Inflight {
        PCcheckCheckpointer* self;
        CheckpointTicket ticket;
        Bytes len;
        std::uint64_t iteration;
        Seconds request_time;
        std::uint64_t trace_begin_ns;
        std::uint32_t crc = 0;  ///< final value set before last decrement
        Atomic<std::size_t> remaining;
        /** Any chunk hit a non-retryable storage failure. */
        Atomic<bool> failed{false};
        /** Peer-replication state; null when the tier is detached. */
        ReplicationEngine::Handle replication;
    };
    const std::size_t chunks =
        static_cast<std::size_t>((len + chunk_bytes_ - 1) / chunk_bytes_);
    auto inflight = std::make_shared<Inflight>();
    inflight->self = this;
    inflight->ticket = ticket;
    inflight->len = len;
    inflight->iteration = iteration;
    inflight->request_time = request.request_time;
    inflight->trace_begin_ns = request.trace_begin_ns;
    // +1: the snapshot loop holds one reference until the CRC is final,
    // so commit can never run with a partial CRC.
    // relaxed: store precedes the task submissions that share the
    // counter; the pool's queue handoff publishes it.
    inflight->remaining.store(chunks + 1, std::memory_order_relaxed);
    if (replication_ != nullptr && replication_->config().enabled() &&
        !config_.direct_to_storage) {
        inflight->replication =
            replication_->begin(ticket.counter, iteration, len);
    }

    auto maybe_commit = [](const std::shared_ptr<Inflight>& shared) {
        if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
            // relaxed: the acq_rel fetch_sub above orders this load
            // after every chunk's failure store.
            if (shared->failed.load(std::memory_order_relaxed)) {
                // A chunk could not be made durable even after retries:
                // the slot holds partial data, so publishing would
                // violate the paper's invariant. Abort the attempt —
                // the slot returns to the free queue and the previous
                // checkpoint remains the recovery target.
                shared->self->commit_->abort(shared->ticket);
                shared->self->on_checkpoint_aborted(shared->iteration);
                return;
            }
            // Quorum gate BEFORE the CHECK_ADDR CAS: the commit never
            // depends on an un-acked replica, and a quorum miss still
            // commits locally (degraded mode — the counter ticks
            // inside await_quorum). Bounded: every replication
            // transfer carries an ack_timeout deadline.
            bool quorum_ok = true;
            if (shared->replication != nullptr) {
                quorum_ok = shared->self->replication_->await_quorum(
                    shared->replication);
            }
            // §4.1: the thread finishing the last chunk executes the
            // commit protocol (Listing 1 lines 16-34).
            const CommitResult commit_result =
                shared->self->commit_->commit(shared->ticket, shared->len,
                                              shared->iteration,
                                              shared->crc);
            if (shared->replication != nullptr && quorum_ok &&
                commit_result.won && commit_result.published) {
                // Ack recorded (await_quorum) + pointer record durable:
                // only now may the replicated watermark advance, here
                // and on every acked peer.
                shared->self->commit_->note_replicated(
                    shared->ticket.counter);
                shared->self->replication_->advance_watermark(
                    shared->replication);
            }
            shared->self->on_checkpoint_complete(shared->iteration,
                                                 shared->request_time);
            if (Tracer::global().enabled()) {
                // Whole request→durable lifecycle; spans threads, so it
                // is recorded manually on the completing thread.
                const TraceArg args[2] = {
                    {"iteration", shared->iteration},
                    {"slot", shared->ticket.slot}};
                Tracer::global().record("checkpoint.lifecycle",
                                        shared->trace_begin_ns,
                                        Tracer::now_ns(), args, 2);
            }
        }
    };

    if (config_.direct_to_storage) {
        // §3.3 ablation: GPUDirect-style path. The copy engine writes
        // each chunk straight into the slot; snapshotting and
        // persisting cannot overlap, so the whole transfer sits on
        // the snapshot critical path.
        std::uint32_t crc = 0;
        {
            static LatencyHistogram& snap_hist =
                MetricsRegistry::global().histogram(
                    "pccheck.stage.snapshot");
            StageSpan snap_span("checkpoint.snapshot", snap_hist,
                                "iteration", iteration, "slot",
                                ticket.slot);
            const Backoff backoff(config_.storage_retry,
                                  config_.retry_seed ^ ticket.counter);
            for (Bytes offset = 0; offset < len; offset += chunk_bytes_) {
                const Bytes this_len =
                    std::min(chunk_bytes_, len - offset);
                const StorageStatus status = retry_storage_op(
                    [this, &ticket, src, offset, this_len] {
                        StorageStatus s =
                            state_->gpu().direct_copy_to_storage(
                                *device_,
                                store_->slot_offset(ticket.slot) + offset,
                                src, region_offset_ + offset, this_len);
                        if (s.ok()) {
                            s = store_->persist_slot_range(
                                ticket.slot, offset, this_len);
                        }
                        return s;
                    },
                    backoff);
                if (!status.ok()) {
                    // relaxed: published to the committing thread by
                    // the acq_rel reference-count decrement.
                    inflight->failed.store(true,
                                           std::memory_order_relaxed);
                    break;
                }
                if (config_.compute_crc) {
                    crc = crc32c(state_->gpu().device_data(
                                     src, region_offset_ + offset),
                                 this_len, crc);
                }
            }
            // relaxed: same thread that stored it above.
            if (!inflight->failed.load(std::memory_order_relaxed) &&
                !device_->fence().ok()) {
                // relaxed: published by the acq_rel decrement below.
                inflight->failed.store(true, std::memory_order_relaxed);
            }
        }
        {
            MutexLock lock(mu_);
            PCCHECK_CHECK(snapshots_pending_ > 0);
            --snapshots_pending_;
        }
        snapshot_cv_.notify_all();
        inflight->crc = crc;
        // Consume the chunk references and the CRC guard: commit now.
        inflight->remaining.store(1, std::memory_order_release);
        maybe_commit(inflight);
        return;
    }

    // With replication attached the staged bytes have two consumers —
    // the local persist engine and the per-peer network fan-out — so
    // the buffer returns to the pool only when the last of the two
    // parties releases its hold.
    struct ChunkHold {
        PCcheckCheckpointer* self;
        std::uint8_t* buffer;
        Atomic<int> parties{0};
    };
    const auto release_hold = [](const std::shared_ptr<ChunkHold>& hold) {
        if (hold->parties.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            hold->self->release_chunk_buffer(hold->buffer);
        }
    };

    std::uint32_t crc = 0;
    {
        static LatencyHistogram& snap_hist =
            MetricsRegistry::global().histogram(
                "pccheck.stage.snapshot");
        StageSpan snap_span("checkpoint.snapshot", snap_hist,
                            "iteration", iteration, "slot", ticket.slot);
        for (Bytes offset = 0; offset < len; offset += chunk_bytes_) {
            const Bytes this_len = std::min(chunk_bytes_, len - offset);
            // ③ stage the chunk into pinned DRAM via the GPU copy
            // engine.
            std::uint8_t* buffer = acquire_chunk_buffer();
            state_->gpu().copy_to_host(buffer, src,
                                       region_offset_ + offset, this_len,
                                       config_.pinned_memory);
            if (config_.compute_crc) {
                crc = crc32c(buffer, this_len, crc);
            }
            auto hold = std::make_shared<ChunkHold>();
            hold->self = this;
            hold->buffer = buffer;
            const int parties =
                inflight->replication != nullptr ? 2 : 1;
            // relaxed: store precedes the submissions that share the
            // counter; the queue handoffs publish it.
            hold->parties.store(parties, std::memory_order_relaxed);
            // ④ hand the chunk to the persist engine; the buffer
            // returns to the pool as soon as this chunk is durable
            // (and, when replicating, on the wire), letting the next
            // snapshot overwrite already-persisted chunks (§3.1).
            engine_->persist_range_async(
                ticket.slot, offset, buffer, this_len,
                config_.writers_per_checkpoint,
                [inflight, hold, release_hold,
                 maybe_commit](StorageStatus status) {
                    if (!status.ok()) {
                        // relaxed: published to the committing thread
                        // by the acq_rel reference-count decrement.
                        inflight->failed.store(
                            true, std::memory_order_relaxed);
                    }
                    release_hold(hold);
                    maybe_commit(inflight);
                });
            if (inflight->replication != nullptr) {
                // Pipelined per-chunk replication: the same staged
                // bytes stream to every peer concurrently with the
                // local persist of this chunk.
                replication_->send_chunk(
                    inflight->replication, offset, buffer, this_len,
                    [hold, release_hold] { release_hold(hold); });
            }
        }
    }

    // GPU→DRAM copy finished: the training loop may mutate weights.
    {
        MutexLock lock(mu_);
        PCCHECK_CHECK(snapshots_pending_ > 0);
        --snapshots_pending_;
    }
    snapshot_cv_.notify_all();

    if (inflight->replication != nullptr) {
        // Every chunk is on its strand: deliver the final CRC so each
        // peer can validate and ack. Must precede the CRC-guard drop —
        // await_quorum in the commit path relies on the seal being
        // queued behind the last chunk.
        replication_->seal(inflight->replication, crc);
    }
    inflight->crc = crc;
    maybe_commit(inflight);  // drop the CRC-guard reference
}

void
PCcheckCheckpointer::on_checkpoint_complete(std::uint64_t iteration,
                                            Seconds request_time)
{
    (void)iteration;
    static LatencyHistogram& latency_hist =
        MetricsRegistry::global().histogram(
            "pccheck.stage.checkpoint_latency");
    static Gauge& latency_gauge =
        MetricsRegistry::global().gauge("pccheck.checkpoint.latency_s");
    const Seconds latency = clock_->now() - request_time;
    {
        MutexLock lock(mu_);
        ++completed_;
        latency_.add(latency);
        // Notify under the lock: the destructor destroys this cv as
        // soon as its predicate holds, so an unlocked broadcast could
        // still be executing on a pool thread when the cv dies.
        complete_cv_.notify_all();
    }
    // Metrics outside mu_: the histogram has its own mutex and the
    // gauge lookup walks the registry map — neither belongs inside
    // this object's critical section (blocking-under-lock).
    latency_hist.observe(latency);
    latency_gauge.set(latency);
    MetricsRegistry::global()
        .counter("pccheck.checkpoints.completed")
        .add();
}

void
PCcheckCheckpointer::on_checkpoint_aborted(std::uint64_t iteration)
{
    LOG_WARN("pccheck: aborted checkpoint attempt for iteration "
             << iteration << " after storage failure");
    {
        MutexLock lock(mu_);
        ++aborted_;
        // Notify under the lock: see on_checkpoint_complete.
        complete_cv_.notify_all();
    }
    MetricsRegistry::global()
        .counter("pccheck.checkpoints.aborted")
        .add();
}

}  // namespace pccheck
