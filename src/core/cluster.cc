#include "core/cluster.h"

#include <algorithm>
#include <thread>

#include "util/check.h"

namespace pccheck {

PipelineCluster::PipelineCluster(const ClusterConfig& config,
                                 const Clock& clock)
    : config_(config), clock_(&clock)
{
    PCCHECK_CHECK(config.nodes >= 1);
    NetworkConfig net = config.network;
    net.nodes = std::max(net.nodes, config.nodes);
    network_ = std::make_unique<SimNetwork>(net, clock);
    gpus_.reserve(static_cast<std::size_t>(config.nodes));
    states_.reserve(static_cast<std::size_t>(config.nodes));
    for (int rank = 0; rank < config.nodes; ++rank) {
        GpuConfig gpu_config = config.gpu;
        gpu_config.memory_bytes = std::max(
            gpu_config.memory_bytes, config.partition_bytes + kMiB);
        gpus_.push_back(std::make_unique<SimGpu>(gpu_config, clock));
        states_.push_back(std::make_unique<TrainingState>(
            *gpus_.back(), config.partition_bytes));
    }
}

PipelineCluster::~PipelineCluster() = default;

ClusterResult
PipelineCluster::run(std::uint64_t iterations, std::uint64_t interval,
                     const Factory& factory)
{
    PCCHECK_CHECK(iterations >= 1);
    PCCHECK_CHECK_MSG(config_.kill_rank < 0 || !config_.coordinate ||
                          config_.coordinate_timeout > 0,
                      "killing a rank with blocking coordination would "
                      "hang the survivors; set coordinate_timeout");
    const int nodes = config_.nodes;
    const Seconds train_time =
        config_.stage_time * (1.0 - config_.update_fraction);
    const Seconds update_time =
        config_.stage_time * config_.update_fraction;

    ClusterResult result;
    result.node_stats.resize(static_cast<std::size_t>(nodes));
    std::vector<std::uint64_t> consistent(
        static_cast<std::size_t>(nodes), 0);
    std::vector<std::uint64_t> timeouts(static_cast<std::size_t>(nodes),
                                        0);
    std::vector<char> degraded(static_cast<std::size_t>(nodes), 0);

    Stopwatch watch(*clock_);
    std::vector<std::thread> threads;
    for (int rank = 0; rank < nodes; ++rank) {
        threads.emplace_back([&, rank] {
            const auto index = static_cast<std::size_t>(rank);
            SimGpu& gpu = *gpus_[index];
            TrainingState& state = *states_[index];
            ClusterNode node{rank, &gpu, &state, network_.get()};
            NodeCheckpointer ck = factory(node);
            PCCHECK_CHECK(ck.checkpointer != nullptr);
            DistributedCoordinator coordinator(
                *network_, rank, nodes, config_.coordinate_timeout);
            bool killed = false;

            for (std::uint64_t iter = 1; iter <= iterations; ++iter) {
                // Forward/backward for this stage's microbatches.
                gpu.launch_kernel(train_time);
                // Activation / gradient exchange with the next stage
                // (shares the NIC with any checkpoint traffic).
                if (rank + 1 < nodes) {
                    network_->transfer(rank, rank + 1,
                                       config_.activation_bytes);
                }
                ck.checkpointer->before_update(iter);
                gpu.launch_kernel(update_time);
                state.stamp(iter);
                if (interval > 0 && iter % interval == 0) {
                    ck.checkpointer->request_checkpoint(iter);
                    if (config_.coordinate) {
                        // §4.1: agree on the last iteration every
                        // node has durably committed.
                        const std::uint64_t mine =
                            ck.latest_iteration ? ck.latest_iteration()
                                                : 0;
                        consistent[index] =
                            coordinator.coordinate(mine);
                    }
                }
                if (rank == config_.kill_rank &&
                    iter >= config_.kill_at_iter) {
                    // Simulated node failure: this rank stops training
                    // and never speaks on the network again. Its
                    // survivors detect the silence via the round
                    // timeout and degrade to local checkpointing.
                    killed = true;
                    break;
                }
            }
            ck.checkpointer->finish();
            if (config_.coordinate && !killed) {
                // Final round so the last checkpoints are covered.
                const std::uint64_t mine =
                    ck.latest_iteration ? ck.latest_iteration() : 0;
                consistent[index] = coordinator.coordinate(mine);
            }
            timeouts[index] = coordinator.timeouts();
            degraded[index] = coordinator.degraded() ? 1 : 0;
            result.node_stats[index] = ck.checkpointer->stats();
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    result.wall_time = watch.elapsed();
    result.throughput =
        static_cast<double>(iterations) / result.wall_time;
    for (std::size_t index = 0; index < consistent.size(); ++index) {
        result.coordinate_timeouts += timeouts[index];
        result.degraded = result.degraded || degraded[index] != 0;
    }
    if (config_.coordinate) {
        // Rank 0 only advances the consistent id on full agreement, so
        // its view is authoritative even after a degraded round.
        result.consistent_iteration = consistent.front();
        if (!result.degraded) {
            for (std::uint64_t value : consistent) {
                PCCHECK_CHECK_MSG(
                    value == result.consistent_iteration,
                    "nodes disagree on consistent checkpoint");
            }
        }
    }
    return result;
}

}  // namespace pccheck
