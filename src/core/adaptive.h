#ifndef PCCHECK_CORE_ADAPTIVE_H_
#define PCCHECK_CORE_ADAPTIVE_H_

/**
 * @file
 * Adaptive checkpoint-interval control — the extension §3.4 sketches
 * as future work: "We plan to extend PCcheck by monitoring training
 * throughput and traffic between GPU, CPU, and storage, and adapt
 * (3) accordingly."
 *
 * AdaptiveController keeps exponentially weighted averages of the
 * iteration time t (which drifts with input-bound phases, activation
 * offloading, and PCIe contention) and the checkpoint write time Tw
 * (which drifts with storage contention), and re-evaluates the
 * eq. (3) minimum interval
 *
 *     f* = ceil( Tw / (N · q · t) )
 *
 * with hysteresis so the interval does not flap on noise.
 *
 * AdaptiveCheckpointer wraps any Checkpointer: the training loop
 * requests a checkpoint every iteration (interval 1) and the wrapper
 * decides, from the controller, whether this iteration actually
 * checkpoints.
 */

#include <cstdint>
#include <memory>

#include "trainsim/checkpointer.h"
#include "util/annotations.h"
#include "util/clock.h"

namespace pccheck {

/** EWMA-based re-evaluation of the §3.4 minimum interval. */
class AdaptiveController {
  public:
    struct Options {
        double max_overhead = 1.05;  ///< q
        int concurrent = 2;          ///< N
        double ewma_alpha = 0.2;     ///< smoothing for t and Tw
        /** Interval changes only when the new f* differs from the
         *  current one by more than this factor (hysteresis). */
        double hysteresis = 0.25;
        std::uint64_t min_interval = 1;
        std::uint64_t max_interval = 1000;
    };

    explicit AdaptiveController(const Options& options,
                                std::uint64_t initial_interval = 10);

    /** Feed one measured iteration duration. */
    void observe_iteration(Seconds duration);

    /** Feed one measured checkpoint write time (request → durable). */
    void observe_checkpoint(Seconds tw);

    /** Current recommended checkpoint interval f. */
    std::uint64_t interval() const;

    /** Smoothed estimates (monitoring). */
    Seconds iteration_estimate() const;
    Seconds tw_estimate() const;

    /** How many times the interval actually changed. */
    std::uint64_t adaptations() const;

  private:
    void maybe_adapt_locked() PCCHECK_REQUIRES(mu_);

    Options options_;
    mutable Mutex mu_;
    double t_ewma_ PCCHECK_GUARDED_BY(mu_) = 0;
    double tw_ewma_ PCCHECK_GUARDED_BY(mu_) = 0;
    bool t_seeded_ PCCHECK_GUARDED_BY(mu_) = false;
    bool tw_seeded_ PCCHECK_GUARDED_BY(mu_) = false;
    std::uint64_t interval_ PCCHECK_GUARDED_BY(mu_);
    std::uint64_t adaptations_ PCCHECK_GUARDED_BY(mu_) = 0;
};

/**
 * Checkpointer adapter that turns per-iteration requests into
 * controller-paced checkpoints. Drive it with checkpoint_interval = 1.
 */
class AdaptiveCheckpointer final : public Checkpointer {
  public:
    /**
     * @param inner the real checkpointing system (not owned)
     * @param controller interval policy (not owned)
     * @param clock time source for the measurements fed back
     */
    AdaptiveCheckpointer(Checkpointer& inner,
                         AdaptiveController& controller,
                         const Clock& clock = MonotonicClock::instance());

    std::string name() const override
    {
        return "adaptive-" + inner_->name();
    }
    void before_update(std::uint64_t iteration) override;
    void request_checkpoint(std::uint64_t iteration) override;
    void finish() override;
    CheckpointerStats stats() const override;

    /** Checkpoints actually forwarded to the inner system. */
    std::uint64_t checkpoints_taken() const { return taken_; }

  private:
    Checkpointer* inner_;
    AdaptiveController* controller_;
    const Clock* clock_;
    Seconds last_request_time_ = -1;
    std::uint64_t last_checkpoint_iteration_ = 0;
    std::uint64_t taken_ = 0;
    Seconds pending_checkpoint_start_ = -1;
    std::uint64_t completed_seen_ = 0;
};

}  // namespace pccheck

#endif  // PCCHECK_CORE_ADAPTIVE_H_
