#include "core/sharding.h"

#include <cstring>

#include "core/recovery.h"
#include "trainsim/training_state.h"
#include "util/check.h"

namespace pccheck {

std::vector<ShardRange>
plan_shards(Bytes stage_bytes, int replicas, Bytes align)
{
    PCCHECK_CHECK(replicas >= 1);
    PCCHECK_CHECK(align > 0);
    const auto count = static_cast<Bytes>(replicas);
    const Bytes base = align_down(stage_bytes / count, align);
    if (base == 0) {
        fatal("plan_shards: stage too small for replica count");
    }
    std::vector<ShardRange> plan;
    plan.reserve(static_cast<std::size_t>(replicas));
    Bytes offset = 0;
    for (int replica = 0; replica < replicas; ++replica) {
        const bool last = replica + 1 == replicas;
        const Bytes length = last ? stage_bytes - offset : base;
        plan.push_back(ShardRange{offset, length});
        offset += length;
    }
    return plan;
}

std::optional<AssembledStage>
assemble_shards(const std::vector<StorageDevice*>& devices,
                const std::vector<ShardRange>& plan)
{
    PCCHECK_CHECK(devices.size() == plan.size());
    PCCHECK_CHECK(!plan.empty());
    AssembledStage stage;
    stage.data.resize(plan.back().offset + plan.back().length);

    bool first = true;
    std::vector<std::uint8_t> shard;
    for (std::size_t replica = 0; replica < plan.size(); ++replica) {
        PCCHECK_CHECK(devices[replica] != nullptr);
        const auto recovered =
            recover_to_buffer(*devices[replica], &shard);
        if (!recovered.has_value() ||
            recovered->data_len != plan[replica].length) {
            return std::nullopt;  // shard missing or wrong shape
        }
        // Each shard must be internally consistent AND placed at its
        // planned offset (the markers encode absolute positions).
        const auto stamped = TrainingState::verify_buffer(
            shard.data(), shard.size(), plan[replica].offset);
        if (!stamped.has_value()) {
            return std::nullopt;
        }
        if (first) {
            stage.iteration = *stamped;
            first = false;
        } else if (*stamped != stage.iteration) {
            return std::nullopt;  // replicas disagree on the iteration
        }
        std::memcpy(stage.data.data() + plan[replica].offset,
                    shard.data(), shard.size());
    }
    return stage;
}

}  // namespace pccheck
