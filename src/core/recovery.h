#ifndef PCCHECK_CORE_RECOVERY_H_
#define PCCHECK_CORE_RECOVERY_H_

/**
 * @file
 * Recovery path (§4.2): locate the latest consistent checkpoint via
 * the durable CHECK_ADDR records, validate it, and load it back into
 * GPU memory so training can resume.
 */

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "delta/delta_log.h"
#include "storage/device.h"
#include "util/clock.h"

#if defined(PCCHECK_MC)
// The model-checking closure (src/mc/) links recover_to_buffer but
// never restores into a simulated GPU; forward-declaring keeps
// trainsim/gpusim out of the checker binary.
namespace pccheck {
class TrainingState;
}
#else
#include "trainsim/training_state.h"
#endif

namespace pccheck {

/** What recovery found and how long loading took. */
struct RecoveryResult {
    std::uint64_t iteration = 0;  ///< training iteration to resume from
    std::uint64_t counter = 0;    ///< checkpoint counter that survived
    Bytes data_len = 0;
    Seconds load_time = 0;        ///< l in the §4.2 recovery bound
    /** CRC-32C recorded with the checkpoint (0 = none computed). */
    std::uint32_t data_crc = 0;
    /** Delta frames replayed on top of the full image (recover_latest
     *  only; docs/DELTA_LOG.md). iteration then reflects the last
     *  applied frame, not the base checkpoint. */
    std::uint64_t delta_frames = 0;
    /** Sequence number of the last applied frame (0 = none). */
    std::uint64_t delta_seq = 0;
};

/**
 * Read the latest valid checkpoint from @p device into a host buffer.
 * @return std::nullopt when the device holds no valid checkpoint.
 */
std::optional<RecoveryResult> recover_to_buffer(
    StorageDevice& device, std::vector<std::uint8_t>* out,
    const Clock& clock = MonotonicClock::instance());

/**
 * Three-tier recovery (docs/DELTA_LOG.md): map the latest valid full
 * checkpoint like recover_to_buffer, then replay its delta-frame
 * chain in sequence order on top, stopping cleanly at the first torn
 * or CRC-failing frame. On a device without a delta region this is
 * exactly recover_to_buffer. @p observer (tests only) sees each
 * applied frame and may stop the replay early.
 * @return std::nullopt when the device holds no valid checkpoint.
 */
std::optional<RecoveryResult> recover_latest(
    StorageDevice& device, std::vector<std::uint8_t>* out,
    const Clock& clock = MonotonicClock::instance(),
    const std::function<bool(const DeltaFrameInfo&)>& observer = {});

/**
 * Full recovery: load the latest valid checkpoint into @p state's GPU
 * memory (paying the PCIe H2D transfer) and re-mark the state's
 * iteration. @return std::nullopt when no valid checkpoint exists.
 */
std::optional<RecoveryResult> recover_into_state(
    StorageDevice& device, TrainingState& state, bool pinned = true,
    const Clock& clock = MonotonicClock::instance());

/**
 * Three-tier variant of recover_into_state: base image + delta
 * replay, validated with the sparse stamp oracle (markers must be
 * well-placed and no newer than the recovered iteration — delta
 * frames legitimately leave chunks stamped at older iterations).
 */
std::optional<RecoveryResult> recover_latest_into_state(
    StorageDevice& device, TrainingState& state, bool pinned = true,
    const Clock& clock = MonotonicClock::instance());

}  // namespace pccheck

#endif  // PCCHECK_CORE_RECOVERY_H_
