#include "core/tuner.h"

#include <algorithm>
#include <cmath>

#include "core/orchestrator.h"
#include "core/slot_store.h"
#include "util/check.h"
#include "util/logging.h"

namespace pccheck {

std::uint64_t
min_checkpoint_interval(Seconds tw, int n, double q, Seconds t)
{
    PCCHECK_CHECK(n >= 1);
    PCCHECK_CHECK(q >= 1.0);
    PCCHECK_CHECK(t > 0);
    if (tw <= 0) {
        return 1;
    }
    // Paper eq. (3): f* = ceil( Tw / (N* · q · t) ). Valid in the
    // stall regime (Tw > N·f·t); outside it the overhead is already
    // below q and f* = 1 would also satisfy the constraint.
    const double f = tw / (static_cast<double>(n) * q * t);
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(f)));
}

TunerResult
Tuner::optimize(TrainingState& state, StorageDevice& device,
                const TunerConstraints& constraints, Seconds iteration_time,
                int probes_per_n, const Clock& clock)
{
    PCCHECK_CHECK(probes_per_n >= 1);
    PCCHECK_CHECK(iteration_time > 0);
    const Bytes m = state.size();
    int n_max = 1;
    if (constraints.storage_budget > 0) {
        const Bytes slots = constraints.storage_budget / m;
        n_max = slots > 1 ? static_cast<int>(slots - 1) : 1;
    } else {
        // Derive from the actual device capacity.
        Bytes slots = 2;
        while (SlotStore::required_size(
                   static_cast<std::uint32_t>(slots + 1), m) <=
               device.size()) {
            ++slots;
        }
        n_max = static_cast<int>(slots - 1);
    }
    // §5.2.3: more than ~4 concurrent checkpoints saturate the device;
    // only a few values of N need probing.
    n_max = std::clamp(n_max, 1, 6);

    TunerResult result;
    for (int n = 1; n <= n_max; ++n) {
        PCcheckConfig config = base_;
        config.concurrent_checkpoints = n;
        config.dram_bytes = constraints.dram_budget;
        Seconds tw_sum = 0;
        std::uint64_t completed = 0;
        {
            PCcheckCheckpointer checkpointer(state, device, config, clock);
            // Issue a checkpoint every t seconds, mirroring training.
            // Enough probes that N checkpoints genuinely overlap, so
            // the measured Tw reflects worst-case contention (§3.4).
            const int probes = std::max(probes_per_n, 3 * n);
            for (int probe = 1; probe <= probes; ++probe) {
                checkpointer.before_update(
                    static_cast<std::uint64_t>(probe));
                state.stamp(static_cast<std::uint64_t>(probe));
                checkpointer.request_checkpoint(
                    static_cast<std::uint64_t>(probe));
                clock.sleep_for(iteration_time);
            }
            checkpointer.finish();
            const auto stats = checkpointer.stats();
            tw_sum = stats.checkpoint_latency.sum();
            completed = stats.completed;
        }
        PCCHECK_CHECK(completed > 0);
        TunerSample sample;
        sample.concurrent_checkpoints = n;
        sample.tw = tw_sum / static_cast<double>(completed);
        sample.tw_over_n = sample.tw / static_cast<double>(n);
        result.samples.push_back(sample);
        LOG_DEBUG("tuner probe N=" << n << " Tw=" << sample.tw
                                   << " Tw/N=" << sample.tw_over_n);
    }
    // Pick the SMALLEST N within 10% of the best Tw/N: once the
    // device saturates, extra concurrency costs (N+1)·m storage for
    // no real gain (§5.2.3: a modest N of 2-4 suffices).
    double best_objective = result.samples.front().tw_over_n;
    for (const auto& sample : result.samples) {
        best_objective = std::min(best_objective, sample.tw_over_n);
    }
    for (const auto& sample : result.samples) {
        if (sample.tw_over_n <= best_objective * 1.10) {
            result.concurrent_checkpoints = sample.concurrent_checkpoints;
            result.tw = sample.tw;
            break;
        }
    }
    result.checkpoint_interval = min_checkpoint_interval(
        result.tw, result.concurrent_checkpoints, constraints.max_overhead,
        iteration_time);
    return result;
}

}  // namespace pccheck
