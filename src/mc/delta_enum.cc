#include "mc/delta_enum.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "core/recovery.h"
#include "core/slot_store.h"
#include "delta/delta_log.h"
#include "delta/frame_format.h"
#include "mc/models.h"
#include "storage/crash_sim.h"
#include "storage/mem_storage.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace pccheck::mc {
namespace {

/** Everything one deterministic workload run leaves behind. */
struct DeltaTrace {
    std::unique_ptr<CrashSimStorage> device;
    std::vector<CrashSnapshot> snaps;
    /** (op index, iteration) appended when durability was ACKED —
     *  publish_pointer or append returned. */
    std::vector<std::pair<std::size_t, std::uint64_t>> floors;
    /** (op index, iteration) appended when a seal/publish BEGAN —
     *  no crash image may recover anything newer. */
    std::vector<std::pair<std::size_t, std::uint64_t>> ceilings;
    /** Expected full image after each iteration's update. */
    std::map<std::uint64_t, std::vector<std::uint8_t>> expected;
    std::size_t frames_sealed = 0;
    std::size_t fulls_published = 0;
};

std::uint64_t bound_at(
    const std::vector<std::pair<std::size_t, std::uint64_t>>& marks,
    std::size_t op_index)
{
    std::uint64_t bound = 0;
    for (const auto& [op, iteration] : marks) {
        if (op <= op_index) {
            bound = std::max(bound, iteration);
        }
    }
    return bound;
}

/** Head/seq state for the kAckBeforePayload mini appender. */
struct MiniDeltaState {
    Bytes head = 0;
    std::uint64_t seq = 1;
    std::uint64_t base = 0;
};

/**
 * The mutated appender: seals the header (correct checksums) and acks
 * BEFORE the payload is persisted — the WAL ordering bug. Layout is
 * byte-identical to DeltaLog's so recover_latest replays it.
 */
void mini_append_ack_early(CrashSimStorage& device, const DeltaRegion& region,
                           MiniDeltaState* mini, std::uint64_t iteration,
                           const std::vector<DeltaChunk>& chunks,
                           const std::vector<std::uint8_t>& data,
                           DeltaTrace* trace, const std::size_t* op_counter)
{
    using delta_wire::RawChunkRef;
    using delta_wire::RawFrameHeader;
    const auto chunk_count = static_cast<std::uint32_t>(chunks.size());
    const Bytes payload_len =
        static_cast<Bytes>(chunk_count) * sizeof(RawChunkRef) + data.size();
    std::vector<std::uint8_t> payload(payload_len);
    Bytes off = 0;
    for (const DeltaChunk& chunk : chunks) {
        const RawChunkRef ref{chunk.offset, chunk.len};
        std::memcpy(payload.data() + off, &ref, sizeof(ref));
        off += sizeof(ref);
    }
    std::memcpy(payload.data() + off, data.data(), data.size());

    RawFrameHeader hdr{};
    hdr.magic = delta_wire::kFrameMagic;
    hdr.seq = mini->seq;
    hdr.base_counter = mini->base;
    hdr.iteration = iteration;
    hdr.payload_len = payload_len;
    hdr.chunk_count = chunk_count;
    hdr.payload_crc = crc32c(payload.data(), payload.size());
    hdr.header_crc = delta_wire::header_crc(hdr);

    const Bytes frame_off = region.offset + mini->head;
    PCCHECK_MUST(device.write(frame_off, &hdr, sizeof(hdr)));
    PCCHECK_MUST(device.persist(frame_off, sizeof(hdr)));
    PCCHECK_MUST(device.fence());
    // THE BUG: the ack lands here, with the payload still volatile.
    trace->floors.emplace_back(*op_counter, iteration);
    PCCHECK_MUST(device.write(frame_off + sizeof(hdr), payload.data(),
                              payload.size()));
    PCCHECK_MUST(device.persist(frame_off + sizeof(hdr), payload.size()));
    PCCHECK_MUST(device.fence());
    mini->head += DeltaLog::frame_bytes(chunk_count, data.size());
    ++mini->seq;
}

DeltaTrace run_model(const DeltaModelConfig& cfg, DeltaMutation mutation)
{
    PCCHECK_CHECK(cfg.fulls >= 1 && cfg.chunks >= 1 &&
                  cfg.dirty_per_delta >= 1);
    DeltaTrace trace;
    const Bytes image_len =
        static_cast<Bytes>(cfg.chunks) * cfg.chunk_bytes;
    const std::uint32_t slot_count = 2;
    trace.device = std::make_unique<CrashSimStorage>(
        SlotStore::required_size(slot_count, image_len,
                                 cfg.delta_log_bytes),
        StorageKind::kPmemClwb, cfg.storage_seed,
        /*eviction_probability=*/0.5);
    CrashSimStorage& device = *trace.device;

    std::size_t op_counter = 0;
    // The hook goes in only after format() below: a crash mid-format
    // leaves a device recovery rejects wholesale (FatalError from
    // SlotStore::open), which is the documented reformat-and-restart
    // path, not a consistency violation — same scoping as crash_enum.
    const auto snapshot_hook = [&trace, &device,
                                &op_counter](const StorageOp&) {
        const std::size_t idx = op_counter++;
        CrashSnapshot snap;
        snap.op_index = idx;
        snap.durable = device.crash_image_keeping({});
        snap.lines = device.unflushed_lines();
        const Bytes line_bytes = device.line_size();
        const Bytes device_size = device.size();
        for (Bytes line : snap.lines) {
            const Bytes start = line * line_bytes;
            const Bytes len = std::min(line_bytes, device_size - start);
            std::vector<std::uint8_t> buf(len);
            PCCHECK_MUST(device.read(start, buf.data(), len));
            snap.line_data.push_back(std::move(buf));
        }
        trace.snaps.push_back(std::move(snap));
    };

    SlotStore store = SlotStore::format(device, slot_count, image_len,
                                        cfg.delta_log_bytes);
    device.set_post_op_hook(snapshot_hook);
    const DeltaRegion region{store.delta_offset(), store.delta_bytes()};
    DeltaLog log(device, region);
    MiniDeltaState mini;

    std::vector<std::uint8_t> image(image_len);
    std::uint64_t iter = 0;

    const auto reset_epoch = [&](std::uint64_t counter,
                                 std::uint64_t base_iteration) {
        if (mutation == DeltaMutation::kAckBeforePayload) {
            mini.head = 0;
            mini.seq = 1;
            mini.base = counter;
        } else {
            log.reset_epoch(counter, base_iteration);
        }
    };

    const auto do_deltas = [&] {
        for (int d = 0; d < cfg.deltas_between; ++d) {
            ++iter;
            std::vector<std::uint32_t> touched;
            for (int k = 0; k < cfg.dirty_per_delta; ++k) {
                const auto c = static_cast<std::uint32_t>(
                    (iter * 3 + static_cast<std::uint64_t>(k)) %
                    cfg.chunks);
                if (std::find(touched.begin(), touched.end(), c) ==
                    touched.end()) {
                    touched.push_back(c);
                }
            }
            std::sort(touched.begin(), touched.end());
            std::vector<DeltaChunk> refs;
            std::vector<std::uint8_t> data;
            for (const std::uint32_t c : touched) {
                const Bytes off = static_cast<Bytes>(c) * cfg.chunk_bytes;
                const Bytes len = std::min(cfg.chunk_bytes,
                                           image_len - off);
                for (Bytes j = 0; j < len; ++j) {
                    image[off + j] = payload_byte(iter, off + j);
                }
                refs.push_back(DeltaChunk{off, len});
                data.insert(data.end(), image.begin() +
                                            static_cast<std::ptrdiff_t>(off),
                            image.begin() +
                                static_cast<std::ptrdiff_t>(off + len));
            }
            trace.expected[iter] = image;
            trace.ceilings.emplace_back(op_counter, iter);
            if (mutation == DeltaMutation::kAckBeforePayload) {
                mini_append_ack_early(device, region, &mini, iter, refs,
                                      data, &trace, &op_counter);
            } else {
                PCCHECK_MUST(log.append(iter, refs, data.data()));
                trace.floors.emplace_back(op_counter, iter);
            }
            ++trace.frames_sealed;
        }
    };

    for (int f = 1; f <= cfg.fulls; ++f) {
        ++iter;
        for (Bytes j = 0; j < image_len; ++j) {
            image[j] = payload_byte(iter, j);
        }
        trace.expected[iter] = image;
        const auto counter = static_cast<std::uint64_t>(f);
        const std::uint32_t slot = counter % slot_count;
        trace.ceilings.emplace_back(op_counter, iter);
        PCCHECK_MUST(store.write_slot(slot, 0, image.data(), image_len));
        PCCHECK_MUST(store.persist_slot_range(slot, 0, image_len));
        PCCHECK_MUST(device.fence());
        if (mutation == DeltaMutation::kResetBeforePublish) {
            // THE BUG: the epoch is garbage-collected (head reset, old
            // chain doomed to be overwritten) and new frames append on
            // a base whose pointer record is not durable yet.
            reset_epoch(counter, iter);
            do_deltas();
        }
        PCCHECK_MUST(store.publish_pointer(CheckpointPointer{
            counter, slot, image_len, iter,
            crc32c(image.data(), image.size())}));
        trace.floors.emplace_back(op_counter, iter);
        ++trace.fulls_published;
        if (mutation != DeltaMutation::kResetBeforePublish) {
            // Faithful GC gate: reset only after the durable publish.
            reset_epoch(counter, iter);
            do_deltas();
        }
    }
    device.set_post_op_hook(nullptr);
    return trace;
}

/** Materialize one crash image and run the real recovery against it.
 *  @return the violation message, or std::nullopt when consistent. */
std::optional<std::string> check_image(const DeltaTrace& trace,
                                       const CrashSnapshot& snap,
                                       std::uint64_t mask, Bytes image_len)
{
    std::vector<std::uint8_t> image = snap.durable;
    const Bytes line_size = trace.device->line_size();
    for (std::size_t i = 0; i < snap.lines.size(); ++i) {
        if (((mask >> i) & 1u) == 0) {
            continue;
        }
        const Bytes start = snap.lines[i] * line_size;
        std::copy(snap.line_data[i].begin(), snap.line_data[i].end(),
                  image.begin() + static_cast<std::ptrdiff_t>(start));
    }
    MemStorage mem(image.size());
    std::copy(image.begin(), image.end(), mem.raw());
    std::vector<std::uint8_t> buffer;
    std::optional<RecoveryResult> recovered;
    try {
        recovered = recover_latest(mem, &buffer);
    } catch (const FatalError& e) {
        return std::string("recovery raised: ") + e.what();
    }

    const std::uint64_t floor = bound_at(trace.floors, snap.op_index);
    const std::uint64_t ceiling = bound_at(trace.ceilings, snap.op_index);
    if (!recovered.has_value()) {
        if (floor != 0) {
            std::ostringstream os;
            os << "no recoverable state although iteration " << floor
               << " was durably acked";
            return os.str();
        }
        return std::nullopt;
    }
    if (recovered->iteration < floor) {
        std::ostringstream os;
        os << "recovered iteration " << recovered->iteration
           << " is older than the durably acked " << floor;
        return os.str();
    }
    if (recovered->iteration > ceiling) {
        std::ostringstream os;
        os << "recovered iteration " << recovered->iteration
           << " is newer than the last sealed frame (" << ceiling << ")";
        return os.str();
    }
    const auto expected = trace.expected.find(recovered->iteration);
    if (expected == trace.expected.end()) {
        std::ostringstream os;
        os << "recovered iteration " << recovered->iteration
           << " never existed";
        return os.str();
    }
    if (buffer.size() != image_len ||
        !std::equal(buffer.begin(), buffer.end(),
                    expected->second.begin())) {
        std::ostringstream os;
        os << "recovered image for iteration " << recovered->iteration
           << " does not match the state at that iteration";
        return os.str();
    }
    return std::nullopt;
}

/** The masks to try at one crash point. */
std::vector<std::uint64_t> masks_for(std::size_t num_lines,
                                     std::size_t op_index,
                                     const DeltaEnumOptions& opts,
                                     bool* sampled)
{
    std::vector<std::uint64_t> masks;
    if (num_lines <= opts.exhaustive_line_limit) {
        const std::uint64_t count = 1ULL << num_lines;
        masks.reserve(count);
        for (std::uint64_t m = 0; m < count; ++m) {
            masks.push_back(m);
        }
        return masks;
    }
    *sampled = true;
    const std::uint64_t full =
        num_lines >= 64 ? ~0ULL : (1ULL << num_lines) - 1;
    masks.push_back(0);     // pure durable image
    masks.push_back(full);  // everything reached the media
    Rng rng(opts.seed ^ (0x9E3779B97F4A7C15ULL * (op_index + 1)));
    for (std::size_t k = 0; k < opts.sampled_masks; ++k) {
        masks.push_back(rng.next_u64() & full);
    }
    return masks;
}

}  // namespace

DeltaEnumResult enumerate_delta_crashes(const DeltaModelConfig& config,
                                        DeltaMutation mutation,
                                        const DeltaEnumOptions& opts)
{
    const DeltaTrace trace = run_model(config, mutation);
    const Bytes image_len =
        static_cast<Bytes>(config.chunks) * config.chunk_bytes;

    DeltaEnumResult out;
    out.frames_sealed = trace.frames_sealed;
    out.fulls_published = trace.fulls_published;
    for (const CrashSnapshot& snap : trace.snaps) {
        ++out.crash_points;
        bool sampled = false;
        const std::vector<std::uint64_t> masks =
            masks_for(snap.lines.size(), snap.op_index, opts, &sampled);
        if (sampled) {
            ++out.sampled_points;
        }
        for (const std::uint64_t mask : masks) {
            ++out.images;
            const auto violation =
                check_image(trace, snap, mask, image_len);
            if (violation.has_value()) {
                out.violated = true;
                out.message = *violation;
                out.crash_op = snap.op_index;
                out.crash_mask = mask;
                return out;
            }
        }
    }
    return out;
}

std::string replay_delta_crash(const DeltaModelConfig& config,
                               DeltaMutation mutation, std::size_t crash_op,
                               std::uint64_t crash_mask)
{
    const DeltaTrace trace = run_model(config, mutation);
    const Bytes image_len =
        static_cast<Bytes>(config.chunks) * config.chunk_bytes;
    for (const CrashSnapshot& snap : trace.snaps) {
        if (snap.op_index != crash_op) {
            continue;
        }
        return check_image(trace, snap, crash_mask, image_len)
            .value_or("");
    }
    return "replay: crash point not reached (config mismatch?)";
}

}  // namespace pccheck::mc
