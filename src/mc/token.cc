#include "mc/token.h"

#include <cstdio>
#include <cstdlib>

namespace pccheck::mc {

namespace {

/** Parse a non-negative integer with base @p base, advancing @p pos.
 *  Returns false when no digits were consumed or the value overflows
 *  what the token grammar needs (64 bits). */
bool parse_u64(const std::string& s, std::size_t& pos, int base,
               std::uint64_t* out)
{
    const char* begin = s.c_str() + pos;
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(begin, &end, base);
    if (end == begin || errno != 0) {
        return false;
    }
    pos += static_cast<std::size_t>(end - begin);
    *out = v;
    return true;
}

}  // namespace

std::string encode_token(int num_threads,
                         const std::vector<std::uint8_t>& choices,
                         std::optional<std::size_t> crash_op,
                         std::uint64_t crash_mask)
{
    std::string out = "v1." + std::to_string(num_threads) + ".";
    std::size_t i = 0;
    bool first = true;
    while (i < choices.size()) {
        std::size_t run = 1;
        while (i + run < choices.size() && choices[i + run] == choices[i]) {
            ++run;
        }
        if (!first) {
            out += ',';
        }
        first = false;
        out += std::to_string(static_cast<int>(choices[i]));
        if (run > 1) {
            out += 'x';
            out += std::to_string(run);
        }
        i += run;
    }
    if (crash_op.has_value()) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), ".crash@%zu:0x%llx", *crash_op,
                      static_cast<unsigned long long>(crash_mask));
        out += buf;
    }
    return out;
}

std::optional<ReplayToken> decode_token(const std::string& text)
{
    if (text.rfind("v1.", 0) != 0) {
        return std::nullopt;
    }
    std::size_t pos = 3;
    std::uint64_t threads = 0;
    if (!parse_u64(text, pos, 10, &threads) || threads == 0 || threads > 32 ||
        pos >= text.size() || text[pos] != '.') {
        return std::nullopt;
    }
    ++pos;

    ReplayToken tok;
    tok.num_threads = static_cast<int>(threads);
    while (pos < text.size() && text[pos] != '.') {
        std::uint64_t thread = 0;
        if (!parse_u64(text, pos, 10, &thread) || thread >= threads) {
            return std::nullopt;
        }
        std::uint64_t run = 1;
        if (pos < text.size() && text[pos] == 'x') {
            ++pos;
            if (!parse_u64(text, pos, 10, &run) || run == 0 ||
                run > 1000000) {
                return std::nullopt;
            }
        }
        for (std::uint64_t r = 0; r < run; ++r) {
            tok.choices.push_back(static_cast<std::uint8_t>(thread));
        }
        if (pos < text.size() && text[pos] == ',') {
            ++pos;
        } else {
            break;
        }
    }

    if (pos < text.size()) {
        // Only a crash clause may follow the schedule body.
        if (text.compare(pos, 7, ".crash@") != 0) {
            return std::nullopt;
        }
        pos += 7;
        std::uint64_t op = 0;
        if (!parse_u64(text, pos, 10, &op) || pos + 3 > text.size() ||
            text.compare(pos, 3, ":0x") != 0) {
            return std::nullopt;
        }
        pos += 3;
        std::uint64_t mask = 0;
        if (!parse_u64(text, pos, 16, &mask) || pos != text.size()) {
            return std::nullopt;
        }
        tok.crash_op = static_cast<std::size_t>(op);
        tok.crash_mask = mask;
    }
    return tok;
}

}  // namespace pccheck::mc
