#ifndef PCCHECK_MC_MODELS_H_
#define PCCHECK_MC_MODELS_H_

/**
 * @file
 * The checked models: the real Listing-1 commit protocol plus
 * intentionally weakened variants the checker must catch.
 *
 * A CommitModel is one single-use execution harness: N committer
 * threads each begin() a ticket, write a deterministic payload
 * (byte j of checkpoint c is (c * 131 + j) mod 256, iteration = c)
 * into their slot on a CrashSimStorage, persist + fence it, and
 * commit(). After the scheduled run the driver asserts the end-state
 * invariants (see check_end_state) and, when snapshotting was on,
 * exposes per-storage-op crash snapshots for the enumerator
 * (crash_enum.h).
 *
 * Mutations:
 *  - kNone runs the REAL ConcurrentCommit (the object under test).
 *  - kBlindStore / kTicketReuse run MiniCommit, a compact
 *    reimplementation of Listing 1 over the same seam, because the
 *    weakenings replace lines of the real algorithm. MiniCommit with
 *    Mutation::kNone is itself checked (mc_test) to agree with the
 *    real implementation, so a bug injected into MiniCommit stands in
 *    for the same bug in ConcurrentCommit.
 *  - kNoFence keeps the real ConcurrentCommit but drops the data
 *    persist + fence the caller owes before commit() — the classic
 *    "published a record whose data never left the cache" bug. It is
 *    invisible to scheduling invariants (DRAM state is fine) and is
 *    caught by the crash-state enumerator instead.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/concurrent_commit.h"
#include "core/free_slot_queue.h"
#include "core/slot_store.h"
#include "mc/explore.h"
#include "mc/scheduler.h"
#include "mc/shim.h"
#include "storage/crash_sim.h"
#include "util/bytes.h"

namespace pccheck::mc {

/** Which algorithm weakening (if any) to run. */
enum class Mutation {
    kNone,         ///< faithful algorithm; checker must find nothing
    kBlindStore,   ///< CAS on CHECK_ADDR -> unconditional exchange
    kTicketReuse,  ///< counter fetch_add -> racy load + store
    kNoFence,      ///< slot data never persisted before publish
};

/** Model shape. */
struct ModelConfig {
    int threads = 3;
    /** Checkpoints committed per thread. */
    int checkpoints_per_thread = 1;
    /** N+1 slots; 0 means threads + 1 (the paper's sizing). */
    std::uint32_t slot_count = 0;
    Bytes slot_size = 64;  ///< one PMEM line of payload
    SlotQueueKind queue_kind = SlotQueueKind::kVyukov;
    StorageKind storage_kind = StorageKind::kPmemClwb;
    /** Run MiniCommit instead of ConcurrentCommit even for kNone
     *  (used by the mini-model sanity checks). */
    bool use_mini = false;
    /** Record a crash snapshot at every storage op (enumerator). */
    bool snapshot_crashes = false;
    Scheduler::Options sched;
};

/** Device state captured after one storage operation. */
struct CrashSnapshot {
    std::size_t op_index = 0;
    /** Durable image — what survives if nothing else is kept. */
    std::vector<std::uint8_t> durable;
    /** Unflushed (dirty or fence-pending) lines, ascending. */
    std::vector<Bytes> lines;
    /** Volatile content of each line, aligned with `lines`. */
    std::vector<std::vector<std::uint8_t>> line_data;
};

/** The deterministic payload byte pattern for checkpoint @p counter. */
inline std::uint8_t payload_byte(std::uint64_t counter, Bytes j)
{
    return static_cast<std::uint8_t>((counter * 131 + j) & 0xFF);
}

/** Single-use scheduled execution of the commit protocol. */
class CommitModel {
  public:
    explicit CommitModel(const ModelConfig& config, Mutation mutation);
    ~CommitModel();
    CommitModel(const CommitModel&) = delete;
    CommitModel& operator=(const CommitModel&) = delete;

    /**
     * Run the committer threads under @p strategy, then apply the
     * end-state invariants; a failed invariant is folded into the
     * returned RunResult as a violation. Call at most once.
     */
    RunResult run(Strategy& strategy);

    // ---- post-run state for the crash enumerator ----

    /** Snapshots recorded during run() (snapshot_crashes only). */
    const std::vector<CrashSnapshot>& snapshots() const
    {
        return snapshots_;
    }

    /**
     * Publish watermarks: (op index, counter) pairs appended when a
     * commit() returned with the record durably published. From op
     * index >= w.first onward, recovery of ANY crash image must find
     * a checkpoint with counter >= w.second.
     */
    const std::vector<std::pair<std::size_t, std::uint64_t>>& watermarks()
        const
    {
        return watermarks_;
    }

    Bytes line_size() const;
    std::uint32_t slot_count() const { return slot_count_; }

  private:
    struct State;

    void thread_body(int t);
    void check_end_state();

    ModelConfig config_;
    Mutation mutation_;
    std::uint32_t slot_count_;
    std::unique_ptr<State> state_;
    std::vector<CrashSnapshot> snapshots_;
    std::vector<std::pair<std::size_t, std::uint64_t>> watermarks_;
    std::size_t op_counter_ = 0;
    bool ran_ = false;
};

/** Fresh-model execution callback for the exploration drivers. */
RunFn make_run_fn(const ModelConfig& config, Mutation mutation);

}  // namespace pccheck::mc

#endif  // PCCHECK_MC_MODELS_H_
