#ifndef PCCHECK_MC_EXPLORE_H_
#define PCCHECK_MC_EXPLORE_H_

/**
 * @file
 * Exploration drivers over the mc::Scheduler.
 *
 * Both drivers are model-agnostic: they take a callback that builds a
 * fresh model instance, runs one scheduled execution under the
 * strategy they pass in, applies the model's end-state invariants,
 * and returns the RunResult. The callback owns the model; the driver
 * owns the schedule search:
 *
 *  - explore_dfs: stateless depth-first enumeration of interleavings
 *    with a preemption bound (CHESS-style). Maintains a stack of
 *    choice prefixes; each execution replays its prefix via
 *    PrefixStrategy and continues deterministically, then every
 *    schedule point past the prefix spawns sibling prefixes for the
 *    other enabled threads — unless the switch would exceed the
 *    preemption bound, or the point is a forced-fairness yield
 *    (spin-wait backoff: branching there re-explores the same races
 *    with extra spins in between, exploding the state space without
 *    adding orderings).
 *  - explore_pct: probabilistic concurrency testing — one seeded
 *    PctStrategy execution per seed in [seed, seed + schedules).
 *    Catches bugs past the DFS bound with provable probability.
 *
 * Violations return an encoded replay token (token.h) that
 * `mc_check --replay` feeds back through PrefixStrategy.
 */

#include <cstdint>
#include <functional>
#include <string>

#include "mc/scheduler.h"

namespace pccheck::mc {

/**
 * Runs one complete execution under the given strategy and returns
 * its trace/outcome. Must build a FRESH model each call (the drivers
 * re-invoke it once per explored schedule) and fold end-state
 * invariant failures into RunResult::violated / message.
 */
using RunFn = std::function<RunResult(Strategy&)>;

/** Outcome of an exploration. */
struct ExploreResult {
    std::size_t executions = 0;
    std::size_t violations = 0;
    /** DFS only: frontier abandoned at max_executions. */
    bool truncated = false;
    /** First violation, when any. */
    std::string first_message;
    std::string first_token;
    /** PCT only: seed of the first failing schedule. */
    std::uint64_t first_seed = 0;
};

/**
 * Exhaustive DFS with preemption bound.
 *
 * @param run_one fresh-model execution callback
 * @param num_threads model thread count (token header)
 * @param preemption_bound max preemptive switches per schedule
 * @param max_executions safety valve on the schedule count
 * @param stop_at_first return at the first violation (replay token
 *        still recorded when false)
 */
ExploreResult explore_dfs(const RunFn& run_one, int num_threads,
                          int preemption_bound, std::size_t max_executions,
                          bool stop_at_first = true);

/**
 * PCT sampling: @p schedules independent executions with seeds
 * [seed, seed + schedules), depth-@p depth priority schedules.
 */
ExploreResult explore_pct(const RunFn& run_one, int num_threads,
                          std::uint64_t seed, std::size_t schedules,
                          int depth, std::size_t expected_length,
                          bool stop_at_first = true);

/**
 * Number of preemptive context switches in a schedule: points where
 * the previously running thread was still enabled, was not at a
 * forced yield, and a different thread was chosen.
 */
int count_preemptions(const std::vector<std::uint8_t>& choices,
                      const std::vector<std::uint32_t>& enabled,
                      const std::vector<std::uint8_t>& yielded);

}  // namespace pccheck::mc

#endif  // PCCHECK_MC_EXPLORE_H_
