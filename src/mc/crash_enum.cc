#include "mc/crash_enum.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <vector>

#include "core/recovery.h"
#include "storage/mem_storage.h"
#include "util/check.h"
#include "util/rng.h"

namespace pccheck::mc {

namespace {

/** Newest publish watermark at or before @p op_index (0 = none). */
std::uint64_t watermark_at(
    const std::vector<std::pair<std::size_t, std::uint64_t>>& watermarks,
    std::size_t op_index)
{
    std::uint64_t w = 0;
    for (const auto& [op, counter] : watermarks) {
        if (op <= op_index) {
            w = std::max(w, counter);
        }
    }
    return w;
}

/**
 * Materialize the crash image selected by @p mask over the snapshot's
 * unflushed lines, run recovery on it, and check the invariants.
 * @return the violation message, or std::nullopt when the image is
 *         consistent.
 */
std::optional<std::string> check_image(const CrashSnapshot& snap,
                                       std::uint64_t mask,
                                       std::uint64_t watermark,
                                       Bytes line_size, Bytes slot_size)
{
    std::vector<std::uint8_t> image = snap.durable;
    for (std::size_t i = 0; i < snap.lines.size(); ++i) {
        if (((mask >> i) & 1u) == 0) {
            continue;
        }
        const Bytes start = snap.lines[i] * line_size;
        std::copy(snap.line_data[i].begin(), snap.line_data[i].end(),
                  image.begin() + static_cast<std::ptrdiff_t>(start));
    }
    MemStorage mem(image.size());
    std::copy(image.begin(), image.end(), mem.raw());
    std::vector<std::uint8_t> buffer;
    std::optional<RecoveryResult> recovered;
    try {
        recovered = recover_to_buffer(mem, &buffer);
    } catch (const FatalError& e) {
        return std::string("recovery raised: ") + e.what();
    }

    if (!recovered.has_value()) {
        if (watermark != 0) {
            std::ostringstream os;
            os << "no recoverable checkpoint although counter "
               << watermark << " was durably committed";
            return os.str();
        }
        return std::nullopt;
    }
    if (recovered->counter < watermark) {
        std::ostringstream os;
        os << "recovered counter " << recovered->counter
           << " is older than durably committed " << watermark;
        return os.str();
    }
    if (recovered->iteration != recovered->counter) {
        std::ostringstream os;
        os << "recovered iteration " << recovered->iteration
           << " != counter " << recovered->counter;
        return os.str();
    }
    if (buffer.size() != slot_size) {
        return std::string("recovered payload has wrong length");
    }
    for (Bytes j = 0; j < buffer.size(); ++j) {
        if (buffer[j] != payload_byte(recovered->counter, j)) {
            std::ostringstream os;
            os << "recovered payload of checkpoint " << recovered->counter
               << " corrupt at byte " << j;
            return os.str();
        }
    }
    return std::nullopt;
}

/** The masks to try at one crash point. */
std::vector<std::uint64_t> masks_for(std::size_t num_lines,
                                     std::size_t op_index,
                                     const CrashEnumOptions& opts,
                                     bool* sampled)
{
    std::vector<std::uint64_t> masks;
    if (num_lines <= opts.exhaustive_line_limit) {
        const std::uint64_t count = 1ULL << num_lines;
        masks.reserve(count);
        for (std::uint64_t m = 0; m < count; ++m) {
            masks.push_back(m);
        }
        return masks;
    }
    *sampled = true;
    const std::uint64_t full = num_lines >= 64
                                   ? ~0ULL
                                   : (1ULL << num_lines) - 1;
    masks.push_back(0);     // pure durable image
    masks.push_back(full);  // everything reached the media
    Rng rng(opts.seed ^ (0x9E3779B97F4A7C15ULL * (op_index + 1)));
    for (std::size_t k = 0; k < opts.sampled_masks; ++k) {
        masks.push_back(rng.next_u64() & full);
    }
    return masks;
}

}  // namespace

CrashEnumResult enumerate_crashes(const ModelConfig& config,
                                  Mutation mutation, Strategy& strategy,
                                  const CrashEnumOptions& opts)
{
    ModelConfig snap_config = config;
    snap_config.snapshot_crashes = true;
    CommitModel model(snap_config, mutation);
    const RunResult run = model.run(strategy);

    CrashEnumResult out;
    if (run.violated) {
        out.violated = true;
        out.schedule_violation = true;
        out.message = run.message;
        out.token = encode_token(snap_config.threads, run.choices);
        return out;
    }

    const Bytes line_size = model.line_size();
    for (const CrashSnapshot& snap : model.snapshots()) {
        ++out.crash_points;
        const std::uint64_t watermark =
            watermark_at(model.watermarks(), snap.op_index);
        bool sampled = false;
        const std::vector<std::uint64_t> masks =
            masks_for(snap.lines.size(), snap.op_index, opts, &sampled);
        if (sampled) {
            ++out.sampled_points;
        }
        for (std::uint64_t mask : masks) {
            ++out.images;
            const auto violation = check_image(snap, mask, watermark,
                                               line_size,
                                               snap_config.slot_size);
            if (violation.has_value()) {
                out.violated = true;
                out.message = *violation;
                out.token = encode_token(snap_config.threads, run.choices,
                                         snap.op_index, mask);
                return out;
            }
        }
    }
    return out;
}

std::string replay_crash_token(const ModelConfig& config, Mutation mutation,
                               const ReplayToken& token)
{
    ModelConfig snap_config = config;
    snap_config.snapshot_crashes = true;
    snap_config.threads = token.num_threads;
    CommitModel model(snap_config, mutation);
    PrefixStrategy strategy(token.choices);
    const RunResult run = model.run(strategy);
    if (run.violated) {
        return run.message;
    }
    if (!token.crash_op.has_value()) {
        return "";
    }
    for (const CrashSnapshot& snap : model.snapshots()) {
        if (snap.op_index != *token.crash_op) {
            continue;
        }
        const std::uint64_t watermark =
            watermark_at(model.watermarks(), snap.op_index);
        const auto violation =
            check_image(snap, token.crash_mask, watermark,
                        model.line_size(), snap_config.slot_size);
        return violation.value_or("");
    }
    return "replay: crash point not reached (divergent schedule?)";
}

}  // namespace pccheck::mc
