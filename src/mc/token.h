#ifndef PCCHECK_MC_TOKEN_H_
#define PCCHECK_MC_TOKEN_H_

/**
 * @file
 * Compact replay tokens for failing schedules.
 *
 * When the checker finds a violation it prints a token like
 *
 *     v1.3.0x14,1x3,0x2,2
 *
 * — version 1, 3 model threads, then the schedule as run-length-
 * encoded thread choices (thread 0 for 14 steps, thread 1 for 3, ...).
 * Feeding the token back (`mc_check --replay <token>`) re-runs the
 * exact interleaving via PrefixStrategy, reproducing the assertion
 * deterministically.
 *
 * Crash-enumeration failures append a crash clause:
 *
 *     v1.3.0x14,1x3.crash@27:0x1b
 *
 * — crash after storage operation 27, keeping the unflushed cache
 * lines selected by hex mask 0x1b (bit i = i-th unflushed line in
 * ascending offset order survives the crash).
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pccheck::mc {

/** Decoded replay token. */
struct ReplayToken {
    int num_threads = 0;
    /** Thread choice at each schedule point. */
    std::vector<std::uint8_t> choices;
    /** Index of the storage op after which the crash is taken
     *  (crash clause only). */
    std::optional<std::size_t> crash_op;
    /** Survivor mask over the unflushed lines at the crash point,
     *  ascending offset order (crash clause only). */
    std::uint64_t crash_mask = 0;
};

/** Encode a schedule (and optional crash clause) as a token string. */
std::string encode_token(int num_threads,
                         const std::vector<std::uint8_t>& choices,
                         std::optional<std::size_t> crash_op = std::nullopt,
                         std::uint64_t crash_mask = 0);

/** Decode a token; std::nullopt on any syntax error. */
std::optional<ReplayToken> decode_token(const std::string& text);

}  // namespace pccheck::mc

#endif  // PCCHECK_MC_TOKEN_H_
