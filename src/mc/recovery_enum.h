#ifndef PCCHECK_MC_RECOVERY_ENUM_H_
#define PCCHECK_MC_RECOVERY_ENUM_H_

/**
 * @file
 * Crash-state enumeration over RECOVERY's own writes (docs/RECOVERY.md).
 *
 * Recovery is no longer read-only: the planner quarantines corrupt
 * slots (durable header-bitmap writes), salvages a remotely restored
 * image back into the arena (repair_slot + publish_pointer), and the
 * scrubber truncates rotten delta frames. A crash DURING those writes
 * must leave a device from which recovery still works — recovery must
 * be re-entrant.
 *
 * The model publishes K checkpoints, durably flips a byte in the
 * newest one's slot (latent bit rot), then runs the REAL
 * RecoveryPlanner against the damaged device with an in-memory peer
 * source serving the pristine image. Every storage op of that
 * quarantine/salvage sequence records a CrashSnapshot; the enumerator
 * materializes every (crash point, unflushed-line mask) image and
 * asserts, per image:
 *
 *  - local floor: a planner run with NO sources recovers at least
 *    checkpoint K-1 — salvage never destroys the last locally valid
 *    checkpoint before its replacement is durable;
 *  - integrity: the recovered bytes match the model's state at the
 *    recovered counter exactly;
 *  - fixpoint (re-entrancy): an armored run (with the peer source)
 *    restores K; a second armored run on the resulting device returns
 *    the same counter and leaves the device image byte-identical.
 *
 * The kRepairOverLastGood mutation proves the checker has teeth: its
 * salvage writes the fetched image over the last good slot instead of
 * the quarantined one, so a crash mid-repair destroys both copies and
 * the local floor breaks.
 */

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace pccheck::mc {

/** Which salvage weakening (if any) to run. */
enum class RecoveryMutation {
    kNone,               ///< faithful planner; checker must find nothing
    kRepairOverLastGood, ///< salvage overwrites the last valid slot
};

/** Shape of the recovery workload. */
struct RecoveryModelConfig {
    int checkpoints = 3;     ///< full checkpoints published (>= 2)
    Bytes image_len = 256;   ///< checkpoint image size
    std::uint64_t storage_seed = 1;
};

/** Bounds for the mask enumeration at each crash point. */
struct RecoveryEnumOptions {
    std::size_t exhaustive_line_limit = 10;
    std::size_t sampled_masks = 256;
    std::uint64_t seed = 1;
};

/** Outcome of one recovery crash enumeration. */
struct RecoveryEnumResult {
    bool violated = false;
    std::string message;
    std::size_t crash_points = 0;
    std::size_t images = 0;
    std::size_t sampled_points = 0;
    bool salvaged = false;  ///< the model run's salvage published
    /** First violating image (valid iff violated). */
    std::size_t crash_op = 0;
    std::uint64_t crash_mask = 0;
};

/** Run the damaged-device workload once, then enumerate crash images
 *  over the recovery/salvage write sequence. Stops at the first
 *  violation. */
RecoveryEnumResult enumerate_recovery_crashes(
    const RecoveryModelConfig& config, RecoveryMutation mutation,
    const RecoveryEnumOptions& opts = RecoveryEnumOptions());

}  // namespace pccheck::mc

#endif  // PCCHECK_MC_RECOVERY_ENUM_H_
