#include "mc/models.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "core/recovery.h"
#include "storage/mem_storage.h"
#include "util/check.h"
#include "util/crc32.h"

namespace pccheck::mc {

namespace {

constexpr std::uint32_t kNoSlot = 0xFFFF;
constexpr Seconds kSlotBackoff = 20e-6;

std::uint64_t pack(std::uint64_t counter, std::uint32_t slot)
{
    return (counter << 16) | (slot & 0xFFFF);
}

std::uint64_t counter_of(std::uint64_t packed)
{
    return packed >> 16;
}

std::uint32_t slot_of(std::uint64_t packed)
{
    return static_cast<std::uint32_t>(packed & 0xFFFF);
}

/**
 * Compact reimplementation of Listing 1 over the same seam, with the
 * mutation hooks. Invariant failures throw mc::Violation (via
 * Scheduler::fail) instead of PCCHECK_CHECK so the checker can catch
 * and report them with a replay token.
 */
class MiniCommit {
  public:
    MiniCommit(SlotStore& store, SlotQueueKind kind, const Clock& clock,
               Mutation mutation)
        : store_(&store), clock_(&clock), mutation_(mutation),
          free_slots_(make_slot_queue(kind, store.slot_count())),
          check_addr_(pack(0, kNoSlot))
    {
        for (std::uint32_t s = 0; s < store.slot_count(); ++s) {
            if (!free_slots_->try_enqueue(s)) {
                Scheduler::fail("mini: initial slot enqueue failed");
            }
        }
    }

    CheckpointTicket begin()
    {
        CheckpointTicket ticket;
        ticket.last_check = check_addr_.load(std::memory_order_acquire);
        if (mutation_ == Mutation::kTicketReuse) {
            // MUTATION: non-atomic ticket draw — two threads that both
            // load before either stores take the same counter.
            const std::uint64_t next =
                g_counter_.load(std::memory_order_acquire) + 1;
            g_counter_.store(next, std::memory_order_release);
            ticket.counter = next;
        } else {
            ticket.counter =
                g_counter_.fetch_add(1, std::memory_order_acq_rel) + 1;
        }
        for (;;) {
            const auto slot = free_slots_->try_dequeue();
            if (slot.has_value()) {
                ticket.slot = *slot;
                return ticket;
            }
            clock_->sleep_for(kSlotBackoff);
        }
    }

    CommitResult commit(const CheckpointTicket& ticket, Bytes data_len,
                        std::uint64_t iteration, std::uint32_t data_crc)
    {
        CommitResult result;
        const std::uint64_t mine = pack(ticket.counter, ticket.slot);
        if (mutation_ == Mutation::kBlindStore) {
            // MUTATION: unconditional exchange — an old ticket can
            // overwrite a newer registered checkpoint.
            const std::uint64_t prev =
                check_addr_.exchange(mine, std::memory_order_acq_rel);
            publish(ticket, data_len, iteration, data_crc);
            recycle(slot_of(prev), &result);
            result.won = true;
            result.published = true;
            return result;
        }
        std::uint64_t expected = ticket.last_check;
        for (;;) {
            if (check_addr_.compare_exchange_strong(
                    expected, mine, std::memory_order_acq_rel)) {
                publish(ticket, data_len, iteration, data_crc);
                recycle(slot_of(expected), &result);
                result.won = true;
                result.published = true;
                return result;
            }
            if (counter_of(expected) < ticket.counter) {
                continue;  // older checkpoint registered — retry
            }
            recycle(ticket.slot, &result);
            return result;
        }
    }

    std::uint64_t latest_counter() const
    {
        return counter_of(check_addr_.load(std::memory_order_acquire));
    }

    std::uint32_t latest_slot() const
    {
        return slot_of(check_addr_.load(std::memory_order_acquire));
    }

    FreeSlotQueue& queue() { return *free_slots_; }

  private:
    void publish(const CheckpointTicket& ticket, Bytes data_len,
                 std::uint64_t iteration, std::uint32_t data_crc)
    {
        const StorageStatus status = store_->publish_pointer(
            CheckpointPointer{ticket.counter, ticket.slot, data_len,
                              iteration, data_crc});
        if (!status.ok()) {
            Scheduler::fail("mini: publish_pointer failed");
        }
    }

    void recycle(std::uint32_t slot, CommitResult* result)
    {
        if (slot == kNoSlot) {
            return;
        }
        // Transient "full" is legal while a dequeuer holds a claimed
        // cell (same retry as ConcurrentCommit::commit); a slot
        // recycled twice would instead show up as a duplicate in the
        // end-state drain check.
        while (!free_slots_->try_enqueue(slot)) {
            clock_->sleep_for(kSlotBackoff);
        }
        result->freed_slot = slot;
    }

    SlotStore* store_;
    const Clock* clock_;
    Mutation mutation_;
    std::unique_ptr<FreeSlotQueue> free_slots_;
    Atomic<std::uint64_t> g_counter_{0};
    Atomic<std::uint64_t> check_addr_;
};

}  // namespace

struct CommitModel::State {
    State(const ModelConfig& config, std::uint32_t slot_count)
        : device(SlotStore::required_size(slot_count, config.slot_size),
                 config.storage_kind, /*seed=*/1,
                 /*eviction_probability=*/0.5)
    {
    }

    CrashSimStorage device;
    std::optional<SlotStore> store;
    McClock clock;
    std::unique_ptr<ConcurrentCommit> real;
    std::unique_ptr<MiniCommit> mini;

    struct Done {
        CheckpointTicket ticket;
        CommitResult result;
    };
    /** Per-thread commit log (threads append serialized under the
     *  scheduler; the driver reads after the run). */
    std::vector<std::vector<Done>> done;
};

CommitModel::CommitModel(const ModelConfig& config, Mutation mutation)
    : config_(config), mutation_(mutation),
      slot_count_(config.slot_count != 0
                      ? config.slot_count
                      : static_cast<std::uint32_t>(config.threads) + 1)
{
    PCCHECK_CHECK(config.threads >= 1 && config.threads <= 16);
    state_ = std::make_unique<State>(config_, slot_count_);
    state_->store =
        SlotStore::format(state_->device, slot_count_, config_.slot_size);
    const bool mini = config_.use_mini || mutation_ == Mutation::kBlindStore ||
                      mutation_ == Mutation::kTicketReuse;
    if (mini) {
        state_->mini = std::make_unique<MiniCommit>(
            *state_->store, config_.queue_kind, state_->clock, mutation_);
    } else {
        state_->real = std::make_unique<ConcurrentCommit>(
            *state_->store, config_.queue_kind, state_->clock);
    }
    state_->done.resize(static_cast<std::size_t>(config_.threads));
}

CommitModel::~CommitModel()
{
    state_->device.set_post_op_hook(nullptr);
}

Bytes CommitModel::line_size() const
{
    return state_->device.line_size();
}

void CommitModel::thread_body(int t)
{
    for (int k = 0; k < config_.checkpoints_per_thread; ++k) {
        CheckpointTicket ticket = state_->real
                                      ? state_->real->begin()
                                      : state_->mini->begin();
        std::vector<std::uint8_t> payload(config_.slot_size);
        for (Bytes j = 0; j < config_.slot_size; ++j) {
            payload[j] = payload_byte(ticket.counter, j);
        }
        SlotStore& store = *state_->store;
        PCCHECK_MUST(
            store.write_slot(ticket.slot, 0, payload.data(),
                             payload.size()));
        if (mutation_ != Mutation::kNoFence) {
            // The caller's contract with commit(): slot data durable
            // before the pointer record references it.
            PCCHECK_MUST(
                store.persist_slot_range(ticket.slot, 0, payload.size()));
            PCCHECK_MUST(store.device().fence());
        }
        const std::uint32_t crc = crc32c(payload.data(), payload.size());
        const CommitResult result =
            state_->real ? state_->real->commit(ticket, payload.size(),
                                                ticket.counter, crc)
                         : state_->mini->commit(ticket, payload.size(),
                                                ticket.counter, crc);
        state_->done[static_cast<std::size_t>(t)].push_back(
            State::Done{ticket, result});
        if (result.won && result.published) {
            watermarks_.emplace_back(op_counter_, ticket.counter);
        }
    }
}

RunResult CommitModel::run(Strategy& strategy)
{
    PCCHECK_CHECK_MSG(!ran_, "CommitModel is single-use");
    ran_ = true;

    state_->device.set_post_op_hook([this](const StorageOp&) {
        const std::size_t idx = op_counter_++;
        if (!config_.snapshot_crashes) {
            return;
        }
        CrashSnapshot snap;
        snap.op_index = idx;
        snap.durable = state_->device.crash_image_keeping({});
        snap.lines = state_->device.unflushed_lines();
        const Bytes line_bytes = state_->device.line_size();
        const Bytes device_size = state_->device.size();
        for (Bytes line : snap.lines) {
            const Bytes start = line * line_bytes;
            const Bytes len = std::min(line_bytes, device_size - start);
            std::vector<std::uint8_t> buf(len);
            PCCHECK_MUST(state_->device.read(start, buf.data(), len));
            snap.line_data.push_back(std::move(buf));
        }
        snapshots_.push_back(std::move(snap));
    });

    std::vector<std::function<void()>> bodies;
    bodies.reserve(static_cast<std::size_t>(config_.threads));
    for (int t = 0; t < config_.threads; ++t) {
        bodies.push_back([this, t] { thread_body(t); });
    }
    Scheduler scheduler;
    RunResult result = scheduler.run(bodies, strategy, config_.sched);
    state_->device.set_post_op_hook(nullptr);
    if (!result.violated) {
        try {
            check_end_state();
        } catch (const Violation& v) {
            result.violated = true;
            result.message = "end-state: " + v.message;
        }
    }
    return result;
}

void CommitModel::check_end_state()
{
    // 1. Ticket counters must be unique (kTicketReuse detector).
    std::set<std::uint64_t> counters;
    std::uint64_t max_won = 0;
    std::size_t total = 0;
    for (const auto& per_thread : state_->done) {
        for (const State::Done& d : per_thread) {
            ++total;
            if (!counters.insert(d.ticket.counter).second) {
                std::ostringstream os;
                os << "duplicate ticket counter " << d.ticket.counter;
                Scheduler::fail(os.str());
            }
            if (d.result.won) {
                max_won = std::max(max_won, d.ticket.counter);
            }
        }
    }
    const std::size_t expected_total =
        static_cast<std::size_t>(config_.threads) *
        static_cast<std::size_t>(config_.checkpoints_per_thread);
    if (total != expected_total) {
        Scheduler::fail("not every checkpoint completed");
    }

    // 2. The registered checkpoint must be the newest winner
    //    (kBlindStore detector: an old blind store can land last).
    const std::uint64_t latest = state_->real
                                     ? state_->real->latest_counter()
                                     : state_->mini->latest_counter();
    if (latest != max_won) {
        std::ostringstream os;
        os << "latest counter " << latest << " != newest winner "
           << max_won;
        Scheduler::fail(os.str());
    }

    // 3. Slot conservation: every slot is either free or the one the
    //    registered checkpoint occupies — no slot leaked or doubled.
    std::uint32_t latest_slot = kNoSlot;
    if (state_->real) {
        const auto ptr = state_->real->latest_pointer();
        latest_slot = ptr.has_value() ? ptr->slot : kNoSlot;
    } else {
        latest_slot = state_->mini->latest_slot();
    }
    FreeSlotQueue* queue = nullptr;
    if (state_->mini) {
        queue = &state_->mini->queue();
    }
    if (queue != nullptr) {
        std::set<std::uint32_t> free;
        for (;;) {
            const auto slot = queue->try_dequeue();
            if (!slot.has_value()) {
                break;
            }
            if (!free.insert(*slot).second) {
                std::ostringstream os;
                os << "slot " << *slot << " is in the free queue twice";
                Scheduler::fail(os.str());
            }
        }
        if (latest_slot != kNoSlot && free.contains(latest_slot)) {
            Scheduler::fail("registered slot is also free");
        }
        const std::size_t expected_free =
            latest_slot != kNoSlot ? slot_count_ - 1 : slot_count_;
        if (free.size() != expected_free) {
            std::ostringstream os;
            os << "free-slot count " << free.size() << " != expected "
               << expected_free;
            Scheduler::fail(os.str());
        }
    }

    // 4. The durable image alone (crash keeping nothing) must recover
    //    the registered checkpoint with an intact payload. Skipped
    //    when the crash enumerator is driving — it performs this
    //    check at EVERY op, not just the end (and owns the kNoFence
    //    meta-verdict).
    if (!config_.snapshot_crashes && max_won != 0) {
        const std::vector<std::uint8_t> image =
            state_->device.crash_image_keeping({});
        MemStorage mem(image.size());
        std::copy(image.begin(), image.end(), mem.raw());
        std::vector<std::uint8_t> buffer;
        const auto recovered =
            recover_to_buffer(mem, &buffer, state_->clock);
        if (!recovered.has_value()) {
            Scheduler::fail("durable image holds no recoverable "
                            "checkpoint after a published commit");
        }
        if (recovered->counter != latest) {
            std::ostringstream os;
            os << "durable recovery found counter " << recovered->counter
               << ", registered " << latest;
            Scheduler::fail(os.str());
        }
        if (recovered->iteration != recovered->counter ||
            buffer.size() != config_.slot_size) {
            Scheduler::fail("recovered checkpoint metadata mismatch");
        }
        for (Bytes j = 0; j < buffer.size(); ++j) {
            if (buffer[j] != payload_byte(recovered->counter, j)) {
                Scheduler::fail("recovered payload corrupt");
            }
        }
    }
}

RunFn make_run_fn(const ModelConfig& config, Mutation mutation)
{
    return [config, mutation](Strategy& strategy) {
        CommitModel model(config, mutation);
        return model.run(strategy);
    };
}

}  // namespace pccheck::mc
