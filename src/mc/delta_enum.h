#ifndef PCCHECK_MC_DELTA_ENUM_H_
#define PCCHECK_MC_DELTA_ENUM_H_

/**
 * @file
 * Crash-state enumeration for the incremental (delta-log) tier
 * (docs/DELTA_LOG.md).
 *
 * The workload is a deterministic single-writer program — exactly the
 * production discipline, where only the training thread appends — so
 * there is no schedule dimension to explore; the state space is the
 * crash dimension. The model interleaves full-checkpoint publishes
 * with delta-frame appends over CrashSimStorage, records a
 * CrashSnapshot after every storage op, and the enumerator
 * materializes every (crash point, unflushed-line mask) image, runs
 * the REAL recovery path (recover_latest), and asserts:
 *
 *  - floor: once a full checkpoint's publish or a frame's append has
 *    RETURNED (the durability ack), every later crash image must
 *    recover an iteration at least that new — recovery never surfaces
 *    state older than the last durable point;
 *  - ceiling: recovery never surfaces an iteration newer than the
 *    newest seal or publish that had STARTED by the crash op —
 *    i.e. never newer than the last sealed frame;
 *  - integrity: the recovered image must be byte-identical to the
 *    model's expected state at the recovered iteration (base image
 *    with every applied frame's chunks replayed on top).
 *
 * Mutations prove the checker has teeth:
 *  - kAckBeforePayload acks the append after sealing the header but
 *    before persisting the payload — the classic WAL ordering bug the
 *    delta-seal-before-manifest lint rule guards against;
 *  - kResetBeforePublish garbage-collects the epoch before the
 *    covering full checkpoint's pointer record is durable — the GC
 *    gating bug SlotStore::last_published exists to prevent.
 */

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace pccheck::mc {

/** Which delta-tier weakening (if any) to run. */
enum class DeltaMutation {
    kNone,               ///< faithful; checker must find nothing
    kAckBeforePayload,   ///< append acked at header seal, payload late
    kResetBeforePublish, ///< epoch GC before the covering publish
};

/** Shape of the delta workload. */
struct DeltaModelConfig {
    int fulls = 3;           ///< full checkpoints published
    int deltas_between = 2;  ///< delta frames between fulls
    std::uint32_t chunks = 4;
    Bytes chunk_bytes = 64;  ///< one PMEM line per chunk
    int dirty_per_delta = 2; ///< chunks mutated per delta iteration
    Bytes delta_log_bytes = 8192;
    std::uint64_t storage_seed = 1;
};

/** Bounds for the mask enumeration at each crash point. */
struct DeltaEnumOptions {
    std::size_t exhaustive_line_limit = 10;
    std::size_t sampled_masks = 512;
    std::uint64_t seed = 1;
};

/** Outcome of one delta crash enumeration. */
struct DeltaEnumResult {
    bool violated = false;
    std::string message;
    std::size_t crash_points = 0;
    std::size_t images = 0;
    std::size_t sampled_points = 0;
    std::size_t frames_sealed = 0;
    std::size_t fulls_published = 0;
    /** First violating image (valid iff violated). */
    std::size_t crash_op = 0;
    std::uint64_t crash_mask = 0;
};

/** Run the workload once, then enumerate crash images at every
 *  recorded storage op. Stops at the first violation. */
DeltaEnumResult enumerate_delta_crashes(
    const DeltaModelConfig& config, DeltaMutation mutation,
    const DeltaEnumOptions& opts = DeltaEnumOptions());

/**
 * Re-run one (crash op, mask) image from a violating enumeration —
 * the workload is deterministic, so this reproduces it exactly.
 * @return the violation message, or "" when the image now passes.
 */
std::string replay_delta_crash(const DeltaModelConfig& config,
                               DeltaMutation mutation, std::size_t crash_op,
                               std::uint64_t crash_mask);

}  // namespace pccheck::mc

#endif  // PCCHECK_MC_DELTA_ENUM_H_
