/**
 * @file
 * Unit tests for the model checker itself: token codec round-trips,
 * scheduler serialization and determinism, deterministic replay
 * (satellite requirement: same seed => byte-identical trace; a saved
 * failing token => the same assertion), and the exploration drivers
 * on small synthetic models.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mc/crash_enum.h"
#include "mc/delta_enum.h"
#include "mc/recovery_enum.h"
#include "mc/explore.h"
#include "mc/models.h"
#include "mc/scheduler.h"
#include "mc/shim.h"
#include "mc/token.h"

namespace pccheck::mc {
namespace {

// ---- token codec ----

TEST(Token, RoundTripsSchedules)
{
    const std::vector<std::uint8_t> choices = {0, 0, 0, 1, 1, 2, 0};
    const std::string text = encode_token(3, choices);
    EXPECT_EQ(text, "v1.3.0x3,1x2,2,0");
    const auto token = decode_token(text);
    ASSERT_TRUE(token.has_value());
    EXPECT_EQ(token->num_threads, 3);
    EXPECT_EQ(token->choices, choices);
    EXPECT_FALSE(token->crash_op.has_value());
}

TEST(Token, RoundTripsCrashClause)
{
    const std::vector<std::uint8_t> choices = {1, 0};
    const std::string text = encode_token(2, choices, 27, 0x1b);
    EXPECT_EQ(text, "v1.2.1,0.crash@27:0x1b");
    const auto token = decode_token(text);
    ASSERT_TRUE(token.has_value());
    ASSERT_TRUE(token->crash_op.has_value());
    EXPECT_EQ(*token->crash_op, 27u);
    EXPECT_EQ(token->crash_mask, 0x1bu);
    EXPECT_EQ(token->choices, choices);
}

TEST(Token, RejectsGarbage)
{
    EXPECT_FALSE(decode_token("").has_value());
    EXPECT_FALSE(decode_token("v2.3.0").has_value());
    EXPECT_FALSE(decode_token("v1.0.0").has_value());
    EXPECT_FALSE(decode_token("v1.2.5").has_value());  // thread out of range
    EXPECT_FALSE(decode_token("v1.2.0.crash@3").has_value());
    EXPECT_FALSE(decode_token("v1.2.0.crash@3:0xzz").has_value());
}

// ---- scheduler ----

TEST(Scheduler, SerializesThreadsAndRecordsChoices)
{
    // Two threads increment a shared non-atomic counter through the
    // shim; serialization means no increment is lost regardless of
    // the schedule.
    Atomic<int> counter{0};
    auto body = [&counter] {
        for (int i = 0; i < 5; ++i) {
            counter.fetch_add(1, std::memory_order_seq_cst);
        }
    };
    Scheduler scheduler;
    DefaultStrategy strategy;
    const RunResult r = scheduler.run({body, body}, strategy);
    EXPECT_FALSE(r.violated);
    EXPECT_EQ(counter.load(std::memory_order_seq_cst), 10);
    EXPECT_EQ(r.choices.size(), r.steps);
    EXPECT_EQ(r.enabled.size(), r.steps);
}

TEST(Scheduler, ViolationAbortsAllThreads)
{
    Atomic<int> reached{0};
    auto bad = [] { Scheduler::fail("intentional"); };
    auto good = [&reached] {
        for (int i = 0; i < 100; ++i) {
            reached.fetch_add(1, std::memory_order_seq_cst);
        }
    };
    Scheduler scheduler;
    DefaultStrategy strategy;
    const RunResult r = scheduler.run({bad, good}, strategy);
    EXPECT_TRUE(r.violated);
    EXPECT_EQ(r.message, "intentional");
}

TEST(Scheduler, MutexBlocksAndHandsOver)
{
    Mutex mu;
    std::vector<int> order;
    auto body = [&mu, &order](int id) {
        MutexLock lock(mu);
        order.push_back(id);
        // A schedule point inside the critical section: the other
        // thread must block on the mutex, not interleave.
        Atomic<int> dummy{0};
        dummy.store(1, std::memory_order_seq_cst);
        order.push_back(id);
    };
    Scheduler scheduler;
    DefaultStrategy strategy;
    const RunResult r = scheduler.run(
        {[&] { body(0); }, [&] { body(1); }}, strategy);
    EXPECT_FALSE(r.violated);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], order[1]);  // critical sections not interleaved
    EXPECT_EQ(order[2], order[3]);
}

TEST(Scheduler, DeadlockIsReportedAndTokenReplays)
{
    // Classic lock-order inversion; the DFS must find the schedule
    // where both threads hold one mutex and want the other.
    const auto run_one = [](Strategy& strategy) {
        Mutex a;
        Mutex b;
        Atomic<int> sync{0};
        auto t0 = [&] {
            a.lock();
            sync.store(1, std::memory_order_seq_cst);  // schedule point
            b.lock();
            b.unlock();
            a.unlock();
        };
        auto t1 = [&] {
            b.lock();
            sync.store(2, std::memory_order_seq_cst);  // schedule point
            a.lock();
            a.unlock();
            b.unlock();
        };
        Scheduler scheduler;
        return scheduler.run({t0, t1}, strategy);
    };
    const ExploreResult r =
        explore_dfs(run_one, /*num_threads=*/2, /*preemption_bound=*/2,
                    /*max_executions=*/1000);
    ASSERT_GT(r.violations, 0u);
    EXPECT_NE(r.first_message.find("deadlock"), std::string::npos)
        << r.first_message;
    // The token pinpoints the deadlocking schedule deterministically.
    const auto token = decode_token(r.first_token);
    ASSERT_TRUE(token.has_value());
    PrefixStrategy replay(token->choices);
    const RunResult replayed = run_one(replay);
    EXPECT_TRUE(replayed.violated);
    EXPECT_EQ(replayed.message, r.first_message);
}

// ---- strategies ----

TEST(Strategies, PctSameSeedSameSchedule)
{
    const ModelConfig config;
    const RunFn run = make_run_fn(config, Mutation::kNone);
    PctStrategy a(42, config.threads, 3, 36);
    PctStrategy b(42, config.threads, 3, 36);
    const RunResult ra = run(a);
    const RunResult rb = run(b);
    EXPECT_FALSE(ra.violated) << ra.message;
    // Satellite: same seed => byte-identical schedule trace.
    EXPECT_EQ(ra.choices, rb.choices);
    EXPECT_EQ(ra.enabled, rb.enabled);
    EXPECT_EQ(ra.yielded, rb.yielded);
}

TEST(Strategies, DifferentSeedsDiffer)
{
    const ModelConfig config;
    const RunFn run = make_run_fn(config, Mutation::kNone);
    bool any_difference = false;
    const RunResult base = run(*std::make_unique<PctStrategy>(
        1, config.threads, 3, 36));
    for (std::uint64_t seed = 2; seed < 12 && !any_difference; ++seed) {
        PctStrategy s(seed, config.threads, 3, 36);
        any_difference = run(s).choices != base.choices;
    }
    EXPECT_TRUE(any_difference);
}

TEST(Strategies, PrefixReplayIsExact)
{
    const ModelConfig config;
    const RunFn run = make_run_fn(config, Mutation::kNone);
    PctStrategy original(7, config.threads, 3, 36);
    const RunResult first = run(original);
    PrefixStrategy replay(first.choices);
    const RunResult second = run(replay);
    EXPECT_EQ(first.choices, second.choices);
    EXPECT_FALSE(replay.diverged());
}

// ---- the commit models ----

TEST(CommitModel, Listing1CleanUnderDefaultSchedule)
{
    const ModelConfig config;
    DefaultStrategy strategy;
    CommitModel model(config, Mutation::kNone);
    const RunResult r = model.run(strategy);
    EXPECT_FALSE(r.violated) << r.message;
}

TEST(CommitModel, MiniModelMatchesRealOnSmallDfs)
{
    // The mini model (mutation host) must itself be clean — otherwise
    // a mutation "caught" could be an artifact of the mini rewrite.
    ModelConfig config;
    config.use_mini = true;
    const ExploreResult r = explore_dfs(
        make_run_fn(config, Mutation::kNone), config.threads,
        /*preemption_bound=*/1, /*max_executions=*/3000);
    EXPECT_EQ(r.violations, 0u) << r.first_message;
    EXPECT_GT(r.executions, 1u);
}

TEST(CommitModel, DfsBound1Listing1Clean)
{
    const ModelConfig config;
    const ExploreResult r =
        explore_dfs(make_run_fn(config, Mutation::kNone), config.threads,
                    /*preemption_bound=*/1, /*max_executions=*/3000);
    EXPECT_EQ(r.violations, 0u) << r.first_message;
}

TEST(Mutations, TicketReuseCaughtWithReplayableToken)
{
    const ModelConfig config;
    const ExploreResult r = explore_dfs(
        make_run_fn(config, Mutation::kTicketReuse), config.threads,
        /*preemption_bound=*/2, /*max_executions=*/200000);
    ASSERT_GT(r.violations, 0u);
    // Satellite: the saved failing token replays to the same
    // assertion.
    const auto token = decode_token(r.first_token);
    ASSERT_TRUE(token.has_value());
    CommitModel model(config, Mutation::kTicketReuse);
    PrefixStrategy replay(token->choices);
    const RunResult replayed = model.run(replay);
    EXPECT_TRUE(replayed.violated);
    EXPECT_EQ(replayed.message, r.first_message);
}

TEST(Mutations, BlindStoreCaught)
{
    const ModelConfig config;
    const ExploreResult r = explore_dfs(
        make_run_fn(config, Mutation::kBlindStore), config.threads,
        /*preemption_bound=*/2, /*max_executions=*/200000);
    ASSERT_GT(r.violations, 0u);
    const auto token = decode_token(r.first_token);
    ASSERT_TRUE(token.has_value());
    CommitModel model(config, Mutation::kBlindStore);
    PrefixStrategy replay(token->choices);
    const RunResult replayed = model.run(replay);
    EXPECT_TRUE(replayed.violated);
}

// ---- crash enumeration ----

TEST(CrashEnum, Listing1HasNoUnrecoverableImage)
{
    const ModelConfig config;
    DefaultStrategy strategy;
    const CrashEnumResult r =
        enumerate_crashes(config, Mutation::kNone, strategy);
    EXPECT_FALSE(r.violated) << r.message << " token=" << r.token;
    EXPECT_GT(r.crash_points, 0u);
    EXPECT_GT(r.images, r.crash_points);
}

TEST(CrashEnum, NoFenceCaughtAndTokenReplays)
{
    const ModelConfig config;
    DefaultStrategy strategy;
    const CrashEnumResult r =
        enumerate_crashes(config, Mutation::kNoFence, strategy);
    ASSERT_TRUE(r.violated);
    EXPECT_FALSE(r.schedule_violation);
    const auto token = decode_token(r.token);
    ASSERT_TRUE(token.has_value());
    ASSERT_TRUE(token->crash_op.has_value());
    const std::string replayed =
        replay_crash_token(config, Mutation::kNoFence, *token);
    EXPECT_EQ(replayed, r.message);
    // The same token against the FIXED algorithm shows no violation.
    const std::string fixed =
        replay_crash_token(config, Mutation::kNone, *token);
    EXPECT_EQ(fixed, "");
}

TEST(CrashEnum, MutexQueueVariantClean)
{
    ModelConfig config;
    config.queue_kind = SlotQueueKind::kMutex;
    DefaultStrategy strategy;
    const CrashEnumResult r =
        enumerate_crashes(config, Mutation::kNone, strategy);
    EXPECT_FALSE(r.violated) << r.message;
}

TEST(DeltaEnum, FaithfulAppenderHasNoBadImage)
{
    const DeltaModelConfig config;
    const DeltaEnumResult r =
        enumerate_delta_crashes(config, DeltaMutation::kNone);
    EXPECT_FALSE(r.violated) << r.message;
    EXPECT_EQ(r.fulls_published, static_cast<std::size_t>(config.fulls));
    EXPECT_EQ(r.frames_sealed,
              static_cast<std::size_t>(config.fulls *
                                       config.deltas_between));
    EXPECT_GT(r.crash_points, 0u);
    EXPECT_GT(r.images, r.crash_points);
}

TEST(DeltaEnum, AckBeforePayloadCaughtAndReplays)
{
    const DeltaModelConfig config;
    const DeltaEnumResult r = enumerate_delta_crashes(
        config, DeltaMutation::kAckBeforePayload);
    ASSERT_TRUE(r.violated);
    // Deterministic workload: the (crash_op, mask) pair reproduces.
    const std::string replayed = replay_delta_crash(
        config, DeltaMutation::kAckBeforePayload, r.crash_op, r.crash_mask);
    EXPECT_EQ(replayed, r.message);
    // The same image against the FAITHFUL appender is clean.
    // (Op indices differ across variants, so re-check the faithful
    // enumeration end-to-end instead of replaying the same pair.)
    const DeltaEnumResult fixed =
        enumerate_delta_crashes(config, DeltaMutation::kNone);
    EXPECT_FALSE(fixed.violated) << fixed.message;
}

TEST(DeltaEnum, ResetBeforePublishCaughtAndReplays)
{
    const DeltaModelConfig config;
    const DeltaEnumResult r = enumerate_delta_crashes(
        config, DeltaMutation::kResetBeforePublish);
    ASSERT_TRUE(r.violated);
    const std::string replayed =
        replay_delta_crash(config, DeltaMutation::kResetBeforePublish,
                           r.crash_op, r.crash_mask);
    EXPECT_EQ(replayed, r.message);
}

TEST(DeltaEnum, DifferentStorageSeedsStayClean)
{
    for (std::uint64_t seed = 2; seed <= 4; ++seed) {
        DeltaModelConfig config;
        config.storage_seed = seed;
        const DeltaEnumResult r =
            enumerate_delta_crashes(config, DeltaMutation::kNone);
        EXPECT_FALSE(r.violated) << "seed " << seed << ": " << r.message;
    }
}

TEST(RecoveryEnum, FaithfulSalvageSurvivesEveryCrashImage)
{
    const RecoveryModelConfig config;
    const RecoveryEnumResult r =
        enumerate_recovery_crashes(config, RecoveryMutation::kNone);
    EXPECT_FALSE(r.violated) << r.message;
    // The model's planner really did fetch from the peer and salvage —
    // otherwise the enumeration covered nothing interesting.
    EXPECT_TRUE(r.salvaged);
    EXPECT_GT(r.crash_points, 0u);
    EXPECT_GT(r.images, r.crash_points);
}

TEST(RecoveryEnum, RepairOverLastGoodBreaksLocalFloor)
{
    const RecoveryModelConfig config;
    const RecoveryEnumResult r = enumerate_recovery_crashes(
        config, RecoveryMutation::kRepairOverLastGood);
    ASSERT_TRUE(r.violated);
    // The weakened salvage destroys the last good local copy while the
    // rotted one is still quarantined: no local floor remains.
    EXPECT_NE(r.message.find("no locally recoverable state"),
              std::string::npos)
        << r.message;
}

TEST(RecoveryEnum, DifferentStorageSeedsStayClean)
{
    for (std::uint64_t seed = 2; seed <= 4; ++seed) {
        RecoveryModelConfig config;
        config.storage_seed = seed;
        const RecoveryEnumResult r =
            enumerate_recovery_crashes(config, RecoveryMutation::kNone);
        EXPECT_FALSE(r.violated) << "seed " << seed << ": " << r.message;
    }
}

TEST(RecoveryEnum, MoreCheckpointsStayClean)
{
    RecoveryModelConfig config;
    config.checkpoints = 5;
    const RecoveryEnumResult r =
        enumerate_recovery_crashes(config, RecoveryMutation::kNone);
    EXPECT_FALSE(r.violated) << r.message;
}

}  // namespace
}  // namespace pccheck::mc
