#include "mc/scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "util/rng.h"

namespace pccheck::mc {

namespace {

/** Identity of the calling model thread, set for the lifetime of the
 *  thread body. Driver threads keep {nullptr, -1} and every shim
 *  operation they perform runs directly on the std primitives. */
thread_local Scheduler* tls_scheduler = nullptr;
thread_local int tls_thread = -1;

int lowest_set(std::uint32_t mask)
{
    for (int i = 0; i < 32; ++i) {
        if (mask & (1u << i)) {
            return i;
        }
    }
    return -1;
}

}  // namespace

struct Scheduler::Impl {
    enum class State : std::uint8_t {
        kReady,
        kBlockedMutex,
        kBlockedCond,
        kFinished,
    };

    struct ThreadState {
        State state = State::kReady;
        /** Mutex flag this thread waits on (kBlockedMutex / the mutex
         *  re-acquire half of kBlockedCond). */
        bool* wait_mutex = nullptr;
        /** CondVar generation counter waited on (kBlockedCond only). */
        const std::uint64_t* wait_cond = nullptr;
        std::uint64_t wait_seen = 0;
    };

    // Handshake: exactly one model thread (the one whose index equals
    // active_) may run; everyone else blocks on cv_ until picked.
    std::mutex mu;
    std::condition_variable cv;
    int active = -1;
    bool aborting = false;

    std::vector<ThreadState> threads;
    Strategy* strategy = nullptr;
    Options opts;
    RunResult result;

    /** Bitmask of threads in State::kReady. */
    std::uint32_t enabled_mask() const
    {
        std::uint32_t mask = 0;
        for (std::size_t i = 0; i < threads.size(); ++i) {
            if (threads[i].state == State::kReady) {
                mask |= 1u << i;
            }
        }
        return mask;
    }

    bool all_finished() const
    {
        for (const ThreadState& t : threads) {
            if (t.state != State::kFinished) {
                return false;
            }
        }
        return true;
    }

    void record_abort(std::string message)
    {
        if (!aborting) {
            aborting = true;
            result.violated = true;
            result.message = std::move(message);
            cv.notify_all();
        }
    }

    /**
     * Pick and wake the next thread. Called with mu held by the
     * thread leaving a schedule point (or by run() for the initial
     * pick with current == -1). Records the choice in the result
     * trace. No-op when aborting or everything finished.
     */
    void pick_next(std::unique_lock<std::mutex>& lock, int current,
                   bool yielding)
    {
        (void)lock;
        if (aborting || all_finished()) {
            active = -1;
            cv.notify_all();
            return;
        }
        std::uint32_t mask = enabled_mask();
        if (mask == 0) {
            record_abort("deadlock: no enabled threads");
            active = -1;
            return;
        }
        if (result.steps >= opts.max_steps) {
            record_abort("step limit exceeded (possible livelock)");
            active = -1;
            return;
        }
        int next = strategy->pick(current, mask, yielding, result.steps);
        if (next < 0 || next >= static_cast<int>(threads.size()) ||
            !(mask & (1u << next))) {
            record_abort("strategy picked a disabled thread");
            active = -1;
            return;
        }
        result.choices.push_back(static_cast<std::uint8_t>(next));
        result.enabled.push_back(mask);
        result.yielded.push_back(yielding ? 1 : 0);
        ++result.steps;
        active = next;
        cv.notify_all();
    }

    /**
     * Core schedule point: hand control to the strategy and wait to
     * be picked again. Called with mu held, by the active thread.
     */
    void schedule(std::unique_lock<std::mutex>& lock, int self, bool yielding)
    {
        pick_next(lock, self, yielding);
        wait_for_turn(lock, self);
    }

    /** Block until self becomes active (and Ready). Throws
     *  ExecutionAborted when the execution was torn down. */
    void wait_for_turn(std::unique_lock<std::mutex>& lock, int self)
    {
        while (!aborting &&
               !(active == self && threads[self].state == State::kReady)) {
            cv.wait(lock);
        }
        if (aborting) {
            throw ExecutionAborted{};
        }
    }
};

Scheduler::Scheduler() : impl_(new Impl) {}

Scheduler::~Scheduler()
{
    delete impl_;
}

Scheduler* Scheduler::current()
{
    return tls_scheduler;
}

int Scheduler::current_thread()
{
    return tls_thread;
}

void Scheduler::fail(std::string message)
{
    throw Violation{std::move(message)};
}

RunResult Scheduler::run(const std::vector<std::function<void()>>& bodies,
                         Strategy& strategy, const Options& opts)
{
    Impl& s = *impl_;
    s.threads.assign(bodies.size(), Impl::ThreadState{});
    s.strategy = &strategy;
    s.opts = opts;
    s.result = RunResult{};
    s.aborting = false;
    s.active = -1;

    std::vector<std::thread> workers;
    workers.reserve(bodies.size());
    for (std::size_t i = 0; i < bodies.size(); ++i) {
        workers.emplace_back([this, &s, &bodies, i]() {
            tls_scheduler = this;
            tls_thread = static_cast<int>(i);
            const int self = static_cast<int>(i);
            try {
                {
                    // Wait for the initial pick before touching the
                    // model: bodies run strictly one at a time.
                    std::unique_lock<std::mutex> lock(s.mu);
                    s.wait_for_turn(lock, self);
                }
                bodies[i]();
                std::unique_lock<std::mutex> lock(s.mu);
                s.threads[self].state = Impl::State::kFinished;
                s.pick_next(lock, self, false);
            } catch (const Violation& v) {
                std::unique_lock<std::mutex> lock(s.mu);
                s.threads[self].state = Impl::State::kFinished;
                s.record_abort(v.message);
            } catch (const ExecutionAborted&) {
                std::unique_lock<std::mutex> lock(s.mu);
                s.threads[self].state = Impl::State::kFinished;
                s.cv.notify_all();
            }
            tls_scheduler = nullptr;
            tls_thread = -1;
        });
    }

    {
        std::unique_lock<std::mutex> lock(s.mu);
        s.pick_next(lock, -1, false);
        while (!s.all_finished() && !(s.aborting && s.active == -1)) {
            s.cv.wait(lock);
            if (s.aborting) {
                // Finished threads already notified; blocked ones
                // observe aborting at wake and unwind.
                s.cv.notify_all();
            }
            if (s.all_finished()) {
                break;
            }
        }
    }
    for (std::thread& t : workers) {
        t.join();
    }
    return s.result;
}

void Scheduler::atomic_point()
{
    Impl& s = *impl_;
    const int self = tls_thread;
    std::unique_lock<std::mutex> lock(s.mu);
    s.schedule(lock, self, false);
}

void Scheduler::yield_point()
{
    Impl& s = *impl_;
    const int self = tls_thread;
    std::unique_lock<std::mutex> lock(s.mu);
    s.schedule(lock, self, true);
}

void Scheduler::mutex_acquire(bool* held)
{
    Impl& s = *impl_;
    const int self = tls_thread;
    std::unique_lock<std::mutex> lock(s.mu);
    while (*held) {
        // Barging allowed: on wake, re-check and possibly re-block.
        s.threads[self].state = Impl::State::kBlockedMutex;
        s.threads[self].wait_mutex = held;
        s.pick_next(lock, self, false);
        s.wait_for_turn(lock, self);
    }
    *held = true;
}

void Scheduler::mutex_release(bool* held)
{
    Impl& s = *impl_;
    std::unique_lock<std::mutex> lock(s.mu);
    *held = false;
    for (Impl::ThreadState& t : s.threads) {
        if (t.state == Impl::State::kBlockedMutex && t.wait_mutex == held) {
            t.state = Impl::State::kReady;
            t.wait_mutex = nullptr;
        }
    }
    // No schedule point: the release itself is not a race the DFS
    // needs to branch on — the next atomic point covers it.
}

void Scheduler::cond_wait(bool* held, const std::uint64_t* generation,
                          std::uint64_t seen)
{
    Impl& s = *impl_;
    const int self = tls_thread;
    std::unique_lock<std::mutex> lock(s.mu);
    // Release the associated mutex and wake its waiters.
    *held = false;
    for (Impl::ThreadState& t : s.threads) {
        if (t.state == Impl::State::kBlockedMutex && t.wait_mutex == held) {
            t.state = Impl::State::kReady;
            t.wait_mutex = nullptr;
        }
    }
    if (*generation == seen) {
        s.threads[self].state = Impl::State::kBlockedCond;
        s.threads[self].wait_cond = generation;
        s.threads[self].wait_seen = seen;
    }
    s.pick_next(lock, self, false);
    s.wait_for_turn(lock, self);
    s.threads[self].wait_cond = nullptr;
    // Re-acquire the mutex before returning to the caller.
    while (*held) {
        s.threads[self].state = Impl::State::kBlockedMutex;
        s.threads[self].wait_mutex = held;
        s.pick_next(lock, self, false);
        s.wait_for_turn(lock, self);
    }
    *held = true;
}

void Scheduler::cond_notify(const std::uint64_t* generation)
{
    Impl& s = *impl_;
    std::unique_lock<std::mutex> lock(s.mu);
    for (Impl::ThreadState& t : s.threads) {
        if (t.state == Impl::State::kBlockedCond &&
            t.wait_cond == generation) {
            t.state = Impl::State::kReady;
            t.wait_cond = nullptr;
        }
    }
}

// ---- strategies ----

int DefaultStrategy::pick(int current, std::uint32_t enabled, bool yielding,
                          std::size_t step)
{
    (void)step;
    const std::uint32_t self_bit =
        (current >= 0) ? (1u << current) : 0;
    if (!yielding && (enabled & self_bit)) {
        return current;
    }
    // Round-robin starting after current so yields make progress.
    for (int d = 1; d <= 32; ++d) {
        const int cand = (current + d) & 31;
        if (enabled & (1u << cand)) {
            return cand;
        }
    }
    return lowest_set(enabled);
}

int PrefixStrategy::pick(int current, std::uint32_t enabled, bool yielding,
                         std::size_t step)
{
    if (step < prefix_.size()) {
        const int want = prefix_[step];
        if (enabled & (1u << want)) {
            return want;
        }
        diverged_ = true;  // fall through to a legal pick
    }
    return fallback_.pick(current, enabled, yielding, step);
}

PctStrategy::PctStrategy(std::uint64_t seed, int num_threads, int depth,
                         std::size_t expected_length)
{
    Rng rng(seed);
    priority_.resize(static_cast<std::size_t>(num_threads));
    // Distinct initial priorities: a random permutation of
    // [n, 2n) so demotions (successive negative values) always land
    // below every initial priority.
    std::vector<std::int64_t> pool;
    for (int i = 0; i < num_threads; ++i) {
        pool.push_back(num_threads + i);
    }
    for (int i = 0; i < num_threads; ++i) {
        const std::size_t j =
            rng.next_below(static_cast<std::uint64_t>(pool.size()));
        priority_[static_cast<std::size_t>(i)] = pool[j];
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(j));
    }
    if (expected_length == 0) {
        expected_length = 1;
    }
    for (int c = 1; c < depth; ++c) {
        change_points_.push_back(
            rng.next_below(static_cast<std::uint64_t>(expected_length)));
    }
    std::sort(change_points_.begin(), change_points_.end());
}

int PctStrategy::pick(int current, std::uint32_t enabled, bool yielding,
                      std::size_t step)
{
    // Priority-change point or forced yield: demote the running
    // thread below everything seen so far (PCT depth mechanism; the
    // yield demotion is the standard fair-PCT extension that keeps
    // spin-waiting threads from monopolizing the schedule).
    const bool change =
        std::binary_search(change_points_.begin(), change_points_.end(), step);
    if (current >= 0 && (change || yielding)) {
        priority_[static_cast<std::size_t>(current)] = --low_water_;
    }
    int best = -1;
    for (std::size_t i = 0; i < priority_.size(); ++i) {
        if (!(enabled & (1u << i))) {
            continue;
        }
        if (best < 0 || priority_[i] > priority_[static_cast<std::size_t>(
                                           best)]) {
            best = static_cast<int>(i);
        }
    }
    return best;
}

}  // namespace pccheck::mc
