#include "mc/explore.h"

#include <utility>

#include "mc/token.h"

namespace pccheck::mc {

namespace {

int popcount(std::uint32_t v)
{
    int n = 0;
    while (v != 0) {
        v &= v - 1;
        ++n;
    }
    return n;
}

/** Preemptions along choices[0..i) with @p alt substituted at @p i. */
int preemptions_with_alt(const RunResult& r, std::size_t i, int alt)
{
    int p = 0;
    for (std::size_t j = 1; j <= i; ++j) {
        const int chosen = (j == i) ? alt : r.choices[j];
        const int prev = r.choices[j - 1];
        if (chosen != prev && ((r.enabled[j] >> prev) & 1u) != 0 &&
            r.yielded[j] == 0) {
            ++p;
        }
    }
    return p;
}

void record_violation(ExploreResult* out, const RunResult& r,
                      int num_threads, std::uint64_t seed)
{
    ++out->violations;
    if (out->first_token.empty()) {
        out->first_message = r.message;
        out->first_token = encode_token(num_threads, r.choices);
        out->first_seed = seed;
    }
}

}  // namespace

int count_preemptions(const std::vector<std::uint8_t>& choices,
                      const std::vector<std::uint32_t>& enabled,
                      const std::vector<std::uint8_t>& yielded)
{
    int p = 0;
    for (std::size_t j = 1; j < choices.size(); ++j) {
        const int prev = choices[j - 1];
        if (choices[j] != prev && ((enabled[j] >> prev) & 1u) != 0 &&
            yielded[j] == 0) {
            ++p;
        }
    }
    return p;
}

ExploreResult explore_dfs(const RunFn& run_one, int num_threads,
                          int preemption_bound, std::size_t max_executions,
                          bool stop_at_first)
{
    ExploreResult out;
    // Each stack entry is a choice prefix; the execution replays it
    // and continues deterministically. branch_from remembers the
    // prefix length so siblings are only spawned past it (spawning
    // earlier would duplicate schedules the parent already covers).
    struct Frame {
        std::vector<std::uint8_t> prefix;
    };
    std::vector<Frame> stack;
    stack.push_back(Frame{});

    while (!stack.empty()) {
        if (out.executions >= max_executions) {
            out.truncated = true;
            break;
        }
        Frame frame = std::move(stack.back());
        stack.pop_back();
        const std::size_t branch_from = frame.prefix.size();

        PrefixStrategy strategy(std::move(frame.prefix));
        RunResult r = run_one(strategy);
        ++out.executions;
        if (r.violated) {
            record_violation(&out, r, num_threads, 0);
            if (stop_at_first) {
                break;
            }
        }

        for (std::size_t i = branch_from; i < r.choices.size(); ++i) {
            if (r.yielded[i] != 0 || popcount(r.enabled[i]) <= 1) {
                continue;
            }
            for (int alt = 0; alt < num_threads; ++alt) {
                if (alt == r.choices[i] ||
                    ((r.enabled[i] >> alt) & 1u) == 0) {
                    continue;
                }
                if (preemptions_with_alt(r, i, alt) > preemption_bound) {
                    continue;
                }
                std::vector<std::uint8_t> sibling(r.choices.begin(),
                                                  r.choices.begin() +
                                                      static_cast<
                                                          std::ptrdiff_t>(i));
                sibling.push_back(static_cast<std::uint8_t>(alt));
                stack.push_back(Frame{std::move(sibling)});
            }
        }
    }
    return out;
}

ExploreResult explore_pct(const RunFn& run_one, int num_threads,
                          std::uint64_t seed, std::size_t schedules,
                          int depth, std::size_t expected_length,
                          bool stop_at_first)
{
    ExploreResult out;
    for (std::size_t k = 0; k < schedules; ++k) {
        const std::uint64_t s = seed + k;
        PctStrategy strategy(s, num_threads, depth, expected_length);
        RunResult r = run_one(strategy);
        ++out.executions;
        if (r.violated) {
            record_violation(&out, r, num_threads, s);
            if (stop_at_first) {
                break;
            }
        }
    }
    return out;
}

}  // namespace pccheck::mc
