#include "mc/recovery_enum.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "core/recovery_planner.h"
#include "core/slot_store.h"
#include "mc/models.h"
#include "storage/crash_sim.h"
#include "storage/mem_storage.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/rng.h"

namespace pccheck::mc {
namespace {

/** In-memory stand-in for a quorum peer holding the pristine image. */
class MemorySource final : public RecoverySource {
  public:
    MemorySource(std::uint64_t counter, std::uint64_t iteration,
                 std::vector<std::uint8_t> image)
        : counter_(counter), iteration_(iteration), image_(std::move(image))
    {
    }

    const char* name() const override { return "mem-peer"; }

    std::vector<RecoveryCandidate> survey() override
    {
        RecoveryCandidate candidate;
        candidate.counter = counter_;
        candidate.iteration = iteration_;
        candidate.data_len = image_.size();
        candidate.data_crc = crc32c(image_.data(), image_.size());
        candidate.cost = 1.0;
        candidate.local = false;
        candidate.source_node = 1;
        return {candidate};
    }

    bool fetch(const RecoveryCandidate& candidate,
               std::vector<std::uint8_t>* out) override
    {
        if (candidate.counter != counter_) {
            return false;
        }
        *out = image_;
        return true;
    }

  private:
    std::uint64_t counter_;
    std::uint64_t iteration_;
    std::vector<std::uint8_t> image_;
};

/** Everything the damaged-device salvage run leaves behind. */
struct RecoveryTrace {
    std::unique_ptr<CrashSimStorage> device;
    std::vector<CrashSnapshot> snaps;
    Bytes image_len = 0;
    std::uint64_t last_counter = 0;  ///< K: rotted, then salvaged
    std::uint64_t prev_counter = 0;  ///< K-1: last locally intact
    std::map<std::uint64_t, std::vector<std::uint8_t>> expected;
    bool salvaged = false;
};

RecoveryTrace
run_model(const RecoveryModelConfig& cfg, RecoveryMutation mutation)
{
    PCCHECK_CHECK(cfg.checkpoints >= 2);
    constexpr std::uint32_t kSlots = 2;
    RecoveryTrace trace;
    trace.image_len = cfg.image_len;
    trace.device = std::make_unique<CrashSimStorage>(
        SlotStore::required_size(kSlots, cfg.image_len),
        StorageKind::kPmemClwb, cfg.storage_seed,
        /*eviction_probability=*/0.5);
    CrashSimStorage& device = *trace.device;

    SlotStore store = SlotStore::format(device, kSlots, cfg.image_len);
    std::vector<std::uint8_t> image(cfg.image_len);
    for (int c = 1; c <= cfg.checkpoints; ++c) {
        const auto counter = static_cast<std::uint64_t>(c);
        for (Bytes j = 0; j < cfg.image_len; ++j) {
            image[j] = payload_byte(counter, j);
        }
        trace.expected[counter] = image;
        const std::uint32_t slot = counter % kSlots;
        PCCHECK_MUST(store.write_slot(slot, 0, image.data(), image.size()));
        PCCHECK_MUST(store.persist_slot_range(slot, 0, image.size()));
        PCCHECK_MUST(device.fence());
        PCCHECK_MUST(store.publish_pointer(CheckpointPointer{
            counter, slot, cfg.image_len, counter * 10,
            crc32c(image.data(), image.size())}));
    }
    trace.last_counter = static_cast<std::uint64_t>(cfg.checkpoints);
    trace.prev_counter = trace.last_counter - 1;
    const std::uint32_t rotted_slot = trace.last_counter % kSlots;
    const std::uint32_t good_slot = trace.prev_counter % kSlots;

    // Latent bit rot: durably flip one payload byte of the newest
    // checkpoint. This happened "in the past" — it is part of every
    // crash image, not a crash point itself.
    const Bytes rot_off = store.slot_offset(rotted_slot) + 7;
    std::uint8_t byte = 0;
    PCCHECK_MUST(device.read(rot_off, &byte, 1));
    byte ^= 0x40;
    PCCHECK_MUST(device.write(rot_off, &byte, 1));
    PCCHECK_MUST(device.persist(rot_off, 1));
    PCCHECK_MUST(device.fence());

    // Every storage op from here on is a crash point: the quarantine,
    // salvage, and publish writes of recovery itself.
    std::size_t op_counter = 0;
    device.set_post_op_hook([&trace, &device,
                             &op_counter](const StorageOp&) {
        const std::size_t idx = op_counter++;
        CrashSnapshot snap;
        snap.op_index = idx;
        snap.durable = device.crash_image_keeping({});
        snap.lines = device.unflushed_lines();
        const Bytes line_bytes = device.line_size();
        const Bytes device_size = device.size();
        for (Bytes line : snap.lines) {
            const Bytes start = line * line_bytes;
            const Bytes len = std::min(line_bytes, device_size - start);
            std::vector<std::uint8_t> buf(len);
            PCCHECK_MUST(device.read(start, buf.data(), len));
            snap.line_data.push_back(std::move(buf));
        }
        trace.snaps.push_back(std::move(snap));
    });

    MemorySource peer(trace.last_counter, trace.last_counter * 10,
                      trace.expected[trace.last_counter]);
    if (mutation == RecoveryMutation::kNone) {
        // The real armored recovery: quarantine, fetch from the peer,
        // salvage into the quarantined slot, publish.
        RecoveryPlanner planner(&device);
        planner.add_source(&peer);
        std::vector<std::uint8_t> out;
        const auto planned = planner.recover(&out);
        trace.salvaged = planned.has_value() && planned->salvaged;
    } else {
        // THE BUG: salvage writes the fetched image over the slot
        // holding the last locally valid checkpoint. A crash mid-write
        // leaves the rotted newest copy AND a half-written previous
        // copy — no local recovery target at all.
        SlotStore reopened = SlotStore::open(device);
        PCCHECK_MUST(reopened.quarantine_slot(rotted_slot));
        const std::vector<std::uint8_t>& pristine =
            trace.expected[trace.last_counter];
        PCCHECK_MUST(reopened.write_slot(good_slot, 0, pristine.data(),
                                         pristine.size()));
        PCCHECK_MUST(
            reopened.persist_slot_range(good_slot, 0, pristine.size()));
        PCCHECK_MUST(device.fence());
        PCCHECK_MUST(reopened.publish_pointer(CheckpointPointer{
            trace.last_counter, good_slot, cfg.image_len,
            trace.last_counter * 10,
            crc32c(pristine.data(), pristine.size())}));
        PCCHECK_MUST(reopened.release_quarantine(rotted_slot));
        trace.salvaged = true;
    }
    device.set_post_op_hook(nullptr);
    return trace;
}

/** Run the planner over @p mem; nullopt result stays nullopt. */
std::optional<PlannedRecovery>
planner_recover(MemStorage& mem, RecoverySource* source,
                std::vector<std::uint8_t>* out)
{
    RecoveryPlanner planner(&mem);
    if (source != nullptr) {
        planner.add_source(source);
    }
    return planner.recover(out);
}

/** Materialize one crash image and run recovery invariants against it.
 *  @return the violation message, or std::nullopt when consistent. */
std::optional<std::string>
check_image(const RecoveryTrace& trace, const CrashSnapshot& snap,
            std::uint64_t mask)
{
    std::vector<std::uint8_t> image = snap.durable;
    const Bytes line_size = trace.device->line_size();
    for (std::size_t i = 0; i < snap.lines.size(); ++i) {
        if (((mask >> i) & 1u) == 0) {
            continue;
        }
        const Bytes start = snap.lines[i] * line_size;
        std::copy(snap.line_data[i].begin(), snap.line_data[i].end(),
                  image.begin() + static_cast<std::ptrdiff_t>(start));
    }

    // 1. Local floor + integrity: with no peer, recovery must still
    //    find at least K-1 — salvage never cost us the last good copy.
    {
        MemStorage mem(image.size());
        std::copy(image.begin(), image.end(), mem.raw());
        std::vector<std::uint8_t> buffer;
        std::optional<PlannedRecovery> local;
        try {
            local = planner_recover(mem, nullptr, &buffer);
        } catch (const FatalError& e) {
            return std::string("local recovery raised: ") + e.what();
        }
        if (!local.has_value()) {
            std::ostringstream os;
            os << "no locally recoverable state although checkpoint "
               << trace.prev_counter << " was durable before salvage";
            return os.str();
        }
        const std::uint64_t counter = local->result.counter;
        if (counter < trace.prev_counter) {
            std::ostringstream os;
            os << "local recovery found counter " << counter
               << ", older than the pre-salvage floor "
               << trace.prev_counter;
            return os.str();
        }
        const auto expected = trace.expected.find(counter);
        if (expected == trace.expected.end()) {
            std::ostringstream os;
            os << "local recovery found counter " << counter
               << " which never existed";
            return os.str();
        }
        if (buffer != expected->second) {
            std::ostringstream os;
            os << "local recovery of counter " << counter
               << " returned bytes that do not match that checkpoint";
            return os.str();
        }
    }

    // 2. Fixpoint / re-entrancy: the armored recovery restores K, and
    //    running it AGAIN on the device it just repaired changes
    //    nothing — same counter, byte-identical media.
    {
        MemStorage mem(image.size());
        std::copy(image.begin(), image.end(), mem.raw());
        MemorySource peer(trace.last_counter, trace.last_counter * 10,
                          trace.expected.at(trace.last_counter));
        std::vector<std::uint8_t> buffer;
        std::optional<PlannedRecovery> first;
        try {
            first = planner_recover(mem, &peer, &buffer);
        } catch (const FatalError& e) {
            return std::string("armored recovery raised: ") + e.what();
        }
        if (!first.has_value() ||
            first->result.counter != trace.last_counter) {
            std::ostringstream os;
            os << "armored recovery with a live peer did not restore "
               << trace.last_counter;
            return os.str();
        }
        if (buffer != trace.expected.at(trace.last_counter)) {
            return "armored recovery restored the wrong bytes";
        }
        const std::vector<std::uint8_t> media_after_first(
            mem.raw(), mem.raw() + mem.size());
        std::vector<std::uint8_t> buffer2;
        std::optional<PlannedRecovery> second;
        try {
            second = planner_recover(mem, &peer, &buffer2);
        } catch (const FatalError& e) {
            return std::string("re-entrant recovery raised: ") + e.what();
        }
        if (!second.has_value() ||
            second->result.counter != first->result.counter) {
            return "re-entrant recovery changed the recovered counter";
        }
        if (buffer2 != buffer) {
            return "re-entrant recovery changed the recovered bytes";
        }
        if (!std::equal(media_after_first.begin(), media_after_first.end(),
                        mem.raw())) {
            return "re-entrant recovery mutated an already-repaired "
                   "device (no fixpoint)";
        }
    }
    return std::nullopt;
}

/** The masks to try at one crash point (same policy as delta_enum). */
std::vector<std::uint64_t>
masks_for(std::size_t num_lines, std::size_t op_index,
          const RecoveryEnumOptions& opts, bool* sampled)
{
    std::vector<std::uint64_t> masks;
    if (num_lines <= opts.exhaustive_line_limit) {
        const std::uint64_t count = 1ULL << num_lines;
        masks.reserve(count);
        for (std::uint64_t m = 0; m < count; ++m) {
            masks.push_back(m);
        }
        return masks;
    }
    *sampled = true;
    const std::uint64_t full =
        num_lines >= 64 ? ~0ULL : (1ULL << num_lines) - 1;
    masks.push_back(0);
    masks.push_back(full);
    Rng rng(opts.seed ^ (0x9E3779B97F4A7C15ULL * (op_index + 1)));
    for (std::size_t k = 0; k < opts.sampled_masks; ++k) {
        masks.push_back(rng.next_u64() & full);
    }
    return masks;
}

}  // namespace

RecoveryEnumResult
enumerate_recovery_crashes(const RecoveryModelConfig& config,
                           RecoveryMutation mutation,
                           const RecoveryEnumOptions& opts)
{
    // Thousands of planner runs, each chatty about salvage/quarantine:
    // keep only warnings while enumerating.
    const LogLevel saved_level = log_level();
    set_log_level(LogLevel::kWarn);
    const RecoveryTrace trace = run_model(config, mutation);

    RecoveryEnumResult out;
    out.salvaged = trace.salvaged;
    for (const CrashSnapshot& snap : trace.snaps) {
        ++out.crash_points;
        bool sampled = false;
        const std::vector<std::uint64_t> masks =
            masks_for(snap.lines.size(), snap.op_index, opts, &sampled);
        if (sampled) {
            ++out.sampled_points;
        }
        for (const std::uint64_t mask : masks) {
            ++out.images;
            const auto violation = check_image(trace, snap, mask);
            if (violation.has_value()) {
                out.violated = true;
                out.message = *violation;
                out.crash_op = snap.op_index;
                out.crash_mask = mask;
                set_log_level(saved_level);
                return out;
            }
        }
    }
    set_log_level(saved_level);
    return out;
}

}  // namespace pccheck::mc
