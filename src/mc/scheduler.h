#ifndef PCCHECK_MC_SCHEDULER_H_
#define PCCHECK_MC_SCHEDULER_H_

/**
 * @file
 * Cooperative scheduler for the PCcheck model checker.
 *
 * The checker runs the real Listing-1 code (ConcurrentCommit,
 * FreeSlotQueue, SlotStore) compiled against the mc::Atomic /
 * mc::Mutex shim (src/mc/shim.h). Every shim operation is a
 * *schedule point*: the thread that reaches it parks on a handshake
 * and a Strategy decides which model thread runs next. At most one
 * model thread executes at any instant — the execution is fully
 * serialized, so the exploration is deterministic and every explored
 * interleaving can be replayed from its recorded choice sequence
 * (see token.h).
 *
 * Model threads are real OS threads blocked on a condition variable
 * rather than fibers: sanitizers and thread_local-based subsystems
 * (the span tracer) work unmodified, and the handshake guarantees the
 * serialization a fiber design would give.
 *
 * Schedule-point policy (documented in docs/MODEL_CHECKING.md):
 *  - every non-relaxed atomic load/store/RMW/CAS yields BEFORE the
 *    operation executes;
 *  - std::memory_order_relaxed operations run without yielding by
 *    default (they are monitoring counters by lint-enforced
 *    convention; Options::schedule_relaxed includes them);
 *  - acquiring an uncontended mc::Mutex does not yield (critical
 *    sections contain no schedule points of their own, so acquisition
 *    order is already decided at the preceding atomic point);
 *    acquiring a HELD mutex blocks the thread until unlock;
 *  - mc::yield() (the slot-wait backoff) is a forced-fairness point:
 *    the scheduler must switch to another enabled thread when one
 *    exists, and the DFS explorer does not branch there.
 *
 * A model thread signals an invariant violation by throwing
 * mc::Violation; the scheduler aborts the execution (remaining
 * threads unwind via mc::ExecutionAborted at their next schedule
 * point) and reports the violation with the choice trace that
 * produced it.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pccheck::mc {

/** Thrown by model code when a checked invariant does not hold. */
struct Violation {
    std::string message;
};

/** Internal unwind signal for threads of an aborted execution. */
struct ExecutionAborted {};

/** Picks the next thread to run at each schedule point. */
class Strategy {
  public:
    virtual ~Strategy() = default;

    /**
     * @param current thread leaving the schedule point (-1 at the
     *        initial pick before any thread has run)
     * @param enabled bitmask of runnable threads (never 0)
     * @param yielding true when @p current reached a forced-fairness
     *        yield (spin-wait backoff): the strategy must not pick it
     *        again unless it is the only enabled thread
     * @param step 0-based index of this schedule point
     * @return the chosen thread (its bit must be set in @p enabled)
     */
    virtual int pick(int current, std::uint32_t enabled, bool yielding,
                     std::size_t step) = 0;
};

/** One explored execution: the schedule trace plus its outcome. */
struct RunResult {
    /** Thread chosen at each schedule point (the replay token body). */
    std::vector<std::uint8_t> choices;
    /** Enabled-thread bitmask observed at each point. */
    std::vector<std::uint32_t> enabled;
    /** Whether the point was a forced-fairness yield (no DFS branch). */
    std::vector<std::uint8_t> yielded;
    bool violated = false;
    std::string message;
    std::size_t steps = 0;
};

/** Serializing scheduler: runs model threads one at a time. */
class Scheduler {
  public:
    struct Options {
        /** Execution abandons with a livelock violation past this. */
        std::size_t max_steps = 100000;
        /** Treat relaxed atomic ops as schedule points too. */
        bool schedule_relaxed = false;
    };

    Scheduler();
    ~Scheduler();
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /**
     * Run one execution of @p bodies under @p strategy. Blocks until
     * every model thread finished (or the execution aborted on a
     * violation/deadlock/step limit). Reentrant per object: each call
     * is an independent execution.
     */
    RunResult run(const std::vector<std::function<void()>>& bodies,
                  Strategy& strategy, const Options& opts);
    RunResult run(const std::vector<std::function<void()>>& bodies,
                  Strategy& strategy)
    {
        return run(bodies, strategy, Options());
    }

    /** Scheduler driving the calling model thread; null on driver
     *  threads (setup/teardown code runs unscheduled). */
    static Scheduler* current();

    /** Model-thread index of the caller, -1 on driver threads. */
    static int current_thread();

    // ---- called from the shim (model threads only) ----

    /** Schedule point before a non-relaxed atomic operation. */
    void atomic_point();

    /** Forced-fairness yield (spin-wait backoff, mc::yield()). */
    void yield_point();

    /** Cooperative mutex acquire over the shim's held flag. */
    void mutex_acquire(bool* held);

    /** Cooperative mutex release; wakes threads blocked on @p held. */
    void mutex_release(bool* held);

    /**
     * Cooperative condition wait: @p held is the associated mutex
     * flag (released while waiting, re-acquired before returning),
     * @p generation the CondVar's notify counter sampled by the
     * caller. Returns on any notify (spurious wakeups allowed).
     */
    void cond_wait(bool* held, const std::uint64_t* generation,
                   std::uint64_t seen);

    /** Wake threads blocked in cond_wait on @p generation. */
    void cond_notify(const std::uint64_t* generation);

    /** Raise a violation from model code ([[noreturn]]). */
    [[noreturn]] static void fail(std::string message);

  private:
    struct Impl;
    Impl* impl_;
};

// ---- stock strategies ----

/** Run the current thread while enabled; round-robin otherwise. */
class DefaultStrategy : public Strategy {
  public:
    int pick(int current, std::uint32_t enabled, bool yielding,
             std::size_t step) override;
};

/**
 * Follow a recorded choice prefix, then DefaultStrategy. Used by the
 * DFS explorer (prefix = path to the branch point) and by replay
 * (prefix = the full token).
 */
class PrefixStrategy : public Strategy {
  public:
    explicit PrefixStrategy(std::vector<std::uint8_t> prefix)
        : prefix_(std::move(prefix))
    {
    }

    int pick(int current, std::uint32_t enabled, bool yielding,
             std::size_t step) override;

    /** True when a prefix choice was not enabled (divergent replay). */
    bool diverged() const { return diverged_; }

  private:
    std::vector<std::uint8_t> prefix_;
    DefaultStrategy fallback_;
    bool diverged_ = false;
};

/**
 * PCT (probabilistic concurrency testing): random thread priorities
 * with depth-1 random priority-change points. Yields and change
 * points demote the running thread below every other priority.
 */
class PctStrategy : public Strategy {
  public:
    /**
     * @param seed RNG seed (schedule identity)
     * @param num_threads model thread count
     * @param depth bug depth d (d-1 priority change points)
     * @param expected_length estimated schedule points per execution
     */
    PctStrategy(std::uint64_t seed, int num_threads, int depth,
                std::size_t expected_length);

    int pick(int current, std::uint32_t enabled, bool yielding,
             std::size_t step) override;

  private:
    std::vector<std::int64_t> priority_;
    std::vector<std::size_t> change_points_;
    std::int64_t low_water_ = 0;
};

}  // namespace pccheck::mc

#endif  // PCCHECK_MC_SCHEDULER_H_
