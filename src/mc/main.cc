/**
 * @file
 * mc_check — the PCcheck model-checking harness CLI.
 *
 * Modes:
 *   --mode dfs        exhaustive DFS with a preemption bound
 *   --mode pct        randomized PCT schedules
 *   --mode crash      crash-state enumeration over the persist trace
 *   --mode delta-crash  crash-state enumeration of the incremental
 *                     (delta-log) tier; --delta-mutation selects a
 *                     weakened appender variant, and with the default
 *                     "all" the mode is a meta-check like mutations
 *   --mode recovery-crash  crash-state enumeration over recovery's own
 *                     quarantine/salvage writes; --recovery-mutation
 *                     selects a weakened salvage, default "all" is a
 *                     meta-check like mutations
 *   --mode mutations  meta-check: every weakened variant must FAIL,
 *                     and its replay token must reproduce the failure
 *   --mode replay     re-run a --token printed by a failing mode
 *
 * Exit code 0 = clean (for mutations: every mutation caught),
 * 1 = violation found (for mutations: a mutation escaped),
 * 2 = usage error.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mc/crash_enum.h"
#include "mc/delta_enum.h"
#include "mc/recovery_enum.h"
#include "mc/explore.h"
#include "mc/models.h"
#include "mc/token.h"

namespace pccheck::mc {
namespace {

struct Args {
    std::string mode = "dfs";
    std::string model = "listing1";
    Mutation mutation = Mutation::kNone;
    int threads = 3;
    int checkpoints = 1;
    int bound = 2;
    std::size_t schedules = 10000;
    std::size_t max_executions = 2000000;
    std::uint64_t seed = 1;
    SlotQueueKind queue = SlotQueueKind::kVyukov;
    std::string token;
    /** --mode delta-crash variant selector; "all" = meta-check. */
    std::string delta_mutation = "all";
    /** --mode recovery-crash variant selector; "all" = meta-check. */
    std::string recovery_mutation = "all";
};

bool parse_mutation(const std::string& name, Mutation* out)
{
    if (name == "none") {
        *out = Mutation::kNone;
    } else if (name == "blind_store") {
        *out = Mutation::kBlindStore;
    } else if (name == "ticket_reuse") {
        *out = Mutation::kTicketReuse;
    } else if (name == "no_fence") {
        *out = Mutation::kNoFence;
    } else {
        return false;
    }
    return true;
}

const char* mutation_name(Mutation m)
{
    switch (m) {
      case Mutation::kNone:
        return "none";
      case Mutation::kBlindStore:
        return "blind_store";
      case Mutation::kTicketReuse:
        return "ticket_reuse";
      case Mutation::kNoFence:
        return "no_fence";
    }
    return "?";
}

ModelConfig config_from(const Args& args)
{
    ModelConfig config;
    config.threads = args.threads;
    config.checkpoints_per_thread = args.checkpoints;
    config.queue_kind = args.queue;
    config.use_mini = args.model == "mini";
    return config;
}

/** Schedule points per execution, for PCT change-point placement. */
std::size_t expected_length(const Args& args)
{
    return static_cast<std::size_t>(args.threads) *
           static_cast<std::size_t>(args.checkpoints) * 12;
}

int run_dfs(const Args& args)
{
    const ModelConfig config = config_from(args);
    const ExploreResult r =
        explore_dfs(make_run_fn(config, args.mutation), args.threads,
                    args.bound, args.max_executions);
    std::printf("[mc] dfs model=%s mutation=%s threads=%d bound=%d "
                "executions=%zu violations=%zu%s\n",
                args.model.c_str(), mutation_name(args.mutation),
                args.threads, args.bound, r.executions, r.violations,
                r.truncated ? " TRUNCATED" : "");
    if (r.violations != 0) {
        std::printf("[mc] VIOLATION: %s\n", r.first_message.c_str());
        std::printf("[mc] replay: %s\n", r.first_token.c_str());
        return 1;
    }
    return 0;
}

int run_pct(const Args& args)
{
    const ModelConfig config = config_from(args);
    const ExploreResult r =
        explore_pct(make_run_fn(config, args.mutation), args.threads,
                    args.seed, args.schedules, /*depth=*/3,
                    expected_length(args));
    std::printf("[mc] pct model=%s mutation=%s threads=%d schedules=%zu "
                "violations=%zu\n",
                args.model.c_str(), mutation_name(args.mutation),
                args.threads, r.executions, r.violations);
    if (r.violations != 0) {
        std::printf("[mc] VIOLATION (seed %llu): %s\n",
                    static_cast<unsigned long long>(r.first_seed),
                    r.first_message.c_str());
        std::printf("[mc] replay: %s\n", r.first_token.c_str());
        return 1;
    }
    return 0;
}

int run_crash(const Args& args)
{
    const ModelConfig config = config_from(args);
    std::size_t points = 0;
    std::size_t images = 0;
    for (std::size_t k = 0; k < args.schedules; ++k) {
        PctStrategy strategy(args.seed + k, args.threads, /*depth=*/3,
                             expected_length(args));
        const CrashEnumResult r =
            enumerate_crashes(config, args.mutation, strategy);
        points += r.crash_points;
        images += r.images;
        if (r.violated) {
            std::printf("[mc] crash-enum VIOLATION (schedule seed %llu): "
                        "%s\n",
                        static_cast<unsigned long long>(args.seed + k),
                        r.message.c_str());
            std::printf("[mc] replay: %s\n", r.token.c_str());
            return 1;
        }
    }
    std::printf("[mc] crash-enum model=%s mutation=%s schedules=%zu "
                "crash_points=%zu images=%zu violations=0\n",
                args.model.c_str(), mutation_name(args.mutation),
                args.schedules, points, images);
    return 0;
}

bool parse_delta_mutation(const std::string& name, DeltaMutation* out)
{
    if (name == "none") {
        *out = DeltaMutation::kNone;
    } else if (name == "ack_before_payload") {
        *out = DeltaMutation::kAckBeforePayload;
    } else if (name == "reset_before_publish") {
        *out = DeltaMutation::kResetBeforePublish;
    } else {
        return false;
    }
    return true;
}

const char* delta_mutation_name(DeltaMutation m)
{
    switch (m) {
      case DeltaMutation::kNone:
        return "none";
      case DeltaMutation::kAckBeforePayload:
        return "ack_before_payload";
      case DeltaMutation::kResetBeforePublish:
        return "reset_before_publish";
    }
    return "?";
}

/** One delta-crash enumeration; @return its exit code contribution. */
int run_delta_one(const Args& args, DeltaMutation mutation)
{
    DeltaModelConfig config;
    config.storage_seed = args.seed;
    DeltaEnumOptions opts;
    opts.seed = args.seed;
    const DeltaEnumResult r = enumerate_delta_crashes(config, mutation, opts);
    std::printf("[mc] delta-crash mutation=%s crash_points=%zu images=%zu "
                "sampled_points=%zu frames=%zu fulls=%zu %s\n",
                delta_mutation_name(mutation), r.crash_points, r.images,
                r.sampled_points, r.frames_sealed, r.fulls_published,
                r.violated ? "VIOLATED" : "clean");
    if (!r.violated) {
        return 0;
    }
    std::printf("[mc] VIOLATION: %s\n", r.message.c_str());
    std::printf("[mc] replay: crash_op=%zu mask=0x%llx\n", r.crash_op,
                static_cast<unsigned long long>(r.crash_mask));
    // The workload is deterministic: the (crash_op, mask) pair must
    // reproduce the violation on a fresh run.
    const std::string replayed =
        replay_delta_crash(config, mutation, r.crash_op, r.crash_mask);
    if (replayed.empty()) {
        std::printf("[mc] delta-crash replay did NOT reproduce\n");
        return 2;
    }
    std::printf("[mc] replay reproduced: %s\n", replayed.c_str());
    return 1;
}

int run_delta_crash(const Args& args)
{
    if (args.delta_mutation != "all") {
        DeltaMutation mutation{};
        if (!parse_delta_mutation(args.delta_mutation, &mutation)) {
            std::fprintf(stderr, "[mc] bad --delta-mutation %s\n",
                         args.delta_mutation.c_str());
            return 2;
        }
        return run_delta_one(args, mutation);
    }
    // Meta-check: the faithful appender must be clean AND both
    // weakened variants must be caught (with reproducing replays).
    bool ok = run_delta_one(args, DeltaMutation::kNone) == 0;
    ok = run_delta_one(args, DeltaMutation::kAckBeforePayload) == 1 && ok;
    ok = run_delta_one(args, DeltaMutation::kResetBeforePublish) == 1 && ok;
    if (ok) {
        std::printf("[mc] delta tier clean; all delta mutations caught\n");
    }
    return ok ? 0 : 1;
}

bool parse_recovery_mutation(const std::string& name,
                             RecoveryMutation* out)
{
    if (name == "none") {
        *out = RecoveryMutation::kNone;
    } else if (name == "repair_over_last_good") {
        *out = RecoveryMutation::kRepairOverLastGood;
    } else {
        return false;
    }
    return true;
}

const char* recovery_mutation_name(RecoveryMutation m)
{
    switch (m) {
      case RecoveryMutation::kNone:
        return "none";
      case RecoveryMutation::kRepairOverLastGood:
        return "repair_over_last_good";
    }
    return "?";
}

/** One recovery-crash enumeration; @return its exit code. */
int run_recovery_one(const Args& args, RecoveryMutation mutation)
{
    RecoveryModelConfig config;
    config.storage_seed = args.seed;
    RecoveryEnumOptions opts;
    opts.seed = args.seed;
    const RecoveryEnumResult r =
        enumerate_recovery_crashes(config, mutation, opts);
    std::printf("[mc] recovery-crash mutation=%s crash_points=%zu "
                "images=%zu sampled_points=%zu salvaged=%d %s\n",
                recovery_mutation_name(mutation), r.crash_points,
                r.images, r.sampled_points, r.salvaged ? 1 : 0,
                r.violated ? "VIOLATED" : "clean");
    if (!r.violated) {
        return 0;
    }
    std::printf("[mc] VIOLATION: %s\n", r.message.c_str());
    std::printf("[mc] at crash_op=%zu mask=0x%llx\n", r.crash_op,
                static_cast<unsigned long long>(r.crash_mask));
    return 1;
}

int run_recovery_crash(const Args& args)
{
    if (args.recovery_mutation != "all") {
        RecoveryMutation mutation{};
        if (!parse_recovery_mutation(args.recovery_mutation, &mutation)) {
            std::fprintf(stderr, "[mc] bad --recovery-mutation %s\n",
                         args.recovery_mutation.c_str());
            return 2;
        }
        return run_recovery_one(args, mutation);
    }
    // Meta-check: the real planner's quarantine+salvage must survive
    // every crash image, AND the weakened salvage must be caught —
    // otherwise the checker has no teeth.
    bool ok = run_recovery_one(args, RecoveryMutation::kNone) == 0;
    ok = run_recovery_one(args, RecoveryMutation::kRepairOverLastGood) ==
             1 &&
         ok;
    if (ok) {
        std::printf("[mc] recovery re-entrant; salvage mutation caught\n");
    }
    return ok ? 0 : 1;
}

int run_replay(const Args& args)
{
    const auto token = decode_token(args.token);
    if (!token.has_value()) {
        std::fprintf(stderr, "[mc] bad token: %s\n", args.token.c_str());
        return 2;
    }
    ModelConfig config = config_from(args);
    config.threads = token->num_threads;
    std::string message;
    if (token->crash_op.has_value()) {
        message = replay_crash_token(config, args.mutation, *token);
    } else {
        CommitModel model(config, args.mutation);
        PrefixStrategy strategy(token->choices);
        const RunResult r = model.run(strategy);
        message = r.violated ? r.message : "";
    }
    if (!message.empty()) {
        std::printf("[mc] replay reproduced: %s\n", message.c_str());
        return 1;
    }
    std::printf("[mc] replay found no violation\n");
    return 0;
}

/**
 * One mutation meta-check: run the detection flow that claims to
 * catch @p mutation, REQUIRE a violation, then replay its token and
 * require the violation again.
 * @return true when the mutation was caught and replays.
 */
bool check_mutation(const Args& args, Mutation mutation)
{
    const char* name = mutation_name(mutation);
    ModelConfig config = config_from(args);

    std::string token_text;
    std::string message;
    if (mutation == Mutation::kNoFence) {
        // Invisible to scheduling invariants — the crash enumerator
        // owns this bug class.
        DefaultStrategy strategy;
        const CrashEnumResult r =
            enumerate_crashes(config, mutation, strategy);
        if (!r.violated) {
            std::printf("[mc] mutation %s: NOT caught (crash-enum "
                        "found %zu clean images)\n",
                        name, r.images);
            return false;
        }
        token_text = r.token;
        message = r.message;
    } else {
        const ExploreResult r =
            explore_dfs(make_run_fn(config, mutation), args.threads,
                        args.bound, args.max_executions);
        if (r.violations == 0) {
            std::printf("[mc] mutation %s: NOT caught (%zu executions "
                        "clean)\n",
                        name, r.executions);
            return false;
        }
        token_text = r.first_token;
        message = r.first_message;
    }

    // The token must deterministically reproduce the violation.
    const auto token = decode_token(token_text);
    if (!token.has_value()) {
        std::printf("[mc] mutation %s: bad replay token '%s'\n", name,
                    token_text.c_str());
        return false;
    }
    std::string replayed;
    if (token->crash_op.has_value()) {
        replayed = replay_crash_token(config, mutation, *token);
    } else {
        CommitModel model(config, mutation);
        PrefixStrategy strategy(token->choices);
        const RunResult r = model.run(strategy);
        replayed = r.violated ? r.message : "";
    }
    if (replayed.empty()) {
        std::printf("[mc] mutation %s: token '%s' did not replay\n", name,
                    token_text.c_str());
        return false;
    }
    std::printf("[mc] mutation %s: caught (%s)\n", name, message.c_str());
    std::printf("[mc] mutation %s: replay %s\n", name, token_text.c_str());
    return true;
}

int run_mutations(const Args& args)
{
    // kNoFence runs the real algorithm; the others need MiniCommit.
    bool ok = true;
    ok = check_mutation(args, Mutation::kBlindStore) && ok;
    ok = check_mutation(args, Mutation::kTicketReuse) && ok;
    ok = check_mutation(args, Mutation::kNoFence) && ok;
    if (ok) {
        std::printf("[mc] all mutation variants caught\n");
    }
    return ok ? 0 : 1;
}

int usage()
{
    std::fprintf(
        stderr,
        "usage: mc_check [--mode "
        "dfs|pct|crash|delta-crash|recovery-crash|mutations|replay]\n"
        "                [--model listing1|mini] "
        "[--mutation none|blind_store|ticket_reuse|no_fence]\n"
        "                [--delta-mutation "
        "all|none|ack_before_payload|reset_before_publish]\n"
        "                [--recovery-mutation "
        "all|none|repair_over_last_good]\n"
        "                [--threads N] [--checkpoints N] [--bound N]\n"
        "                [--schedules N] [--seed N] "
        "[--queue vyukov|ms|mutex]\n"
        "                [--token <replay token>]\n");
    return 2;
}

int run(int argc, char** argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char* value = nullptr;
        if (flag == "--mode" && (value = next())) {
            args.mode = value;
        } else if (flag == "--model" && (value = next())) {
            args.model = value;
        } else if (flag == "--mutation" && (value = next())) {
            if (!parse_mutation(value, &args.mutation)) {
                return usage();
            }
        } else if (flag == "--threads" && (value = next())) {
            args.threads = std::atoi(value);
        } else if (flag == "--checkpoints" && (value = next())) {
            args.checkpoints = std::atoi(value);
        } else if (flag == "--bound" && (value = next())) {
            args.bound = std::atoi(value);
        } else if (flag == "--schedules" && (value = next())) {
            args.schedules = static_cast<std::size_t>(std::atoll(value));
        } else if (flag == "--seed" && (value = next())) {
            args.seed = static_cast<std::uint64_t>(std::atoll(value));
        } else if (flag == "--queue" && (value = next())) {
            const std::string q = value;
            if (q == "vyukov") {
                args.queue = SlotQueueKind::kVyukov;
            } else if (q == "ms") {
                args.queue = SlotQueueKind::kMichaelScott;
            } else if (q == "mutex") {
                args.queue = SlotQueueKind::kMutex;
            } else {
                return usage();
            }
        } else if (flag == "--delta-mutation" && (value = next())) {
            args.delta_mutation = value;
        } else if (flag == "--recovery-mutation" && (value = next())) {
            args.recovery_mutation = value;
        } else if (flag == "--token" && (value = next())) {
            args.token = value;
        } else {
            return usage();
        }
    }
    if (args.threads < 1 || args.threads > 16 || args.checkpoints < 1) {
        return usage();
    }
    if (args.mode == "dfs") {
        return run_dfs(args);
    }
    if (args.mode == "pct") {
        return run_pct(args);
    }
    if (args.mode == "crash") {
        return run_crash(args);
    }
    if (args.mode == "delta-crash") {
        return run_delta_crash(args);
    }
    if (args.mode == "recovery-crash") {
        return run_recovery_crash(args);
    }
    if (args.mode == "mutations") {
        return run_mutations(args);
    }
    if (args.mode == "replay") {
        return run_replay(args);
    }
    return usage();
}

}  // namespace
}  // namespace pccheck::mc

int main(int argc, char** argv)
{
    return pccheck::mc::run(argc, argv);
}
