#ifndef PCCHECK_MC_CRASH_ENUM_H_
#define PCCHECK_MC_CRASH_ENUM_H_

/**
 * @file
 * Crash-state enumeration over the recorded persist trace.
 *
 * One scheduled execution of the commit model records a CrashSnapshot
 * after every storage operation (write / persist / fence): the
 * durable image plus the volatile content of every unflushed line.
 * A real power failure at that instant preserves an ARBITRARY subset
 * of the unflushed lines (paper §2.3 — cache eviction order is not
 * program order), so each snapshot induces 2^n candidate post-crash
 * images. The enumerator materializes each one, runs the real
 * recovery path (recover_to_buffer) against it, and asserts:
 *
 *  - once a commit() has returned with its record durably published
 *    (the model's publish watermark), EVERY later crash image must
 *    recover a checkpoint at least that new — the paper's "at least
 *    one fully persisted checkpoint always exists";
 *  - any checkpoint recovery returns must be intact: iteration ==
 *    counter and the payload matches the deterministic pattern
 *    (recovery's CRC machinery must never accept torn data).
 *
 * Beyond `exhaustive_line_limit` unflushed lines the mask space is
 * sampled (`sampled_masks` seeded draws, always including the empty
 * and full masks) and the truncation is reported in the result.
 *
 * A violating (schedule, crash point, mask) triple is encoded as a
 * replay token with a crash clause (token.h); replay_crash_token
 * re-runs exactly that image and returns the same verdict.
 */

#include <cstdint>
#include <string>

#include "mc/models.h"
#include "mc/token.h"

namespace pccheck::mc {

/** Bounds for the mask enumeration at each crash point. */
struct CrashEnumOptions {
    /** Enumerate all 2^n masks up to this many unflushed lines. */
    std::size_t exhaustive_line_limit = 12;
    /** Seeded samples past the limit (plus empty + full masks). */
    std::size_t sampled_masks = 4096;
    std::uint64_t seed = 1;
};

/** Outcome of one crash enumeration. */
struct CrashEnumResult {
    bool violated = false;
    /** The scheduled run itself violated (no crash clause). */
    bool schedule_violation = false;
    std::string message;
    /** Replay token of the first violation (with crash clause unless
     *  schedule_violation). */
    std::string token;
    std::size_t crash_points = 0;
    std::size_t images = 0;
    /** Crash points where the mask space was sampled, not enumerated. */
    std::size_t sampled_points = 0;
};

/**
 * Run the commit model once under @p strategy with snapshotting on,
 * then enumerate crash images at every recorded storage op. Stops at
 * the first violation.
 */
CrashEnumResult enumerate_crashes(const ModelConfig& config,
                                  Mutation mutation, Strategy& strategy,
                                  const CrashEnumOptions& opts =
                                      CrashEnumOptions());

/**
 * Deterministically re-run a violating token produced by
 * enumerate_crashes (schedule prefix + crash clause).
 * @return the violation message, or an empty string when the token's
 *         image now passes (e.g. the bug was fixed).
 */
std::string replay_crash_token(const ModelConfig& config, Mutation mutation,
                               const ReplayToken& token);

}  // namespace pccheck::mc

#endif  // PCCHECK_MC_CRASH_ENUM_H_
