#ifndef PCCHECK_MC_SHIM_H_
#define PCCHECK_MC_SHIM_H_

/**
 * @file
 * Instrumented synchronization primitives for -DPCCHECK_MC builds.
 *
 * pccheck::Atomic<T> (util/sync.h) and pccheck::Mutex/MutexLock/
 * CondVar (util/annotations.h) alias these types under the checker,
 * so src/core/ runs unchanged while every synchronization operation
 * becomes a scheduler-visible event:
 *
 *  - mc::Atomic<T> stores a plain T and reports each non-relaxed
 *    operation to mc::Scheduler BEFORE executing it (the schedule
 *    point), making the operation's placement in the global order a
 *    strategy decision. Relaxed operations (stat counters, by
 *    convention — see the relaxed-justification lint rule) execute
 *    without a schedule point.
 *  - mc::Mutex is a cooperative lock over a plain bool: acquisition
 *    of a held mutex blocks the model thread in the scheduler;
 *    uncontended acquisition takes no schedule point.
 *  - mc::CondVar is generation-counter based: wait() records the
 *    counter, releases the mutex, blocks until a notify bumps it
 *    (spurious wakeups permitted, like the real one).
 *
 * Outside a scheduled execution (driver threads: model setup,
 * teardown, crash-image recovery) every operation falls through to
 * plain non-atomic access, which is safe because driver code is
 * single-threaded by construction.
 *
 * Plain T (not std::atomic<T>) is deliberate: the scheduler
 * serializes the execution so there are no data races, and torn reads
 * would mask checker bugs rather than find product ones.
 */

#include <cstdint>

#include "mc/scheduler.h"
#include "util/clock.h"
#include "util/tsa.h"

#include <atomic>  // std::memory_order only; no std::atomic storage here

namespace pccheck::mc {

namespace detail {

/** Schedule point before a non-relaxed operation; no-op on driver
 *  threads and for relaxed orders. */
inline void sync_point(std::memory_order order)
{
    // relaxed: order comparison only — relaxed operations are not
    // schedule points by design (docs/MODEL_CHECKING.md).
    if (order == std::memory_order_relaxed) {
        return;
    }
    if (Scheduler* s = Scheduler::current()) {
        s->atomic_point();
    }
}

}  // namespace detail

/**
 * Drop-in std::atomic<T> replacement whose non-relaxed operations are
 * schedule points. Same member signatures as the std::atomic subset
 * PCcheck uses (load/store/exchange/fetch_add/fetch_sub/CAS).
 */
template <typename T>
class Atomic {
  public:
    Atomic() noexcept = default;
    constexpr Atomic(T desired) noexcept : value_(desired) {}  // NOLINT
    Atomic(const Atomic&) = delete;
    Atomic& operator=(const Atomic&) = delete;

    T load(std::memory_order order = std::memory_order_seq_cst) const
    {
        detail::sync_point(order);
        return value_;
    }

    void store(T desired, std::memory_order order = std::memory_order_seq_cst)
    {
        detail::sync_point(order);
        value_ = desired;
    }

    T exchange(T desired, std::memory_order order = std::memory_order_seq_cst)
    {
        detail::sync_point(order);
        T old = value_;
        value_ = desired;
        return old;
    }

    T fetch_add(T arg, std::memory_order order = std::memory_order_seq_cst)
    {
        detail::sync_point(order);
        T old = value_;
        value_ = static_cast<T>(value_ + arg);
        return old;
    }

    T fetch_sub(T arg, std::memory_order order = std::memory_order_seq_cst)
    {
        detail::sync_point(order);
        T old = value_;
        value_ = static_cast<T>(value_ - arg);
        return old;
    }

    bool compare_exchange_strong(
        T& expected, T desired,
        std::memory_order success = std::memory_order_seq_cst,
        std::memory_order failure = std::memory_order_seq_cst)
    {
        (void)failure;
        detail::sync_point(success);
        if (value_ == expected) {
            value_ = desired;
            return true;
        }
        expected = value_;
        return false;
    }

    /** Weak CAS never fails spuriously under the checker: spurious
     *  failure is a retry-loop liveness concern, not an ordering one,
     *  and determinism matters more for replay. */
    bool compare_exchange_weak(
        T& expected, T desired,
        std::memory_order success = std::memory_order_seq_cst,
        std::memory_order failure = std::memory_order_seq_cst)
    {
        return compare_exchange_strong(expected, desired, success, failure);
    }

    operator T() const { return load(); }  // NOLINT
    T operator=(T desired)                 // NOLINT
    {
        store(desired);
        return desired;
    }

  private:
    T value_{};
};

/** Cooperative mutex: blocks the model thread in the scheduler when
 *  contended; plain bool flag on driver threads. */
class PCCHECK_CAPABILITY("mutex") Mutex {
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() PCCHECK_ACQUIRE()
    {
        if (Scheduler* s = Scheduler::current()) {
            s->mutex_acquire(&held_);
        } else {
            held_ = true;
        }
    }

    void unlock() PCCHECK_RELEASE()
    {
        if (Scheduler* s = Scheduler::current()) {
            s->mutex_release(&held_);
        } else {
            held_ = false;
        }
    }

    bool try_lock() PCCHECK_TRY_ACQUIRE(true)
    {
        if (held_) {
            return false;
        }
        held_ = true;
        return true;
    }

  private:
    bool held_ = false;
    friend class CondVar;
};

/** RAII lock over mc::Mutex (mirror of the production MutexLock). */
class PCCHECK_SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex& mu) PCCHECK_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() PCCHECK_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mu_;
};

/** Generation-counter condition variable over mc::Mutex. */
class CondVar {
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void wait(Mutex& mu) PCCHECK_REQUIRES(mu)
    {
        if (Scheduler* s = Scheduler::current()) {
            s->cond_wait(&mu.held_, &generation_, generation_);
        }
        // Driver threads are single-threaded: waiting would deadlock,
        // and the predicates they wait on are already satisfied.
    }

    /** Timed wait: under the checker time is logical, so this is a
     *  plain wait that reports "notified". */
    bool wait_for(Mutex& mu, double seconds) PCCHECK_REQUIRES(mu)
    {
        (void)seconds;
        wait(mu);
        return true;
    }

    void notify_one() { notify_all(); }

    void notify_all()
    {
        ++generation_;
        if (Scheduler* s = Scheduler::current()) {
            s->cond_notify(&generation_);
        }
    }

  private:
    std::uint64_t generation_ = 0;
};

/**
 * Deterministic clock for modeled code. now() advances by a fixed
 * quantum per call (timestamps stay ordered and replayable);
 * sleep_for() is the spin-wait backoff in ConcurrentCommit::begin(),
 * which under the checker must hand the CPU to another thread instead
 * of burning steps — it maps to the scheduler's forced-fairness
 * yield.
 */
class McClock : public Clock {
  public:
    double now() const override
    {
        ticks_ += 1;
        return static_cast<double>(ticks_) * 1e-9;
    }

    void sleep_for(double seconds) const override
    {
        (void)seconds;
        ticks_ += 1;
        if (Scheduler* s = Scheduler::current()) {
            s->yield_point();
        }
    }

  private:
    mutable std::uint64_t ticks_ = 0;
};

}  // namespace pccheck::mc

#endif  // PCCHECK_MC_SHIM_H_
