#ifndef PCCHECK_NET_NETWORK_H_
#define PCCHECK_NET_NETWORK_H_

/**
 * @file
 * In-process simulated cluster network.
 *
 * Replaces the inter-VM network (DESIGN.md §1). Each node has an
 * ingress and an egress NIC channel modeled with bandwidth throttles;
 * every transfer additionally pays a propagation latency. The paper's
 * Gemini analysis hinges on the measured 15 Gbps (1.88 GB/s) VM NIC
 * bandwidth — that is the default here.
 *
 * Two facilities:
 *  - bulk transfer(): blocking, bandwidth-paced byte movement (Gemini
 *    checkpoint traffic, pipeline activations); transfer_for() is the
 *    deadline-bounded variant replication uses so a dead peer costs
 *    the ack timeout, never a hang;
 *  - small control messages via per-node mailboxes (checkpoint-ID
 *    consensus in distributed PCcheck).
 *
 * Node NICs can be killed (node_loss faults) and revived; transfers
 * touching a dead NIC black-hole their bytes. A FaultInjector can be
 * attached to evaluate the "net.transfer" fault point on every
 * deadline-bounded transfer (drop / stall schedules).
 */

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "util/annotations.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/throttle.h"

namespace pccheck {

class FaultInjector;

/** Fault point evaluated on every deadline-bounded transfer. */
inline constexpr const char kFaultNetTransfer[] = "net.transfer";

/** Small control-plane message. */
struct NetMessage {
    int from = -1;
    std::uint64_t tag = 0;
    std::vector<std::uint8_t> payload;
};

/** Configuration of the simulated cluster fabric. */
struct NetworkConfig {
    int nodes = 1;
    /** Per-node NIC bandwidth, bytes/sec (paper GCP: 15 Gbps). */
    double nic_bytes_per_sec = 1.88e9;
    /** One-way propagation latency, seconds. */
    Seconds latency = 100e-6;
};

/** Simulated cluster network; thread safe. */
class SimNetwork {
  public:
    explicit SimNetwork(const NetworkConfig& config,
                        const Clock& clock = MonotonicClock::instance());

    int nodes() const { return config_.nodes; }
    const NetworkConfig& config() const { return config_; }

    /**
     * Blocking bulk transfer of @p len bytes from @p from to @p to,
     * paying sender-egress and receiver-ingress bandwidth plus
     * latency. Returns the modeled transfer time in seconds.
     */
    Seconds transfer(int from, int to, Bytes len);

    /**
     * Deadline-bounded bulk transfer, mirroring recv_msg_for: moves
     * @p len bytes unless the bytes cannot be delivered and acked
     * within @p timeout (modeled) seconds. Failure modes — a dead
     * endpoint NIC, an injected "net.transfer" drop, or bandwidth so
     * contended the deadline passes mid-flight — all cost the caller
     * the full timeout (the ack never arrives earlier than the
     * deadline), never a hang. Returns the modeled transfer time on
     * success, std::nullopt on expiry. This is the only primitive the
     * replication tier uses to move checkpoint bytes.
     */
    std::optional<Seconds> transfer_for(int from, int to, Bytes len,
                                        Seconds timeout);

    /**
     * Attach a fault injector whose "net.transfer" point is evaluated
     * on every transfer_for() (drop / stall / transient schedules —
     * see FaultPlan). Plain transfer() keeps its always-succeeds
     * blocking contract and is not instrumented. Call during setup,
     * before transfers begin.
     */
    void set_fault_injector(std::shared_ptr<FaultInjector> injector);

    /**
     * Kill @p node's NIC: every subsequent transfer_for touching it
     * times out and its control messages are black-holed. Together
     * with FaultyStorage::kill() this models the node_loss fault
     * action (full-node failure).
     */
    void kill_node(int node);

    /** Bring a NIC back up (a replacement machine joining as @p node). */
    void revive_node(int node);

    /** True while @p node's NIC is up. */
    bool alive(int node) const;

    /** Override one node's NIC bandwidth (egress and ingress). */
    void set_node_bandwidth(int node, double bytes_per_sec);

    /**
     * Modeled lower-bound cost of moving @p len bytes @p from → @p to
     * on an idle fabric: latency plus egress and ingress
     * serialization. Infinite when either NIC is dead. Replica-aware
     * recovery uses this to pick the fastest peer path.
     */
    Seconds estimate_transfer(int from, int to, Bytes len) const;

    /** Post a control message into @p to's mailbox (pays latency only). */
    void send_msg(int from, int to, std::uint64_t tag,
                  std::vector<std::uint8_t> payload = {});

    /** Blocking receive from this node's mailbox. */
    NetMessage recv_msg(int node);

    /**
     * Receive with a deadline: blocks until a message arrives or
     * @p timeout (modeled) seconds elapse, returning std::nullopt on
     * expiry. The timeout is measured against the network's clock, so
     * scaled-clock experiments time out at the modeled rate. This is
     * what lets a surviving rank detect a dead peer instead of hanging
     * forever in coordination.
     */
    std::optional<NetMessage> recv_msg_for(int node, Seconds timeout);

    /** Non-blocking receive; false when the mailbox is empty. */
    bool try_recv_msg(int node, NetMessage* out);

    /** Total bytes moved through the fabric (monitoring). */
    Bytes bytes_moved() const;

  private:
    struct Mailbox {
        Mutex mu;
        CondVar cv;
        std::deque<NetMessage> messages PCCHECK_GUARDED_BY(mu);
    };

    void check_node(int node) const;

    NetworkConfig config_;
    const Clock& clock_;
    std::vector<std::unique_ptr<BandwidthThrottle>> egress_;
    std::vector<std::unique_ptr<BandwidthThrottle>> ingress_;
    std::vector<std::unique_ptr<Mailbox>> mailboxes_;
    /** Per-node NIC liveness; heap cells because atomics don't move. */
    std::vector<std::unique_ptr<std::atomic<bool>>> nic_up_;
    /** Set once during setup (set_fault_injector), read by transfers. */
    std::shared_ptr<FaultInjector> injector_;
    std::atomic<Bytes> bytes_moved_{0};
};

}  // namespace pccheck

#endif  // PCCHECK_NET_NETWORK_H_
