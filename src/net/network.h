#ifndef PCCHECK_NET_NETWORK_H_
#define PCCHECK_NET_NETWORK_H_

/**
 * @file
 * In-process simulated cluster network.
 *
 * Replaces the inter-VM network (DESIGN.md §1). Each node has an
 * ingress and an egress NIC channel modeled with bandwidth throttles;
 * every transfer additionally pays a propagation latency. The paper's
 * Gemini analysis hinges on the measured 15 Gbps (1.88 GB/s) VM NIC
 * bandwidth — that is the default here.
 *
 * Two facilities:
 *  - bulk transfer(): blocking, bandwidth-paced byte movement (Gemini
 *    checkpoint traffic, pipeline activations);
 *  - small control messages via per-node mailboxes (checkpoint-ID
 *    consensus in distributed PCcheck).
 */

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "util/annotations.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/throttle.h"

namespace pccheck {

/** Small control-plane message. */
struct NetMessage {
    int from = -1;
    std::uint64_t tag = 0;
    std::vector<std::uint8_t> payload;
};

/** Configuration of the simulated cluster fabric. */
struct NetworkConfig {
    int nodes = 1;
    /** Per-node NIC bandwidth, bytes/sec (paper GCP: 15 Gbps). */
    double nic_bytes_per_sec = 1.88e9;
    /** One-way propagation latency, seconds. */
    Seconds latency = 100e-6;
};

/** Simulated cluster network; thread safe. */
class SimNetwork {
  public:
    explicit SimNetwork(const NetworkConfig& config,
                        const Clock& clock = MonotonicClock::instance());

    int nodes() const { return config_.nodes; }
    const NetworkConfig& config() const { return config_; }

    /**
     * Blocking bulk transfer of @p len bytes from @p from to @p to,
     * paying sender-egress and receiver-ingress bandwidth plus
     * latency. Returns the modeled transfer time in seconds.
     */
    Seconds transfer(int from, int to, Bytes len);

    /** Post a control message into @p to's mailbox (pays latency only). */
    void send_msg(int from, int to, std::uint64_t tag,
                  std::vector<std::uint8_t> payload = {});

    /** Blocking receive from this node's mailbox. */
    NetMessage recv_msg(int node);

    /**
     * Receive with a deadline: blocks until a message arrives or
     * @p timeout (modeled) seconds elapse, returning std::nullopt on
     * expiry. The timeout is measured against the network's clock, so
     * scaled-clock experiments time out at the modeled rate. This is
     * what lets a surviving rank detect a dead peer instead of hanging
     * forever in coordination.
     */
    std::optional<NetMessage> recv_msg_for(int node, Seconds timeout);

    /** Non-blocking receive; false when the mailbox is empty. */
    bool try_recv_msg(int node, NetMessage* out);

    /** Total bytes moved through the fabric (monitoring). */
    Bytes bytes_moved() const;

  private:
    struct Mailbox {
        Mutex mu;
        CondVar cv;
        std::deque<NetMessage> messages PCCHECK_GUARDED_BY(mu);
    };

    void check_node(int node) const;

    NetworkConfig config_;
    const Clock& clock_;
    std::vector<std::unique_ptr<BandwidthThrottle>> egress_;
    std::vector<std::unique_ptr<BandwidthThrottle>> ingress_;
    std::vector<std::unique_ptr<Mailbox>> mailboxes_;
    std::atomic<Bytes> bytes_moved_{0};
};

}  // namespace pccheck

#endif  // PCCHECK_NET_NETWORK_H_
