#include "net/network.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "faults/fault.h"
#include "util/check.h"

namespace pccheck {

SimNetwork::SimNetwork(const NetworkConfig& config, const Clock& clock)
    : config_(config), clock_(clock)
{
    PCCHECK_CHECK(config.nodes >= 1);
    egress_.reserve(config.nodes);
    ingress_.reserve(config.nodes);
    mailboxes_.reserve(config.nodes);
    nic_up_.reserve(config.nodes);
    for (int i = 0; i < config.nodes; ++i) {
        egress_.push_back(std::make_unique<BandwidthThrottle>(
            config.nic_bytes_per_sec, clock));
        ingress_.push_back(std::make_unique<BandwidthThrottle>(
            config.nic_bytes_per_sec, clock));
        mailboxes_.push_back(std::make_unique<Mailbox>());
        nic_up_.push_back(std::make_unique<std::atomic<bool>>(true));
    }
}

void
SimNetwork::check_node(int node) const
{
    PCCHECK_CHECK_MSG(node >= 0 && node < config_.nodes,
                      "invalid node id " << node);
}

Seconds
SimNetwork::transfer(int from, int to, Bytes len)
{
    check_node(from);
    check_node(to);
    Stopwatch watch(clock_);
    clock_.sleep_for(config_.latency);
    if (from != to) {
        const Seconds egress_time = egress_[from]->acquire(len);
        const Seconds ingress_time = ingress_[to]->acquire(len);
        (void)egress_time;
        (void)ingress_time;
    }
    // relaxed: monitoring counter, no ordering with transfers needed.
    bytes_moved_.fetch_add(len, std::memory_order_relaxed);
    return watch.elapsed();
}

std::optional<Seconds>
SimNetwork::transfer_for(int from, int to, Bytes len, Seconds timeout)
{
    check_node(from);
    check_node(to);
    Stopwatch watch(clock_);
    const Seconds deadline = clock_.now() + timeout;
    // Sleep out the remainder of the timeout: a failed transfer is
    // only *observed* at the ack deadline, so the caller always pays
    // exactly `timeout`, mirroring recv_msg_for's modeled-time expiry.
    const auto expire = [this, deadline]() -> std::optional<Seconds> {
        const Seconds remain = deadline - clock_.now();
        if (remain > 0) {
            clock_.sleep_for(remain);
        }
        return std::nullopt;
    };
    if (injector_ != nullptr &&
        !injector_->on_op(kFaultNetTransfer).ok()) {
        return expire();  // injected drop: the bytes vanish in flight
    }
    if (!alive(from) || !alive(to)) {
        return expire();  // dead NIC on either end: black hole
    }
    clock_.sleep_for(config_.latency);
    if (from != to) {
        (void)egress_[from]->acquire(len);
        (void)ingress_[to]->acquire(len);
    }
    if (!alive(to)) {
        return expire();  // receiver died mid-flight (node_loss)
    }
    if (clock_.now() > deadline) {
        return std::nullopt;  // delivered, but the ack deadline passed
    }
    // relaxed: monitoring counter, no ordering with transfers needed.
    bytes_moved_.fetch_add(len, std::memory_order_relaxed);
    return watch.elapsed();
}

void
SimNetwork::set_fault_injector(std::shared_ptr<FaultInjector> injector)
{
    injector_ = std::move(injector);
}

void
SimNetwork::kill_node(int node)
{
    check_node(node);
    // relaxed: liveness flag only routes traffic; transfers that raced
    // past the check complete as if the packet was already in flight.
    nic_up_[node]->store(false, std::memory_order_relaxed);
}

void
SimNetwork::revive_node(int node)
{
    check_node(node);
    // relaxed: see kill_node.
    nic_up_[node]->store(true, std::memory_order_relaxed);
}

bool
SimNetwork::alive(int node) const
{
    check_node(node);
    // relaxed: see kill_node.
    return nic_up_[node]->load(std::memory_order_relaxed);
}

void
SimNetwork::set_node_bandwidth(int node, double bytes_per_sec)
{
    check_node(node);
    egress_[node]->set_bytes_per_sec(bytes_per_sec);
    ingress_[node]->set_bytes_per_sec(bytes_per_sec);
}

Seconds
SimNetwork::estimate_transfer(int from, int to, Bytes len) const
{
    check_node(from);
    check_node(to);
    if (!alive(from) || !alive(to)) {
        return std::numeric_limits<Seconds>::infinity();
    }
    Seconds cost = config_.latency;
    if (from != to) {
        const double out_bps = egress_[from]->bytes_per_sec();
        const double in_bps = ingress_[to]->bytes_per_sec();
        if (out_bps > 0) {
            cost += static_cast<Seconds>(len) / out_bps;
        }
        if (in_bps > 0) {
            cost += static_cast<Seconds>(len) / in_bps;
        }
    }
    return cost;
}

void
SimNetwork::send_msg(int from, int to, std::uint64_t tag,
                     std::vector<std::uint8_t> payload)
{
    check_node(from);
    check_node(to);
    clock_.sleep_for(config_.latency);
    if (!alive(from) || !alive(to)) {
        return;  // dead NIC on either end: the message is black-holed
    }
    Mailbox& box = *mailboxes_[to];
    {
        MutexLock lock(box.mu);
        box.messages.push_back(NetMessage{from, tag, std::move(payload)});
    }
    box.cv.notify_one();
}

NetMessage
SimNetwork::recv_msg(int node)
{
    check_node(node);
    Mailbox& box = *mailboxes_[node];
    MutexLock lock(box.mu);
    while (box.messages.empty()) {
        box.cv.wait(box.mu);
    }
    NetMessage msg = std::move(box.messages.front());
    box.messages.pop_front();
    return msg;
}

std::optional<NetMessage>
SimNetwork::recv_msg_for(int node, Seconds timeout)
{
    check_node(node);
    Mailbox& box = *mailboxes_[node];
    // The deadline is in modeled time; the cv waits in short real-time
    // slices so a scaled clock's faster modeled progress is observed.
    constexpr Seconds kSlice = 500e-6;
    const Seconds deadline = clock_.now() + timeout;
    MutexLock lock(box.mu);
    while (box.messages.empty()) {
        if (clock_.now() >= deadline) {
            return std::nullopt;
        }
        box.cv.wait_for(box.mu, kSlice);
    }
    NetMessage msg = std::move(box.messages.front());
    box.messages.pop_front();
    return msg;
}

bool
SimNetwork::try_recv_msg(int node, NetMessage* out)
{
    check_node(node);
    Mailbox& box = *mailboxes_[node];
    MutexLock lock(box.mu);
    if (box.messages.empty()) {
        return false;
    }
    *out = std::move(box.messages.front());
    box.messages.pop_front();
    return true;
}

Bytes
SimNetwork::bytes_moved() const
{
    // relaxed: monitoring read; staleness is acceptable.
    return bytes_moved_.load(std::memory_order_relaxed);
}

}  // namespace pccheck
