#include "net/network.h"

#include <algorithm>

#include "util/check.h"

namespace pccheck {

SimNetwork::SimNetwork(const NetworkConfig& config, const Clock& clock)
    : config_(config), clock_(clock)
{
    PCCHECK_CHECK(config.nodes >= 1);
    egress_.reserve(config.nodes);
    ingress_.reserve(config.nodes);
    mailboxes_.reserve(config.nodes);
    for (int i = 0; i < config.nodes; ++i) {
        egress_.push_back(std::make_unique<BandwidthThrottle>(
            config.nic_bytes_per_sec, clock));
        ingress_.push_back(std::make_unique<BandwidthThrottle>(
            config.nic_bytes_per_sec, clock));
        mailboxes_.push_back(std::make_unique<Mailbox>());
    }
}

void
SimNetwork::check_node(int node) const
{
    PCCHECK_CHECK_MSG(node >= 0 && node < config_.nodes,
                      "invalid node id " << node);
}

Seconds
SimNetwork::transfer(int from, int to, Bytes len)
{
    check_node(from);
    check_node(to);
    Stopwatch watch(clock_);
    clock_.sleep_for(config_.latency);
    if (from != to) {
        const Seconds egress_time = egress_[from]->acquire(len);
        const Seconds ingress_time = ingress_[to]->acquire(len);
        (void)egress_time;
        (void)ingress_time;
    }
    // relaxed: monitoring counter, no ordering with transfers needed.
    bytes_moved_.fetch_add(len, std::memory_order_relaxed);
    return watch.elapsed();
}

void
SimNetwork::send_msg(int from, int to, std::uint64_t tag,
                     std::vector<std::uint8_t> payload)
{
    check_node(from);
    check_node(to);
    clock_.sleep_for(config_.latency);
    Mailbox& box = *mailboxes_[to];
    {
        MutexLock lock(box.mu);
        box.messages.push_back(NetMessage{from, tag, std::move(payload)});
    }
    box.cv.notify_one();
}

NetMessage
SimNetwork::recv_msg(int node)
{
    check_node(node);
    Mailbox& box = *mailboxes_[node];
    MutexLock lock(box.mu);
    while (box.messages.empty()) {
        box.cv.wait(box.mu);
    }
    NetMessage msg = std::move(box.messages.front());
    box.messages.pop_front();
    return msg;
}

std::optional<NetMessage>
SimNetwork::recv_msg_for(int node, Seconds timeout)
{
    check_node(node);
    Mailbox& box = *mailboxes_[node];
    // The deadline is in modeled time; the cv waits in short real-time
    // slices so a scaled clock's faster modeled progress is observed.
    constexpr Seconds kSlice = 500e-6;
    const Seconds deadline = clock_.now() + timeout;
    MutexLock lock(box.mu);
    while (box.messages.empty()) {
        if (clock_.now() >= deadline) {
            return std::nullopt;
        }
        box.cv.wait_for(box.mu, kSlice);
    }
    NetMessage msg = std::move(box.messages.front());
    box.messages.pop_front();
    return msg;
}

bool
SimNetwork::try_recv_msg(int node, NetMessage* out)
{
    check_node(node);
    Mailbox& box = *mailboxes_[node];
    MutexLock lock(box.mu);
    if (box.messages.empty()) {
        return false;
    }
    *out = std::move(box.messages.front());
    box.messages.pop_front();
    return true;
}

Bytes
SimNetwork::bytes_moved() const
{
    // relaxed: monitoring read; staleness is acceptable.
    return bytes_moved_.load(std::memory_order_relaxed);
}

}  // namespace pccheck
