#ifndef PCCHECK_GOODPUT_JIT_H_
#define PCCHECK_GOODPUT_JIT_H_

/**
 * @file
 * Just-in-time checkpointing model [Gupta et al., EuroSys'24],
 * discussed in §2.2: instead of periodic checkpoints, healthy workers
 * dump their GPU state only when a failure is detected, relying on
 * data-parallel replication so the failed worker's state survives in
 * a peer's memory.
 *
 * The paper's argument against JIT on preemptible resources: "this
 * might not be true when training over preemptible resources, where
 * bulky VM preemptions are very common" — a single bulky preemption
 * that takes out every replica of some partition loses state that no
 * healthy worker holds, forcing a fall back to the last (rare)
 * periodic checkpoint or to scratch. This module replays a preemption
 * trace against that failure model so bench/ablation_jit can show the
 * crossover.
 */

#include "goodput/goodput.h"
#include "trace/preemption_trace.h"
#include "util/rng.h"

namespace pccheck {

/** JIT configuration and costs. */
struct JitInputs {
    int total_vms = 64;        ///< cluster size the trace was taken on
    int replicas = 2;          ///< data-parallel copies per partition
    double throughput = 0;     ///< failure-free iters/s (≈ ideal: JIT
                               ///< has no steady-state overhead)
    Seconds jit_recovery = 60; ///< dump + redeploy + restore on a
                               ///< survivable failure
    Seconds fallback_recovery = 3600;  ///< cost when a partition loses
                                       ///< ALL replicas at once
};

/** Replay outcome, including how often the fallback was needed. */
struct JitGoodputResult {
    double goodput = 0;
    std::size_t survivable_failures = 0;
    std::size_t catastrophic_failures = 0;
    Seconds recovery_total = 0;
};

/**
 * Replay @p trace against the JIT failure model. Which VMs a bulky
 * preemption takes is sampled with @p rng (deterministic per seed):
 * a failure is catastrophic iff some partition loses all replicas.
 */
JitGoodputResult replay_jit_goodput(const PreemptionTrace& trace,
                                    const JitInputs& inputs, Rng& rng);

}  // namespace pccheck

#endif  // PCCHECK_GOODPUT_JIT_H_
