#include "goodput/footprint.h"

#include "util/check.h"

namespace pccheck {

Footprint
model_footprint(const std::string& system, int n,
                double gemini_buffer_fraction)
{
    if (system == "sync" || system == "checkfreq") {
        return Footprint{1.0, 1.0, 1.0, 2.0};
    }
    if (system == "gpm") {
        return Footprint{1.0, 0.0, 0.0, 2.0};
    }
    if (system == "gemini") {
        return Footprint{1.0 + gemini_buffer_fraction, 1.0, 1.0, 0.0};
    }
    if (system == "pccheck") {
        PCCHECK_CHECK(n >= 1);
        return Footprint{1.0, 1.0, 2.0, static_cast<double>(n + 1)};
    }
    fatal("model_footprint: unknown system " + system);
}

}  // namespace pccheck
