#ifndef PCCHECK_GOODPUT_GOODPUT_H_
#define PCCHECK_GOODPUT_GOODPUT_H_

/**
 * @file
 * Goodput replay (§5.2.3): given a preemption trace, the failure-free
 * training throughput at a checkpoint interval, and the expected
 * recovery cost per failure, compute useful throughput:
 *
 *   rec  = Σ_failures (expected_recovery + reattach)
 *   prog = T − rec
 *   goodput = (prog · throughput) / T          [batches per second]
 *
 * This mirrors the paper exactly, including the pd-ssd reattach cost
 * (≈5.5 s, waived for Gemini, which recovers from remote DRAM).
 */

#include <string>

#include "trace/preemption_trace.h"
#include "util/clock.h"

namespace pccheck {

/** Inputs to one goodput evaluation. */
struct GoodputInputs {
    double throughput = 0;        ///< iters/sec with ckpt, no failures
    Seconds expected_recovery = 0; ///< per-failure rollback + load
    Seconds reattach_time = 5.5;   ///< pd-ssd reattach (0 for Gemini)
};

/** Output of the replay. */
struct GoodputResult {
    double goodput = 0;              ///< useful iterations per second
    double effective_iterations = 0; ///< prog · throughput
    Seconds recovery_total = 0;      ///< total time lost to failures
    std::size_t failures = 0;
};

/** Replay @p trace against one system's profile. */
GoodputResult replay_goodput(const PreemptionTrace& trace,
                             const GoodputInputs& inputs);

}  // namespace pccheck

#endif  // PCCHECK_GOODPUT_GOODPUT_H_
