#ifndef PCCHECK_GOODPUT_RECOVERY_MODEL_H_
#define PCCHECK_GOODPUT_RECOVERY_MODEL_H_

/**
 * @file
 * Recovery-time models of §4.2.
 *
 * With iteration time t, checkpoint interval f, checkpoint write time
 * Tw, load time l, and N concurrent checkpoints:
 *
 *   PCcheck:   0 <= recovery <= l + f·t + t·min(N·f, Tw/t)   (eq. 4)
 *   CheckFreq / Gemini: 0 <= recovery <= l + 2·f·t
 *   GPM (synchronous):  0 <= recovery <= l + f·t
 *
 * The goodput replay uses the midpoint of each bound as the expected
 * recovery cost, exactly as §5.2.3 does ("we use the average recovery
 * time from 4.2 for each baseline").
 */

#include <cstdint>
#include <string>

#include "util/clock.h"

namespace pccheck {

/** Inputs of the §4.2 bounds. */
struct RecoveryModelInputs {
    Seconds iteration_time = 0;    ///< t
    std::uint64_t interval = 1;    ///< f
    Seconds checkpoint_time = 0;   ///< Tw
    Seconds load_time = 0;         ///< l
    int concurrent = 1;            ///< N (PCcheck only)
};

/** Upper bound on recovery time for PCcheck (paper eq. 4). */
Seconds pccheck_max_recovery(const RecoveryModelInputs& in);

/** Upper bound for CheckFreq and Gemini: l + 2·f·t. */
Seconds one_async_max_recovery(const RecoveryModelInputs& in);

/** Upper bound for GPM / synchronous systems: l + f·t. */
Seconds sync_max_recovery(const RecoveryModelInputs& in);

/**
 * Expected recovery for a named system ("pccheck", "checkfreq",
 * "gemini", "gpm", "sync"): load time plus half the maximum rollback.
 */
Seconds expected_recovery(const std::string& system,
                          const RecoveryModelInputs& in);

}  // namespace pccheck

#endif  // PCCHECK_GOODPUT_RECOVERY_MODEL_H_
