#ifndef PCCHECK_GOODPUT_FOOTPRINT_H_
#define PCCHECK_GOODPUT_FOOTPRINT_H_

/**
 * @file
 * Memory/storage footprint model of paper Table 1, in units of the
 * checkpoint size m:
 *
 *   | system    | GPU mem     | DRAM     | storage   |
 *   | checkfreq | m           | m        | 2m        |
 *   | gpm       | m           | 0        | 2m        |
 *   | gemini    | m + buffer  | m        | 0         |
 *   | pccheck   | m           | m..2m    | (N+1)·m   |
 *
 * The bench verifies these numbers against the instrumented
 * allocations of the actual implementations.
 */

#include <string>

#include "util/bytes.h"

namespace pccheck {

/** Footprint in multiples of the checkpoint size m. */
struct Footprint {
    double gpu_mem = 0;
    double dram_min = 0;
    double dram_max = 0;
    double storage = 0;
};

/**
 * Table 1 entry for @p system ("sync", "checkfreq", "gpm", "gemini",
 * "pccheck"). @p n is PCcheck's concurrent-checkpoint count.
 * Gemini's extra GPU buffer (32 MB at full scale) is reported via
 * @p gemini_buffer_fraction of m.
 */
Footprint model_footprint(const std::string& system, int n = 1,
                          double gemini_buffer_fraction = 0.0);

}  // namespace pccheck

#endif  // PCCHECK_GOODPUT_FOOTPRINT_H_
