#include "goodput/recovery_model.h"

#include <algorithm>

#include "util/check.h"

namespace pccheck {
namespace {

Seconds
rollback_span(const std::string& system, const RecoveryModelInputs& in)
{
    // Max recovery = l + rollback; the expected rollback is half the
    // span (failures land uniformly within a checkpoint period).
    if (system == "pccheck") {
        return pccheck_max_recovery(in) - in.load_time;
    }
    if (system == "checkfreq" || system == "gemini") {
        return one_async_max_recovery(in) - in.load_time;
    }
    if (system == "gpm" || system == "sync") {
        return sync_max_recovery(in) - in.load_time;
    }
    fatal("expected_recovery: unknown system " + system);
}

}  // namespace

Seconds
pccheck_max_recovery(const RecoveryModelInputs& in)
{
    PCCHECK_CHECK(in.concurrent >= 1);
    const double nf = static_cast<double>(in.concurrent) *
                      static_cast<double>(in.interval);
    const double tw_iters =
        in.iteration_time > 0 ? in.checkpoint_time / in.iteration_time : 0;
    return in.load_time +
           static_cast<double>(in.interval) * in.iteration_time +
           in.iteration_time * std::min(nf, tw_iters);
}

Seconds
one_async_max_recovery(const RecoveryModelInputs& in)
{
    return in.load_time +
           2.0 * static_cast<double>(in.interval) * in.iteration_time;
}

Seconds
sync_max_recovery(const RecoveryModelInputs& in)
{
    return in.load_time +
           static_cast<double>(in.interval) * in.iteration_time;
}

Seconds
expected_recovery(const std::string& system, const RecoveryModelInputs& in)
{
    return in.load_time + 0.5 * rollback_span(system, in);
}

}  // namespace pccheck
