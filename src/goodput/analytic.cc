#include "goodput/analytic.h"

#include <algorithm>

#include "util/check.h"

namespace pccheck {
namespace {

double
safe_div(double num, double den)
{
    return den > 0 ? num / den : 0.0;
}

/** Staging-write time with k writer threads under a per-thread cap. */
Seconds
striped_write_time(Bytes m, int writers, double per_writer)
{
    if (per_writer <= 0) {
        return 0.0;
    }
    const double aggregate = per_writer * static_cast<double>(writers);
    return static_cast<double>(m) / aggregate;
}

}  // namespace

Seconds
analytic_snapshot_time(const AnalyticInputs& in)
{
    return safe_div(static_cast<double>(in.checkpoint_bytes),
                    in.pcie_bytes_per_sec);
}

Seconds
analytic_checkpoint_time(const std::string& system,
                         const AnalyticInputs& in)
{
    const auto m = static_cast<double>(in.checkpoint_bytes);
    const Seconds store = safe_div(m, in.storage_bytes_per_sec);
    if (system == "pccheck") {
        return striped_write_time(in.checkpoint_bytes, in.writers,
                                  in.per_writer_bytes_per_sec) +
               store;
    }
    if (system == "checkfreq" || system == "sync") {
        return safe_div(m, in.serialize_bytes_per_sec) +
               striped_write_time(in.checkpoint_bytes, 1,
                                  in.per_writer_bytes_per_sec) +
               store;
    }
    if (system == "gpm") {
        // Direct copy kernel into the mmapped device + msync. The UVM
        // write-back path reaches only about half the device's
        // sequential bandwidth (page-fault-driven, unaligned flushes),
        // which is why GPM's overhead grows with checkpoint size.
        return safe_div(m,
                        in.pcie_bytes_per_sec * in.kernel_copy_factor) +
               store / kGpmUvmEfficiency;
    }
    if (system == "gemini") {
        return safe_div(m, in.network_bytes_per_sec);
    }
    if (system == "ideal") {
        return 0.0;
    }
    fatal("analytic_checkpoint_time: unknown system " + system);
}

double
analytic_throughput(const std::string& system, const AnalyticInputs& in)
{
    PCCHECK_CHECK(in.iteration_time > 0);
    PCCHECK_CHECK(in.interval >= 1);
    const double f = static_cast<double>(in.interval);
    const Seconds ft = f * in.iteration_time;
    const Seconds c = analytic_snapshot_time(in);
    if (system == "ideal") {
        return 1.0 / in.iteration_time;
    }
    if (system == "sync") {
        return f / (ft + c + analytic_checkpoint_time("sync", in));
    }
    if (system == "gpm") {
        return f / (ft + analytic_checkpoint_time("gpm", in));
    }
    if (system == "checkfreq") {
        // One checkpoint at a time: the next snapshot waits for the
        // previous persist (gate: c + Tw). On top of that, torch.save
        // serialization runs in the training process (GIL) and blocks
        // it for ser seconds per checkpoint even when the gate is not
        // binding — the paper's measured ~1.17× at f=50 for OPT-1.3B.
        const auto m = static_cast<double>(in.checkpoint_bytes);
        const Seconds ser = safe_div(m, in.serialize_bytes_per_sec);
        const Seconds store =
            analytic_checkpoint_time("checkfreq", in) - ser;
        return f / (std::max(ft, c + store) + ser);
    }
    if (system == "gemini") {
        // One checkpoint at a time over the NIC; the transfer also
        // steals NIC time from the activation/gradient exchange on
        // the training critical path (§2.2), modeled as an additive
        // per-checkpoint cost.
        const Seconds tw = analytic_checkpoint_time("gemini", in);
        return f / (std::max(ft, c + tw) + tw);
    }
    if (system == "pccheck") {
        PCCHECK_CHECK(in.concurrent >= 1);
        const Seconds tw = analytic_checkpoint_time("pccheck", in);
        // Snapshots serialize on the copy engines (c); persists
        // overlap N-deep (paper runtime_2: stall only when
        // Tw > N·f·t, i.e. when Tw/N > f·t).
        const Seconds period = std::max(
            {ft, c, tw / static_cast<double>(in.concurrent)});
        return f / period;
    }
    fatal("analytic_throughput: unknown system " + system);
}

}  // namespace pccheck
