#include "goodput/goodput.h"

#include <algorithm>

#include "util/check.h"

namespace pccheck {

GoodputResult
replay_goodput(const PreemptionTrace& trace, const GoodputInputs& inputs)
{
    PCCHECK_CHECK(trace.duration > 0);
    PCCHECK_CHECK(inputs.throughput >= 0);
    GoodputResult result;
    result.failures = trace.events.size();
    result.recovery_total =
        static_cast<double>(result.failures) *
        (inputs.expected_recovery + inputs.reattach_time);
    const Seconds progress_time =
        std::max(0.0, trace.duration - result.recovery_total);
    result.effective_iterations = progress_time * inputs.throughput;
    result.goodput = result.effective_iterations / trace.duration;
    return result;
}

}  // namespace pccheck
