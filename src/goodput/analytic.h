#ifndef PCCHECK_GOODPUT_ANALYTIC_H_
#define PCCHECK_GOODPUT_ANALYTIC_H_

/**
 * @file
 * Analytical failure-free throughput model per checkpointing system,
 * derived from the paper's §3.4 runtime analysis. The benches use it
 * for the full-scale motivation figures (Figs. 1 and 2, BLOOM-7B over
 * 16 hours — not replayable in real time) and cross-validate it
 * against measured scaled execution in bench/model_validation.
 *
 * Notation: t iteration time, f checkpoint interval, m checkpoint
 * bytes, c = m / pcie_bw snapshot (GPU→DRAM) time, Tw per-checkpoint
 * persist time, N concurrent checkpoints.
 *
 * Periods between checkpoint starts:
 *   sync       f·t + c + Tw                    (everything stalls)
 *   gpm        f·t + Tw_gpm                    (direct copy, stalls)
 *   checkfreq  max(f·t, c + Tw) (+ U-stall behind C when c > f·t)
 *   gemini     like checkfreq with Tw = m / network_bw
 *   pccheck    max(f·t, c, Tw/N) — persists overlap N-deep, so the
 *              paper's runtime_2 stall applies only when Tw > N·f·t.
 */

#include <cstdint>
#include <string>

#include "util/bytes.h"
#include "util/clock.h"

namespace pccheck {

/**
 * Effective fraction of device bandwidth GPM's UVM write-back path
 * achieves on SSD (page-fault-driven, unaligned flushes). Calibrated
 * so GPM lands between the paper's "slightly better than CheckFreq at
 * f=1" and "1.9× for OPT-1.3B at f=50" data points.
 */
inline constexpr double kGpmUvmEfficiency = 0.5;

/** Full-scale hardware/workload description for the model. */
struct AnalyticInputs {
    Seconds iteration_time = 0;      ///< t
    Bytes checkpoint_bytes = 0;      ///< m
    std::uint64_t interval = 1;      ///< f
    double pcie_bytes_per_sec = 12.8e9;
    double storage_bytes_per_sec = 0.8e9;    ///< persist channel
    double network_bytes_per_sec = 1.88e9;   ///< Gemini NIC
    double serialize_bytes_per_sec = 1.0e9;  ///< torch.save CPU cost
    double kernel_copy_factor = 0.85;        ///< GPM copy-kernel factor
    int concurrent = 2;                      ///< N (PCcheck)
    int writers = 3;                         ///< p (PCcheck)
    double per_writer_bytes_per_sec = 0;     ///< single-thread ceiling
};

/** Snapshot time c = m / pcie. */
Seconds analytic_snapshot_time(const AnalyticInputs& in);

/** Per-checkpoint persist time Tw for a named system. */
Seconds analytic_checkpoint_time(const std::string& system,
                                 const AnalyticInputs& in);

/**
 * Failure-free training throughput (iterations/sec) for @p system in
 * {"ideal", "sync", "gpm", "checkfreq", "gemini", "pccheck"}.
 */
double analytic_throughput(const std::string& system,
                           const AnalyticInputs& in);

}  // namespace pccheck

#endif  // PCCHECK_GOODPUT_ANALYTIC_H_
