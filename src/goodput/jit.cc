#include "goodput/jit.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace pccheck {
namespace {

/**
 * Sample @p lost distinct VMs out of @p total and report whether some
 * partition (consecutive groups of @p replicas VMs) lost every
 * replica.
 */
bool
bulky_kills_partition(int total, int replicas, int lost, Rng& rng)
{
    if (lost >= total) {
        return true;
    }
    std::vector<bool> dead(static_cast<std::size_t>(total), false);
    int killed = 0;
    while (killed < lost) {
        const auto vm = static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(total)));
        if (!dead[vm]) {
            dead[vm] = true;
            ++killed;
        }
    }
    const int partitions = total / replicas;
    for (int partition = 0; partition < partitions; ++partition) {
        bool all_dead = true;
        for (int replica = 0; replica < replicas; ++replica) {
            const auto vm = static_cast<std::size_t>(
                partition * replicas + replica);
            all_dead = all_dead && dead[vm];
        }
        if (all_dead) {
            return true;
        }
    }
    return false;
}

}  // namespace

JitGoodputResult
replay_jit_goodput(const PreemptionTrace& trace, const JitInputs& inputs,
                   Rng& rng)
{
    PCCHECK_CHECK(trace.duration > 0);
    PCCHECK_CHECK(inputs.replicas >= 1);
    PCCHECK_CHECK(inputs.total_vms >= inputs.replicas);

    JitGoodputResult result;
    for (const PreemptionEvent& event : trace.events) {
        const bool catastrophic = bulky_kills_partition(
            inputs.total_vms, inputs.replicas,
            std::max(event.vms_lost, 1), rng);
        if (catastrophic) {
            ++result.catastrophic_failures;
            result.recovery_total += inputs.fallback_recovery;
        } else {
            ++result.survivable_failures;
            result.recovery_total += inputs.jit_recovery;
        }
    }
    const Seconds progress =
        std::max(0.0, trace.duration - result.recovery_total);
    result.goodput = progress * inputs.throughput / trace.duration;
    return result;
}

}  // namespace pccheck
