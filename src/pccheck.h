#ifndef PCCHECK_PCCHECK_H_
#define PCCHECK_PCCHECK_H_

/**
 * @file
 * Umbrella header: the full public API of the PCcheck library.
 *
 * Typical usage needs only a handful of these:
 *
 *   #include "pccheck.h"
 *   using namespace pccheck;
 *
 *   SimGpu gpu(gpu_config);
 *   TrainingState state(gpu, checkpoint_bytes);
 *   FileStorage ssd("model.ckpt", device_bytes);
 *   PCcheckCheckpointer ck(state, ssd, PCcheckConfig{});
 *   TrainingLoop(gpu, state, model).run(steps, interval, ck);
 *   // after a crash:
 *   auto recovered = recover_into_state(ssd, state);
 */

// The contribution: concurrent checkpointing.
#include "core/adaptive.h"
#include "core/cluster.h"
#include "core/concurrent_commit.h"
#include "core/config.h"
#include "core/distributed.h"
#include "core/free_slot_queue.h"
#include "core/orchestrator.h"
#include "core/persist_engine.h"
#include "core/recovery.h"
#include "core/sharding.h"
#include "core/slot_store.h"
#include "core/tuner.h"

// Baseline checkpointers for comparison.
#include "baselines/checkfreq.h"
#include "baselines/gemini.h"
#include "baselines/gpm.h"
#include "baselines/sync_checkpoint.h"

// Simulated substrate.
#include "gpusim/gpu.h"
#include "net/network.h"
#include "storage/crash_sim.h"
#include "storage/device.h"
#include "storage/file_storage.h"
#include "storage/mem_storage.h"
#include "storage/throttled_storage.h"

// Training workloads and traces.
#include "trace/preemption_trace.h"
#include "trainsim/checkpointer.h"
#include "trainsim/data_loader.h"
#include "trainsim/models.h"
#include "trainsim/training_loop.h"
#include "trainsim/training_state.h"

// Analysis (goodput, recovery bounds, timelines).
#include "goodput/analytic.h"
#include "goodput/footprint.h"
#include "goodput/goodput.h"
#include "goodput/jit.h"
#include "goodput/recovery_model.h"
#include "sim/timeline.h"

// Utilities.
#include "util/affinity.h"
#include "util/bytes.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/crc32.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/throttle.h"

#endif  // PCCHECK_PCCHECK_H_
