#include "remote/remote_recovery.h"

#include <algorithm>

#include "util/check.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace pccheck {
namespace {

/** One restorable peer image, ranked (counter desc, path cost asc). */
struct Candidate {
    ReplicaSnapshot snapshot;
    const ReplicaPeer* peer = nullptr;
    Seconds path_cost = 0;
};

}  // namespace

std::optional<RemoteRecoveryResult>
recover_latest(StorageDevice* local_device, SimNetwork& network,
               int self_node, const std::vector<ReplicaPeer>& peers,
               std::vector<std::uint8_t>* out, Seconds fetch_timeout,
               const Clock& clock)
{
    PCCHECK_CHECK(out != nullptr);
    Stopwatch watch(clock);
    if (local_device != nullptr) {
        try {
            auto local = recover_to_buffer(*local_device, out, clock);
            if (local.has_value()) {
                return RemoteRecoveryResult{*local, false, -1};
            }
        } catch (const FatalError&) {
            // Unformatted / wiped media (node_loss): even the arena
            // header is gone. Fall through to the replica tier.
        }
    }
    // Survey the surviving peers: newest complete counter wins; among
    // equals, the cheapest modeled network path serves the restore.
    std::vector<Candidate> candidates;
    for (const ReplicaPeer& peer : peers) {
        if (peer.store == nullptr || !network.alive(peer.node)) {
            continue;
        }
        const auto snapshot = peer.store->newest_complete();
        if (!snapshot.has_value()) {
            continue;
        }
        Candidate candidate;
        candidate.snapshot = *snapshot;
        candidate.peer = &peer;
        candidate.path_cost = network.estimate_transfer(
            peer.node, self_node, snapshot->data_len);
        candidates.push_back(candidate);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                  if (a.snapshot.counter != b.snapshot.counter) {
                      return a.snapshot.counter > b.snapshot.counter;
                  }
                  return a.path_cost < b.path_cost;
              });
    for (const Candidate& candidate : candidates) {
        const ReplicaSnapshot& snapshot = candidate.snapshot;
        // Pay for moving the image peer → self; a peer that dies or
        // stalls past the deadline just means trying the next one.
        if (!network
                 .transfer_for(candidate.peer->node, self_node,
                               snapshot.data_len, fetch_timeout)
                 .has_value()) {
            continue;
        }
        out->resize(snapshot.data_len);
        if (!candidate.peer->store->read(snapshot.counter, 0, out->data(),
                                         snapshot.data_len)) {
            continue;  // evicted between survey and fetch
        }
        if (snapshot.data_crc != 0 &&
            crc32c(out->data(), out->size()) != snapshot.data_crc) {
            continue;  // never restore bytes that fail their CRC
        }
        LOG_INFO("pccheck: restored checkpoint counter "
                 << snapshot.counter << " from replica on node "
                 << candidate.peer->node);
        MetricsRegistry::global()
            .counter("pccheck.recovery.replica_restores")
            .add();
        RemoteRecoveryResult result;
        result.result.iteration = snapshot.iteration;
        result.result.counter = snapshot.counter;
        result.result.data_len = snapshot.data_len;
        result.result.load_time = watch.elapsed();
        result.result.data_crc = snapshot.data_crc;
        result.from_replica = true;
        result.source_node = candidate.peer->node;
        return result;
    }
    return std::nullopt;
}

}  // namespace pccheck
