#include "remote/remote_recovery.h"

#include "core/recovery_planner.h"
#include "remote/replica_source.h"
#include "util/check.h"
#include "util/logging.h"

namespace pccheck {

std::optional<RemoteRecoveryResult>
recover_latest(StorageDevice* local_device, SimNetwork& network,
               int self_node, const std::vector<ReplicaPeer>& peers,
               std::vector<std::uint8_t>* out, Seconds fetch_timeout,
               const Clock& clock)
{
    PCCHECK_CHECK(out != nullptr);
    // Delegate to the planner: local slot candidates and peer replica
    // versions ranked together (counter desc, modeled cost asc), so a
    // healthy local arena wins ties at zero cost and a wiped one falls
    // through to the replica tier. Salvage is off — recover_latest
    // keeps its read-only contract on the local media (callers that
    // want write-back recovery construct a RecoveryPlanner directly).
    RecoveryPlanner::Options options;
    options.salvage = false;
    RecoveryPlanner planner(local_device, options, clock);
    ReplicaRecoverySource replicas(network, self_node, peers,
                                   fetch_timeout);
    planner.add_source(&replicas);
    const auto planned = planner.recover(out);
    if (!planned.has_value()) {
        return std::nullopt;
    }
    if (planned->from_replica) {
        LOG_INFO("pccheck: restored checkpoint counter "
                 << planned->result.counter << " from replica on node "
                 << planned->source_node);
    }
    RemoteRecoveryResult result;
    result.result = planned->result;
    result.from_replica = planned->from_replica;
    result.source_node = planned->source_node;
    return result;
}

}  // namespace pccheck
