#ifndef PCCHECK_REMOTE_REPLICA_SOURCE_H_
#define PCCHECK_REMOTE_REPLICA_SOURCE_H_

/**
 * @file
 * RecoverySource adapter over peer ReplicaStores.
 *
 * Bridges the replication tier into the RecoveryPlanner: survey()
 * reports each surviving peer's newest quorum-complete version as one
 * candidate, costed by the modeled network path so the planner's
 * (counter desc, cost asc) ranking reproduces the replica tier's
 * "newest counter, then fastest path" preference. fetch() pays for the
 * peer → self transfer (bounded by the ack deadline) before copying
 * the version out of the peer's DRAM; a dead peer, an evicted version,
 * or a missed deadline is reported as not-fetchable and the planner
 * falls back to the next candidate. CRC verification of the fetched
 * bytes stays with the planner.
 */

#include <cstdint>
#include <vector>

#include "core/recovery_planner.h"
#include "net/network.h"
#include "remote/replication.h"
#include "util/clock.h"

namespace pccheck {

/** Peer ReplicaStores as a planner source. */
class ReplicaRecoverySource final : public RecoverySource {
  public:
    /**
     * @param network   cluster fabric (liveness, path costs, transfers)
     * @param self_node the recovering node's id
     * @param peers     replica stores to draw from (borrowed; the
     *                  vector is copied, the stores must outlive this)
     * @param fetch_timeout deadline per remote fetch attempt
     */
    ReplicaRecoverySource(SimNetwork& network, int self_node,
                          std::vector<ReplicaPeer> peers,
                          Seconds fetch_timeout = 1.0);

    const char* name() const override { return "replica"; }
    std::vector<RecoveryCandidate> survey() override;
    bool fetch(const RecoveryCandidate& candidate,
               std::vector<std::uint8_t>* out) override;

  private:
    SimNetwork* network_;
    int self_node_;
    std::vector<ReplicaPeer> peers_;
    Seconds fetch_timeout_;
};

}  // namespace pccheck

#endif  // PCCHECK_REMOTE_REPLICA_SOURCE_H_
