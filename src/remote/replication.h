#ifndef PCCHECK_REMOTE_REPLICATION_H_
#define PCCHECK_REMOTE_REPLICATION_H_

/**
 * @file
 * Peer-replication engine — the send side of the checkpoint
 * replication tier (docs/REPLICATION.md).
 *
 * Each checkpoint's staged chunks are streamed to every peer's
 * ReplicaStore over SimNetwork::transfer_for *concurrently with* the
 * local persist: the orchestrator hands each chunk to send_chunk()
 * right after handing it to the PersistEngine, so network and storage
 * pipelines overlap per chunk (Checkmate-style network tier riding
 * FastPersist-style parallel persist).
 *
 * Commit gating: the orchestrator calls await_quorum() before the
 * CHECK_ADDR CAS. A checkpoint publishes when local persist succeeds
 * AND `quorum` replicas acked (sealed byte-complete + CRC-valid).
 * quorum = 0 never gates; a quorum miss (dead peer, drops, DRAM
 * rejection) still commits locally, ticks
 * `pccheck.replication.degraded`, and skips the watermark advance —
 * graceful degradation, mirroring the storage path.
 *
 * Every network send is deadline-bounded by `ack_timeout`, so a dead
 * peer costs one timeout per in-flight transfer, never a hang.
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "concurrent/thread_pool.h"
#include "net/network.h"
#include "remote/replica_store.h"
#include "util/annotations.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/sync.h"

namespace pccheck {

/** Replication knobs (quorum = 0 reproduces local-only behaviour). */
struct ReplicationConfig {
    /** Peer replicas each checkpoint streams to. 0 disables the tier. */
    int replicas = 0;
    /** Acks required before the commit CAS may publish (<= replicas). */
    int quorum = 0;
    /** Network sub-chunk granularity for each staged chunk. */
    Bytes chunk_bytes = 256 * kKiB;
    /** Per-transfer ack deadline — the cost of a dead peer. */
    Seconds ack_timeout = 0.05;

    bool enabled() const { return replicas > 0; }
    void validate() const;
};

/** One replication target: a peer node id plus its DRAM store. */
struct ReplicaPeer {
    int node = -1;
    ReplicaStore* store = nullptr;
};

/** Streams checkpoint chunks to peer ReplicaStores; thread safe. */
class ReplicationEngine {
  public:
    /**
     * @param network fabric shared with the rest of the cluster
     * @param self_node this (sending) node's id
     * @param config   quorum / chunking / deadline knobs
     * @param peers    one entry per replica; size must equal
     *                 config.replicas
     * @param clock    time source (deadlines, degradation accounting)
     */
    ReplicationEngine(SimNetwork& network, int self_node,
                      const ReplicationConfig& config,
                      std::vector<ReplicaPeer> peers,
                      const Clock& clock = MonotonicClock::instance());

    ~ReplicationEngine();

    ReplicationEngine(const ReplicationEngine&) = delete;
    ReplicationEngine& operator=(const ReplicationEngine&) = delete;

    /** One checkpoint's replication state; see begin(). */
    class Inflight {
      public:
        std::uint64_t counter() const { return counter_; }

      private:
        friend class ReplicationEngine;
        std::uint64_t counter_ = 0;
        std::uint64_t iteration_ = 0;
        Bytes total_len_ = 0;
        mutable Mutex mu_;
        CondVar cv_;
        int acked_ PCCHECK_GUARDED_BY(mu_) = 0;
        int resolved_ PCCHECK_GUARDED_BY(mu_) = 0;  ///< acked or failed
        std::vector<bool> peer_failed_ PCCHECK_GUARDED_BY(mu_);
        std::vector<bool> peer_acked_ PCCHECK_GUARDED_BY(mu_);
    };
    using Handle = std::shared_ptr<Inflight>;

    /** Open replication for one checkpoint attempt. */
    Handle begin(std::uint64_t counter, std::uint64_t iteration,
                 Bytes total_len);

    /**
     * Stream one staged chunk to every peer, pipelined with the local
     * persist of the same bytes. @p src must stay valid until @p done
     * runs (once, after every peer has either stored or failed the
     * chunk) — the orchestrator shares the staging buffer between this
     * and the persist engine via a two-party refcount.
     */
    void send_chunk(const Handle& handle, Bytes offset, const void* src,
                    Bytes len, std::function<void()> done);

    /**
     * Final chunk sent: deliver the checkpoint CRC. Each peer seals
     * its version (byte-completeness + CRC check) and acks or fails.
     * Must be called exactly once per handle, after every send_chunk.
     */
    void seal(const Handle& handle, std::uint32_t data_crc);

    /**
     * Block until the write quorum is met or provably missed. Bounded:
     * every outstanding transfer carries an ack_timeout deadline.
     * True = `quorum` peers acked; false ticks
     * `pccheck.replication.degraded`. quorum = 0 returns true
     * immediately. Call before the commit CAS — never publish a
     * watermark on an un-acked replica.
     */
    bool await_quorum(const Handle& handle);

    /**
     * The handle's checkpoint is now locally durable (published) and
     * quorum-acked: advance the durable-publish watermark on every
     * peer that acked it. Only call after await_quorum(handle)
     * returned true and the local publish succeeded.
     */
    void advance_watermark(const Handle& handle);

    /**
     * Observation guard invoked (on the caller's thread) with the
     * counter of every advance_watermark() before the peer-side
     * advances are queued. The persistence sanitizer uses this to
     * enforce ack-before-payload ordering (docs/PSAN.md rule V1)
     * without this layer depending on psan. Empty = no guard. Set
     * before replication traffic starts; not thread-safe against
     * in-flight advances.
     */
    void set_watermark_guard(std::function<void(std::uint64_t)> guard)
    {
        watermark_guard_ = std::move(guard);
    }

    const ReplicationConfig& config() const { return config_; }
    int self_node() const { return self_; }

    /**
     * Block until every queued peer task (chunk sends, seals,
     * watermark advances) has drained. Only meaningful once callers
     * stop issuing new work — tests and shutdown paths use it to make
     * the asynchronous strand state observable.
     */
    void flush();

    /** Checkpoints that committed without their quorum. */
    std::uint64_t degraded() const
    {
        // relaxed: monitoring counter, no ordering required.
        return degraded_.load(std::memory_order_relaxed);
    }

    /** Total replica acks recorded. */
    std::uint64_t acks() const
    {
        // relaxed: monitoring counter, no ordering required.
        return acks_.load(std::memory_order_relaxed);
    }

    /** Total bytes handed to the fabric (includes dropped sends). */
    Bytes bytes_sent() const
    {
        // relaxed: monitoring counter, no ordering required.
        return bytes_sent_.load(std::memory_order_relaxed);
    }

  private:
    /**
     * Per-peer FIFO strand: chunk sends and the seal for one peer run
     * in order on the shared pool, while peers proceed in parallel.
     */
    struct PeerState {
        ReplicaPeer peer;
        Mutex mu;
        std::deque<std::function<void()>> queue PCCHECK_GUARDED_BY(mu);
        bool running PCCHECK_GUARDED_BY(mu) = false;
    };

    void enqueue(PeerState& state, std::function<void()> task);
    void drain(PeerState& state);
    void mark_peer_failed(const Handle& handle, std::size_t index);
    void record_ack(const Handle& handle, std::size_t index, bool acked);

    SimNetwork* net_;
    const int self_;
    const ReplicationConfig config_;
    const Clock* clock_;
    std::vector<std::unique_ptr<PeerState>> peers_;
    std::unique_ptr<ThreadPool> pool_;
    Atomic<std::uint64_t> degraded_{0};
    Atomic<std::uint64_t> acks_{0};
    Atomic<Bytes> bytes_sent_{0};
    /** Set once before traffic starts; called on the advancing thread. */
    std::function<void(std::uint64_t)> watermark_guard_;
};

}  // namespace pccheck

#endif  // PCCHECK_REMOTE_REPLICATION_H_
