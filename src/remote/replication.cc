#include "remote/replication.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/metrics.h"

namespace pccheck {

void
ReplicationConfig::validate() const
{
    if (replicas < 0 || quorum < 0) {
        fatal("ReplicationConfig: replicas and quorum must be >= 0");
    }
    if (quorum > replicas) {
        fatal("ReplicationConfig: quorum exceeds replica count");
    }
    if (chunk_bytes == 0) {
        fatal("ReplicationConfig: chunk_bytes must be > 0");
    }
    if (ack_timeout <= 0) {
        fatal("ReplicationConfig: ack_timeout must be > 0");
    }
}

ReplicationEngine::ReplicationEngine(SimNetwork& network, int self_node,
                                     const ReplicationConfig& config,
                                     std::vector<ReplicaPeer> peers,
                                     const Clock& clock)
    : net_(&network), self_(self_node), config_(config), clock_(&clock)
{
    config_.validate();
    PCCHECK_CHECK_MSG(
        peers.size() == static_cast<std::size_t>(config_.replicas),
        "ReplicationEngine: " << peers.size() << " peers for "
                              << config_.replicas << " replicas");
    peers_.reserve(peers.size());
    for (const ReplicaPeer& peer : peers) {
        PCCHECK_CHECK(peer.store != nullptr);
        PCCHECK_CHECK(peer.node >= 0 && peer.node < network.nodes());
        PCCHECK_CHECK_MSG(peer.node != self_node,
                          "a node cannot replicate to itself");
        auto state = std::make_unique<PeerState>();
        state->peer = peer;
        peers_.push_back(std::move(state));
    }
    // One sender lane per peer: strands keep per-peer FIFO order while
    // peers stream in parallel.
    pool_ = std::make_unique<ThreadPool>(
        std::max<std::size_t>(1, peers_.size()));
}

ReplicationEngine::~ReplicationEngine() = default;

void
ReplicationEngine::flush()
{
    // Each drain task keeps running until its strand queue is empty,
    // so once callers stop enqueuing, waiting for the pool to idle
    // means every queued task (and its follow-on drains) has run.
    pool_->wait_idle();
}

void
ReplicationEngine::enqueue(PeerState& state, std::function<void()> task)
{
    bool start = false;
    {
        MutexLock lock(state.mu);
        state.queue.push_back(std::move(task));
        if (!state.running) {
            state.running = true;
            start = true;
        }
    }
    if (start) {
        (void)pool_->submit([this, &state] { drain(state); });
    }
}

void
ReplicationEngine::drain(PeerState& state)
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(state.mu);
            if (state.queue.empty()) {
                state.running = false;
                return;
            }
            task = std::move(state.queue.front());
            state.queue.pop_front();
        }
        task();
    }
}

ReplicationEngine::Handle
ReplicationEngine::begin(std::uint64_t counter, std::uint64_t iteration,
                         Bytes total_len)
{
    auto handle = std::make_shared<Inflight>();
    handle->counter_ = counter;
    handle->iteration_ = iteration;
    handle->total_len_ = total_len;
    {
        MutexLock lock(handle->mu_);
        handle->peer_failed_.assign(peers_.size(), false);
        handle->peer_acked_.assign(peers_.size(), false);
    }
    return handle;
}

void
ReplicationEngine::mark_peer_failed(const Handle& handle,
                                    std::size_t index)
{
    MutexLock lock(handle->mu_);
    if (!handle->peer_failed_[index]) {
        handle->peer_failed_[index] = true;
        ++handle->resolved_;
        handle->cv_.notify_all();
    }
}

void
ReplicationEngine::record_ack(const Handle& handle, std::size_t index,
                              bool acked)
{
    {
        MutexLock lock(handle->mu_);
        if (acked) {
            handle->peer_acked_[index] = true;
            ++handle->acked_;
        } else {
            handle->peer_failed_[index] = true;
        }
        ++handle->resolved_;
        handle->cv_.notify_all();
    }
    if (acked) {
        // Cached handle: a registry lookup per ack would pay a string
        // construction and the registry mutex on the strand.
        static Counter& acks_counter =
            MetricsRegistry::global().counter("pccheck.replication.acks");
        // relaxed: monitoring counter, no ordering required.
        acks_.fetch_add(1, std::memory_order_relaxed);
        acks_counter.add();
    }
}

PCCHECK_HOT_PATH void
ReplicationEngine::send_chunk(const Handle& handle, Bytes offset,
                              const void* src, Bytes len,
                              std::function<void()> done)
{
    PCCHECK_CHECK(handle != nullptr);
    // Cached handles: the strand's inner loop runs once per sub-chunk,
    // so per-call registry lookups (string ctor + registry mutex + map
    // walk) would serialize senders on the metrics lock.
    static Counter& bytes_counter =
        MetricsRegistry::global().counter("pccheck.replication.bytes");
    static Counter& chunks_counter =
        MetricsRegistry::global().counter(
            "pccheck.replication.chunks_sent");
    if (peers_.empty()) {
        if (done) {
            done();
        }
        return;
    }
    struct ChunkFanout {
        Atomic<int> remaining{0};
        std::function<void()> done;
    };
    // pccheck-tidy: disable=hot-path-alloc -- one control block per
    // staged chunk, amortized over chunk_bytes of network I/O.
    auto fanout = std::make_shared<ChunkFanout>();
    // relaxed: the store precedes the task submissions that share the
    // counter; the strand queue handoff publishes it.
    fanout->remaining.store(static_cast<int>(peers_.size()),
                            std::memory_order_relaxed);
    fanout->done = std::move(done);
    for (std::size_t i = 0; i < peers_.size(); ++i) {
        PeerState* state = peers_[i].get();
        // pccheck-tidy: disable=hot-path-alloc -- per-peer task
        // capture + strand queue node, once per chunk handoff.
        enqueue(*state, [this, state, handle, i, offset, src, len,
                         fanout] {
            bool failed;
            {
                MutexLock lock(handle->mu_);
                failed = handle->peer_failed_[i];
            }
            if (!failed) {
                const auto* bytes = static_cast<const std::uint8_t*>(src);
                for (Bytes sent = 0; sent < len;) {
                    const Bytes sub =
                        std::min(config_.chunk_bytes, len - sent);
                    // relaxed: monitoring counter, no ordering needed.
                    bytes_sent_.fetch_add(sub, std::memory_order_relaxed);
                    bytes_counter.add(sub);
                    if (!net_->transfer_for(self_, state->peer.node, sub,
                                            config_.ack_timeout)
                             .has_value()) {
                        mark_peer_failed(handle, i);
                        break;
                    }
                    if (!state->peer.store
                             ->store_chunk(handle->counter_,
                                           handle->iteration_,
                                           handle->total_len_,
                                           offset + sent, bytes + sent,
                                           sub)
                             .stored) {
                        mark_peer_failed(handle, i);
                        break;
                    }
                    chunks_counter.add();
                    sent += sub;
                }
            }
            if (fanout->remaining.fetch_sub(
                    1, std::memory_order_acq_rel) == 1 &&
                fanout->done) {
                fanout->done();
            }
        });
    }
}

void
ReplicationEngine::seal(const Handle& handle, std::uint32_t data_crc)
{
    PCCHECK_CHECK(handle != nullptr);
    for (std::size_t i = 0; i < peers_.size(); ++i) {
        PeerState* state = peers_[i].get();
        enqueue(*state, [this, state, handle, i, data_crc] {
            {
                MutexLock lock(handle->mu_);
                if (handle->peer_failed_[i]) {
                    return;  // already resolved as failed
                }
            }
            const bool acked =
                state->peer.store->seal(handle->counter_, data_crc);
            record_ack(handle, i, acked);
        });
    }
}

bool
ReplicationEngine::await_quorum(const Handle& handle)
{
    PCCHECK_CHECK(handle != nullptr);
    if (config_.quorum == 0) {
        return true;  // never gate: today's local-only behaviour
    }
    const int total = static_cast<int>(peers_.size());
    bool met;
    {
        MutexLock lock(handle->mu_);
        // Bounded: every pending peer resolves once its deadline-
        // bounded transfers and seal land on the strand.
        while (handle->acked_ < config_.quorum &&
               handle->acked_ + (total - handle->resolved_) >=
                   config_.quorum) {
            handle->cv_.wait(handle->mu_);
        }
        met = handle->acked_ >= config_.quorum;
    }
    if (!met) {
        // relaxed: monitoring counter, no ordering required.
        degraded_.fetch_add(1, std::memory_order_relaxed);
        MetricsRegistry::global()
            .counter("pccheck.replication.degraded")
            .add();
    }
    return met;
}

void
ReplicationEngine::advance_watermark(const Handle& handle)
{
    PCCHECK_CHECK(handle != nullptr);
    if (watermark_guard_) {
        watermark_guard_(handle->counter_);
    }
    for (std::size_t i = 0; i < peers_.size(); ++i) {
        PeerState* state = peers_[i].get();
        enqueue(*state, [state, handle, i] {
            bool acked;
            {
                MutexLock lock(handle->mu_);
                acked = handle->peer_acked_[i];
            }
            if (!acked) {
                return;  // never advance past what this peer holds
            }
            // quorum-acked: the orchestrator only calls
            // advance_watermark after await_quorum succeeded and the
            // local publish is durable, and this strand runs after the
            // seal that recorded this peer's ack.
            state->peer.store->advance_watermark(handle->counter_);
        });
    }
}

}  // namespace pccheck
