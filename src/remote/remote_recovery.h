#ifndef PCCHECK_REMOTE_REMOTE_RECOVERY_H_
#define PCCHECK_REMOTE_REMOTE_RECOVERY_H_

/**
 * @file
 * Replica-aware recovery (docs/REPLICATION.md §recovery).
 *
 * recover_latest() first runs the ordinary local CHECK_ADDR scan
 * (core/recovery.h). When the local media holds nothing valid — the
 * node_loss fault action wipes it to zeros, so even the SlotStore
 * header is gone — it queries every surviving peer's ReplicaStore for
 * its newest quorum-complete counter and restores that image over the
 * network, preferring the highest counter and breaking ties by the
 * fastest modeled path (SimNetwork::estimate_transfer). The restored
 * counter is always >= the surviving replicas' durable-publish
 * watermark, which is the replication tier's recovery guarantee.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "core/recovery.h"
#include "net/network.h"
#include "remote/replication.h"
#include "storage/device.h"
#include "util/clock.h"

namespace pccheck {

/** recover_latest outcome: where the bytes came from. */
struct RemoteRecoveryResult {
    RecoveryResult result;
    bool from_replica = false;  ///< true = restored over the network
    int source_node = -1;       ///< peer that served the image (-1 local)
};

/**
 * Restore the newest checkpoint reachable from @p self_node.
 *
 * @param local_device this node's checkpoint media (nullptr = lost)
 * @param network      cluster fabric (path costs + byte movement)
 * @param self_node    the recovering node's id (NIC must be alive)
 * @param peers        replica stores to fall back to
 * @param out          receives the checkpoint image
 * @param fetch_timeout deadline per remote fetch attempt
 * @param clock        time source for load-time accounting
 * @return std::nullopt when neither local media nor any peer holds a
 *         valid checkpoint.
 */
std::optional<RemoteRecoveryResult> recover_latest(
    StorageDevice* local_device, SimNetwork& network, int self_node,
    const std::vector<ReplicaPeer>& peers, std::vector<std::uint8_t>* out,
    Seconds fetch_timeout = 1.0,
    const Clock& clock = MonotonicClock::instance());

}  // namespace pccheck

#endif  // PCCHECK_REMOTE_REMOTE_RECOVERY_H_
