#include "remote/replica_source.h"

#include "remote/replica_store.h"

namespace pccheck {

ReplicaRecoverySource::ReplicaRecoverySource(SimNetwork& network,
                                             int self_node,
                                             std::vector<ReplicaPeer> peers,
                                             Seconds fetch_timeout)
    : network_(&network),
      self_node_(self_node),
      peers_(std::move(peers)),
      fetch_timeout_(fetch_timeout)
{
}

std::vector<RecoveryCandidate>
ReplicaRecoverySource::survey()
{
    std::vector<RecoveryCandidate> candidates;
    for (const ReplicaPeer& peer : peers_) {
        if (peer.store == nullptr || !network_->alive(peer.node)) {
            continue;
        }
        const auto snapshot = peer.store->newest_complete();
        if (!snapshot.has_value()) {
            continue;
        }
        RecoveryCandidate candidate;
        candidate.counter = snapshot->counter;
        candidate.iteration = snapshot->iteration;
        candidate.data_len = snapshot->data_len;
        candidate.data_crc = snapshot->data_crc;
        candidate.cost = network_->estimate_transfer(
            peer.node, self_node_, snapshot->data_len);
        candidate.local = false;
        candidate.source_node = peer.node;
        candidates.push_back(candidate);
    }
    return candidates;
}

bool
ReplicaRecoverySource::fetch(const RecoveryCandidate& candidate,
                             std::vector<std::uint8_t>* out)
{
    const ReplicaPeer* peer = nullptr;
    for (const ReplicaPeer& p : peers_) {
        if (p.node == candidate.source_node) {
            peer = &p;
            break;
        }
    }
    if (peer == nullptr || peer->store == nullptr ||
        !network_->alive(peer->node)) {
        return false;
    }
    // Pay for moving the image peer → self; a peer that dies or stalls
    // past the deadline just means the planner tries the next one.
    if (!network_
             ->transfer_for(peer->node, self_node_, candidate.data_len,
                            fetch_timeout_)
             .has_value()) {
        return false;
    }
    out->resize(candidate.data_len);
    return peer->store->read(candidate.counter, 0, out->data(),
                             candidate.data_len);
}

}  // namespace pccheck
