#include "remote/replica_store.h"

#include <cstring>

#include "util/check.h"
#include "util/crc32.h"
#include "util/metrics.h"

namespace pccheck {

ReplicaStore::ReplicaStore(Bytes dram_budget) : budget_(dram_budget) {}

bool
ReplicaStore::make_room(Bytes need, std::uint64_t incoming)
{
    if (budget_ == 0) {
        return true;
    }
    if (need > budget_) {
        return false;  // a single version can never fit
    }
    // Protect the newest complete version: it is the replica's reason
    // to exist (the recovery target when the owner's node is lost).
    std::uint64_t protect = 0;
    for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
        if (it->second.complete) {
            protect = it->first;
            break;
        }
    }
    while (held_ + need > budget_) {
        // Oldest victim first: stale and incomplete versions go before
        // anything recovery could want.
        auto victim = versions_.end();
        for (auto it = versions_.begin(); it != versions_.end(); ++it) {
            if (it->first == protect || it->first == incoming) {
                continue;
            }
            victim = it;
            break;
        }
        if (victim == versions_.end()) {
            return false;
        }
        held_ -= victim->second.data.size();
        versions_.erase(victim);
        ++evictions_;
        // Cached handle: make_room runs under the store's mutex, and a
        // registry lookup (string ctor + registry mutex) would nest
        // that lock inside this one on every eviction.
        static Counter& evictions_counter =
            MetricsRegistry::global().counter(
                "pccheck.replication.evictions");
        evictions_counter.add();
    }
    return true;
}

void
ReplicaStore::prune_superseded()
{
    std::uint64_t newest = 0;
    for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
        if (it->second.complete) {
            newest = it->first;
            break;
        }
    }
    if (newest == 0) {
        return;
    }
    for (auto it = versions_.begin(); it != versions_.end();) {
        if (it->first < newest) {
            held_ -= it->second.data.size();
            it = versions_.erase(it);
        } else {
            ++it;
        }
    }
}

ReplicaStore::ChunkResult
ReplicaStore::store_chunk(std::uint64_t counter, std::uint64_t iteration,
                          Bytes total_len, Bytes offset, const void* data,
                          Bytes len)
{
    PCCHECK_CHECK(offset + len <= total_len);
    MutexLock lock(mu_);
    auto it = versions_.find(counter);
    if (it == versions_.end()) {
        if (!make_room(total_len, counter)) {
            ++rejected_;
            return ChunkResult{};
        }
        Version fresh;
        fresh.iteration = iteration;
        fresh.total_len = total_len;
        fresh.data.resize(total_len);
        held_ += total_len;
        it = versions_.emplace(counter, std::move(fresh)).first;
    }
    Version& version = it->second;
    PCCHECK_CHECK_MSG(version.total_len == total_len,
                      "replica chunk length mismatch for counter "
                          << counter);
    std::memcpy(version.data.data() + offset, data, len);
    version.received += len;
    return ChunkResult{true, version.received == version.total_len};
}

bool
ReplicaStore::seal(std::uint64_t counter, std::uint32_t data_crc)
{
    MutexLock lock(mu_);
    auto it = versions_.find(counter);
    if (it == versions_.end()) {
        return false;  // evicted (or never fit) before the seal arrived
    }
    Version& version = it->second;
    if (version.received != version.total_len) {
        return false;  // dropped chunk: never ack a hole
    }
    if (data_crc != 0 &&
        crc32c(version.data.data(), version.data.size()) != data_crc) {
        return false;  // corrupted in flight
    }
    version.data_crc = data_crc;
    version.complete = true;
    // Older versions can no longer be the newest recovery target.
    prune_superseded();
    return true;
}

void
ReplicaStore::advance_watermark(std::uint64_t counter)
{
    MutexLock lock(mu_);
    if (counter > watermark_) {
        watermark_ = counter;
    }
}

std::uint64_t
ReplicaStore::watermark() const
{
    MutexLock lock(mu_);
    return watermark_;
}

std::optional<ReplicaSnapshot>
ReplicaStore::newest_complete() const
{
    MutexLock lock(mu_);
    for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
        if (!it->second.complete) {
            continue;
        }
        ReplicaSnapshot snapshot;
        snapshot.counter = it->first;
        snapshot.iteration = it->second.iteration;
        snapshot.data_len = it->second.total_len;
        snapshot.data_crc = it->second.data_crc;
        return snapshot;
    }
    return std::nullopt;
}

bool
ReplicaStore::read(std::uint64_t counter, Bytes offset, void* dst,
                   Bytes len) const
{
    MutexLock lock(mu_);
    const auto it = versions_.find(counter);
    if (it == versions_.end() || !it->second.complete ||
        offset + len > it->second.total_len) {
        return false;
    }
    std::memcpy(dst, it->second.data.data() + offset, len);
    return true;
}

ReplicaStore::ScrubResult
ReplicaStore::scrub()
{
    MutexLock lock(mu_);
    ScrubResult result;
    for (auto it = versions_.begin(); it != versions_.end();) {
        Version& version = it->second;
        if (!version.complete || version.data_crc == 0) {
            ++it;
            continue;
        }
        ++result.scanned;
        if (crc32c(version.data.data(), version.data.size()) ==
            version.data_crc) {
            ++it;
            continue;
        }
        // DRAM rot: the version can never serve a restore (the planner
        // would reject its bytes) and must not shadow older intact
        // versions via newest_complete — drop it.
        ++result.dropped;
        held_ -= version.data.size();
        it = versions_.erase(it);
    }
    return result;
}

ReplicaStoreStats
ReplicaStore::stats() const
{
    MutexLock lock(mu_);
    ReplicaStoreStats stats;
    stats.versions = versions_.size();
    stats.bytes_held = held_;
    stats.evictions = evictions_;
    stats.rejected = rejected_;
    return stats;
}

}  // namespace pccheck
