#ifndef PCCHECK_REMOTE_REPLICA_STORE_H_
#define PCCHECK_REMOTE_REPLICA_STORE_H_

/**
 * @file
 * Per-peer in-DRAM checkpoint replica store — the receive side of the
 * peer-replication tier (docs/REPLICATION.md).
 *
 * A ReplicaStore lives on a peer node and holds versioned checkpoint
 * images keyed by the commit-protocol counter. Chunks arrive over the
 * network in any order while the owner is still persisting locally;
 * seal() delivers the final CRC-32C, and only a version whose bytes
 * are all present and whose CRC validates becomes `complete` — the
 * unit of an ack in the write-quorum protocol.
 *
 * The durable-publish watermark tracks the newest counter the owner
 * reported as both locally durable and quorum-acked. Recovery may
 * restore any complete version with counter >= watermark; eviction
 * under the DRAM budget (fig14 interplay) therefore prefers stale and
 * incomplete versions and never evicts the newest complete one.
 */

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "util/annotations.h"
#include "util/bytes.h"

namespace pccheck {

/** Recovery-facing summary of one replicated version. */
struct ReplicaSnapshot {
    std::uint64_t counter = 0;    ///< commit-protocol counter
    std::uint64_t iteration = 0;  ///< training iteration of the data
    Bytes data_len = 0;
    std::uint32_t data_crc = 0;   ///< 0 = sender did not compute CRCs
};

/** Counters exposed for tests and monitoring. */
struct ReplicaStoreStats {
    std::size_t versions = 0;     ///< versions currently held
    Bytes bytes_held = 0;         ///< DRAM in use
    std::uint64_t evictions = 0;  ///< versions dropped for the budget
    std::uint64_t rejected = 0;   ///< chunks refused (budget too small)
};

/** One peer's DRAM replica slots; thread safe. */
class ReplicaStore {
  public:
    /** @param dram_budget max bytes of replica DRAM; 0 = unlimited. */
    explicit ReplicaStore(Bytes dram_budget = 0);

    struct ChunkResult {
        bool stored = false;         ///< bytes are in DRAM
        bool byte_complete = false;  ///< every byte of the version is
    };

    /**
     * Store one chunk of version @p counter. The first chunk of a new
     * counter allocates the whole @p total_len buffer (evicting under
     * the budget if needed); a version that cannot fit is refused and
     * every later chunk of it is refused too, which surfaces to the
     * sender as a failed ack.
     */
    ChunkResult store_chunk(std::uint64_t counter, std::uint64_t iteration,
                            Bytes total_len, Bytes offset, const void* data,
                            Bytes len);

    /**
     * Deliver the final CRC for @p counter; validates byte completeness
     * and (when @p data_crc != 0) the CRC-32C over the whole buffer.
     * True = the version is complete — this is the replica's ack.
     * A sealed-complete version makes every older version prunable.
     */
    bool seal(std::uint64_t counter, std::uint32_t data_crc);

    /**
     * Owner reported @p counter as locally durable + quorum-acked.
     * Monotonic; versions below the new watermark become preferred
     * eviction victims but are kept while the budget allows.
     */
    void advance_watermark(std::uint64_t counter);

    /** Newest counter known durable + quorum-acked (0 before any). */
    std::uint64_t watermark() const;

    /** Newest complete (sealed, CRC-valid) version, if any. */
    std::optional<ReplicaSnapshot> newest_complete() const;

    /**
     * Copy @p len bytes at @p offset of complete version @p counter
     * into @p dst. False when the version is absent or incomplete.
     */
    bool read(std::uint64_t counter, Bytes offset, void* dst,
              Bytes len) const;

    /** Outcome of one replica-side scrub pass. */
    struct ScrubResult {
        std::uint64_t scanned = 0;  ///< complete versions re-verified
        std::uint64_t dropped = 0;  ///< versions failing their CRC
    };

    /**
     * Re-verify every complete version's bytes against its sealed
     * CRC-32C and drop the ones that no longer match (DRAM bit rot has
     * no in-place repair — the owner's next checkpoint or a quorum
     * peer re-replicates). Versions sealed without a CRC are skipped.
     */
    ScrubResult scrub();

    ReplicaStoreStats stats() const;
    Bytes dram_budget() const { return budget_; }

  private:
    struct Version {
        std::uint64_t iteration = 0;
        Bytes total_len = 0;
        Bytes received = 0;  ///< bytes stored (chunks never overlap)
        std::uint32_t data_crc = 0;
        bool complete = false;
        std::vector<std::uint8_t> data;
    };

    /** Evict until @p need more bytes fit; false if impossible. */
    bool make_room(Bytes need, std::uint64_t incoming)
        PCCHECK_REQUIRES(mu_);
    /** Drop every version older than the newest complete one. */
    void prune_superseded() PCCHECK_REQUIRES(mu_);

    const Bytes budget_;
    mutable Mutex mu_;
    std::map<std::uint64_t, Version> versions_ PCCHECK_GUARDED_BY(mu_);
    std::uint64_t watermark_ PCCHECK_GUARDED_BY(mu_) = 0;
    Bytes held_ PCCHECK_GUARDED_BY(mu_) = 0;
    std::uint64_t evictions_ PCCHECK_GUARDED_BY(mu_) = 0;
    std::uint64_t rejected_ PCCHECK_GUARDED_BY(mu_) = 0;
};

}  // namespace pccheck

#endif  // PCCHECK_REMOTE_REPLICA_STORE_H_
