#include "baselines/gemini.h"

#include "util/check.h"

namespace pccheck {

GeminiCheckpointer::GeminiCheckpointer(TrainingState& state,
                                       SimNetwork& network, int rank,
                                       int peer_rank,
                                       MemStorage& peer_memory,
                                       const Clock& clock)
    : state_(&state), network_(&network), rank_(rank),
      peer_rank_(peer_rank), peer_memory_(&peer_memory), clock_(&clock)
{
    PCCHECK_CHECK(rank != peer_rank);
    PCCHECK_CHECK_MSG(peer_memory.size() >= state.size(),
                      "peer DRAM smaller than checkpoint");
    gpu_staging_.resize(state.size());
    worker_ = std::thread([this] { worker(); });
}

GeminiCheckpointer::~GeminiCheckpointer()
{
    {
        MutexLock lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    worker_.join();
}

void
GeminiCheckpointer::before_update(std::uint64_t iteration)
{
    (void)iteration;
    MutexLock lock(mu_);
    if (!snapshot_in_progress_ && !has_request_) {
        return;
    }
    Stopwatch watch(*clock_);
    while (snapshot_in_progress_ || has_request_) {
        cv_.wait(mu_);
    }
    stats_.stall_time += watch.elapsed();
}

void
GeminiCheckpointer::request_checkpoint(std::uint64_t iteration)
{
    MutexLock lock(mu_);
    // One checkpoint at a time: the next snapshot waits until the
    // previous network transfer finishes.
    if (snapshot_in_progress_ || transfer_in_progress_ || has_request_) {
        Stopwatch watch(*clock_);
        while (snapshot_in_progress_ || transfer_in_progress_ ||
               has_request_) {
            cv_.wait(mu_);
        }
        stats_.stall_time += watch.elapsed();
    }
    ++stats_.requested;
    has_request_ = true;
    request_iteration_ = iteration;
    request_time_ = clock_->now();
    cv_.notify_all();
}

void
GeminiCheckpointer::finish()
{
    MutexLock lock(mu_);
    while (has_request_ || snapshot_in_progress_ ||
           transfer_in_progress_) {
        cv_.wait(mu_);
    }
}

CheckpointerStats
GeminiCheckpointer::stats() const
{
    MutexLock lock(mu_);
    return stats_;
}

std::uint64_t
GeminiCheckpointer::latest_remote_iteration() const
{
    MutexLock lock(mu_);
    return latest_remote_iteration_;
}

void
GeminiCheckpointer::worker()
{
    for (;;) {
        std::uint64_t iteration = 0;
        Seconds request_time = 0;
        {
            MutexLock lock(mu_);
            while (!has_request_ && !stopping_) {
                cv_.wait(mu_);
            }
            if (!has_request_ && stopping_) {
                return;
            }
            iteration = request_iteration_;
            request_time = request_time_;
            has_request_ = false;
            snapshot_in_progress_ = true;
        }
        run_checkpoint(iteration, request_time);
    }
}

void
GeminiCheckpointer::run_checkpoint(std::uint64_t iteration,
                                   Seconds request_time)
{
    // Snapshot out of GPU memory (Gemini pipelines this transfer with
    // the forward/backward pass; it does not block training).
    state_->gpu().copy_to_host(gpu_staging_.data(), state_->device_ptr(),
                               0, gpu_staging_.size(), /*pinned=*/true);
    {
        MutexLock lock(mu_);
        snapshot_in_progress_ = false;
        transfer_in_progress_ = true;
    }
    cv_.notify_all();

    // Ship the snapshot to the peer's CPU memory over the NIC. The
    // peer "device" is plain DRAM, so the write cannot fail.
    network_->transfer(rank_, peer_rank_, gpu_staging_.size());
    PCCHECK_MUST(
        peer_memory_->write(0, gpu_staging_.data(), gpu_staging_.size()));

    {
        MutexLock lock(mu_);
        transfer_in_progress_ = false;
        latest_remote_iteration_ = iteration;
        ++stats_.completed;
        stats_.checkpoint_latency.add(clock_->now() - request_time);
    }
    cv_.notify_all();
}

}  // namespace pccheck
