#ifndef PCCHECK_BASELINES_GPM_H_
#define PCCHECK_BASELINES_GPM_H_

/**
 * @file
 * GPM baseline [Pandey et al., ASPLOS'22]: checkpoints with GPU copy
 * kernels over UVM directly into the (memory-mapped) persistent
 * device — no DRAM staging, but the copy kernels occupy the SMs, so
 * training stalls for the entire checkpoint (§2.2; "similar to Fig. 3
 * but without the intermediate DRAM copy"). Extended to SSD as the
 * paper does: cudaDeviceSynchronize + msync of the mmapped file.
 */

#include <memory>

#include "core/concurrent_commit.h"
#include "core/slot_store.h"
#include "trainsim/checkpointer.h"
#include "trainsim/training_state.h"
#include "util/clock.h"

namespace pccheck {

/** GPM: stall-and-persist via GPU copy kernels, no DRAM hop. */
class GpmCheckpointer final : public Checkpointer {
  public:
    /**
     * Formats @p device with the 2-slot (2×m, Table 1) layout.
     * @param compute_crc checksum data for recovery validation (see
     *        PCcheckConfig::compute_crc)
     */
    GpmCheckpointer(TrainingState& state, StorageDevice& device,
                    const Clock& clock = MonotonicClock::instance(),
                    bool compute_crc = true);

    std::string name() const override { return "gpm"; }
    void request_checkpoint(std::uint64_t iteration) override;
    CheckpointerStats stats() const override;

  private:
    TrainingState* state_;
    const Clock* clock_;
    bool compute_crc_;
    std::unique_ptr<SlotStore> store_;
    std::unique_ptr<ConcurrentCommit> commit_;
    CheckpointerStats stats_;
};

}  // namespace pccheck

#endif  // PCCHECK_BASELINES_GPM_H_
