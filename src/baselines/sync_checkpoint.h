#ifndef PCCHECK_BASELINES_SYNC_CHECKPOINT_H_
#define PCCHECK_BASELINES_SYNC_CHECKPOINT_H_

/**
 * @file
 * Traditional synchronous checkpointing (paper Fig. 3): training
 * stalls while the state is copied to DRAM and then persisted —
 * the torch.save / tf.train.Checkpoint behaviour. Uses the standard
 * 2×m slot layout (Table 1).
 */

#include <memory>
#include <vector>

#include "core/concurrent_commit.h"
#include "core/persist_engine.h"
#include "core/slot_store.h"
#include "trainsim/checkpointer.h"
#include "trainsim/training_state.h"
#include "util/clock.h"

namespace pccheck {

/** Knobs shared by the single-checkpoint baselines. */
struct BaselineConfig {
    /**
     * CPU-side serialization bandwidth, bytes/sec; models the
     * torch.save tensor serialization cost CheckFreq and traditional
     * checkpointing pay before bytes reach storage. 0 disables.
     */
    double serialize_bytes_per_sec = 0;
    /** Per-writer storage bandwidth ceiling (see PersistEngine). */
    double per_writer_bytes_per_sec = 0;
    /** Pinned staging memory for GPU copies. */
    bool pinned_memory = true;
    /** Checksum checkpoint data (see PCcheckConfig::compute_crc). */
    bool compute_crc = true;
};

/** Fully synchronous checkpointer (PyTorch/TF default). */
class SyncCheckpointer final : public Checkpointer {
  public:
    /** Formats @p device with the 2-slot layout. */
    SyncCheckpointer(TrainingState& state, StorageDevice& device,
                     const BaselineConfig& config = {},
                     const Clock& clock = MonotonicClock::instance());

    std::string name() const override { return "sync"; }
    void request_checkpoint(std::uint64_t iteration) override;
    CheckpointerStats stats() const override;

  private:
    TrainingState* state_;
    BaselineConfig config_;
    const Clock* clock_;
    std::unique_ptr<SlotStore> store_;
    std::unique_ptr<ConcurrentCommit> commit_;
    std::unique_ptr<PersistEngine> engine_;
    std::vector<std::uint8_t> staging_;
    CheckpointerStats stats_;
};

}  // namespace pccheck

#endif  // PCCHECK_BASELINES_SYNC_CHECKPOINT_H_
