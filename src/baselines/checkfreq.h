#ifndef PCCHECK_BASELINES_CHECKFREQ_H_
#define PCCHECK_BASELINES_CHECKFREQ_H_

/**
 * @file
 * CheckFreq baseline [Mohan et al., FAST'21], per paper Fig. 4:
 * the snapshot (GPU→DRAM copy) overlaps with the next iteration's
 * forward/backward pass, and the persist runs on a background thread —
 * but only ONE checkpoint can be in flight. When the training loop
 * reaches the next checkpoint before the previous one has persisted,
 * it stalls ("the second iteration's copying waits until the previous
 * checkpoint is persisted, leaving the GPU idle").
 */

#include <memory>
#include <thread>
#include <vector>

#include "baselines/sync_checkpoint.h"
#include "core/concurrent_commit.h"
#include "core/persist_engine.h"
#include "core/slot_store.h"
#include "trainsim/checkpointer.h"
#include "trainsim/training_state.h"
#include "util/annotations.h"

namespace pccheck {

/** CheckFreq: pipelined snapshot+persist, one checkpoint at a time. */
class CheckFreqCheckpointer final : public Checkpointer {
  public:
    /** Formats @p device with the 2-slot (2×m, Table 1) layout. */
    CheckFreqCheckpointer(TrainingState& state, StorageDevice& device,
                          const BaselineConfig& config = {},
                          const Clock& clock = MonotonicClock::instance());
    ~CheckFreqCheckpointer() override;

    std::string name() const override { return "checkfreq"; }
    void before_update(std::uint64_t iteration) override;
    void request_checkpoint(std::uint64_t iteration) override;
    void finish() override;
    CheckpointerStats stats() const override;

  private:
    void worker();
    void run_checkpoint(std::uint64_t iteration, Seconds request_time);

    TrainingState* state_;
    BaselineConfig config_;
    const Clock* clock_;
    std::unique_ptr<SlotStore> store_;
    std::unique_ptr<ConcurrentCommit> commit_;
    std::unique_ptr<PersistEngine> engine_;
    std::vector<std::uint8_t> staging_;

    mutable Mutex mu_;
    CondVar cv_;
    /** C phase running */
    bool snapshot_in_progress_ PCCHECK_GUARDED_BY(mu_) = false;
    /** P phase running */
    bool persist_in_progress_ PCCHECK_GUARDED_BY(mu_) = false;
    bool has_request_ PCCHECK_GUARDED_BY(mu_) = false;
    bool stopping_ PCCHECK_GUARDED_BY(mu_) = false;
    std::uint64_t request_iteration_ PCCHECK_GUARDED_BY(mu_) = 0;
    Seconds request_time_ PCCHECK_GUARDED_BY(mu_) = 0;
    CheckpointerStats stats_ PCCHECK_GUARDED_BY(mu_);
    std::thread worker_;
};

}  // namespace pccheck

#endif  // PCCHECK_BASELINES_CHECKFREQ_H_
