#include "baselines/checkfreq.h"

#include "util/check.h"
#include "util/crc32.h"

namespace pccheck {

CheckFreqCheckpointer::CheckFreqCheckpointer(TrainingState& state,
                                             StorageDevice& device,
                                             const BaselineConfig& config,
                                             const Clock& clock)
    : state_(&state), config_(config), clock_(&clock)
{
    const Bytes m = state.size();
    store_ = std::make_unique<SlotStore>(SlotStore::format(device, 2, m));
    commit_ = std::make_unique<ConcurrentCommit>(
        *store_, SlotQueueKind::kVyukov, clock);
    PersistEngineConfig engine_config;
    engine_config.writer_threads = 1;  // CheckFreq persists single-threaded
    engine_config.per_writer_bytes_per_sec =
        config.per_writer_bytes_per_sec;
    engine_ = std::make_unique<PersistEngine>(*store_, engine_config,
                                              clock);
    staging_.resize(m);
    worker_ = std::thread([this] { worker(); });
}

CheckFreqCheckpointer::~CheckFreqCheckpointer()
{
    {
        MutexLock lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    worker_.join();
}

void
CheckFreqCheckpointer::before_update(std::uint64_t iteration)
{
    (void)iteration;
    MutexLock lock(mu_);
    if (!snapshot_in_progress_ && !has_request_) {
        return;
    }
    Stopwatch watch(*clock_);
    while (snapshot_in_progress_ || has_request_) {
        cv_.wait(mu_);
    }
    stats_.stall_time += watch.elapsed();
}

void
CheckFreqCheckpointer::request_checkpoint(std::uint64_t iteration)
{
    MutexLock lock(mu_);
    // Fig. 4: only one checkpoint at a time — the next snapshot may
    // not start until the previous checkpoint has fully persisted.
    if (snapshot_in_progress_ || persist_in_progress_ || has_request_) {
        Stopwatch watch(*clock_);
        while (snapshot_in_progress_ || persist_in_progress_ ||
               has_request_) {
            cv_.wait(mu_);
        }
        stats_.stall_time += watch.elapsed();
    }
    ++stats_.requested;
    has_request_ = true;
    request_iteration_ = iteration;
    request_time_ = clock_->now();
    cv_.notify_all();
}

void
CheckFreqCheckpointer::finish()
{
    MutexLock lock(mu_);
    while (has_request_ || snapshot_in_progress_ ||
           persist_in_progress_) {
        cv_.wait(mu_);
    }
}

CheckpointerStats
CheckFreqCheckpointer::stats() const
{
    MutexLock lock(mu_);
    return stats_;
}

void
CheckFreqCheckpointer::worker()
{
    for (;;) {
        std::uint64_t iteration = 0;
        Seconds request_time = 0;
        {
            MutexLock lock(mu_);
            while (!has_request_ && !stopping_) {
                cv_.wait(mu_);
            }
            if (!has_request_ && stopping_) {
                return;
            }
            iteration = request_iteration_;
            request_time = request_time_;
            has_request_ = false;
            snapshot_in_progress_ = true;
        }
        run_checkpoint(iteration, request_time);
    }
}

void
CheckFreqCheckpointer::run_checkpoint(std::uint64_t iteration,
                                      Seconds request_time)
{
    // C: snapshot GPU → DRAM (overlaps the next iteration's T phase,
    // which only reads the weights). torch.save-style serialization is
    // part of the snapshot critical section: it runs in the training
    // process under the GIL, so the weights may not be updated (and in
    // practice training barely progresses) until it completes — the
    // dominant CheckFreq overhead at moderate frequencies (§5.2.1).
    state_->gpu().copy_to_host(staging_.data(), state_->device_ptr(), 0,
                               staging_.size(), config_.pinned_memory);
    if (config_.serialize_bytes_per_sec > 0) {
        clock_->sleep_for(static_cast<double>(staging_.size()) /
                          config_.serialize_bytes_per_sec);
    }
    {
        MutexLock lock(mu_);
        snapshot_in_progress_ = false;
        persist_in_progress_ = true;
    }
    cv_.notify_all();
    // P: persist on the background thread, single writer.
    const CheckpointTicket ticket = commit_->begin();
    const PersistResult persisted = engine_->persist_range(
        ticket.slot, 0, staging_.data(), staging_.size(),
        /*parallel_writers=*/1);
    if (persisted.ok()) {
        const std::uint32_t crc =
            config_.compute_crc
                ? crc32c(staging_.data(), staging_.size())
                : 0;
        commit_->commit(ticket, staging_.size(), iteration, crc);
    } else {
        // Slot holds partial data: recycle it, keep the previous
        // checkpoint as the recovery target.
        commit_->abort(ticket);
    }

    {
        MutexLock lock(mu_);
        persist_in_progress_ = false;
        if (persisted.ok()) {
            ++stats_.completed;
            stats_.checkpoint_latency.add(clock_->now() - request_time);
        } else {
            ++stats_.aborted;
        }
    }
    cv_.notify_all();
}

}  // namespace pccheck
