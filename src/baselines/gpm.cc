#include "baselines/gpm.h"

#include "util/check.h"
#include "util/crc32.h"

namespace pccheck {

GpmCheckpointer::GpmCheckpointer(TrainingState& state,
                                 StorageDevice& device, const Clock& clock,
                                 bool compute_crc)
    : state_(&state), clock_(&clock), compute_crc_(compute_crc)
{
    const Bytes m = state.size();
    store_ = std::make_unique<SlotStore>(SlotStore::format(device, 2, m));
    commit_ = std::make_unique<ConcurrentCommit>(
        *store_, SlotQueueKind::kVyukov, clock);
}

void
GpmCheckpointer::request_checkpoint(std::uint64_t iteration)
{
    Stopwatch watch(*clock_);
    ++stats_.requested;
    const CheckpointTicket ticket = commit_->begin();
    const Bytes len = state_->size();
    // The copy kernel writes straight into the mmapped device region
    // while holding the compute engine: training cannot proceed.
    StorageStatus status = state_->gpu().kernel_copy_to_storage(
        store_->device(), store_->slot_offset(ticket.slot),
        state_->device_ptr(), 0, len);
    if (status.ok()) {
        // cudaDeviceSynchronize + msync (SSD) / fence (PMEM).
        status = store_->persist_slot_range(ticket.slot, 0, len);
    }
    if (status.ok()) {
        status = store_->device().fence();
    }
    if (status.ok()) {
        // CRC for the recovery metadata, computed from the source bytes
        // (identical to what the copy kernel wrote; avoids a modeled
        // device read that real GPM does not perform).
        const std::uint32_t crc =
            compute_crc_
                ? crc32c(state_->gpu().device_data(state_->device_ptr()),
                         len)
                : 0;
        commit_->commit(ticket, len, iteration, crc);
        ++stats_.completed;
    } else {
        // Slot holds partial data: recycle it, keep the previous
        // checkpoint as the recovery target.
        commit_->abort(ticket);
        ++stats_.aborted;
    }
    const Seconds elapsed = watch.elapsed();
    stats_.stall_time += elapsed;
    stats_.checkpoint_latency.add(elapsed);
}

CheckpointerStats
GpmCheckpointer::stats() const
{
    return stats_;
}

}  // namespace pccheck
