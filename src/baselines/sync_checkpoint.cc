#include "baselines/sync_checkpoint.h"

#include "util/check.h"
#include "util/crc32.h"

namespace pccheck {

SyncCheckpointer::SyncCheckpointer(TrainingState& state,
                                   StorageDevice& device,
                                   const BaselineConfig& config,
                                   const Clock& clock)
    : state_(&state), config_(config), clock_(&clock)
{
    const Bytes m = state.size();
    store_ = std::make_unique<SlotStore>(SlotStore::format(device, 2, m));
    commit_ = std::make_unique<ConcurrentCommit>(
        *store_, SlotQueueKind::kVyukov, clock);
    PersistEngineConfig engine_config;
    engine_config.writer_threads = 1;
    engine_config.per_writer_bytes_per_sec =
        config.per_writer_bytes_per_sec;
    engine_ = std::make_unique<PersistEngine>(*store_, engine_config,
                                              clock);
    staging_.resize(m);
}

void
SyncCheckpointer::request_checkpoint(std::uint64_t iteration)
{
    Stopwatch watch(*clock_);
    ++stats_.requested;
    // C: copy the whole state to DRAM, training blocked.
    state_->gpu().copy_to_host(staging_.data(), state_->device_ptr(), 0,
                               staging_.size(), config_.pinned_memory);
    // torch.save serialization before bytes can be written out.
    if (config_.serialize_bytes_per_sec > 0) {
        clock_->sleep_for(static_cast<double>(staging_.size()) /
                          config_.serialize_bytes_per_sec);
    }
    // P: persist on the calling thread; single writer.
    const CheckpointTicket ticket = commit_->begin();
    const PersistResult persisted = engine_->persist_range(
        ticket.slot, 0, staging_.data(), staging_.size(),
        /*parallel_writers=*/1);
    if (persisted.ok()) {
        const std::uint32_t crc =
            config_.compute_crc
                ? crc32c(staging_.data(), staging_.size())
                : 0;
        commit_->commit(ticket, staging_.size(), iteration, crc);
        ++stats_.completed;
    } else {
        // Slot holds partial data: recycle it, keep the previous
        // checkpoint as the recovery target.
        commit_->abort(ticket);
        ++stats_.aborted;
    }
    const Seconds elapsed = watch.elapsed();
    stats_.stall_time += elapsed;
    stats_.checkpoint_latency.add(elapsed);
}

CheckpointerStats
SyncCheckpointer::stats() const
{
    return stats_;
}

}  // namespace pccheck
