#ifndef PCCHECK_BASELINES_GEMINI_H_
#define PCCHECK_BASELINES_GEMINI_H_

/**
 * @file
 * Gemini baseline [Wang et al., SOSP'23]: instead of persistent
 * storage, the training state is snapshotted to the CPU memory of a
 * REMOTE machine over the network, pipelined with training. Like
 * CheckFreq, only one checkpoint can be in flight — the next snapshot
 * waits for the previous network transfer to complete. On the paper's
 * cloud VMs the NIC provides only 1.88 GB/s, which is why Gemini
 * underperforms there (§2.2, §5.2.1).
 *
 * The remote CPU memory is modeled as a MemStorage owned by the peer;
 * its contents survive the *local* node's failure (Gemini's fault
 * model) but not a simulated cluster-wide crash.
 */

#include <memory>
#include <thread>
#include <vector>

#include "net/network.h"
#include "storage/mem_storage.h"
#include "trainsim/checkpointer.h"
#include "trainsim/training_state.h"
#include "util/annotations.h"
#include "util/clock.h"

namespace pccheck {

/** Gemini: in-memory checkpoints on a remote peer over the network. */
class GeminiCheckpointer final : public Checkpointer {
  public:
    /**
     * @param state training state to checkpoint
     * @param network cluster fabric
     * @param rank this node's rank
     * @param peer_rank node whose CPU memory stores our checkpoints
     * @param peer_memory the peer's DRAM checkpoint arena (>= m)
     */
    GeminiCheckpointer(TrainingState& state, SimNetwork& network, int rank,
                       int peer_rank, MemStorage& peer_memory,
                       const Clock& clock = MonotonicClock::instance());
    ~GeminiCheckpointer() override;

    std::string name() const override { return "gemini"; }
    void before_update(std::uint64_t iteration) override;
    void request_checkpoint(std::uint64_t iteration) override;
    void finish() override;
    CheckpointerStats stats() const override;

    /** Iteration of the newest checkpoint resident on the peer. */
    std::uint64_t latest_remote_iteration() const;

  private:
    void worker();
    void run_checkpoint(std::uint64_t iteration, Seconds request_time);

    TrainingState* state_;
    SimNetwork* network_;
    int rank_;
    int peer_rank_;
    MemStorage* peer_memory_;
    const Clock* clock_;
    std::vector<std::uint8_t> gpu_staging_;  ///< local bounce buffer

    mutable Mutex mu_;
    CondVar cv_;
    bool snapshot_in_progress_ PCCHECK_GUARDED_BY(mu_) = false;
    bool transfer_in_progress_ PCCHECK_GUARDED_BY(mu_) = false;
    bool has_request_ PCCHECK_GUARDED_BY(mu_) = false;
    bool stopping_ PCCHECK_GUARDED_BY(mu_) = false;
    std::uint64_t request_iteration_ PCCHECK_GUARDED_BY(mu_) = 0;
    Seconds request_time_ PCCHECK_GUARDED_BY(mu_) = 0;
    std::uint64_t latest_remote_iteration_ PCCHECK_GUARDED_BY(mu_) = 0;
    CheckpointerStats stats_ PCCHECK_GUARDED_BY(mu_);
    std::thread worker_;
};

}  // namespace pccheck

#endif  // PCCHECK_BASELINES_GEMINI_H_
