#ifndef PCCHECK_CONCURRENT_LATCH_H_
#define PCCHECK_CONCURRENT_LATCH_H_

/**
 * @file
 * Reusable countdown latch and a cyclic barrier for coordinating the
 * writer-thread pools and distributed-checkpoint rendezvous.
 */

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "util/check.h"

namespace pccheck {

/** One-shot countdown latch (like std::latch but reusable via reset). */
class CountdownLatch {
  public:
    explicit CountdownLatch(std::size_t count) : count_(count) {}

    /** Decrement; wakes waiters when the count reaches zero. */
    void
    count_down()
    {
        std::lock_guard<std::mutex> lock(mu_);
        PCCHECK_CHECK(count_ > 0);
        if (--count_ == 0) {
            cv_.notify_all();
        }
    }

    /** Block until the count reaches zero. */
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return count_ == 0; });
    }

    /** Re-arm with a new count. Only valid when no waiters are blocked. */
    void
    reset(std::size_t count)
    {
        std::lock_guard<std::mutex> lock(mu_);
        count_ = count;
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::size_t count_;
};

/** Cyclic barrier: @p parties threads rendezvous repeatedly. */
class CyclicBarrier {
  public:
    explicit CyclicBarrier(std::size_t parties)
        : parties_(parties), waiting_(0), generation_(0)
    {
        PCCHECK_CHECK(parties > 0);
    }

    /** Block until all parties arrive; returns the generation index. */
    std::size_t
    arrive_and_wait()
    {
        std::unique_lock<std::mutex> lock(mu_);
        const std::size_t gen = generation_;
        if (++waiting_ == parties_) {
            waiting_ = 0;
            ++generation_;
            cv_.notify_all();
            return gen;
        }
        cv_.wait(lock, [this, gen] { return generation_ != gen; });
        return gen;
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::size_t parties_;
    std::size_t waiting_;
    std::size_t generation_;
};

}  // namespace pccheck

#endif  // PCCHECK_CONCURRENT_LATCH_H_
