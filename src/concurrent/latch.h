#ifndef PCCHECK_CONCURRENT_LATCH_H_
#define PCCHECK_CONCURRENT_LATCH_H_

/**
 * @file
 * Reusable countdown latch and a cyclic barrier for coordinating the
 * writer-thread pools and distributed-checkpoint rendezvous.
 */

#include <cstddef>

#include "util/annotations.h"
#include "util/check.h"

namespace pccheck {

/** One-shot countdown latch (like std::latch but reusable via reset). */
class CountdownLatch {
  public:
    explicit CountdownLatch(std::size_t count) : count_(count) {}

    /** Decrement; wakes waiters when the count reaches zero. */
    void
    count_down()
    {
        MutexLock lock(mu_);
        PCCHECK_CHECK(count_ > 0);
        if (--count_ == 0) {
            cv_.notify_all();
        }
    }

    /** Block until the count reaches zero. */
    void
    wait()
    {
        MutexLock lock(mu_);
        while (count_ != 0) {
            cv_.wait(mu_);
        }
    }

    /** Re-arm with a new count. Only valid when no waiters are blocked. */
    void
    reset(std::size_t count)
    {
        MutexLock lock(mu_);
        count_ = count;
    }

  private:
    Mutex mu_;
    CondVar cv_;
    std::size_t count_ PCCHECK_GUARDED_BY(mu_);
};

/** Cyclic barrier: @p parties threads rendezvous repeatedly. */
class CyclicBarrier {
  public:
    explicit CyclicBarrier(std::size_t parties)
        : parties_(parties), waiting_(0), generation_(0)
    {
        PCCHECK_CHECK(parties > 0);
    }

    /** Block until all parties arrive; returns the generation index. */
    std::size_t
    arrive_and_wait()
    {
        MutexLock lock(mu_);
        const std::size_t gen = generation_;
        if (++waiting_ == parties_) {
            waiting_ = 0;
            ++generation_;
            cv_.notify_all();
            return gen;
        }
        while (generation_ == gen) {
            cv_.wait(mu_);
        }
        return gen;
    }

  private:
    Mutex mu_;
    CondVar cv_;
    std::size_t parties_;
    std::size_t waiting_ PCCHECK_GUARDED_BY(mu_);
    std::size_t generation_ PCCHECK_GUARDED_BY(mu_);
};

}  // namespace pccheck

#endif  // PCCHECK_CONCURRENT_LATCH_H_
