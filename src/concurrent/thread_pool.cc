#include "concurrent/thread_pool.h"

#include "util/affinity.h"
#include "util/check.h"

namespace pccheck {

ThreadPool::ThreadPool(std::size_t num_threads, bool pin_threads)
{
    PCCHECK_CHECK(num_threads > 0);
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this, i, pin_threads] {
            if (pin_threads) {
                pin_current_thread(static_cast<int>(i));
            }
            worker_loop();
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    auto future = packaged.get_future();
    {
        MutexLock lock(mu_);
        PCCHECK_CHECK_MSG(!stopping_, "submit() on a stopping ThreadPool");
        tasks_.push_back(std::move(packaged));
    }
    cv_.notify_one();
    return future;
}

void
ThreadPool::wait_idle()
{
    MutexLock lock(mu_);
    while (!tasks_.empty() || active_ != 0) {
        idle_cv_.wait(mu_);
    }
}

void
ThreadPool::worker_loop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            MutexLock lock(mu_);
            while (!stopping_ && tasks_.empty()) {
                cv_.wait(mu_);
            }
            if (tasks_.empty()) {
                return;  // stopping and drained
            }
            task = std::move(tasks_.front());
            tasks_.pop_front();
            ++active_;
        }
        task();
        {
            MutexLock lock(mu_);
            --active_;
            if (tasks_.empty() && active_ == 0) {
                idle_cv_.notify_all();
            }
        }
    }
}

}  // namespace pccheck
