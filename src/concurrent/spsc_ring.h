#ifndef PCCHECK_CONCURRENT_SPSC_RING_H_
#define PCCHECK_CONCURRENT_SPSC_RING_H_

/**
 * @file
 * Wait-free single-producer single-consumer ring buffer. Used on the
 * orchestrator → persist-manager handoff path where exactly one
 * producer (the snapshot thread) feeds exactly one consumer (the
 * persist dispatcher), so the cheaper SPSC protocol applies.
 */

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "concurrent/cacheline.h"
#include "util/tsa.h"

namespace pccheck {

/** Wait-free bounded SPSC FIFO. */
template <typename T>
class SpscRing {
  public:
    /** @param capacity maximum element count (rounded up to 2^k, >= 2) */
    explicit SpscRing(std::size_t capacity)
    {
        std::size_t cap = 2;
        while (cap < capacity) {
            cap *= 2;
        }
        mask_ = cap - 1;
        slots_ = std::make_unique<T[]>(cap);
    }

    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    /** Producer side. @return false when full. */
    PCCHECK_HOT_PATH bool
    try_push(T value)
    {
        // relaxed: tail_ is written only by this (producer) thread.
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t head = head_.load(std::memory_order_acquire);
        if (tail - head > mask_) {
            return false;
        }
        slots_[tail & mask_] = std::move(value);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side. @return std::nullopt when empty. */
    PCCHECK_HOT_PATH std::optional<T>
    try_pop()
    {
        // relaxed: head_ is written only by this (consumer) thread.
        const std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        if (head == tail) {
            return std::nullopt;
        }
        T out = std::move(slots_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        return out;
    }

    std::size_t capacity() const { return mask_ + 1; }

  private:
    std::size_t mask_;
    std::unique_ptr<T[]> slots_;
    alignas(kCacheLine) std::atomic<std::size_t> head_{0};
    alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace pccheck

#endif  // PCCHECK_CONCURRENT_SPSC_RING_H_
