#ifndef PCCHECK_CONCURRENT_MS_QUEUE_H_
#define PCCHECK_CONCURRENT_MS_QUEUE_H_

/**
 * @file
 * Michael–Scott lock-free FIFO queue over a fixed node pool.
 *
 * Nodes are identified by (index, tag) pairs packed into one 64-bit
 * word; the tag is bumped on every reuse, which eliminates the ABA
 * problem without hazard pointers. Because the pool is preallocated,
 * the queue is bounded (enqueue fails when no node is free) — which is
 * exactly what PCcheck's slot bookkeeping requires and lets us ablate
 * the Vyukov ring against a linked design (DESIGN.md decision 5).
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "concurrent/cacheline.h"
#include "util/check.h"
#include "util/sync.h"

// pccheck-lint: atomic-seam — this header backs the free-slot queue
// the model checker explores, so its atomics must go through
// pccheck::Atomic (raw-atomic-in-core rule).

namespace pccheck {

/** Bounded lock-free Michael–Scott queue with tagged node indices. */
template <typename T>
class MsQueue {
  public:
    /** @param capacity maximum queued elements (>= 1) */
    explicit MsQueue(std::size_t capacity)
        : nodes_(capacity + 1)  // +1 for the dummy node
    {
        PCCHECK_CHECK(capacity >= 1);
        // Chain all nodes into the internal freelist; node 0 becomes
        // the initial dummy.
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            // relaxed: constructor, no concurrent access yet.
            nodes_[i].next.store(kNull, std::memory_order_relaxed);
        }
        // relaxed: constructor, no concurrent access yet.
        free_head_.store(pack(1, 0), std::memory_order_relaxed);
        for (std::size_t i = 1; i + 1 < nodes_.size(); ++i) {
            // relaxed: constructor, no concurrent access yet.
            nodes_[i].free_next.store(pack(i + 1, 0),
                                      std::memory_order_relaxed);
        }
        // relaxed: constructor, no concurrent access yet.
        nodes_.back().free_next.store(kNull, std::memory_order_relaxed);
        const std::uint64_t dummy = pack(0, 0);
        // relaxed: constructor, no concurrent access yet; the object
        // handoff to other threads provides the ordering.
        head_.store(dummy, std::memory_order_relaxed);
        tail_.store(dummy, std::memory_order_relaxed);
    }

    MsQueue(const MsQueue&) = delete;
    MsQueue& operator=(const MsQueue&) = delete;

    /** @return false when the node pool is exhausted. */
    bool
    try_enqueue(T value)
    {
        const std::uint64_t node_ref = alloc_node();
        if (node_ref == kNull) {
            return false;
        }
        Node& node = nodes_[index_of(node_ref)];
        // Atomic because a lagging dequeuer may still read a recycled
        // node's value concurrently — it discards the stale read when
        // its head CAS fails, but the access must be race-free.
        // relaxed: the release store of `next` below publishes it.
        node.value.store(std::move(value), std::memory_order_relaxed);
        node.next.store(kNull, std::memory_order_release);

        for (;;) {
            std::uint64_t tail = tail_.load(std::memory_order_acquire);
            Node& tail_node = nodes_[index_of(tail)];
            std::uint64_t next = tail_node.next.load(
                std::memory_order_acquire);
            if (tail != tail_.load(std::memory_order_acquire)) {
                continue;
            }
            if (next == kNull) {
                if (tail_node.next.compare_exchange_weak(
                        next, node_ref, std::memory_order_acq_rel)) {
                    tail_.compare_exchange_strong(
                        tail, node_ref, std::memory_order_acq_rel);
                    return true;
                }
            } else {
                // Help advance a lagging tail.
                tail_.compare_exchange_strong(tail, next,
                                              std::memory_order_acq_rel);
            }
        }
    }

    /** @return std::nullopt when empty. */
    std::optional<T>
    try_dequeue()
    {
        for (;;) {
            std::uint64_t head = head_.load(std::memory_order_acquire);
            std::uint64_t tail = tail_.load(std::memory_order_acquire);
            Node& head_node = nodes_[index_of(head)];
            std::uint64_t next = head_node.next.load(
                std::memory_order_acquire);
            if (head != head_.load(std::memory_order_acquire)) {
                continue;
            }
            if (next == kNull) {
                return std::nullopt;
            }
            if (index_of(head) == index_of(tail)) {
                tail_.compare_exchange_strong(tail, next,
                                              std::memory_order_acq_rel);
                continue;
            }
            // relaxed: `next` was acquire-loaded above; a recycled
            // node's stale value is dropped when the head CAS fails.
            T value = nodes_[index_of(next)].value.load(
                std::memory_order_relaxed);
            if (head_.compare_exchange_weak(head, next,
                                            std::memory_order_acq_rel)) {
                release_node(head);
                return value;
            }
        }
    }

  private:
    static_assert(std::is_trivially_copyable_v<T>,
                  "MsQueue stores values in atomics; T must be "
                  "trivially copyable");

    struct Node {
        Atomic<T> value{};
        Atomic<std::uint64_t> next{0};
        Atomic<std::uint64_t> free_next{0};
    };

    static constexpr std::uint64_t kNull = ~0ULL;

    static std::uint64_t
    pack(std::uint64_t index, std::uint64_t tag)
    {
        return (tag << 24) | (index & 0xFFFFFF);
    }

    static std::size_t index_of(std::uint64_t ref) { return ref & 0xFFFFFF; }
    static std::uint64_t tag_of(std::uint64_t ref) { return ref >> 24; }

    /** Pop a node from the freelist (Treiber stack with tags). */
    std::uint64_t
    alloc_node()
    {
        for (;;) {
            std::uint64_t head = free_head_.load(std::memory_order_acquire);
            if (head == kNull) {
                return kNull;
            }
            const std::uint64_t next =
                nodes_[index_of(head)].free_next.load(
                    std::memory_order_acquire);
            if (free_head_.compare_exchange_weak(
                    head, next, std::memory_order_acq_rel)) {
                // Re-tag for the next lifetime of this node.
                return pack(index_of(head), tag_of(head) + 1);
            }
        }
    }

    /** Push a retired node back onto the freelist. */
    void
    release_node(std::uint64_t ref)
    {
        Node& node = nodes_[index_of(ref)];
        for (;;) {
            std::uint64_t head = free_head_.load(std::memory_order_acquire);
            node.free_next.store(head, std::memory_order_release);
            if (free_head_.compare_exchange_weak(
                    head, pack(index_of(ref), tag_of(ref) + 1),
                    std::memory_order_acq_rel)) {
                return;
            }
        }
    }

    std::vector<Node> nodes_;
    alignas(kCacheLine) Atomic<std::uint64_t> head_;
    alignas(kCacheLine) Atomic<std::uint64_t> tail_;
    alignas(kCacheLine) Atomic<std::uint64_t> free_head_;
};

}  // namespace pccheck

#endif  // PCCHECK_CONCURRENT_MS_QUEUE_H_
