#ifndef PCCHECK_CONCURRENT_MPMC_QUEUE_H_
#define PCCHECK_CONCURRENT_MPMC_QUEUE_H_

/**
 * @file
 * Bounded multi-producer multi-consumer FIFO queue (Vyukov-style ring
 * with per-cell sequence numbers). This is the "fast concurrent queue"
 * substrate the paper builds its free-slot queue on [Morrison & Afek,
 * PPoPP'13]; like LCRQ it is array-based and uses only fetch-add and
 * CAS on cell sequence words, making enqueue/dequeue obstruction-free
 * with bounded retries in practice.
 *
 * Elements must be trivially movable. Capacity is rounded up to a
 * power of two. try_enqueue fails when full; try_dequeue fails when
 * empty — exactly the semantics PCcheck's slot allocator needs.
 */

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <optional>
#include <utility>

#include "concurrent/cacheline.h"
#include "util/check.h"
#include "util/sync.h"
#include "util/tsa.h"

// pccheck-lint: atomic-seam — this header backs the free-slot queue
// the model checker explores, so its atomics must go through
// pccheck::Atomic (raw-atomic-in-core rule).

namespace pccheck {

/** Bounded lock-free MPMC FIFO queue. */
template <typename T>
class MpmcBoundedQueue {
  public:
    /** @param capacity maximum element count (rounded up to 2^k, >= 2) */
    explicit MpmcBoundedQueue(std::size_t capacity)
    {
        std::size_t cap = 2;
        while (cap < capacity) {
            cap *= 2;
        }
        mask_ = cap - 1;
        cells_ = std::make_unique<Cell[]>(cap);
        for (std::size_t i = 0; i < cap; ++i) {
            // relaxed: constructor, no concurrent access yet.
            cells_[i].sequence.store(i, std::memory_order_relaxed);
        }
        // relaxed: constructor, no concurrent access yet; the object
        // handoff to other threads provides the ordering.
        head_.store(0, std::memory_order_relaxed);
        tail_.store(0, std::memory_order_relaxed);
    }

    MpmcBoundedQueue(const MpmcBoundedQueue&) = delete;
    MpmcBoundedQueue& operator=(const MpmcBoundedQueue&) = delete;

    /** Capacity after rounding. */
    std::size_t capacity() const { return mask_ + 1; }

    /**
     * Enqueue @p value.
     * @return false if the queue was full (value left unchanged).
     */
    PCCHECK_HOT_PATH bool
    try_enqueue(T value)
    {
        Cell* cell;
        // relaxed: the tail index is only a claim hint; the cell's
        // sequence word (acquire/release below) carries the data
        // ordering, so stale tail reads just retry.
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::size_t seq =
                cell->sequence.load(std::memory_order_acquire);
            const auto diff = static_cast<std::ptrdiff_t>(seq) -
                              static_cast<std::ptrdiff_t>(pos);
            if (diff == 0) {
                // relaxed: CAS only claims the index; publication of
                // the value happens via the sequence release store.
                if (tail_.compare_exchange_weak(pos, pos + 1,
                                                std::memory_order_relaxed)) {
                    break;
                }
            } else if (diff < 0) {
                return false;  // full
            } else {
                // relaxed: refreshed hint, see load above.
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
        cell->value = std::move(value);
        cell->sequence.store(pos + 1, std::memory_order_release);
        return true;
    }

    /**
     * Dequeue the oldest element.
     * @return std::nullopt if the queue was empty.
     */
    PCCHECK_HOT_PATH std::optional<T>
    try_dequeue()
    {
        Cell* cell;
        // relaxed: the head index is only a claim hint; the cell's
        // sequence word (acquire/release) carries the data ordering.
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::size_t seq =
                cell->sequence.load(std::memory_order_acquire);
            const auto diff = static_cast<std::ptrdiff_t>(seq) -
                              static_cast<std::ptrdiff_t>(pos + 1);
            if (diff == 0) {
                // relaxed: CAS only claims the index; the value was
                // already acquired via the sequence load above.
                if (head_.compare_exchange_weak(pos, pos + 1,
                                                std::memory_order_relaxed)) {
                    break;
                }
            } else if (diff < 0) {
                return std::nullopt;  // empty
            } else {
                // relaxed: refreshed hint, see load above.
                pos = head_.load(std::memory_order_relaxed);
            }
        }
        T out = std::move(cell->value);
        cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
        return out;
    }

    /** Approximate size (racy; for monitoring only). */
    std::size_t
    approx_size() const
    {
        // relaxed: monitoring only — the size is stale by the time
        // the caller sees it anyway.
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t head = head_.load(std::memory_order_relaxed);
        return tail >= head ? tail - head : 0;
    }

  private:
    struct Cell {
        Atomic<std::size_t> sequence;
        T value;
    };

    std::size_t mask_;
    std::unique_ptr<Cell[]> cells_;
    alignas(kCacheLine) Atomic<std::size_t> head_;
    alignas(kCacheLine) Atomic<std::size_t> tail_;
};

}  // namespace pccheck

#endif  // PCCHECK_CONCURRENT_MPMC_QUEUE_H_
