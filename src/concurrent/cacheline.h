#ifndef PCCHECK_CONCURRENT_CACHELINE_H_
#define PCCHECK_CONCURRENT_CACHELINE_H_

/**
 * @file
 * Destructive-interference (cache line) size used to pad hot atomics.
 */

#include <cstddef>

namespace pccheck {

/**
 * Fixed at 64 (x86-64 and most ARM cores) rather than
 * std::hardware_destructive_interference_size, whose value is not
 * ABI-stable across compiler versions and tuning flags.
 */
inline constexpr std::size_t kCacheLine = 64;

}  // namespace pccheck

#endif  // PCCHECK_CONCURRENT_CACHELINE_H_
