#ifndef PCCHECK_CONCURRENT_THREAD_POOL_H_
#define PCCHECK_CONCURRENT_THREAD_POOL_H_

/**
 * @file
 * Fixed-size thread pool. PCcheck's persistent manager submits one
 * persist task per writer thread per checkpoint; pooling avoids the
 * per-checkpoint thread-spawn cost the paper's Listing 1 pseudo-code
 * glosses over.
 */

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/annotations.h"

namespace pccheck {

/** Fixed-size FIFO thread pool; tasks are std::function<void()>. */
class ThreadPool {
  public:
    /**
     * Spawns @p num_threads workers immediately.
     * @param pin_threads best-effort pin of worker i to CPU i (the
     *        thread-pinning optimization the artifact describes)
     */
    explicit ThreadPool(std::size_t num_threads, bool pin_threads = false);

    /** Drains outstanding tasks, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue a task; returns a future completed when the task ran. */
    std::future<void> submit(std::function<void()> task);

    /** Block until every task submitted so far has finished. */
    void wait_idle();

    std::size_t size() const { return workers_.size(); }

  private:
    void worker_loop();

    Mutex mu_;
    CondVar cv_;
    CondVar idle_cv_;
    std::deque<std::packaged_task<void()>> tasks_ PCCHECK_GUARDED_BY(mu_);
    std::size_t active_ PCCHECK_GUARDED_BY(mu_) = 0;
    bool stopping_ PCCHECK_GUARDED_BY(mu_) = false;
    std::vector<std::thread> workers_;
};

}  // namespace pccheck

#endif  // PCCHECK_CONCURRENT_THREAD_POOL_H_
