#include "trace/preemption_trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace pccheck {

Seconds
PreemptionTrace::mtbf() const
{
    if (events.empty()) {
        return duration;
    }
    return duration / static_cast<double>(events.size());
}

SpotProfile
gcp_a100_profile()
{
    // André et al.: 26 preemptions over 3.5 h => 7.43 events/hour,
    // observed over a 16-hour request window (paper Fig. 2).
    return SpotProfile{"gcp-a100", 16.0 * 3600.0, 26.0 / 3.5, 0.25, 8};
}

SpotProfile
aws_spot_profile()
{
    // Thorpe et al. (Bamboo): 127 distinct preemptions in 24 h.
    return SpotProfile{"aws-spot", 24.0 * 3600.0, 127.0 / 24.0, 0.35, 12};
}

PreemptionTrace
generate_trace(const SpotProfile& profile, std::uint64_t seed)
{
    PCCHECK_CHECK(profile.events_per_hour > 0);
    PCCHECK_CHECK(profile.duration > 0);
    Rng rng(seed);
    PreemptionTrace trace;
    trace.duration = profile.duration;
    const Seconds mean_gap = 3600.0 / profile.events_per_hour;
    Seconds t = 0;
    for (;;) {
        t += rng.exponential(mean_gap);
        if (t >= profile.duration) {
            break;
        }
        PreemptionEvent event;
        event.time = t;
        event.vms_lost = 1;
        if (rng.chance(profile.burst_probability) && profile.burst_max > 1) {
            event.vms_lost = 1 + static_cast<int>(rng.next_below(
                                     static_cast<std::uint64_t>(
                                         profile.burst_max)));
        }
        trace.events.push_back(event);
    }
    return trace;
}

void
save_trace_csv(const PreemptionTrace& trace, const std::string& path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        fatal("save_trace_csv: cannot open " + path);
    }
    out.precision(12);
    out << "time_s,vms_lost\n";
    out << "# duration_s=" << trace.duration << "\n";
    for (const auto& event : trace.events) {
        out << event.time << ',' << event.vms_lost << '\n';
    }
}

PreemptionTrace
load_trace_csv(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        fatal("load_trace_csv: cannot open " + path);
    }
    PreemptionTrace trace;
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        if (line[0] == '#') {
            const auto pos = line.find("duration_s=");
            if (pos != std::string::npos) {
                trace.duration = std::stod(line.substr(pos + 11));
            }
            continue;
        }
        std::istringstream iss(line);
        PreemptionEvent event;
        char comma = 0;
        if (!(iss >> event.time >> comma >> event.vms_lost) ||
            comma != ',') {
            fatal("load_trace_csv: malformed line: " + line);
        }
        trace.events.push_back(event);
    }
    std::sort(trace.events.begin(), trace.events.end(),
              [](const PreemptionEvent& a, const PreemptionEvent& b) {
                  return a.time < b.time;
              });
    if (trace.duration == 0 && !trace.events.empty()) {
        trace.duration = trace.events.back().time;
    }
    return trace;
}

}  // namespace pccheck
