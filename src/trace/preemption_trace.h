#ifndef PCCHECK_TRACE_PREEMPTION_TRACE_H_
#define PCCHECK_TRACE_PREEMPTION_TRACE_H_

/**
 * @file
 * Spot-VM preemption traces.
 *
 * The paper's goodput experiments (Figures 2 and 9) replay the GPU
 * availability trace collected by André et al. on a 64×A100 spot
 * cluster in Google Cloud: 26 preemption events over 3.5 hours,
 * extended to a 16-hour window; Thorpe et al. report 127 events over
 * 24 hours on AWS. The raw trace is not public, so this module
 * generates synthetic traces matching those published summary
 * statistics (exponential inter-arrivals plus bursts modeling the
 * "bulky" multi-VM preemptions §2.2 highlights), with deterministic
 * seeding and CSV round-tripping.
 */

#include <string>
#include <vector>

#include "util/clock.h"
#include "util/rng.h"

namespace pccheck {

/** One resource-change event that forces a rollback. */
struct PreemptionEvent {
    Seconds time = 0;   ///< when the preemption hits, from trace start
    int vms_lost = 1;   ///< size of the (possibly bulky) preemption
};

/** A replayable availability trace. */
struct PreemptionTrace {
    Seconds duration = 0;
    std::vector<PreemptionEvent> events;  ///< sorted by time

    std::size_t failure_count() const { return events.size(); }

    /** Mean time between failures; duration if no failures. */
    Seconds mtbf() const;
};

/** Statistical profile of a spot environment. */
struct SpotProfile {
    std::string name;
    Seconds duration;
    double events_per_hour;
    double burst_probability;  ///< chance an event is a bulky preemption
    int burst_max;             ///< max VMs lost in one bulky event
};

/** GCP 64×A100 profile (André et al.; used for Figs 2 and 9). */
SpotProfile gcp_a100_profile();

/** AWS EC2 64-spot-VM profile (Thorpe et al., Bamboo). */
SpotProfile aws_spot_profile();

/**
 * Generate a trace with exponential inter-arrival times matching the
 * profile's event rate. Deterministic in @p seed.
 */
PreemptionTrace generate_trace(const SpotProfile& profile,
                               std::uint64_t seed);

/** Write a trace as CSV (time_s,vms_lost). */
void save_trace_csv(const PreemptionTrace& trace, const std::string& path);

/** Parse a trace CSV written by save_trace_csv. Throws on bad input. */
PreemptionTrace load_trace_csv(const std::string& path);

}  // namespace pccheck

#endif  // PCCHECK_TRACE_PREEMPTION_TRACE_H_
