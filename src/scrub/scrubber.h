#ifndef PCCHECK_SCRUB_SCRUBBER_H_
#define PCCHECK_SCRUB_SCRUBBER_H_

/**
 * @file
 * Background scrubber: latent-corruption detection and self-healing
 * repair (docs/RECOVERY.md §scrub).
 *
 * A checkpoint that was durable when published can still rot on media
 * before it is ever read back — exactly the copy recovery depends on.
 * The scrubber closes that window by re-verifying, on a cadence:
 *
 *   - the local slot arena: the newest pointer record's payload is
 *     re-read and CRC-32C-checked; a torn or unreadable payload is
 *     quarantined (SlotStore skips it, the commit protocol never
 *     recycles it) and repair is attempted;
 *   - quarantined slots from earlier passes or recovery: repair is
 *     retried every pass until a source produces verified bytes;
 *   - the delta-frame chain: a sealed header over a payload that no
 *     longer matches its CRC is latent rot replay would silently stop
 *     at — the repair durably writes a dead header there, making the
 *     truncation explicit;
 *   - attached peer ReplicaStores: complete versions are re-verified
 *     in DRAM and corrupt ones dropped (ReplicaStore::scrub).
 *
 * Repair sources, in order: a registered RecoverySource (quorum peer)
 * serving the exact counter the record names, then the live-state
 * provider (the in-DRAM checkpoint staging copy PCcheck already
 * keeps). Either way the bytes must match the record's CRC, the write
 * follows the full persist→fence contract (repair_slot), and the slot
 * is re-read and re-verified from media before release_quarantine()
 * returns it to service. A slot no record references anymore is
 * reclaimed outright — released and handed back to the commit
 * protocol's free pool (restore_slot).
 *
 * Counters: pccheck.scrub.{scanned,corrupt,repaired,quarantined}.
 * Every pass runs under a "scrub.pass" stage span.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/concurrent_commit.h"
#include "core/recovery_planner.h"
#include "core/slot_store.h"
#include "remote/replica_store.h"
#include "util/annotations.h"
#include "util/clock.h"

namespace pccheck {

/** What one scrub pass (or a lifetime of passes) found and fixed. */
struct ScrubReport {
    std::uint64_t scanned = 0;     ///< payloads/frames/versions checked
    std::uint64_t corrupt = 0;     ///< failed re-verification
    std::uint64_t repaired = 0;    ///< restored to verified service
    std::uint64_t quarantined = 0; ///< newly quarantined slots
    std::uint64_t frames_truncated = 0;  ///< rotten delta frames killed
    std::uint64_t replica_dropped = 0;   ///< DRAM versions dropped

    ScrubReport& operator+=(const ScrubReport& other);
};

/** Periodic integrity scan + repair over one node's checkpoint state. */
class Scrubber {
  public:
    struct Options {
        /** Background cadence between passes (start()/stop()). */
        Seconds interval = 0.05;
        /** False = detect and quarantine only, never write. */
        bool repair = true;
    };

    /**
     * Serves the checkpoint image for @p counter from live process
     * state (PCcheck's in-DRAM staging copy). Returns false when that
     * counter is no longer held. The scrubber CRC-verifies the bytes
     * against the pointer record before trusting them.
     */
    using LiveStateProvider = std::function<bool(
        std::uint64_t counter, std::vector<std::uint8_t>* out)>;

    explicit Scrubber(SlotStore& store);
    Scrubber(SlotStore& store, Options options,
             const Clock& clock = MonotonicClock::instance());
    ~Scrubber();

    Scrubber(const Scrubber&) = delete;
    Scrubber& operator=(const Scrubber&) = delete;

    /** Register a repair source (borrowed; e.g. ReplicaRecoverySource).
     *  Tried in registration order before the live-state provider. */
    void add_repair_source(RecoverySource* source);

    /** Register the live-state fallback repair source. */
    void set_live_state_provider(LiveStateProvider provider);

    /**
     * Attach the commit protocol so a repaired slot that no pointer
     * record references anymore is returned to the free pool
     * (ConcurrentCommit::restore_slot). Optional — without it such
     * slots stay released-but-idle until the next reopen.
     */
    void set_commit(ConcurrentCommit* commit);

    /** Attach a peer ReplicaStore hosted by this process for DRAM
     *  re-verification each pass. */
    void add_replica_store(ReplicaStore* replica);

    /** One synchronous scan+repair pass. Thread-safe. */
    ScrubReport scrub_once();

    /** Start/stop the background thread. Idempotent and safe to call
     *  concurrently: one stop() owns the join, racing callers wait
     *  for it, and start() during an in-progress stop() waits for the
     *  old thread to be joined before launching a new one. */
    void start();
    void stop();

    /** Lifetime totals across every pass (background + manual). */
    ScrubReport totals() const;

  private:
    /** Background loop: scrub_once every interval until stop(). */
    void run();
    /** Scrub the slot arena; see file comment for the policy. */
    void scrub_slots(ScrubReport* report);
    /** Scrub the delta chain under the newest valid base. */
    void scrub_delta(ScrubReport* report);
    /** Try to repair one quarantined slot named by @p ptr. */
    bool repair_quarantined(const CheckpointPointer& ptr,
                            ScrubReport* report);
    /** Fetch verified bytes for @p ptr from any repair source. */
    bool fetch_verified(const CheckpointPointer& ptr,
                        std::vector<std::uint8_t>* out);

    SlotStore* store_;
    Options options_;
    const Clock* clock_;
    std::vector<RecoverySource*> sources_;
    LiveStateProvider live_state_;
    ConcurrentCommit* commit_ = nullptr;
    std::vector<ReplicaStore*> replicas_;

    mutable Mutex mu_;
    ScrubReport totals_ PCCHECK_GUARDED_BY(mu_);
    bool running_ PCCHECK_GUARDED_BY(mu_) = false;
    bool stopping_ PCCHECK_GUARDED_BY(mu_) = false;
    CondVar wake_;
    std::thread thread_;
};

}  // namespace pccheck

#endif  // PCCHECK_SCRUB_SCRUBBER_H_
