#include "scrub/scrubber.h"

#include "delta/delta_log.h"
#include "obs/stage.h"
#include "psan/psan.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/tsa.h"

namespace pccheck {

ScrubReport&
ScrubReport::operator+=(const ScrubReport& other)
{
    scanned += other.scanned;
    corrupt += other.corrupt;
    repaired += other.repaired;
    quarantined += other.quarantined;
    frames_truncated += other.frames_truncated;
    replica_dropped += other.replica_dropped;
    return *this;
}

Scrubber::Scrubber(SlotStore& store) : Scrubber(store, Options())
{
}

Scrubber::Scrubber(SlotStore& store, Options options, const Clock& clock)
    : store_(&store), options_(options), clock_(&clock)
{
}

Scrubber::~Scrubber()
{
    stop();
}

void
Scrubber::add_repair_source(RecoverySource* source)
{
    PCCHECK_CHECK(source != nullptr);
    sources_.push_back(source);
}

void
Scrubber::set_live_state_provider(LiveStateProvider provider)
{
    live_state_ = std::move(provider);
}

void
Scrubber::set_commit(ConcurrentCommit* commit)
{
    commit_ = commit;
}

void
Scrubber::add_replica_store(ReplicaStore* replica)
{
    PCCHECK_CHECK(replica != nullptr);
    replicas_.push_back(replica);
}

bool
Scrubber::fetch_verified(const CheckpointPointer& ptr,
                         std::vector<std::uint8_t>* out)
{
    // Repair order: quorum peers first (authoritative durable copies),
    // then the live in-DRAM staging copy. Either way the bytes must
    // reproduce the record's CRC — a repair that "fixes" a slot with
    // the wrong image would be worse than the rot.
    for (RecoverySource* source : sources_) {
        for (const RecoveryCandidate& candidate : source->survey()) {
            if (candidate.counter != ptr.counter ||
                candidate.data_len != ptr.data_len) {
                continue;
            }
            if (!source->fetch(candidate, out)) {
                continue;
            }
            if (ptr.data_crc == 0 ||
                crc32c(out->data(), out->size()) == ptr.data_crc) {
                return true;
            }
        }
    }
    if (live_state_ && live_state_(ptr.counter, out)) {
        if (out->size() == ptr.data_len &&
            (ptr.data_crc == 0 ||
             crc32c(out->data(), out->size()) == ptr.data_crc)) {
            return true;
        }
    }
    return false;
}

bool
Scrubber::repair_quarantined(const CheckpointPointer& ptr,
                             ScrubReport* report)
{
    std::vector<std::uint8_t> bytes;
    if (!fetch_verified(ptr, &bytes)) {
        return false;  // stays quarantined; retried next pass
    }
    psan::ScopeLabel psan_label("scrub.repair");
    if (!store_->repair_slot(ptr.slot, bytes.data(), bytes.size()).ok()) {
        return false;
    }
    // Trust the media, not the write: re-read and re-verify before the
    // quarantine lifts and recovery starts believing this slot again.
    std::vector<std::uint8_t> readback(bytes.size());
    if (!store_->read_slot(ptr.slot, 0, readback.data(), readback.size())
             .ok()) {
        return false;
    }
    if (crc32c(readback.data(), readback.size()) !=
        crc32c(bytes.data(), bytes.size())) {
        return false;
    }
    if (!store_->release_quarantine(ptr.slot).ok()) {
        return false;
    }
    LOG_INFO("pccheck: scrub repaired slot " << ptr.slot
                                             << " (counter " << ptr.counter
                                             << ")");
    ++report->repaired;
    return true;
}

PCCHECK_HOT_PATH void
Scrubber::scrub_slots(ScrubReport* report)
{
    // pccheck-tidy: disable=hot-path-alloc -- record survey snapshot,
    // one bounded copy per scrub pass, not per record.
    const auto all = store_->candidate_pointers(/*include_quarantined=*/
                                                true);
    // Verify only the newest record's payload: it is the recovery
    // target, and the protocol made it durable before publish — a CRC
    // mismatch there is genuine rot. Older records' slots are recycled
    // by live commits, so their mismatches are routine, not rot —
    // NEVER fall through to them, even when the newest slot is already
    // quarantined: rot-checking an older record would quarantine a
    // slot the commit protocol may be reusing right now.
    if (!all.empty() && !store_->is_quarantined(all.front().slot)) {
        const CheckpointPointer ptr = all.front();
        ++report->scanned;
        // pccheck-tidy: disable=hot-path-alloc -- payload read buffer,
        // one bounded allocation per scrub pass, not per record.
        std::vector<std::uint8_t> data(ptr.data_len);
        const bool readable =
            store_->read_slot(ptr.slot, 0, data.data(), data.size()).ok();
        const bool valid =
            readable && (ptr.data_crc == 0 ||
                         crc32c(data.data(), data.size()) == ptr.data_crc);
        if (!valid) {
            // A commit may have published past us between the record
            // read and the payload read, recycling this slot under the
            // now-stale record — a routine mismatch, not rot. Only
            // quarantine while the record is still the newest.
            // pccheck-tidy: disable=hot-path-alloc -- re-survey only on
            // the (rare) mismatch path, never on a clean pass.
            const auto now =
                store_->candidate_pointers(/*include_quarantined=*/true);
            const bool still_newest = !now.empty() &&
                                      now.front().counter == ptr.counter &&
                                      now.front().slot == ptr.slot;
            if (still_newest) {
                ++report->corrupt;
                if (store_->quarantine_slot(ptr.slot).ok()) {
                    ++report->quarantined;
                    LOG_INFO("pccheck: scrub quarantined slot "
                             << ptr.slot << " (counter " << ptr.counter
                             << ", "
                             << (readable ? "torn payload"
                                          : "unreadable media")
                             << ")");
                }
            }
        }
    }

    if (!options_.repair) {
        return;
    }
    // The newest record overall (quarantined or not) names the one
    // image a repair must restore; every other quarantined slot is
    // superseded garbage the pool can reclaim.
    const CheckpointPointer* newest =
        all.empty() ? nullptr : &all.front();
    for (std::uint32_t slot : store_->quarantined_slots()) {
        if (newest != nullptr && newest->slot == slot) {
            repair_quarantined(*newest, report);
            continue;
        }
        // No live record references this slot: its quarantined bytes
        // protect nothing. Release it and hand it back to the commit
        // protocol as free capacity.
        if (store_->release_quarantine(slot).ok()) {
            if (commit_ != nullptr) {
                commit_->restore_slot(slot);
            }
            ++report->repaired;
            LOG_INFO("pccheck: scrub reclaimed superseded slot " << slot);
        }
    }
}

void
Scrubber::scrub_delta(ScrubReport* report)
{
    if (store_->delta_bytes() == 0) {
        return;
    }
    // The chain is only meaningful relative to the newest durable full
    // checkpoint; with none (or a quarantined one), there is no base
    // to scan against.
    const auto candidates = store_->candidate_pointers();
    if (candidates.empty()) {
        return;
    }
    const CheckpointPointer& base = candidates.front();
    const DeltaRegion region{store_->delta_offset(), store_->delta_bytes()};
    const auto entries = delta_scan(store_->device(), region, base.counter,
                                    base.iteration);
    report->scanned += entries.size();
    for (const DeltaFrameScanEntry& entry : entries) {
        if (entry.payload_ok) {
            continue;
        }
        // Sealed header over rotten payload: replay already refuses to
        // cross it, so killing the header durably loses nothing and
        // stops every future scan from re-flagging it.
        ++report->corrupt;
        if (options_.repair &&
            delta_truncate(store_->device(), region, entry.offset).ok()) {
            ++report->frames_truncated;
            LOG_INFO("pccheck: scrub truncated rotten delta frame seq "
                     << entry.info.seq << " at region offset "
                     << entry.offset);
        }
    }
}

ScrubReport
Scrubber::scrub_once()
{
    static LatencyHistogram& scrub_hist =
        MetricsRegistry::global().histogram("pccheck.stage.scrub");
    StageSpan span("scrub.pass", scrub_hist);
    psan::ScopeLabel psan_label("scrub.pass");

    ScrubReport report;
    scrub_slots(&report);
    scrub_delta(&report);
    for (ReplicaStore* replica : replicas_) {
        const auto result = replica->scrub();
        report.scanned += result.scanned;
        report.corrupt += result.dropped;
        report.replica_dropped += result.dropped;
    }

    MetricsRegistry::global().counter("pccheck.scrub.scanned")
        .add(report.scanned);
    MetricsRegistry::global().counter("pccheck.scrub.corrupt")
        .add(report.corrupt);
    MetricsRegistry::global().counter("pccheck.scrub.repaired")
        .add(report.repaired);
    MetricsRegistry::global().counter("pccheck.scrub.quarantined")
        .add(report.quarantined);

    MutexLock lock(mu_);
    totals_ += report;
    return report;
}

void
Scrubber::start()
{
    MutexLock lock(mu_);
    // An in-progress stop() still owns thread_ (it is being joined
    // outside the lock): wait for it to finish rather than assigning
    // over a joinable handle.
    while (stopping_) {
        wake_.wait(mu_);
    }
    if (running_) {
        return;
    }
    running_ = true;
    thread_ = std::thread([this] { run(); });
}

void
Scrubber::stop()
{
    std::thread joinable;
    {
        MutexLock lock(mu_);
        // Exactly one stop() owns the join: concurrent stop()s (e.g.
        // an explicit stop racing the destructor) wait here for the
        // owner instead of double-joining the same handle.
        while (stopping_) {
            wake_.wait(mu_);
        }
        if (!running_) {
            return;
        }
        stopping_ = true;
        joinable = std::move(thread_);
        wake_.notify_all();
    }
    joinable.join();
    MutexLock lock(mu_);
    running_ = false;
    stopping_ = false;
    wake_.notify_all();
}

void
Scrubber::run()
{
    for (;;) {
        {
            MutexLock lock(mu_);
            if (stopping_) {
                return;
            }
        }
        scrub_once();
        MutexLock lock(mu_);
        if (stopping_) {
            return;
        }
        wake_.wait_for(mu_, options_.interval);
    }
}

ScrubReport
Scrubber::totals() const
{
    MutexLock lock(mu_);
    return totals_;
}

}  // namespace pccheck
