#ifndef PCCHECK_DELTA_FRAME_FORMAT_H_
#define PCCHECK_DELTA_FRAME_FORMAT_H_

/**
 * @file
 * On-media wire format of one delta-log frame (docs/DELTA_LOG.md).
 *
 * Split out of delta_log.cc so the model checker's mutated appenders
 * and the corruption-injecting tests can build and dissect frames
 * byte-for-byte without reaching into the appender's internals. The
 * DeltaLog appender and delta_replay remain the only production users.
 */

#include <cstddef>
#include <cstdint>

#include "util/bytes.h"
#include "util/crc32.h"

namespace pccheck::delta_wire {

/** Frame magic, bumped with any layout change ("PCDLTF\0 1"). */
constexpr std::uint64_t kFrameMagic = 0x5043444C54460031ULL;

/** Raw on-device frame header (64 bytes, checksum-protected). */
struct RawFrameHeader {
    std::uint64_t magic;
    std::uint64_t seq;
    std::uint64_t base_counter;
    std::uint64_t iteration;
    std::uint64_t payload_len;  ///< bytes following the header
    std::uint32_t chunk_count;
    std::uint32_t payload_crc;  ///< CRC-32C of the payload bytes
    std::uint8_t pad[12];
    std::uint32_t header_crc;  ///< CRC of all preceding fields
};
static_assert(sizeof(RawFrameHeader) == 64);

/** Raw on-device chunk descriptor (payload prefix). */
struct RawChunkRef {
    std::uint64_t offset;
    std::uint64_t len;
};
static_assert(sizeof(RawChunkRef) == 16);

/** The checksum sealing a header (covers every preceding field). */
inline std::uint32_t header_crc(const RawFrameHeader& hdr)
{
    return crc32c(&hdr, offsetof(RawFrameHeader, header_crc));
}

}  // namespace pccheck::delta_wire

#endif  // PCCHECK_DELTA_FRAME_FORMAT_H_
