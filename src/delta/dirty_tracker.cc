#include "delta/dirty_tracker.h"

#include <algorithm>

#include "util/check.h"

namespace pccheck {

DirtyTracker::DirtyTracker(Bytes total_bytes, Bytes chunk_bytes)
    : total_bytes_(total_bytes), chunk_bytes_(chunk_bytes),
      chunk_count_(static_cast<std::uint32_t>(
          (total_bytes + chunk_bytes - 1) / chunk_bytes))
{
    PCCHECK_CHECK(total_bytes > 0);
    PCCHECK_CHECK(chunk_bytes > 0);
    PCCHECK_CHECK_MSG((total_bytes + chunk_bytes - 1) / chunk_bytes <=
                          0xFFFFFFFFULL,
                      "chunk count overflows 32 bits");
    MutexLock lock(mu_);
    since_frame_.assign(chunk_count_, false);
}

Bytes
DirtyTracker::chunk_len(std::uint32_t chunk) const
{
    PCCHECK_CHECK(chunk < chunk_count_);
    return std::min(chunk_bytes_, total_bytes_ - chunk_offset(chunk));
}

void
DirtyTracker::mark(Bytes offset, Bytes len)
{
    if (len == 0) {
        return;
    }
    PCCHECK_CHECK_MSG(offset + len <= total_bytes_,
                      "dirty mark past end of state: off=" << offset
                                                           << " len=" << len);
    const auto first = static_cast<std::uint32_t>(offset / chunk_bytes_);
    const auto last =
        static_cast<std::uint32_t>((offset + len - 1) / chunk_bytes_);
    MutexLock lock(mu_);
    for (std::uint32_t c = first; c <= last; ++c) {
        since_frame_[c] = true;
        for (auto& [counter, set] : candidates_) {
            set[c] = true;
        }
    }
}

void
DirtyTracker::mark_all()
{
    MutexLock lock(mu_);
    since_frame_.assign(chunk_count_, true);
    for (auto& [counter, set] : candidates_) {
        set.assign(chunk_count_, true);
    }
}

void
DirtyTracker::begin_candidate(std::uint64_t counter)
{
    MutexLock lock(mu_);
    candidates_[counter].assign(chunk_count_, false);
}

std::vector<std::uint32_t>
DirtyTracker::take(std::vector<bool>* set)
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t c = 0; c < chunk_count_; ++c) {
        if ((*set)[c]) {
            out.push_back(c);
        }
    }
    set->assign(chunk_count_, false);
    return out;
}

std::vector<std::uint32_t>
DirtyTracker::collect_frame()
{
    MutexLock lock(mu_);
    return take(&since_frame_);
}

std::vector<std::uint32_t>
DirtyTracker::adopt_base(std::uint64_t counter)
{
    MutexLock lock(mu_);
    std::vector<std::uint32_t> out;
    const auto it = candidates_.find(counter);
    if (it == candidates_.end()) {
        // Unknown candidate (restart, or the snapshot predates this
        // tracker): a full delta is always correct, never minimal.
        out.resize(chunk_count_);
        for (std::uint32_t c = 0; c < chunk_count_; ++c) {
            out[c] = c;
        }
    } else {
        out = take(&it->second);
    }
    since_frame_.assign(chunk_count_, false);
    // Older candidates can never be adopted again — the manifest only
    // moves forward — and the adopted one is consumed.
    candidates_.erase(candidates_.begin(),
                      candidates_.upper_bound(counter));
    return out;
}

void
DirtyTracker::restore(const std::vector<std::uint32_t>& chunks)
{
    MutexLock lock(mu_);
    for (const std::uint32_t c : chunks) {
        PCCHECK_CHECK(c < chunk_count_);
        since_frame_[c] = true;
    }
}

std::size_t
DirtyTracker::dirty_chunks() const
{
    MutexLock lock(mu_);
    return static_cast<std::size_t>(
        std::count(since_frame_.begin(), since_frame_.end(), true));
}

}  // namespace pccheck
