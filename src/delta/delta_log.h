#ifndef PCCHECK_DELTA_DELTA_LOG_H_
#define PCCHECK_DELTA_DELTA_LOG_H_

/**
 * @file
 * The incremental checkpoint tier's write-ahead log of dirty chunks
 * (docs/DELTA_LOG.md).
 *
 * Three-tier layout on one device: full-image slots hold the data, the
 * delta log holds CRC-32C-framed, sequence-numbered records of dirty
 * chunks appended between full checkpoints, and the alternating
 * pointer records (the manifest) remain the single source of truth —
 * a delta frame is only meaningful relative to the durable full
 * checkpoint named by its base_counter.
 *
 * Frame layout (64-byte aligned):
 *
 *   [ FrameHeader (64 B) | chunk refs | chunk data ]
 *
 * Append ordering (the seal discipline, enforced by the
 * delta-seal-before-manifest lint rule): the payload — plus dead
 * headers over this frame's slot and its successor's, truncating any
 * stale chain a reopened device may carry — is written and persisted
 * FIRST, a fence orders it, and only then is the header, whose
 * checksum makes the frame visible to replay, written, persisted, and
 * fenced. A crash between the two leaves an unsealed frame that
 * replay rejects by checksum; a crash after append returns preserves
 * the frame in full.
 *
 * GC is an epoch reset: once a covering full checkpoint is durably
 * published (SlotStore::last_published), reset_epoch() moves the head
 * back to the region start and restarts the sequence at 1. No media
 * write is needed — stale frames die by base_counter, sequence,
 * iteration-monotonicity, or checksum mismatch during replay.
 */

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "storage/device.h"
#include "util/annotations.h"
#include "util/bytes.h"

namespace pccheck {

class PsanStorage;

/** One dirty byte range within the training state. */
struct DeltaChunk {
    Bytes offset = 0;  ///< chunk start within the state image
    Bytes len = 0;     ///< chunk length in bytes
};

/** Metadata of one sealed (or replayed) frame. */
struct DeltaFrameInfo {
    std::uint64_t seq = 0;           ///< 1-based within the epoch
    std::uint64_t base_counter = 0;  ///< full checkpoint it builds on
    std::uint64_t iteration = 0;     ///< state iteration after applying
    std::uint32_t chunk_count = 0;
    Bytes payload_len = 0;
};

/** The delta region of a formatted device. */
struct DeltaRegion {
    Bytes offset = 0;  ///< device offset of the region's first byte
    Bytes bytes = 0;   ///< region capacity (0 = no delta tier)
};

/** Outcome of replaying a frame chain onto a base image. */
struct DeltaReplayStats {
    std::uint64_t frames_applied = 0;
    std::uint64_t last_seq = 0;        ///< seq of the last applied frame
    std::uint64_t iteration = 0;       ///< iteration of that frame
    Bytes bytes_applied = 0;           ///< chunk payload bytes applied
};

/**
 * Replay observer: called after each applied frame; return false to
 * stop the scan (used by tests to race GC against an in-flight
 * replay). May be empty.
 */
using DeltaReplayObserver = std::function<bool(const DeltaFrameInfo&)>;

/** One frame's verdict from delta_scan (docs/RECOVERY.md §scrub). */
struct DeltaFrameScanEntry {
    Bytes offset = 0;  ///< region-relative offset of the frame
    DeltaFrameInfo info;
    /** False = sealed header over a payload that no longer matches its
     *  CRC (latent rot) or whose media is unreadable. Replay stops at
     *  this frame; delta_truncate() makes the stop explicit on media. */
    bool payload_ok = false;
};

/**
 * Walk the frame chain of (@p base_counter, @p base_iteration) without
 * applying it: every chain rule of delta_replay() is enforced except
 * the payload CRC, which is recorded per frame instead. The scan stops
 * at the first dead/unsealed header (the chain's clean end) or at the
 * first payload_ok == false frame — everything past a rotten frame is
 * unreachable to replay anyway.
 */
std::vector<DeltaFrameScanEntry> delta_scan(const StorageDevice& device,
                                            const DeltaRegion& region,
                                            std::uint64_t base_counter,
                                            std::uint64_t base_iteration);

/**
 * Durably kill the frame at region-relative @p frame_offset (dead
 * header: write+persist+fence), truncating the chain there. This is
 * the scrub repair for a sealed-header-torn-payload frame: the bytes
 * replay could never apply stop looking like a valid chain tail. The
 * frame's psan lost-update protection (and every later frame's) is
 * lifted first — they are unreachable once this header dies.
 */
StorageStatus delta_truncate(StorageDevice& device,
                             const DeltaRegion& region,
                             Bytes frame_offset);

/**
 * Apply the frame chain based on checkpoint (@p base_counter,
 * @p base_iteration) to @p image. Scans the region from its start and
 * stops cleanly at the first frame that is torn (header or payload
 * CRC mismatch), out of sequence, based on a different checkpoint,
 * non-monotonic in iteration, or out of bounds — everything at or
 * past that point is unreachable garbage by construction.
 *
 * Free function with no locking so the recovery path (and the MC
 * closure's driver threads) can run it against a dead device image.
 */
DeltaReplayStats delta_replay(const StorageDevice& device,
                              const DeltaRegion& region,
                              std::uint64_t base_counter,
                              std::uint64_t base_iteration,
                              std::uint8_t* image, Bytes image_len,
                              const DeltaReplayObserver& observer = {});

/** Appender for the delta region (one writer: the training thread). */
class DeltaLog {
  public:
    /** Frame header size / alignment granularity. */
    static constexpr Bytes kFrameAlign = 64;

    /**
     * @param device the formatted device (must outlive this object)
     * @param region its delta region (bytes > 0)
     */
    DeltaLog(StorageDevice& device, const DeltaRegion& region);

    /** Total frame footprint for @p chunk_count chunks of @p data_bytes. */
    static Bytes frame_bytes(std::uint32_t chunk_count, Bytes data_bytes);

    /** Space left for appends in the current epoch. */
    Bytes free_bytes() const;

    /** Region capacity. */
    Bytes capacity() const { return region_.bytes; }

    /** Base counter of the current epoch (0 before the first reset). */
    std::uint64_t epoch_base() const;

    /** Sequence number of the last sealed frame (0 = none). */
    std::uint64_t last_sealed_seq() const;

    /** Iteration of the last sealed frame, or the epoch base's when
     *  none — appends must exceed this (0 before the first epoch). */
    std::uint64_t last_iteration() const;

    /** Frames sealed over this object's lifetime (across epochs). */
    std::uint64_t frames_appended() const;

    /**
     * Start a new epoch on top of durable full checkpoint
     * (@p base_counter, @p base_iteration): head returns to the region
     * start and the sequence restarts at 1. This IS the log GC — the
     * caller must have confirmed the covering checkpoint's pointer
     * record is durable (SlotStore::last_published) first.
     */
    void reset_epoch(std::uint64_t base_counter,
                     std::uint64_t base_iteration);

    /**
     * Append one frame: @p chunks describes the dirty ranges and
     * @p data holds their bytes, concatenated in order. @p iteration
     * must exceed the previous frame's (and the epoch base's). The
     * frame is durable iff the call returns success; on error the head
     * does not advance and the caller may retry the same append.
     * Requires free_bytes() >= frame_bytes(...) — check before calling.
     */
    StorageStatus append(std::uint64_t iteration,
                         const std::vector<DeltaChunk>& chunks,
                         const std::uint8_t* data);

    /**
     * Fault probe evaluated at the top of every append (tests wire it
     * to FaultInjector::on_op("delta.append")). Empty = no probe.
     */
    void set_op_probe(std::function<StorageStatus()> probe);

  private:
    /** Write + persist + fence the frame header, making it visible to
     *  replay. Only call after the pre-seal phase (payload + dead
     *  headers) has been fenced. */
    StorageStatus seal_frame(Bytes device_off, const void* header,
                             Bytes len);

    StorageDevice* device_;
    /** Sanitizer wrapping the device, nullptr when psan is off. */
    PsanStorage* psan_ = nullptr;
    const DeltaRegion region_;

    mutable Mutex mu_;
    CondVar append_cv_;
    /** Appender turnstile: an append's frame I/O is in flight. The
     *  claim/commit happens under mu_, the device writes+fences run
     *  outside it, so readers (free_bytes, epoch_base, the GC gate)
     *  never block behind a fence. reset_epoch also waits on this. */
    bool appending_ PCCHECK_GUARDED_BY(mu_) = false;
    Bytes head_ PCCHECK_GUARDED_BY(mu_) = 0;  ///< region-relative
    std::uint64_t next_seq_ PCCHECK_GUARDED_BY(mu_) = 1;
    std::uint64_t epoch_base_ PCCHECK_GUARDED_BY(mu_) = 0;
    std::uint64_t last_iteration_ PCCHECK_GUARDED_BY(mu_) = 0;
    std::uint64_t frames_appended_ PCCHECK_GUARDED_BY(mu_) = 0;
    bool epoch_open_ PCCHECK_GUARDED_BY(mu_) = false;
    std::function<StorageStatus()> op_probe_ PCCHECK_GUARDED_BY(mu_);
    /** Payload staging scratch, reused across appends so the hot path
     *  stops allocating once it reaches its high-water frame size.
     *  Owned by whichever appender holds the turnstile. */
    std::vector<std::uint8_t> payload_;
};

}  // namespace pccheck

#endif  // PCCHECK_DELTA_DELTA_LOG_H_
