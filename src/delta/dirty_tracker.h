#ifndef PCCHECK_DELTA_DIRTY_TRACKER_H_
#define PCCHECK_DELTA_DIRTY_TRACKER_H_

/**
 * @file
 * Chunk-granular dirty tracking for the incremental checkpoint tier
 * (docs/DELTA_LOG.md).
 *
 * The training update path marks the byte ranges it mutates; the delta
 * appender collects "everything dirtied since the previous frame" and
 * persists exactly those chunks. The subtlety is full checkpoints: the
 * frame chain re-bases onto whichever full checkpoint publishes next,
 * and the first frame of the new epoch must cover every chunk dirtied
 * since THAT checkpoint's snapshot was taken — not since the last
 * old-epoch frame, which is garbage-collected with its epoch. The
 * tracker therefore keeps one bitset per in-flight checkpoint
 * candidate (begin_candidate) alongside the since-last-frame bitset,
 * and adopt_base() hands back the candidate's accumulated set.
 *
 * Thread safe: marks come from the training thread while checkpoint
 * snapshots begin on the orchestrator worker.
 */

#include <cstdint>
#include <map>
#include <vector>

#include "util/annotations.h"
#include "util/bytes.h"

namespace pccheck {

/** Tracks which fixed-size chunks of the state changed. */
class DirtyTracker {
  public:
    /**
     * Track @p total_bytes of state at @p chunk_bytes granularity.
     * The final chunk may be short.
     */
    DirtyTracker(Bytes total_bytes, Bytes chunk_bytes);

    /** Record a mutation of [offset, offset+len). */
    void mark(Bytes offset, Bytes len);

    /** Record a whole-state mutation (full re-stamp, recovery). */
    void mark_all();

    /**
     * A full-checkpoint attempt with counter @p counter is about to
     * snapshot the state. From here on, mutations accumulate into this
     * candidate's set so a later adopt_base(counter) knows what
     * changed since the snapshot.
     */
    void begin_candidate(std::uint64_t counter);

    /**
     * Chunks dirtied since the last collect (for the next frame of the
     * current epoch). Clears the since-frame set; on append failure
     * pass the result back through restore().
     */
    std::vector<std::uint32_t> collect_frame();

    /**
     * Re-base the frame chain onto durable checkpoint @p counter:
     * returns the chunks dirtied since that candidate's snapshot began
     * (every chunk if the candidate is unknown, e.g. after a process
     * restart — a full delta is always safe), clears the since-frame
     * set, and drops candidates at or below @p counter.
     */
    std::vector<std::uint32_t> adopt_base(std::uint64_t counter);

    /**
     * Undo a collect whose frame could not be appended: the chunks
     * re-enter the since-frame set so no mutation drops out of the
     * chain.
     */
    void restore(const std::vector<std::uint32_t>& chunks);

    Bytes chunk_bytes() const { return chunk_bytes_; }
    std::uint32_t chunk_count() const { return chunk_count_; }

    /** Byte length of @p chunk (short for the final chunk). */
    Bytes chunk_len(std::uint32_t chunk) const;
    /** State offset of @p chunk's first byte. */
    Bytes chunk_offset(std::uint32_t chunk) const
    {
        return static_cast<Bytes>(chunk) * chunk_bytes_;
    }

    /** Currently dirty (since the last frame) chunk count. */
    std::size_t dirty_chunks() const;

  private:
    std::vector<std::uint32_t> take(std::vector<bool>* set)
        PCCHECK_REQUIRES(mu_);

    const Bytes total_bytes_;
    const Bytes chunk_bytes_;
    const std::uint32_t chunk_count_;

    mutable Mutex mu_;
    /** Dirty since the last collected frame. */
    std::vector<bool> since_frame_ PCCHECK_GUARDED_BY(mu_);
    /** Dirty since each in-flight full checkpoint's snapshot began. */
    std::map<std::uint64_t, std::vector<bool>> candidates_
        PCCHECK_GUARDED_BY(mu_);
};

}  // namespace pccheck

#endif  // PCCHECK_DELTA_DIRTY_TRACKER_H_
