#include "delta/delta_log.h"

#include <cstring>

#include "delta/frame_format.h"
#include "psan/psan.h"
#include "psan/psan_storage.h"
#include "util/check.h"
#include "util/crc32.h"

namespace pccheck {

using delta_wire::header_crc;
using delta_wire::kFrameMagic;
using delta_wire::RawChunkRef;
using delta_wire::RawFrameHeader;

static_assert(sizeof(RawFrameHeader) == DeltaLog::kFrameAlign);

DeltaReplayStats
delta_replay(const StorageDevice& device, const DeltaRegion& region,
             std::uint64_t base_counter, std::uint64_t base_iteration,
             std::uint8_t* image, Bytes image_len,
             const DeltaReplayObserver& observer)
{
    DeltaReplayStats stats;
    stats.iteration = base_iteration;
    if (region.bytes == 0) {
        return stats;
    }
    PCCHECK_CHECK(region.offset + region.bytes <= device.size());
    Bytes head = 0;
    std::uint64_t expected_seq = 1;
    std::uint64_t last_iteration = base_iteration;
    std::vector<std::uint8_t> payload;
    while (head + sizeof(RawFrameHeader) <= region.bytes) {
        RawFrameHeader hdr{};
        if (!device.read(region.offset + head, &hdr, sizeof(hdr)).ok()) {
            break;  // unreadable header: chain ends here
        }
        // Stop-at-first-torn-frame rules: anything that fails here is
        // either an unsealed in-flight frame or a previous epoch's
        // garbage; frames past it are unreachable by construction
        // (appends are sealed strictly in order).
        if (hdr.magic != kFrameMagic ||
            hdr.header_crc != header_crc(hdr)) {
            break;  // torn or never-written header
        }
        if (hdr.seq != expected_seq || hdr.base_counter != base_counter) {
            break;  // stale epoch (pre-GC frame) or replayed region
        }
        if (hdr.iteration <= last_iteration) {
            break;  // older timeline re-using this base (post-salvage)
        }
        if (hdr.payload_len > region.bytes - head - sizeof(hdr)) {
            break;  // payload would run off the region
        }
        if (static_cast<Bytes>(hdr.chunk_count) * sizeof(RawChunkRef) >
            hdr.payload_len) {
            break;
        }
        payload.resize(hdr.payload_len);
        if (!payload.empty() &&
            !device.read(region.offset + head + sizeof(hdr), payload.data(),
                         payload.size())
                 .ok()) {
            break;  // unreadable payload: treat the frame as torn
        }
        if (crc32c(payload.data(), payload.size()) != hdr.payload_crc) {
            break;  // sealed header over a torn payload
        }
        // Validate every chunk ref before applying any of them: a
        // frame either applies whole or not at all.
        const Bytes refs_len =
            static_cast<Bytes>(hdr.chunk_count) * sizeof(RawChunkRef);
        std::vector<RawChunkRef> refs(hdr.chunk_count);
        if (refs_len > 0) {  // empty frames carry no refs (UBSan: the
                             // source pointer must not be null)
            std::memcpy(refs.data(), payload.data(), refs_len);
        }
        Bytes data_off = refs_len;
        bool valid = true;
        for (const RawChunkRef& ref : refs) {
            if (ref.len > image_len || ref.offset > image_len - ref.len ||
                ref.len > hdr.payload_len - data_off) {
                valid = false;
                break;
            }
            data_off += ref.len;
        }
        if (!valid) {
            break;
        }
        data_off = refs_len;
        for (const RawChunkRef& ref : refs) {
            std::memcpy(image + ref.offset, payload.data() + data_off,
                        ref.len);
            data_off += ref.len;
            stats.bytes_applied += ref.len;
        }
        ++stats.frames_applied;
        stats.last_seq = hdr.seq;
        stats.iteration = hdr.iteration;
        last_iteration = hdr.iteration;
        ++expected_seq;
        head += align_up(sizeof(hdr) + hdr.payload_len,
                         DeltaLog::kFrameAlign);
        if (observer) {
            DeltaFrameInfo info{hdr.seq, hdr.base_counter, hdr.iteration,
                                hdr.chunk_count, hdr.payload_len};
            if (!observer(info)) {
                break;
            }
        }
    }
    return stats;
}

std::vector<DeltaFrameScanEntry>
delta_scan(const StorageDevice& device, const DeltaRegion& region,
           std::uint64_t base_counter, std::uint64_t base_iteration)
{
    std::vector<DeltaFrameScanEntry> entries;
    if (region.bytes == 0) {
        return entries;
    }
    PCCHECK_CHECK(region.offset + region.bytes <= device.size());
    Bytes head = 0;
    std::uint64_t expected_seq = 1;
    std::uint64_t last_iteration = base_iteration;
    std::vector<std::uint8_t> payload;
    while (head + sizeof(RawFrameHeader) <= region.bytes) {
        RawFrameHeader hdr{};
        if (!device.read(region.offset + head, &hdr, sizeof(hdr)).ok()) {
            break;  // unreadable header: chain ends here
        }
        // Same chain rules as delta_replay — a frame the replay would
        // reject for structural reasons is the clean end of the chain,
        // not rot.
        if (hdr.magic != kFrameMagic ||
            hdr.header_crc != header_crc(hdr)) {
            break;
        }
        if (hdr.seq != expected_seq || hdr.base_counter != base_counter) {
            break;
        }
        if (hdr.iteration <= last_iteration) {
            break;
        }
        if (hdr.payload_len > region.bytes - head - sizeof(hdr)) {
            break;
        }
        if (static_cast<Bytes>(hdr.chunk_count) * sizeof(RawChunkRef) >
            hdr.payload_len) {
            break;
        }
        DeltaFrameScanEntry entry;
        entry.offset = head;
        entry.info = DeltaFrameInfo{hdr.seq, hdr.base_counter,
                                    hdr.iteration, hdr.chunk_count,
                                    hdr.payload_len};
        payload.resize(hdr.payload_len);
        entry.payload_ok =
            (payload.empty() ||
             device
                 .read(region.offset + head + sizeof(hdr), payload.data(),
                       payload.size())
                 .ok()) &&
            crc32c(payload.data(), payload.size()) == hdr.payload_crc;
        entries.push_back(entry);
        if (!entry.payload_ok) {
            break;  // latent rot: everything past it is unreachable
        }
        last_iteration = hdr.iteration;
        ++expected_seq;
        head += align_up(sizeof(hdr) + hdr.payload_len,
                         DeltaLog::kFrameAlign);
    }
    return entries;
}

StorageStatus
delta_truncate(StorageDevice& device, const DeltaRegion& region,
               Bytes frame_offset)
{
    PCCHECK_CHECK(frame_offset + sizeof(RawFrameHeader) <= region.bytes);
    const Bytes device_off = region.offset + frame_offset;
    if (auto* psan = dynamic_cast<PsanStorage*>(&device)) {
        // Lift V3 before the write: killing the header is not a lost
        // update — the frame (and the tail behind it) is unreachable.
        psan->on_delta_truncate(device_off);
    }
    const std::uint8_t dead[sizeof(RawFrameHeader)] = {};
    StorageStatus status = device.write(device_off, dead, sizeof(dead));
    if (status.ok()) {
        status = device.persist(device_off, sizeof(dead));
    }
    if (status.ok()) {
        status = device.fence();
    }
    return status;
}

DeltaLog::DeltaLog(StorageDevice& device, const DeltaRegion& region)
    : device_(&device), psan_(dynamic_cast<PsanStorage*>(&device)),
      region_(region)
{
    PCCHECK_CHECK(region.bytes >= kFrameAlign);
    PCCHECK_CHECK_MSG(region.offset + region.bytes <= device.size(),
                      "delta region past end of device");
}

Bytes
DeltaLog::frame_bytes(std::uint32_t chunk_count, Bytes data_bytes)
{
    return align_up(sizeof(RawFrameHeader) +
                        static_cast<Bytes>(chunk_count) *
                            sizeof(RawChunkRef) +
                        data_bytes,
                    kFrameAlign);
}

Bytes
DeltaLog::free_bytes() const
{
    MutexLock lock(mu_);
    return region_.bytes - head_;
}

std::uint64_t
DeltaLog::epoch_base() const
{
    MutexLock lock(mu_);
    return epoch_base_;
}

std::uint64_t
DeltaLog::last_sealed_seq() const
{
    MutexLock lock(mu_);
    return next_seq_ - 1;
}

std::uint64_t
DeltaLog::frames_appended() const
{
    MutexLock lock(mu_);
    return frames_appended_;
}

std::uint64_t
DeltaLog::last_iteration() const
{
    MutexLock lock(mu_);
    return last_iteration_;
}

void
DeltaLog::set_op_probe(std::function<StorageStatus()> probe)
{
    MutexLock lock(mu_);
    op_probe_ = std::move(probe);
}

void
DeltaLog::reset_epoch(std::uint64_t base_counter,
                      std::uint64_t base_iteration)
{
    MutexLock lock(mu_);
    // An in-flight append's I/O snapshot (head, seq) must not be
    // yanked out from under it — wait out the turnstile first.
    while (appending_) {
        append_cv_.wait(mu_);
    }
    PCCHECK_CHECK_MSG(!epoch_open_ || base_counter > epoch_base_,
                      "epoch reset must move to a newer checkpoint");
    head_ = 0;
    next_seq_ = 1;
    epoch_base_ = base_counter;
    last_iteration_ = base_iteration;
    epoch_open_ = true;
    if (psan_ != nullptr) {
        // GC: the old epoch's sealed frames are unreachable from the
        // new base, so overwriting them is no longer a lost update.
        psan_->on_epoch_reset();
    }
}

StorageStatus
DeltaLog::seal_frame(Bytes device_off, const void* header, Bytes len)
{
    StorageStatus status = device_->write(device_off, header, len);
    if (status.ok()) {
        status = device_->persist(device_off, len);
    }
    if (status.ok()) {
        status = device_->fence();
    }
    return status;
}

PCCHECK_HOT_PATH StorageStatus
DeltaLog::append(std::uint64_t iteration,
                 const std::vector<DeltaChunk>& chunks,
                 const std::uint8_t* data)
{
    psan::ScopeLabel psan_label("delta_log.append");
    Bytes data_bytes = 0;
    for (const DeltaChunk& chunk : chunks) {
        data_bytes += chunk.len;
    }
    const auto chunk_count = static_cast<std::uint32_t>(chunks.size());
    const Bytes total = frame_bytes(chunk_count, data_bytes);

    // Appender turnstile: validate and claim under mu_, then run the
    // frame I/O outside it so readers (free_bytes, the GC's epoch
    // checks) never block behind a device fence. The contract says one
    // writer (the training thread), but serializing here is free and
    // keeps the head/seq snapshot coherent even if that changes.
    Bytes head = 0;
    std::uint64_t seq = 0;
    std::uint64_t base = 0;
    {
        MutexLock lock(mu_);
        while (appending_) {
            append_cv_.wait(mu_);
        }
        PCCHECK_CHECK_MSG(epoch_open_,
                          "append before the first epoch reset");
        PCCHECK_CHECK_MSG(iteration > last_iteration_,
                          "delta iteration must be monotonic: "
                              << iteration << " <= " << last_iteration_);
        if (op_probe_) {
            const StorageStatus injected = op_probe_();
            if (!injected.ok()) {
                return injected;
            }
        }
        PCCHECK_CHECK_MSG(total <= region_.bytes - head_,
                          "delta log full: need "
                              << total << " have "
                              << (region_.bytes - head_));
        head = head_;
        seq = next_seq_;
        base = epoch_base_;
        appending_ = true;
    }

    const Bytes payload_len =
        static_cast<Bytes>(chunk_count) * sizeof(RawChunkRef) + data_bytes;
    // pccheck-tidy: disable=hot-path-alloc -- scratch grows to the
    // high-water frame size once, then every append reuses it.
    payload_.resize(payload_len);
    std::vector<std::uint8_t>& payload = payload_;
    Bytes off = 0;
    for (const DeltaChunk& chunk : chunks) {
        const RawChunkRef ref{chunk.offset, chunk.len};
        std::memcpy(payload.data() + off, &ref, sizeof(ref));
        off += sizeof(ref);
    }
    Bytes data_off = 0;
    for (const DeltaChunk& chunk : chunks) {
        std::memcpy(payload.data() + off, data + data_off, chunk.len);
        off += chunk.len;
        data_off += chunk.len;
    }

    const Bytes frame_off = region_.offset + head;
    // Pre-seal phase, one persist + fence covering all of it: durably
    // invalidate this slot's (possibly stale) header and the successor
    // header slot, and land the payload bytes. A reopened device can
    // carry a sealed chain from a previous process based on this same
    // checkpoint counter — its tail diverges from this run's timeline
    // at this frame, so both the header position being written and the
    // one after it must be dead on media before the seal makes this
    // frame reachable. Replay then can never cross from the new chain
    // into the stale one, whichever side of the seal a crash lands on.
    const bool truncate_next =
        head + total + kFrameAlign <= region_.bytes;
    const std::uint8_t dead[sizeof(RawFrameHeader)] = {};
    StorageStatus status = device_->write(frame_off, dead, sizeof(dead));
    if (status.ok() && !payload.empty()) {
        status = device_->write(frame_off + sizeof(RawFrameHeader),
                                payload.data(), payload.size());
    }
    if (status.ok() && truncate_next) {
        status = device_->write(frame_off + total, dead, sizeof(dead));
    }
    if (status.ok()) {
        status = device_->persist(
            frame_off, truncate_next ? total + kFrameAlign : total);
    }
    if (status.ok()) {
        status = device_->fence();
    }
    if (status.ok()) {
        if (psan_ != nullptr) {
            // V1: the payload (and dead headers) must be durable
            // before the seal below makes the frame reachable.
            psan_->on_seal_begin(
                frame_off, truncate_next ? total + kFrameAlign : total);
        }
        RawFrameHeader hdr{};
        hdr.magic = kFrameMagic;
        hdr.seq = seq;
        hdr.base_counter = base;
        hdr.iteration = iteration;
        hdr.payload_len = payload_len;
        hdr.chunk_count = chunk_count;
        hdr.payload_crc = crc32c(payload.data(), payload.size());
        hdr.header_crc = header_crc(hdr);
        // payload-durable: the pre-seal fence above ordered the chunk
        // bytes (and both dead headers) ahead of this seal.
        status = seal_frame(frame_off, &hdr, sizeof(hdr));
    }
    if (status.ok() && psan_ != nullptr) {
        // V2 on the sealed header, then protect the frame against
        // overwrite until the next epoch reset (V3).
        psan_->on_seal_durable(frame_off, total);
    }

    MutexLock lock(mu_);
    appending_ = false;
    if (status.ok()) {
        head_ += total;
        ++next_seq_;
        ++frames_appended_;
        last_iteration_ = iteration;
    }
    // On error head_/next_seq_ are unchanged: the caller may retry
    // this same append.
    append_cv_.notify_all();
    return status;
}

}  // namespace pccheck
