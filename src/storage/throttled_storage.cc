#include "storage/throttled_storage.h"

#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace pccheck {

ThrottledStorage::ThrottledStorage(std::unique_ptr<StorageDevice> inner,
                                   double write_bytes_per_sec,
                                   double persist_bytes_per_sec,
                                   double read_bytes_per_sec,
                                   const Clock& clock)
    : inner_(std::move(inner)),
      write_throttle_(write_bytes_per_sec, clock),
      persist_throttle_(persist_bytes_per_sec, clock),
      read_throttle_(read_bytes_per_sec, clock)
{
    PCCHECK_CHECK(inner_ != nullptr);
}

StorageStatus
ThrottledStorage::write(Bytes offset, const void* src, Bytes len)
{
    PCCHECK_TRACE_SPAN("storage.write", "len", len);
    write_throttle_.acquire(len);
    return inner_->write(offset, src, len);
}

StorageStatus
ThrottledStorage::read(Bytes offset, void* dst, Bytes len) const
{
    read_throttle_.acquire(len);
    return inner_->read(offset, dst, len);
}

StorageStatus
ThrottledStorage::persist(Bytes offset, Bytes len)
{
    PCCHECK_TRACE_SPAN("storage.persist", "len", len);
    persist_throttle_.acquire(len);
    return inner_->persist(offset, len);
}

StorageBandwidth
paper_bandwidth(StorageKind kind)
{
    switch (kind) {
      case StorageKind::kSsdMsync:
        // GCP pd-ssd on a 12-vCPU VM: ~0.8 GB/s sustained write-back
        // (GCP caps SSD-PD write throughput by vCPU count). With the
        // ~1 GB/s torch.save serialization this reproduces the
        // paper's intro measurement: 16 GB in 37 s. Page-cache writes
        // land at a few GB/s; reads ~0.9 GB/s.
        return {3.0e9, 0.8e9, 0.9e9};
      case StorageKind::kPmemNt:
        // §3.3: non-temporal store + sfence achieves 4.01 GB/s.
        return {4.01e9, 0.0, 6.0e9};
      case StorageKind::kPmemClwb:
        // §3.3: clwb path achieves 2.46 GB/s.
        return {2.46e9, 0.0, 6.0e9};
      case StorageKind::kCxlPmem:
        // §2.3 outlook: persistent memory behind CXL — byte
        // addressable with PMEM ordering rules, but capped by the
        // PCIe-attached link (~2 GB/s effective for CXL 1.1 x8 after
        // protocol overhead); reads similarly link-bound.
        return {2.0e9, 0.0, 2.5e9};
      case StorageKind::kDram:
        return {0.0, 0.0, 0.0};
    }
    return {0.0, 0.0, 0.0};
}

}  // namespace pccheck
