#include "storage/mem_storage.h"

#include <cstring>

#include "util/check.h"

namespace pccheck {

MemStorage::MemStorage(Bytes size) : data_(size, 0) {}

StorageStatus
MemStorage::write(Bytes offset, const void* src, Bytes len)
{
    PCCHECK_CHECK_MSG(offset + len <= data_.size(),
                      "write out of range: off=" << offset << " len=" << len
                                                 << " size=" << data_.size());
    std::memcpy(data_.data() + offset, src, len);
    if (hook_) {
        hook_(StorageOp{StorageOp::Kind::kWrite, offset, len});
    }
    return StorageStatus::success();
}

StorageStatus
MemStorage::read(Bytes offset, void* dst, Bytes len) const
{
    if (offset + len > data_.size()) {
        return StorageStatus::permanent_error("mem.read_range");
    }
    std::memcpy(dst, data_.data() + offset, len);
    return StorageStatus::success();
}

StorageStatus
MemStorage::persist(Bytes offset, Bytes len)
{
    PCCHECK_CHECK(offset + len <= data_.size());
    if (hook_) {
        hook_(StorageOp{StorageOp::Kind::kPersist, offset, len});
    }
    return StorageStatus::success();
}

}  // namespace pccheck
