#ifndef PCCHECK_STORAGE_FILE_STORAGE_H_
#define PCCHECK_STORAGE_FILE_STORAGE_H_

/**
 * @file
 * Real file-backed storage: the exact mmap + msync path PCcheck uses
 * for SSD checkpoints (§3.3 "PCcheck writes to an mmapped memory
 * region and persists using msync()"). Contents survive process
 * restart, which the recovery tests and examples exercise.
 */

#include <string>

#include "storage/device.h"

namespace pccheck {

/** mmap-backed persistent storage on a real file. */
class FileStorage final : public StorageDevice {
  public:
    /**
     * Create or open @p path and map @p size bytes (the file is
     * extended with ftruncate if needed).
     * Throws FatalError on any system-call failure.
     */
    FileStorage(const std::string& path, Bytes size);
    ~FileStorage() override;

    FileStorage(const FileStorage&) = delete;
    FileStorage& operator=(const FileStorage&) = delete;

    Bytes size() const override { return size_; }
    StorageStatus write(Bytes offset, const void* src, Bytes len) override;
    /** A read past the mapped size (truncated/short device image)
     *  returns a permanent error instead of aborting, so recovery can
     *  skip the unreadable candidate and fall back. */
    StorageStatus read(Bytes offset, void* dst, Bytes len) const override;
    /** msync(MS_SYNC) over the page-aligned covering range; a failed
     *  msync surfaces as a transient error (retryable EIO class). */
    StorageStatus persist(Bytes offset, Bytes len) override;
    StorageStatus fence() override { return StorageStatus::success(); }
    StorageKind kind() const override { return StorageKind::kSsdMsync; }

    const std::string& path() const { return path_; }

  private:
    std::string path_;
    Bytes size_;
    int fd_ = -1;
    std::uint8_t* map_ = nullptr;
};

}  // namespace pccheck

#endif  // PCCHECK_STORAGE_FILE_STORAGE_H_
