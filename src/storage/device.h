#ifndef PCCHECK_STORAGE_DEVICE_H_
#define PCCHECK_STORAGE_DEVICE_H_

/**
 * @file
 * Abstract persistent storage device.
 *
 * The device exposes the programming model the paper depends on (§2.3):
 * writes land in a volatile domain (CPU cache / OS page cache) and only
 * become durable after an explicit persist step —
 *  - SSD:  persist() models msync() on an mmapped file and is
 *          synchronously durable; fence() is a no-op.
 *  - PMEM: persist() models clwb / non-temporal stores (initiates
 *          write-back) and data is durable only after the following
 *          fence(), modeling sfence.
 *
 * Implementations: MemStorage (DRAM, trivially "durable"),
 * CrashSimStorage (volatile+durable shadow images with adversarial
 * cache-eviction on crash — see crash_sim.h), FileStorage (real
 * mmap+msync), ThrottledStorage (bandwidth decorator).
 */

#include <cstdint>
#include <functional>

#include "storage/status.h"
#include "util/bytes.h"

namespace pccheck {

/**
 * One storage-level event, reported to an observation hook after the
 * operation completes. Leaf devices notify; decorators MUST forward
 * set_observe_hook() to the wrapped device so the hook always lands on
 * the leaf regardless of stacking order (enforced by pccheck_lint rule
 * storage-decorator-forwards-hooks).
 */
struct StorageOp {
    enum class Kind : std::uint8_t { kWrite, kPersist, kFence };
    Kind kind = Kind::kWrite;
    Bytes offset = 0;
    Bytes len = 0;
};

/** Persistence semantics of a device. */
enum class StorageKind {
    kDram,      ///< volatile memory; persist is a no-op
    kSsdMsync,  ///< mmap + msync: persist() is synchronously durable
    kPmemClwb,  ///< cache write-back + fence (2.46 GB/s on paper HW)
    kPmemNt,    ///< non-temporal store + fence (4.01 GB/s on paper HW)
    kCxlPmem,   ///< persistent memory behind CXL (§2.3): PMEM
                ///< semantics at PCIe-attached bandwidth
};

/** Byte-addressable storage device with explicit persistence. */
class StorageDevice {
  public:
    virtual ~StorageDevice() = default;

    /** Device capacity in bytes. */
    virtual Bytes size() const = 0;

    /**
     * Write @p len bytes from @p src at @p offset. The data is visible
     * to subsequent read() calls but not durable until persisted.
     * Thread safe for non-overlapping ranges. On failure nothing is
     * guaranteed about the target range beyond "not durable".
     */
    virtual StorageStatus write(Bytes offset, const void* src,
                                Bytes len) = 0;

    /**
     * Read @p len bytes at @p offset into @p dst (sees latest writes).
     * Reads are fallible like writes: bit rot surfaces as CRC failure
     * downstream, but unreadable sectors / truncated mappings / dead
     * nodes surface here. On a non-ok status the contents of @p dst are
     * unspecified — callers must not interpret the buffer. Out-of-range
     * reads return a permanent error rather than aborting so that
     * recovery can degrade source-by-source (see RecoveryPlanner).
     */
    virtual StorageStatus read(Bytes offset, void* dst,
                               Bytes len) const = 0;

    /**
     * Initiate durability for [offset, offset+len). For kSsdMsync the
     * range is durable on return; for PMEM kinds it is durable only
     * after the next fence().
     */
    virtual StorageStatus persist(Bytes offset, Bytes len) = 0;

    /** Persistence ordering fence (sfence). No-op for SSD/DRAM. */
    virtual StorageStatus fence() = 0;

    /** The persistence semantics this device implements. */
    virtual StorageKind kind() const = 0;

    /**
     * Install an observation hook invoked after every write/persist/
     * fence with the device lock released. Single hook; pass nullptr
     * to clear. Not thread-safe against concurrent storage ops — set
     * it before handing the device to the protocol. Decorators forward
     * to the wrapped device; the default is a no-op for devices with
     * nothing to observe.
     */
    virtual void set_observe_hook(std::function<void(const StorageOp&)> hook)
    {
        (void)hook;
    }
};

/** True when the kind requires an explicit fence after persist(). */
constexpr bool
needs_fence(StorageKind kind)
{
    return kind == StorageKind::kPmemClwb ||
           kind == StorageKind::kPmemNt || kind == StorageKind::kCxlPmem;
}

}  // namespace pccheck

#endif  // PCCHECK_STORAGE_DEVICE_H_
