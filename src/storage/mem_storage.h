#ifndef PCCHECK_STORAGE_MEM_STORAGE_H_
#define PCCHECK_STORAGE_MEM_STORAGE_H_

/**
 * @file
 * Plain DRAM-backed storage. persist()/fence() are no-ops; contents do
 * NOT survive a simulated crash. Used for Gemini's remote-CPU-memory
 * checkpoint target and as the staging-buffer arena in tests.
 */

#include <vector>

#include "storage/device.h"

namespace pccheck {

/** Volatile in-memory storage device. */
class MemStorage final : public StorageDevice {
  public:
    explicit MemStorage(Bytes size);

    Bytes size() const override { return data_.size(); }
    StorageStatus write(Bytes offset, const void* src, Bytes len) override;
    void read(Bytes offset, void* dst, Bytes len) const override;
    StorageStatus persist(Bytes offset, Bytes len) override;
    StorageStatus fence() override { return StorageStatus::success(); }
    StorageKind kind() const override { return StorageKind::kDram; }

    /** Direct pointer into the arena (tests / zero-copy paths). */
    std::uint8_t* raw() { return data_.data(); }
    const std::uint8_t* raw() const { return data_.data(); }

  private:
    std::vector<std::uint8_t> data_;
};

}  // namespace pccheck

#endif  // PCCHECK_STORAGE_MEM_STORAGE_H_
