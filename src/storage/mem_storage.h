#ifndef PCCHECK_STORAGE_MEM_STORAGE_H_
#define PCCHECK_STORAGE_MEM_STORAGE_H_

/**
 * @file
 * Plain DRAM-backed storage. persist()/fence() are no-ops; contents do
 * NOT survive a simulated crash. Used for Gemini's remote-CPU-memory
 * checkpoint target and as the staging-buffer arena in tests.
 */

#include <functional>
#include <utility>
#include <vector>

#include "storage/device.h"

namespace pccheck {

/** Volatile in-memory storage device. */
class MemStorage final : public StorageDevice {
  public:
    explicit MemStorage(Bytes size);

    Bytes size() const override { return data_.size(); }
    StorageStatus write(Bytes offset, const void* src, Bytes len) override;
    StorageStatus read(Bytes offset, void* dst, Bytes len) const override;
    StorageStatus persist(Bytes offset, Bytes len) override;
    StorageStatus fence() override
    {
        if (hook_) {
            hook_(StorageOp{StorageOp::Kind::kFence, 0, 0});
        }
        return StorageStatus::success();
    }
    StorageKind kind() const override { return StorageKind::kDram; }
    void set_observe_hook(
        std::function<void(const StorageOp&)> hook) override
    {
        hook_ = std::move(hook);
    }

    /** Direct pointer into the arena (tests / zero-copy paths). */
    std::uint8_t* raw() { return data_.data(); }
    const std::uint8_t* raw() const { return data_.data(); }

  private:
    std::vector<std::uint8_t> data_;
    /** Set once before handing out the device; invoked post-op. */
    std::function<void(const StorageOp&)> hook_;
};

}  // namespace pccheck

#endif  // PCCHECK_STORAGE_MEM_STORAGE_H_
