#ifndef PCCHECK_STORAGE_CRASH_SIM_H_
#define PCCHECK_STORAGE_CRASH_SIM_H_

/**
 * @file
 * Crash-consistency simulation device.
 *
 * Maintains two images: a volatile one (CPU cache / page cache) that
 * all writes and reads touch, and a durable one that only receives
 * data through the persistence protocol of the configured kind.
 *
 * The adversarial part (what real hardware cannot do deterministically):
 * on crash(), every line that was written but never explicitly
 * persisted may or may not have reached the durable image — decided by
 * a seeded RNG per line, modeling arbitrary cache-eviction order
 * (paper §2.3: "the order in which data is written to the cache may
 * differ from the order in which the content reaches PMEM"). After a
 * crash the volatile image is reset to the durable one, so recovery
 * observes exactly what survived.
 *
 * This device is the oracle for the paper's central invariant: at any
 * crash point, recovery must find one fully persisted checkpoint.
 */

#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "storage/device.h"
#include "util/annotations.h"
#include "util/rng.h"

namespace pccheck {

/** Storage with volatile/durable shadow images and adversarial crash. */
class CrashSimStorage final : public StorageDevice {
  public:
    /**
     * @param size device capacity
     * @param kind persistence semantics (SSD or one of the PMEM modes)
     * @param seed RNG seed for eviction decisions
     * @param eviction_probability chance an unpersisted dirty line
     *        reached durable media before the crash, in [0,1]
     */
    CrashSimStorage(Bytes size, StorageKind kind, std::uint64_t seed = 1,
                    double eviction_probability = 0.5);

    Bytes size() const override { return size_; }
    StorageStatus write(Bytes offset, const void* src, Bytes len) override;
    StorageStatus read(Bytes offset, void* dst, Bytes len) const override;
    StorageStatus persist(Bytes offset, Bytes len) override;
    StorageStatus fence() override;
    StorageKind kind() const override { return kind_; }
    /** Alias for set_post_op_hook (StorageDevice observation API). */
    void set_observe_hook(
        std::function<void(const StorageOp&)> hook) override
    {
        set_post_op_hook(std::move(hook));
    }

    /**
     * Simulate a power failure: unpersisted lines survive only with
     * eviction probability, the volatile image is replaced by the
     * durable one, and all tracking state is cleared.
     */
    void crash();

    /**
     * What the durable media would hold if the machine lost power at
     * this instant: the durable image with every dirty/pending line
     * independently evicted with the configured probability. Unlike
     * crash(), does NOT mutate the device (beyond advancing the RNG),
     * so the crash-sweep harness can capture the post-crash state at
     * an arbitrary operation index while the protocol threads keep
     * running, then recover from the copy.
     */
    std::vector<std::uint8_t> crash_image();

    /**
     * The crash-enumeration interface (model checker, see
     * docs/MODEL_CHECKING.md): lines that have NOT durably reached
     * the media — dirty plus fence-pending — in ascending line order.
     * A real crash preserves an arbitrary subset of them.
     */
    std::vector<Bytes> unflushed_lines() const;

    /**
     * Deterministic variant of crash_image(): the durable image with
     * exactly the given unflushed @p lines (values from
     * unflushed_lines()) taken from the volatile image — one member
     * of the crash-state set, chosen by the enumerator instead of the
     * RNG. Does not mutate the device.
     */
    std::vector<std::uint8_t> crash_image_keeping(
        const std::vector<Bytes>& lines) const;

    /**
     * Observation hook, invoked after every write/persist/fence with
     * the device lock RELEASED (the hook may call back into const
     * accessors like unflushed_lines()). Single hook; pass nullptr to
     * clear. Used by the crash-state enumerator to index crash
     * points. Not thread-safe against concurrent storage ops — set it
     * before handing the device to the model.
     */
    void set_post_op_hook(std::function<void(const StorageOp&)> hook);

    /** Number of lines currently dirty (written, not yet persisted). */
    std::size_t dirty_lines() const;

    /** Number of lines persisted but awaiting a fence (PMEM only). */
    std::size_t pending_lines() const;

    /** Persistence line granularity for the configured kind. */
    Bytes line_size() const { return line_size_; }

  private:
    Bytes line_of(Bytes offset) const { return offset / line_size_; }
    void commit_line(Bytes line) PCCHECK_REQUIRES(mu_);

    StorageKind kind_;
    Bytes line_size_;
    /** Immutable capacity: lets size() and bounds checks run without
     *  the lock (the images are never resized after construction). */
    Bytes size_;
    mutable Mutex mu_;
    std::vector<std::uint8_t> volatile_ PCCHECK_GUARDED_BY(mu_);
    std::vector<std::uint8_t> durable_ PCCHECK_GUARDED_BY(mu_);
    std::unordered_set<Bytes> dirty_
        PCCHECK_GUARDED_BY(mu_);  ///< written, not persisted
    std::unordered_set<Bytes> pending_
        PCCHECK_GUARDED_BY(mu_);  ///< persisted, awaiting fence
    Rng rng_ PCCHECK_GUARDED_BY(mu_);
    double eviction_probability_;
    /** Set once before the model runs; called outside mu_. */
    std::function<void(const StorageOp&)> post_op_hook_;
};

}  // namespace pccheck

#endif  // PCCHECK_STORAGE_CRASH_SIM_H_
