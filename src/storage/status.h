#ifndef PCCHECK_STORAGE_STATUS_H_
#define PCCHECK_STORAGE_STATUS_H_

/**
 * @file
 * Status type for the storage write path.
 *
 * Real devices fail: an NVMe write can return EIO once and succeed on
 * retry (media/transport glitch), or fail forever (dead namespace,
 * revoked mapping). The checkpoint protocol reacts differently to the
 * two classes — transient errors are retried with backoff inside the
 * persist engine, permanent errors abort the checkpoint attempt and
 * recycle its slot — so the error class is part of the API, not a
 * message string.
 *
 * The type is [[nodiscard]]: dropping a storage status silently turns
 * an I/O failure into a torn checkpoint. Call sites that genuinely
 * cannot fail (DRAM-backed test devices) assert with PCCHECK_MUST.
 * tools/pccheck_lint.py rule storage-status-checked additionally
 * rejects discarded statuses in src/core/.
 */

namespace pccheck {

/** Error class of a storage operation. */
enum class StorageErr {
    kNone = 0,   ///< success
    kTransient,  ///< failed now, retry may succeed (EIO-style glitch)
    kPermanent,  ///< device/region is gone; retrying is pointless
};

/** Result of a storage write/persist/fence operation. */
class [[nodiscard]] StorageStatus {
  public:
    /** Default-constructed status is success (container-friendly). */
    StorageStatus() = default;

    /** Successful operation. */
    static StorageStatus success() { return StorageStatus(); }

    /** Transient failure at @p context (static string, not owned). */
    static StorageStatus transient_error(const char* context)
    {
        return StorageStatus(StorageErr::kTransient, context);
    }

    /** Permanent failure at @p context (static string, not owned). */
    static StorageStatus permanent_error(const char* context)
    {
        return StorageStatus(StorageErr::kPermanent, context);
    }

    bool ok() const { return err_ == StorageErr::kNone; }
    bool is_transient() const { return err_ == StorageErr::kTransient; }
    bool is_permanent() const { return err_ == StorageErr::kPermanent; }
    StorageErr err() const { return err_; }

    /** Fault-point / operation name the error originated at ("" if ok). */
    const char* context() const { return context_; }

  private:
    StorageStatus(StorageErr err, const char* context)
        : err_(err), context_(context)
    {
    }

    StorageErr err_ = StorageErr::kNone;
    const char* context_ = "";
};

}  // namespace pccheck

#endif  // PCCHECK_STORAGE_STATUS_H_
