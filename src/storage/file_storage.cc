#include "storage/file_storage.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/trace.h"
#include "util/check.h"

namespace pccheck {
namespace {

constexpr Bytes kPage = 4096;

}  // namespace

FileStorage::FileStorage(const std::string& path, Bytes size)
    : path_(path), size_(size)
{
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) {
        fatal("FileStorage: open(" + path + "): " + std::strerror(errno));
    }
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
        ::close(fd_);
        fatal("FileStorage: ftruncate(" + path +
              "): " + std::strerror(errno));
    }
    void* map = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED,
                       fd_, 0);
    if (map == MAP_FAILED) {
        ::close(fd_);
        fatal("FileStorage: mmap(" + path + "): " + std::strerror(errno));
    }
    map_ = static_cast<std::uint8_t*>(map);
}

FileStorage::~FileStorage()
{
    if (map_ != nullptr) {
        ::munmap(map_, size_);
    }
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

StorageStatus
FileStorage::write(Bytes offset, const void* src, Bytes len)
{
    PCCHECK_CHECK_MSG(offset + len <= size_,
                      "write out of range off=" << offset << " len=" << len);
    std::memcpy(map_ + offset, src, len);
    return StorageStatus::success();
}

StorageStatus
FileStorage::read(Bytes offset, void* dst, Bytes len) const
{
    if (offset + len > size_) {
        // A truncated or short-mapped device file is a media condition,
        // not a programming error: recovery must be able to observe it
        // and fall back to another source instead of dying here.
        return StorageStatus::permanent_error("file.read_range");
    }
    std::memcpy(dst, map_ + offset, len);
    return StorageStatus::success();
}

StorageStatus
FileStorage::persist(Bytes offset, Bytes len)
{
    if (len == 0) {
        return StorageStatus::success();
    }
    PCCHECK_CHECK(offset + len <= size_);
    PCCHECK_TRACE_SPAN("storage.msync", "len", len);
    const Bytes start = align_down(offset, kPage);
    const Bytes end = align_up(offset + len, kPage);
    if (::msync(map_ + start, std::min(end, size_) - start, MS_SYNC) != 0) {
        // EIO-class failure: the page cache still holds the data, so a
        // retry can succeed — let the persist engine's backoff decide.
        return StorageStatus::transient_error("file.msync");
    }
    return StorageStatus::success();
}

}  // namespace pccheck
