#include "storage/crash_sim.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/check.h"

namespace pccheck {
namespace {

constexpr Bytes kCacheLineBytes = 64;
constexpr Bytes kPageBytes = 4096;

Bytes
line_size_for(StorageKind kind)
{
    switch (kind) {
      case StorageKind::kSsdMsync:
        return kPageBytes;
      case StorageKind::kPmemClwb:
      case StorageKind::kPmemNt:
      case StorageKind::kCxlPmem:
        return kCacheLineBytes;
      case StorageKind::kDram:
        return kCacheLineBytes;
    }
    return kCacheLineBytes;
}

}  // namespace

CrashSimStorage::CrashSimStorage(Bytes size, StorageKind kind,
                                 std::uint64_t seed,
                                 double eviction_probability)
    : kind_(kind), line_size_(line_size_for(kind)), size_(size),
      volatile_(size, 0), durable_(size, 0), rng_(seed),
      eviction_probability_(eviction_probability)
{
    PCCHECK_CHECK(kind != StorageKind::kDram);
    PCCHECK_CHECK(eviction_probability >= 0.0 &&
                  eviction_probability <= 1.0);
}

StorageStatus
CrashSimStorage::write(Bytes offset, const void* src, Bytes len)
{
    PCCHECK_CHECK_MSG(offset + len <= size_,
                      "write out of range off=" << offset << " len=" << len);
    {
        MutexLock lock(mu_);
        std::memcpy(volatile_.data() + offset, src, len);
        const Bytes first = line_of(offset);
        const Bytes last = len ? line_of(offset + len - 1) : first;
        for (Bytes line = first; line <= last; ++line) {
            dirty_.insert(line);
            // Rewriting a line invalidates any in-flight write-back of
            // the previous value; it must be persisted again.
            pending_.erase(line);
        }
    }
    if (post_op_hook_) {
        post_op_hook_(StorageOp{StorageOp::Kind::kWrite, offset, len});
    }
    return StorageStatus::success();
}

StorageStatus
CrashSimStorage::read(Bytes offset, void* dst, Bytes len) const
{
    if (offset + len > size_) {
        return StorageStatus::permanent_error("crash_sim.read_range");
    }
    MutexLock lock(mu_);
    std::memcpy(dst, volatile_.data() + offset, len);
    return StorageStatus::success();
}

StorageStatus
CrashSimStorage::persist(Bytes offset, Bytes len)
{
    PCCHECK_CHECK(offset + len <= size_);
    if (len == 0) {
        return StorageStatus::success();
    }
    {
        MutexLock lock(mu_);
        const Bytes first = line_of(offset);
        const Bytes last = line_of(offset + len - 1);
        for (Bytes line = first; line <= last; ++line) {
            if (kind_ == StorageKind::kSsdMsync) {
                // msync is synchronously durable.
                commit_line(line);
                dirty_.erase(line);
            } else if (dirty_.erase(line) > 0) {
                // clwb / nt-store: write-back initiated, durable at
                // fence.
                pending_.insert(line);
            }
        }
    }
    if (post_op_hook_) {
        post_op_hook_(StorageOp{StorageOp::Kind::kPersist, offset, len});
    }
    return StorageStatus::success();
}

StorageStatus
CrashSimStorage::fence()
{
    {
        MutexLock lock(mu_);
        for (Bytes line : pending_) {
            commit_line(line);
        }
        pending_.clear();
    }
    if (post_op_hook_) {
        post_op_hook_(StorageOp{StorageOp::Kind::kFence, 0, 0});
    }
    return StorageStatus::success();
}

void
CrashSimStorage::crash()
{
    MutexLock lock(mu_);
    // Unfenced-but-flushed lines and plain dirty lines may each have
    // reached the media, in arbitrary order.
    auto maybe_evict = [this](const std::unordered_set<Bytes>& lines) {
        for (Bytes line : lines) {
            if (rng_.chance(eviction_probability_)) {
                commit_line(line);
            }
        }
    };
    maybe_evict(pending_);
    maybe_evict(dirty_);
    pending_.clear();
    dirty_.clear();
    // Post-crash reads observe exactly the durable image.
    volatile_ = durable_;
}

std::vector<std::uint8_t>
CrashSimStorage::crash_image()
{
    MutexLock lock(mu_);
    std::vector<std::uint8_t> image = durable_;
    auto maybe_evict = [this, &image](
                           const std::unordered_set<Bytes>& lines) {
        for (Bytes line : lines) {
            if (rng_.chance(eviction_probability_)) {
                const Bytes start = line * line_size_;
                const Bytes len = std::min(line_size_, size_ - start);
                std::memcpy(image.data() + start,
                            volatile_.data() + start, len);
            }
        }
    };
    maybe_evict(pending_);
    maybe_evict(dirty_);
    return image;
}

std::vector<Bytes>
CrashSimStorage::unflushed_lines() const
{
    MutexLock lock(mu_);
    std::vector<Bytes> lines;
    lines.reserve(dirty_.size() + pending_.size());
    lines.insert(lines.end(), dirty_.begin(), dirty_.end());
    lines.insert(lines.end(), pending_.begin(), pending_.end());
    std::sort(lines.begin(), lines.end());
    return lines;
}

std::vector<std::uint8_t>
CrashSimStorage::crash_image_keeping(const std::vector<Bytes>& lines) const
{
    MutexLock lock(mu_);
    std::vector<std::uint8_t> image = durable_;
    for (Bytes line : lines) {
        PCCHECK_CHECK_MSG(dirty_.contains(line) || pending_.contains(line),
                          "crash_image_keeping: line " << line
                                                       << " is not unflushed");
        const Bytes start = line * line_size_;
        const Bytes len = std::min(line_size_, size_ - start);
        std::memcpy(image.data() + start, volatile_.data() + start, len);
    }
    return image;
}

void
CrashSimStorage::set_post_op_hook(std::function<void(const StorageOp&)> hook)
{
    post_op_hook_ = std::move(hook);
}

std::size_t
CrashSimStorage::dirty_lines() const
{
    MutexLock lock(mu_);
    return dirty_.size();
}

std::size_t
CrashSimStorage::pending_lines() const
{
    MutexLock lock(mu_);
    return pending_.size();
}

void
CrashSimStorage::commit_line(Bytes line)
{
    const Bytes start = line * line_size_;
    const Bytes len = std::min(line_size_, size_ - start);
    std::memcpy(durable_.data() + start, volatile_.data() + start, len);
}

}  // namespace pccheck
