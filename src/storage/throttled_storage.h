#ifndef PCCHECK_STORAGE_THROTTLED_STORAGE_H_
#define PCCHECK_STORAGE_THROTTLED_STORAGE_H_

/**
 * @file
 * Bandwidth-modeling decorator around any StorageDevice.
 *
 * Two channels are modeled independently, matching the two physical
 * paths of §2.3:
 *  - the write channel (store instructions into the medium / page
 *    cache) — dominant for PMEM, where nt-stores pay the DIMM
 *    bandwidth directly;
 *  - the persist channel (msync write-back to flash) — dominant for
 *    SSD, where writes land in the page cache at DRAM speed and the
 *    flush pays device bandwidth.
 *
 * All concurrent writers share each channel, so adding writer threads
 * beyond device saturation yields no speedup — the effect behind the
 * paper's Figures 12 and 13.
 */

#include <functional>
#include <memory>
#include <utility>

#include "storage/device.h"
#include "util/throttle.h"

namespace pccheck {

/** Device decorator that paces write() and persist() bandwidth. */
class ThrottledStorage final : public StorageDevice {
  public:
    /**
     * @param inner decorated device (owned)
     * @param write_bytes_per_sec write-channel bandwidth; 0 = unthrottled
     * @param persist_bytes_per_sec persist-channel bandwidth; 0 = unthrottled
     * @param clock pacing time source
     */
    ThrottledStorage(std::unique_ptr<StorageDevice> inner,
                     double write_bytes_per_sec,
                     double persist_bytes_per_sec,
                     double read_bytes_per_sec = 0,
                     const Clock& clock = MonotonicClock::instance());

    Bytes size() const override { return inner_->size(); }
    StorageStatus write(Bytes offset, const void* src, Bytes len) override;
    StorageStatus read(Bytes offset, void* dst, Bytes len) const override;
    StorageStatus persist(Bytes offset, Bytes len) override;
    StorageStatus fence() override { return inner_->fence(); }
    StorageKind kind() const override { return inner_->kind(); }
    void set_observe_hook(
        std::function<void(const StorageOp&)> hook) override
    {
        inner_->set_observe_hook(std::move(hook));
    }

    StorageDevice& inner() { return *inner_; }

  private:
    std::unique_ptr<StorageDevice> inner_;
    BandwidthThrottle write_throttle_;
    BandwidthThrottle persist_throttle_;
    mutable BandwidthThrottle read_throttle_;
};

/** Bandwidth profile of a storage medium (bytes/sec per channel). */
struct StorageBandwidth {
    double write_bytes_per_sec;
    double persist_bytes_per_sec;
    double read_bytes_per_sec;
};

/**
 * Paper-calibrated bandwidth profiles (§3.3, §5.1), at full scale:
 * GCP pd-ssd ≈ 0.45 GB/s effective; PMEM nt-store 4.01 GB/s; PMEM
 * clwb 2.46 GB/s. Divide via scaled clocks for fast benches.
 */
StorageBandwidth paper_bandwidth(StorageKind kind);

}  // namespace pccheck

#endif  // PCCHECK_STORAGE_THROTTLED_STORAGE_H_
