#include "trainsim/data_loader.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace pccheck {

DataLoader::DataLoader(std::uint64_t dataset_size, std::uint64_t batch_size,
                       std::uint64_t seed)
    : dataset_size_(dataset_size), batch_size_(batch_size), seed_(seed)
{
    PCCHECK_CHECK(dataset_size > 0);
    PCCHECK_CHECK(batch_size > 0);
}

std::uint64_t
DataLoader::batches_per_epoch() const
{
    return (dataset_size_ + batch_size_ - 1) / batch_size_;
}

void
DataLoader::ensure_epoch(std::uint64_t epoch)
{
    if (epoch == loaded_epoch_) {
        return;
    }
    // Fisher–Yates with a per-epoch deterministic PRNG: any replica
    // (and any resumed run) derives the identical permutation.
    permutation_.resize(dataset_size_);
    std::iota(permutation_.begin(), permutation_.end(), 0ULL);
    Rng rng(seed_ ^ (epoch * 0x9E3779B97F4A7C15ULL + 1));
    for (std::uint64_t i = dataset_size_ - 1; i > 0; --i) {
        const std::uint64_t j = rng.next_below(i + 1);
        std::swap(permutation_[i], permutation_[j]);
    }
    loaded_epoch_ = epoch;
}

Batch
DataLoader::next()
{
    const std::uint64_t per_epoch = batches_per_epoch();
    const std::uint64_t epoch = iteration_ / per_epoch;
    const std::uint64_t batch_in_epoch = iteration_ % per_epoch;
    ensure_epoch(epoch);

    Batch batch;
    batch.epoch = epoch;
    const std::uint64_t start = batch_in_epoch * batch_size_;
    const std::uint64_t end =
        std::min(start + batch_size_, dataset_size_);
    batch.samples.assign(permutation_.begin() +
                             static_cast<std::ptrdiff_t>(start),
                         permutation_.begin() +
                             static_cast<std::ptrdiff_t>(end));
    ++iteration_;
    batch.iteration = iteration_;
    return batch;
}

void
DataLoader::seek(std::uint64_t iteration)
{
    iteration_ = iteration;
}

}  // namespace pccheck
