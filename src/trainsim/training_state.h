#ifndef PCCHECK_TRAINSIM_TRAINING_STATE_H_
#define PCCHECK_TRAINSIM_TRAINING_STATE_H_

/**
 * @file
 * Device-resident training state (model weights + optimizer state)
 * with built-in integrity stamping.
 *
 * Every update step stamps the whole buffer with (iteration, offset)
 * markers at a fixed stride. A checkpoint read back from storage can
 * then be verified: all markers must agree on one iteration and sit at
 * their correct offsets. A torn checkpoint (bytes from two different
 * iterations, or misplaced chunks) fails verification — this is the
 * oracle behind the crash-consistency property tests (DESIGN.md I1).
 */

#include <cstdint>
#include <optional>

#include "gpusim/gpu.h"
#include "util/bytes.h"

namespace pccheck {

/** Stamped training state living in simulated GPU memory. */
class TrainingState {
  public:
    /** Marker stride; every marker is 16 bytes at offsets k*stride. */
    static constexpr Bytes kMarkerStride = 4096;

    /**
     * Allocate @p bytes of device memory on @p gpu and stamp it as
     * iteration 0. @p gpu must outlive this object.
     */
    TrainingState(SimGpu& gpu, Bytes bytes);

    /** Model-update side effect: stamp the state as @p iteration. */
    void stamp(std::uint64_t iteration);

    std::uint64_t iteration() const { return iteration_; }
    DevPtr device_ptr() const { return ptr_; }
    Bytes size() const { return ptr_.size; }
    SimGpu& gpu() { return *gpu_; }

    /**
     * Stamp an arbitrary host buffer with the same marker scheme
     * (used by recovery tests to fabricate checkpoints).
     */
    static void stamp_buffer(std::uint8_t* data, Bytes len,
                             std::uint64_t iteration);

    /**
     * Verify a buffer holds one consistent checkpoint.
     * @param base_offset position of data[0] within the full training
     *        state — nonzero when verifying a shard (§3.1 data+pipeline
     *        parallel partitioning). Must be marker-aligned.
     * @return the stamped iteration, or std::nullopt if the buffer is
     *         torn, misplaced, or corrupt.
     */
    static std::optional<std::uint64_t> verify_buffer(
        const std::uint8_t* data, Bytes len, Bytes base_offset = 0);

  private:
    SimGpu* gpu_;
    DevPtr ptr_;
    std::uint64_t iteration_ = 0;
};

}  // namespace pccheck

#endif  // PCCHECK_TRAINSIM_TRAINING_STATE_H_
