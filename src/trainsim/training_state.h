#ifndef PCCHECK_TRAINSIM_TRAINING_STATE_H_
#define PCCHECK_TRAINSIM_TRAINING_STATE_H_

/**
 * @file
 * Device-resident training state (model weights + optimizer state)
 * with built-in integrity stamping.
 *
 * Every update step stamps the whole buffer with (iteration, offset)
 * markers at a fixed stride. A checkpoint read back from storage can
 * then be verified: all markers must agree on one iteration and sit at
 * their correct offsets. A torn checkpoint (bytes from two different
 * iterations, or misplaced chunks) fails verification — this is the
 * oracle behind the crash-consistency property tests (DESIGN.md I1).
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "delta/dirty_tracker.h"
#include "gpusim/gpu.h"
#include "util/bytes.h"

namespace pccheck {

/** Stamped training state living in simulated GPU memory. */
class TrainingState {
  public:
    /** Marker stride; every marker is 16 bytes at offsets k*stride. */
    static constexpr Bytes kMarkerStride = 4096;

    /**
     * Allocate @p bytes of device memory on @p gpu and stamp it as
     * iteration 0. @p gpu must outlive this object.
     */
    TrainingState(SimGpu& gpu, Bytes bytes);

    /** Model-update side effect: stamp the state as @p iteration. */
    void stamp(std::uint64_t iteration);

    /**
     * Sparse model update: touch a deterministic, seeded @p fraction
     * of the marker-stride units, restamping each with @p iteration
     * and a unit-specific fill byte. This is the update pattern the
     * delta tier exists for — most of the state is unchanged between
     * checkpoints — and the dirty tracker (if attached) learns exactly
     * the touched units. Deterministic in (size, iteration, fraction,
     * seed), so tests can replay the sequence onto a shadow buffer.
     */
    void sparse_update(std::uint64_t iteration, double fraction,
                       std::uint64_t seed);

    /**
     * Feed update marks to @p tracker from now on (stamp marks
     * everything, sparse_update only the touched units). nullptr
     * detaches. The tracker must outlive this object or be detached.
     */
    void attach_dirty_tracker(DirtyTracker* tracker)
    {
        tracker_ = tracker;
    }

    /**
     * Adopt recovered bytes: copy @p data to the device and set the
     * iteration WITHOUT restamping (a delta-recovered image carries
     * mixed-iteration markers by design). Marks everything dirty.
     */
    void restore(const std::uint8_t* data, Bytes len,
                 std::uint64_t iteration, bool pinned = true);

    std::uint64_t iteration() const { return iteration_; }
    DevPtr device_ptr() const { return ptr_; }
    Bytes size() const { return ptr_.size; }
    SimGpu& gpu() { return *gpu_; }

    /**
     * Stamp an arbitrary host buffer with the same marker scheme
     * (used by recovery tests to fabricate checkpoints).
     */
    static void stamp_buffer(std::uint8_t* data, Bytes len,
                             std::uint64_t iteration);

    /**
     * Verify a buffer holds one consistent checkpoint.
     * @param base_offset position of data[0] within the full training
     *        state — nonzero when verifying a shard (§3.1 data+pipeline
     *        parallel partitioning). Must be marker-aligned.
     * @return the stamped iteration, or std::nullopt if the buffer is
     *         torn, misplaced, or corrupt.
     */
    static std::optional<std::uint64_t> verify_buffer(
        const std::uint8_t* data, Bytes len, Bytes base_offset = 0);

    /**
     * Host-buffer twin of sparse_update (the shadow-image oracle of
     * the delta tests). @return the touched unit offsets.
     */
    static std::vector<Bytes> sparse_update_buffer(std::uint8_t* data,
                                                   Bytes len,
                                                   std::uint64_t iteration,
                                                   double fraction,
                                                   std::uint64_t seed);

    /**
     * Verify a buffer produced by sparse updates + delta recovery:
     * every marker must carry the magic for its offset, but markers
     * may disagree on iteration (chunks untouched since an older
     * frame keep their old stamp).
     * @return the NEWEST stamped iteration, or std::nullopt if any
     *         marker is misplaced or corrupt.
     */
    static std::optional<std::uint64_t> verify_buffer_sparse(
        const std::uint8_t* data, Bytes len, Bytes base_offset = 0);

  private:
    SimGpu* gpu_;
    DevPtr ptr_;
    std::uint64_t iteration_ = 0;
    DirtyTracker* tracker_ = nullptr;
};

}  // namespace pccheck

#endif  // PCCHECK_TRAINSIM_TRAINING_STATE_H_
