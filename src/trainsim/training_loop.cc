#include "trainsim/training_loop.h"

#include "obs/trace.h"
#include "util/check.h"

namespace pccheck {

double
TrainingResult::slowdown_vs(double ideal) const
{
    if (throughput <= 0) {
        return 0;
    }
    return ideal / throughput;
}

TrainingLoop::TrainingLoop(SimGpu& gpu, TrainingState& state,
                           const ScaledModel& model, const Clock& clock)
    : gpu_(&gpu), state_(&state), model_(model), clock_(&clock)
{
}

TrainingResult
TrainingLoop::run(std::uint64_t iterations,
                  std::uint64_t checkpoint_interval,
                  Checkpointer& checkpointer,
                  std::uint64_t start_iteration)
{
    PCCHECK_CHECK(iterations > 0);
    const Seconds train_time =
        model_.iteration_time * (1.0 - model_.spec.update_fraction);
    const Seconds update_time =
        model_.iteration_time * model_.spec.update_fraction;

    Stopwatch watch(*clock_);
    const std::uint64_t end = start_iteration + iterations;
    for (std::uint64_t iter = start_iteration; iter < end; ++iter) {
        PCCHECK_TRACE_SPAN("train.iteration", "iteration", iter);
        // T: forward + backward passes occupy the compute engine.
        gpu_->launch_kernel(train_time);
        // The update may not mutate weights while a snapshot of the
        // previous state is still being copied out.
        checkpointer.before_update(iter);
        // U: optimizer step mutates (re-stamps) the training state.
        gpu_->launch_kernel(update_time);
        if (sparse_fraction_ > 0) {
            state_->sparse_update(iter, sparse_fraction_, sparse_seed_);
        } else {
            state_->stamp(iter);
        }
        const bool full_iter =
            checkpoint_interval > 0 && iter % checkpoint_interval == 0;
        if (full_iter) {
            checkpointer.request_checkpoint(iter);
        } else if (delta_interval_ > 0 && iter % delta_interval_ == 0) {
            checkpointer.request_delta(iter);
        }
    }
    // Steady-state throughput: the timed window covers the training
    // iterations themselves. Draining the last in-flight checkpoints
    // is excluded — in a long run that work overlaps with subsequent
    // training, so charging it to a finite window would bias short
    // measurements against asynchronous checkpointers.
    TrainingResult result;
    result.iterations = iterations;
    result.wall_time = watch.elapsed();
    checkpointer.finish();
    result.throughput =
        static_cast<double>(iterations) / result.wall_time;
    result.checkpointer = checkpointer.stats();
    return result;
}

double
ideal_throughput(const ScaledModel& model)
{
    return 1.0 / model.iteration_time;
}

}  // namespace pccheck
