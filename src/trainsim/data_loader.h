#ifndef PCCHECK_TRAINSIM_DATA_LOADER_H_
#define PCCHECK_TRAINSIM_DATA_LOADER_H_

/**
 * @file
 * Deterministic, resumable data loader — the "persistent iterator"
 * of §4.2: recovery must resume the input pipeline exactly where the
 * checkpointed iteration left off, or the model trains on duplicated
 * or skipped samples.
 *
 * The loader derives every batch purely from (seed, iteration): each
 * epoch's permutation of the dataset is generated from a per-epoch
 * PRNG, so seek(iteration) reproduces the exact state of an
 * uninterrupted run with O(epoch) work and no persistent log — the
 * iterator's durable state is just the iteration number already
 * stored in every checkpoint record.
 */

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace pccheck {

/** One batch of sample indices. */
struct Batch {
    std::uint64_t iteration = 0;
    std::uint64_t epoch = 0;
    std::vector<std::uint64_t> samples;
};

/** Deterministic shuffled loader over [0, dataset_size). */
class DataLoader {
  public:
    /**
     * @param dataset_size number of samples (> 0)
     * @param batch_size samples per iteration (> 0; the tail batch of
     *        an epoch may be short)
     * @param seed shuffle seed shared by all replicas
     */
    DataLoader(std::uint64_t dataset_size, std::uint64_t batch_size,
               std::uint64_t seed);

    /** Batches per epoch (ceil of dataset/batch). */
    std::uint64_t batches_per_epoch() const;

    /** The next batch; advances the iterator. Iterations are 1-based
     *  to match the training loop. */
    Batch next();

    /**
     * Position the iterator as if @p iteration batches had already
     * been consumed (recovery: pass the recovered iteration). next()
     * then returns batch iteration+1.
     */
    void seek(std::uint64_t iteration);

    std::uint64_t iteration() const { return iteration_; }

  private:
    void ensure_epoch(std::uint64_t epoch);

    std::uint64_t dataset_size_;
    std::uint64_t batch_size_;
    std::uint64_t seed_;
    std::uint64_t iteration_ = 0;  ///< batches consumed so far
    std::uint64_t loaded_epoch_ = ~0ULL;
    std::vector<std::uint64_t> permutation_;
};

}  // namespace pccheck

#endif  // PCCHECK_TRAINSIM_DATA_LOADER_H_
