#ifndef PCCHECK_TRAINSIM_CHECKPOINTER_H_
#define PCCHECK_TRAINSIM_CHECKPOINTER_H_

/**
 * @file
 * The interface every checkpointing system implements (PCcheck and all
 * baselines), mirroring how the paper's framework hooks into the
 * PyTorch training loop.
 *
 * The training loop calls:
 *  - before_update(i): block until the model weights may be mutated —
 *    i.e. until any in-progress GPU→DRAM snapshot of the previous
 *    state has finished (the T→U stall discussed in §3.1);
 *  - request_checkpoint(i): after the update on checkpoint iterations;
 *    systems without concurrent-checkpoint support may block here
 *    until a previous checkpoint persists (the CheckFreq stall of
 *    Fig. 4).
 */

#include <cstdint>
#include <string>

#include "util/clock.h"
#include "util/stats.h"

namespace pccheck {

/** Aggregated checkpointer metrics for one training run. */
struct CheckpointerStats {
    std::uint64_t requested = 0;     ///< checkpoints initiated
    std::uint64_t completed = 0;     ///< checkpoints fully persisted
    std::uint64_t aborted = 0;       ///< attempts abandoned on storage
                                     ///< failure (slot recycled)
    Seconds stall_time = 0;          ///< training time lost to blocking
    RunningStat checkpoint_latency;  ///< request → durable, seconds
    /** Delta frames durably sealed (systems with a delta tier). */
    std::uint64_t delta_frames = 0;
    /** Chunk payload bytes those frames carried. */
    std::uint64_t delta_bytes = 0;
    /** Delta requests dropped (no durable base / log full / error). */
    std::uint64_t delta_skipped = 0;
};

/** Abstract checkpointing system plugged into the training loop. */
class Checkpointer {
  public:
    virtual ~Checkpointer() = default;

    /** Human-readable system name ("pccheck", "checkfreq", ...). */
    virtual std::string name() const = 0;

    /**
     * Block until the weights may be mutated by update @p iteration.
     * Default: never blocks.
     */
    virtual void before_update(std::uint64_t iteration) { (void)iteration; }

    /**
     * Initiate (or perform) a checkpoint of the state stamped with
     * @p iteration. May block depending on the system's semantics.
     */
    virtual void request_checkpoint(std::uint64_t iteration) = 0;

    /**
     * Durably log only what changed since the last frame (or full
     * checkpoint) — the incremental tier of docs/DELTA_LOG.md.
     * Synchronous WAL semantics: when this returns successfully the
     * frame is sealed on media. Default: no delta tier, no-op.
     */
    virtual void request_delta(std::uint64_t iteration)
    {
        (void)iteration;
    }

    /** Drain all outstanding checkpoint work (end of run). */
    virtual void finish() {}

    /** Metrics accumulated so far. */
    virtual CheckpointerStats stats() const = 0;
};

/** Null checkpointer: the paper's "ideal" / no-checkpoint baseline. */
class NoCheckpointer final : public Checkpointer {
  public:
    std::string name() const override { return "none"; }
    void request_checkpoint(std::uint64_t) override {}
    CheckpointerStats stats() const override { return {}; }
};

}  // namespace pccheck

#endif  // PCCHECK_TRAINSIM_CHECKPOINTER_H_
