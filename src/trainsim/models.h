#ifndef PCCHECK_TRAINSIM_MODELS_H_
#define PCCHECK_TRAINSIM_MODELS_H_

/**
 * @file
 * Catalog of the evaluated models (paper Table 3) with full-scale
 * checkpoint sizes and calibrated iteration times, plus the scaling
 * helper used to run paper-scale workloads in milliseconds.
 *
 * Scaling rule (DESIGN.md §1): dividing every *time* by a factor Kt
 * and every *size* by Ks while multiplying bandwidths by Kt/Ks keeps
 * every ratio in the paper's analytical model (Tw / f·t, C / t, ...)
 * unchanged, so the figures keep their shape.
 */

#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/clock.h"

namespace pccheck {

/** One evaluated model (paper Table 3 plus calibrated timing). */
struct ModelSpec {
    std::string name;
    Bytes checkpoint_bytes;   ///< model + optimizer state, full scale
    Seconds iteration_time;   ///< A100 forward+backward+update, no ckpt
    double update_fraction;   ///< share of iteration_time spent in U
    int pipeline_stages;      ///< >1 => pipeline-parallel across nodes
    int batch_size;           ///< microbatch used in the paper
};

/** All Table 3 models (plus OPT-350M used in Fig. 13). */
const std::vector<ModelSpec>& model_catalog();

/** Lookup by name; throws FatalError when unknown. */
const ModelSpec& model_by_name(const std::string& name);

/** Scale factors translating full-scale workloads to bench scale. */
struct ScaleFactors {
    double time = 20.0;   ///< Kt: all durations divided by this
    double size = 2000.0; ///< Ks: all byte counts divided by this

    /** Multiply a full-scale bandwidth for use at bench scale. */
    double scale_bandwidth(double bytes_per_sec) const;

    /** Divide a full-scale duration. */
    Seconds scale_time(Seconds t) const { return t / time; }

    /** Divide a full-scale size (floor at 4 KiB to stay meaningful). */
    Bytes scale_size(Bytes n) const;
};

/** A model translated to bench scale. */
struct ScaledModel {
    ModelSpec spec;           ///< original full-scale numbers
    Bytes checkpoint_bytes;   ///< scaled
    Seconds iteration_time;   ///< scaled
    ScaleFactors factors;
};

/** Apply @p factors to @p spec. */
ScaledModel scale_model(const ModelSpec& spec, const ScaleFactors& factors);

}  // namespace pccheck

#endif  // PCCHECK_TRAINSIM_MODELS_H_
