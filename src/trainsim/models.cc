#include "trainsim/models.h"

#include <algorithm>

#include "util/check.h"

namespace pccheck {

const std::vector<ModelSpec>&
model_catalog()
{
    using namespace literals;
    // Checkpoint sizes from paper Table 3 (decimal GB as printed).
    // Iteration times calibrated from the paper's reported numbers:
    // VGG16 60 ms (§5.2.3); OPT-1.3B 0.5 iters/s with PCcheck ≈ 2 s
    // (§5.2.3); others interpolated by model size / batch.
    static const std::vector<ModelSpec> kCatalog = {
        {"vgg16", static_cast<Bytes>(1.1e9), 0.060, 0.10, 1, 32},
        {"transformerxl", static_cast<Bytes>(2.7e9), 0.180, 0.10, 1, 64},
        {"bert", static_cast<Bytes>(4.0e9), 0.250, 0.10, 1, 3},
        {"opt-350m", static_cast<Bytes>(4.2e9), 0.450, 0.10, 1, 4},
        {"opt-1.3b", static_cast<Bytes>(16.2e9), 2.000, 0.10, 1, 1},
        {"opt-2.7b", static_cast<Bytes>(45.0e9), 2.400, 0.10, 2, 1},
        {"bloom-7b", static_cast<Bytes>(108.0e9), 3.500, 0.10, 6, 1},
    };
    return kCatalog;
}

const ModelSpec&
model_by_name(const std::string& name)
{
    const auto& catalog = model_catalog();
    const auto it = std::find_if(
        catalog.begin(), catalog.end(),
        [&name](const ModelSpec& spec) { return spec.name == name; });
    if (it == catalog.end()) {
        fatal("unknown model: " + name);
    }
    return *it;
}

double
ScaleFactors::scale_bandwidth(double bytes_per_sec) const
{
    if (bytes_per_sec <= 0) {
        return bytes_per_sec;
    }
    return bytes_per_sec * time / size;
}

Bytes
ScaleFactors::scale_size(Bytes n) const
{
    const auto scaled = static_cast<Bytes>(static_cast<double>(n) / size);
    return std::max<Bytes>(scaled, 4096);
}

ScaledModel
scale_model(const ModelSpec& spec, const ScaleFactors& factors)
{
    ScaledModel scaled;
    scaled.spec = spec;
    scaled.checkpoint_bytes = factors.scale_size(spec.checkpoint_bytes);
    scaled.iteration_time = factors.scale_time(spec.iteration_time);
    scaled.factors = factors;
    return scaled;
}

}  // namespace pccheck
