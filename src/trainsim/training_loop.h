#ifndef PCCHECK_TRAINSIM_TRAINING_LOOP_H_
#define PCCHECK_TRAINSIM_TRAINING_LOOP_H_

/**
 * @file
 * Single-GPU training loop driving a Checkpointer, reproducing the
 * T (train) / U (update) iteration structure of paper Figures 3–7.
 */

#include <cstdint>

#include "trainsim/checkpointer.h"
#include "trainsim/models.h"
#include "trainsim/training_state.h"
#include "util/clock.h"

namespace pccheck {

/** Outcome of one training run. */
struct TrainingResult {
    std::uint64_t iterations = 0;
    Seconds wall_time = 0;
    double throughput = 0;          ///< iterations per second
    CheckpointerStats checkpointer; ///< final checkpointer metrics

    /** Slowdown factor versus an ideal run at @p ideal_throughput. */
    double slowdown_vs(double ideal_throughput) const;
};

/** Drives T/U iterations on a SimGpu and hooks in a Checkpointer. */
class TrainingLoop {
  public:
    /**
     * @param gpu simulated GPU executing the kernels
     * @param state stamped training state (on @p gpu)
     * @param model scaled workload parameters
     * @param clock time source for measurement
     */
    TrainingLoop(SimGpu& gpu, TrainingState& state, const ScaledModel& model,
                 const Clock& clock = MonotonicClock::instance());

    /**
     * Run @p iterations iterations, requesting a checkpoint every
     * @p checkpoint_interval iterations (0 disables checkpointing).
     * Calls checkpointer.finish() before returning.
     *
     * @param start_iteration first iteration index (for resume runs)
     */
    TrainingResult run(std::uint64_t iterations,
                       std::uint64_t checkpoint_interval,
                       Checkpointer& checkpointer,
                       std::uint64_t start_iteration = 1);

    /**
     * Request a delta frame (Checkpointer::request_delta) every
     * @p interval iterations that are not full-checkpoint iterations.
     * 0 (default) disables the delta tier.
     */
    void set_delta_interval(std::uint64_t interval)
    {
        delta_interval_ = interval;
    }

    /**
     * Replace the full re-stamp of each update with a sparse update
     * touching @p fraction of the state (TrainingState::sparse_update,
     * seeded deterministically) — the access pattern the delta tier
     * is built for. fraction <= 0 restores the full re-stamp.
     */
    void set_sparse_updates(double fraction, std::uint64_t seed)
    {
        sparse_fraction_ = fraction;
        sparse_seed_ = seed;
    }

  private:
    SimGpu* gpu_;
    TrainingState* state_;
    ScaledModel model_;
    const Clock* clock_;
    std::uint64_t delta_interval_ = 0;
    double sparse_fraction_ = 0;
    std::uint64_t sparse_seed_ = 1;
};

/** Ideal (no-checkpoint) throughput for a scaled model, iters/sec. */
double ideal_throughput(const ScaledModel& model);

}  // namespace pccheck

#endif  // PCCHECK_TRAINSIM_TRAINING_LOOP_H_
