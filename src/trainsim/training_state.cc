#include "trainsim/training_state.h"

#include <cstring>

#include "util/check.h"

namespace pccheck {
namespace {

constexpr std::uint64_t kMarkerMagic = 0x50436368654B5031ULL;  // "PCcheKP1"

struct Marker {
    std::uint64_t magic_xor_offset;
    std::uint64_t iteration;
};

static_assert(sizeof(Marker) == 16);

}  // namespace

TrainingState::TrainingState(SimGpu& gpu, Bytes bytes)
    : gpu_(&gpu), ptr_(gpu.alloc(bytes))
{
    PCCHECK_CHECK_MSG(bytes >= sizeof(Marker),
                      "training state too small: " << bytes);
    stamp(0);
}

void
TrainingState::stamp(std::uint64_t iteration)
{
    stamp_buffer(gpu_->device_data(ptr_), ptr_.size, iteration);
    iteration_ = iteration;
}

void
TrainingState::stamp_buffer(std::uint8_t* data, Bytes len,
                            std::uint64_t iteration)
{
    for (Bytes off = 0; off + sizeof(Marker) <= len; off += kMarkerStride) {
        Marker marker{kMarkerMagic ^ off, iteration};
        std::memcpy(data + off, &marker, sizeof(marker));
    }
}

std::optional<std::uint64_t>
TrainingState::verify_buffer(const std::uint8_t* data, Bytes len,
                             Bytes base_offset)
{
    PCCHECK_CHECK_MSG(base_offset % kMarkerStride == 0,
                      "shard base offset must be marker-aligned");
    std::optional<std::uint64_t> iteration;
    for (Bytes off = 0; off + sizeof(Marker) <= len; off += kMarkerStride) {
        Marker marker;
        std::memcpy(&marker, data + off, sizeof(marker));
        if (marker.magic_xor_offset !=
            (kMarkerMagic ^ (base_offset + off))) {
            return std::nullopt;  // misplaced or corrupt
        }
        if (iteration.has_value() && *iteration != marker.iteration) {
            return std::nullopt;  // torn across iterations
        }
        iteration = marker.iteration;
    }
    return iteration;
}

}  // namespace pccheck
